"""Compression-accelerated GPU-to-GPU communication (the Fig. 1 scenario).

The paper motivates ultra-fast GPU compression with distributed training
and MPI collectives on GPU clusters ([35]-[37]): gradients or halo data
cross links far slower than device memory, so compressing before the wire
pays off -- *if* the compressor's end-to-end time stays below the transfer
time it saves.  This module provides a functional + simulated model of that
trade-off:

* data really is compressed/decompressed (`repro.core`), so the received
  arrays carry the true bounded error;
* transfer and codec times come from the link parameters and the
  calibrated pipeline model, so "does compression help on this link?" has
  a quantitative answer with a crossover point.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .core import compress as _compress
from .core import decompress as _decompress
from .gpusim import Artifacts, DeviceSpec
from .gpusim import pipelines as P
from .gpusim.device import A100_40GB


@dataclass(frozen=True)
class Link:
    """One inter-GPU link."""

    name: str
    bandwidth_gbs: float
    latency_s: float = 5e-6

    def transfer_time(self, nbytes: float) -> float:
        return self.latency_s + nbytes / (self.bandwidth_gbs * 1e9)


#: Common fabrics (effective rates).
NVLINK3 = Link("NVLink3", 250.0, 2e-6)
PCIE4 = Link("PCIe4", 12.0, 5e-6)
IB_HDR = Link("InfiniBand-HDR", 23.0, 2e-6)
ETH_25G = Link("25GbE", 2.8, 20e-6)


@dataclass
class CommReport:
    """Simulated time breakdown of one communication operation."""

    compress_s: float = 0.0
    transfer_s: float = 0.0
    decompress_s: float = 0.0
    bytes_on_wire: float = 0.0
    steps: List[Tuple[str, float]] = dc_field(default_factory=list)

    @property
    def total_s(self) -> float:
        return self.compress_s + self.transfer_s + self.decompress_s


def _codec_times(data: np.ndarray, stream: np.ndarray, device: DeviceSpec) -> Tuple[float, float]:
    art = Artifacts.from_cuszp2_stream(data, stream)
    c = P.cuszp2_compression(art, device).end_to_end_time(device)
    d = P.cuszp2_decompression(art, device).end_to_end_time(device)
    return c, d


def send(
    data: np.ndarray,
    link: Link,
    rel: Optional[float] = None,
    device: DeviceSpec = A100_40GB,
    mode: str = "outlier",
) -> Tuple[np.ndarray, CommReport]:
    """Point-to-point transfer; ``rel=None`` sends raw.

    Returns the array the receiver observes (exact for raw, bounded-error
    for compressed) and the simulated time breakdown.
    """
    report = CommReport()
    if rel is None:
        report.transfer_s = link.transfer_time(data.nbytes)
        report.bytes_on_wire = float(data.nbytes)
        report.steps.append(("raw transfer", report.transfer_s))
        return data.copy(), report

    stream = _compress(data, rel=rel, mode=mode)
    c, d = _codec_times(data, stream, device)
    t = link.transfer_time(stream.size)
    report.compress_s = c
    report.transfer_s = t
    report.decompress_s = d
    report.bytes_on_wire = float(stream.size)
    report.steps += [("compress", c), ("transfer", t), ("decompress", d)]
    return _decompress(stream), report


def crossover_bandwidth(
    data: np.ndarray,
    rel: float,
    device: DeviceSpec = A100_40GB,
    mode: str = "outlier",
) -> float:
    """Link bandwidth (GB/s) below which compressing the transfer wins.

    Raw time:   N / B.     Compressed: T_codec + (N / CR) / B.
    Equal at B* = N (1 - 1/CR) / T_codec -- fast compressors push the
    crossover into NVLink territory; hybrid compressors never reach it.
    """
    stream = _compress(data, rel=rel, mode=mode)
    c, d = _codec_times(data, stream, device)
    saved_bytes = data.nbytes - stream.size
    if saved_bytes <= 0:
        return 0.0
    return saved_bytes / (c + d) / 1e9


def ring_allgather(
    chunks: Sequence[np.ndarray],
    link: Link,
    rel: Optional[float] = None,
    device: DeviceSpec = A100_40GB,
    mode: str = "outlier",
) -> Tuple[List[Dict[int, np.ndarray]], CommReport]:
    """Ring all-gather over ``len(chunks)`` ranks (rank *i* contributes
    ``chunks[i]``); each step forwards one chunk to the next rank.

    Compressed mode compresses each chunk once at its owner and forwards
    the *stream*, decompressing only at delivery -- the way
    compression-enabled collectives avoid recompression per hop [35].

    Returns per-rank views ``{source_rank: array}`` and the simulated
    report (time of the critical path: P-1 pipelined steps).
    """
    nranks = len(chunks)
    if nranks < 2:
        raise ValueError("ring_allgather needs at least 2 ranks")
    report = CommReport()

    if rel is None:
        wire = [c.copy() for c in chunks]
        per_step = max(link.transfer_time(c.nbytes) for c in chunks)
        report.transfer_s = (nranks - 1) * per_step
        report.bytes_on_wire = float(sum(c.nbytes for c in chunks)) * (nranks - 1)
        received = [{src: wire[src] for src in range(nranks)} for _ in range(nranks)]
        return received, report

    streams = [_compress(c, rel=rel, mode=mode) for c in chunks]
    times = [_codec_times(c, s, device) for c, s in zip(chunks, streams)]
    # Owners compress in parallel; each ring step forwards the largest
    # stream on the critical path; delivery decompresses in parallel.
    report.compress_s = max(t[0] for t in times)
    report.transfer_s = (nranks - 1) * max(link.transfer_time(s.size) for s in streams)
    report.decompress_s = max(t[1] for t in times)
    report.bytes_on_wire = float(sum(s.size for s in streams)) * (nranks - 1)

    decoded = [_decompress(s) for s in streams]
    received = [{src: decoded[src] for src in range(nranks)} for _ in range(nranks)]
    return received, report
