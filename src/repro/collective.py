"""Compression-accelerated GPU-to-GPU communication (the Fig. 1 scenario).

The paper motivates ultra-fast GPU compression with distributed training
and MPI collectives on GPU clusters ([35]-[37]): gradients or halo data
cross links far slower than device memory, so compressing before the wire
pays off -- *if* the compressor's end-to-end time stays below the transfer
time it saves.  This module provides a functional + simulated model of that
trade-off:

* data really is compressed/decompressed (`repro.core`), so the received
  arrays carry the true bounded error;
* transfer and codec times come from the link parameters and the
  calibrated pipeline model, so "does compression help on this link?" has
  a quantitative answer with a crossover point.

The *resilient* half of the module (:class:`LossyLink`,
:func:`send_resilient`) models unreliable fabrics: transfers are corrupted
by the seeded injectors of :mod:`repro.faults`, receivers verify the
format-v2 checksums, and damage is repaired by retransmission -- either of
the whole message, or (policy ``"group"``) of only the corrupt block
groups, falling back to an uncompressed transfer after ``max_retries``
failed repair rounds.  The byte accounting lets tests pin down when
partial retransmit beats full retransmit.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .core import compress as _compress
from .core import decompress as _decompress
from .core import stream as _stream
from .core.integrity import verify as _verify
from .gpusim import Artifacts, DeviceSpec
from .gpusim import pipelines as P
from .gpusim.device import A100_40GB


@dataclass(frozen=True)
class Link:
    """One inter-GPU link."""

    name: str
    bandwidth_gbs: float
    latency_s: float = 5e-6

    def transfer_time(self, nbytes: float) -> float:
        return self.latency_s + nbytes / (self.bandwidth_gbs * 1e9)


#: Common fabrics (effective rates).
NVLINK3 = Link("NVLink3", 250.0, 2e-6)
PCIE4 = Link("PCIe4", 12.0, 5e-6)
IB_HDR = Link("InfiniBand-HDR", 23.0, 2e-6)
ETH_25G = Link("25GbE", 2.8, 20e-6)


@dataclass
class CommReport:
    """Simulated time breakdown of one communication operation."""

    compress_s: float = 0.0
    transfer_s: float = 0.0
    decompress_s: float = 0.0
    bytes_on_wire: float = 0.0
    steps: List[Tuple[str, float]] = dc_field(default_factory=list)

    @property
    def total_s(self) -> float:
        return self.compress_s + self.transfer_s + self.decompress_s


def _codec_times(data: np.ndarray, stream: np.ndarray, device: DeviceSpec) -> Tuple[float, float]:
    art = Artifacts.from_cuszp2_stream(data, stream)
    c = P.cuszp2_compression(art, device).end_to_end_time(device)
    d = P.cuszp2_decompression(art, device).end_to_end_time(device)
    return c, d


def send(
    data: np.ndarray,
    link: Link,
    rel: Optional[float] = None,
    device: DeviceSpec = A100_40GB,
    mode: str = "outlier",
) -> Tuple[np.ndarray, CommReport]:
    """Point-to-point transfer; ``rel=None`` sends raw.

    Returns the array the receiver observes (exact for raw, bounded-error
    for compressed) and the simulated time breakdown.
    """
    report = CommReport()
    if rel is None:
        report.transfer_s = link.transfer_time(data.nbytes)
        report.bytes_on_wire = float(data.nbytes)
        report.steps.append(("raw transfer", report.transfer_s))
        return data.copy(), report

    stream = _compress(data, rel=rel, mode=mode)
    c, d = _codec_times(data, stream, device)
    t = link.transfer_time(stream.size)
    report.compress_s = c
    report.transfer_s = t
    report.decompress_s = d
    report.bytes_on_wire = float(stream.size)
    report.steps += [("compress", c), ("transfer", t), ("decompress", d)]
    return _decompress(stream), report


def crossover_bandwidth(
    data: np.ndarray,
    rel: float,
    device: DeviceSpec = A100_40GB,
    mode: str = "outlier",
) -> float:
    """Link bandwidth (GB/s) below which compressing the transfer wins.

    Raw time:   N / B.     Compressed: T_codec + (N / CR) / B.
    Equal at B* = N (1 - 1/CR) / T_codec -- fast compressors push the
    crossover into NVLink territory; hybrid compressors never reach it.
    """
    stream = _compress(data, rel=rel, mode=mode)
    c, d = _codec_times(data, stream, device)
    saved_bytes = data.nbytes - stream.size
    if saved_bytes <= 0:
        return 0.0
    return saved_bytes / (c + d) / 1e9


def ring_allgather(
    chunks: Sequence[np.ndarray],
    link: Link,
    rel: Optional[float] = None,
    device: DeviceSpec = A100_40GB,
    mode: str = "outlier",
) -> Tuple[List[Dict[int, np.ndarray]], CommReport]:
    """Ring all-gather over ``len(chunks)`` ranks (rank *i* contributes
    ``chunks[i]``); each step forwards one chunk to the next rank.

    Compressed mode compresses each chunk once at its owner and forwards
    the *stream*, decompressing only at delivery -- the way
    compression-enabled collectives avoid recompression per hop [35].

    Returns per-rank views ``{source_rank: array}`` and the simulated
    report (time of the critical path: P-1 pipelined steps).
    """
    nranks = len(chunks)
    if nranks < 2:
        raise ValueError("ring_allgather needs at least 2 ranks")
    report = CommReport()

    if rel is None:
        wire = [c.copy() for c in chunks]
        per_step = max(link.transfer_time(c.nbytes) for c in chunks)
        report.transfer_s = (nranks - 1) * per_step
        report.bytes_on_wire = float(sum(c.nbytes for c in chunks)) * (nranks - 1)
        received = [{src: wire[src] for src in range(nranks)} for _ in range(nranks)]
        return received, report

    streams = [_compress(c, rel=rel, mode=mode) for c in chunks]
    times = [_codec_times(c, s, device) for c, s in zip(chunks, streams)]
    # Owners compress in parallel; each ring step forwards the largest
    # stream on the critical path; delivery decompresses in parallel.
    report.compress_s = max(t[0] for t in times)
    report.transfer_s = (nranks - 1) * max(link.transfer_time(s.size) for s in streams)
    report.decompress_s = max(t[1] for t in times)
    report.bytes_on_wire = float(sum(s.size for s in streams)) * (nranks - 1)

    decoded = [_decompress(s) for s in streams]
    received = [{src: decoded[src] for src in range(nranks)} for _ in range(nranks)]
    return received, report


# ---------------------------------------------------------------------------
# Lossy links + resilient transfer (format-v2 integrity in the loop)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class LossyLink(Link):
    """A link whose transfers are corrupted with probability ``loss_rate``.

    Corruption is applied by a :mod:`repro.faults` injector (default: a
    bit flip, the classic undetected-by-the-NIC soft error; ``"burst"``
    models a zeroed packet).  The channel itself is memoryless -- every
    transfer, including retransmissions, rolls the same dice.
    """

    loss_rate: float = 0.05
    fault: str = "bitflip"
    burst: int = 64


#: A deliberately unreliable 25GbE fabric for experiments.
ETH_25G_LOSSY = LossyLink("25GbE-lossy", 2.8, 20e-6, loss_rate=0.1)


def _channel(payload: np.ndarray, link: Link, rng: np.random.Generator) -> np.ndarray:
    """Pass bytes through the (possibly lossy) channel."""
    out = payload.copy()
    if isinstance(link, LossyLink) and link.loss_rate > 0 and out.size:
        if rng.random() < link.loss_rate:
            from .faults import make_injector

            inj = make_injector(
                link.fault,
                seed=int(rng.integers(0, 2**31)),
                **({"burst": link.burst} if link.fault == "burst" else {}),
            )
            out = inj.apply(out)
    return out


@dataclass
class ResilientReport:
    """Byte/time accounting of one integrity-checked transfer."""

    policy: str = "group"
    attempts: int = 0  #: transmissions, counting the first full send
    corrupt_events: int = 0  #: transfers that arrived damaged
    bytes_on_wire: float = 0.0  #: total bytes transmitted, retries included
    retransmitted_bytes: float = 0.0  #: bytes sent again after the first send
    groups_retransmitted: int = 0
    degraded: bool = False  #: fell back to an uncompressed transfer
    delivered_ok: bool = False
    transfer_s: float = 0.0
    compress_s: float = 0.0
    decompress_s: float = 0.0

    @property
    def total_s(self) -> float:
        return self.compress_s + self.transfer_s + self.decompress_s


def _corrupt_regions(buf: np.ndarray, report) -> List[Tuple[int, int]]:
    """Byte ranges that must be retransmitted to repair ``buf``.

    The stored per-group payload lengths pin every group's extent, so a
    damaged group is repaired by resending its offset bytes + payload
    bytes; header/TOC damage resends the fixed-location prefix.
    """
    header = _stream.StreamHeader.unpack(buf)
    section = _stream.parse_integrity_section(buf, header.nblocks)
    off_start = _stream.HEADER_SIZE + section.size
    off_end = off_start + header.nblocks
    bounds = section.payload_bounds()
    regions: List[Tuple[int, int]] = []
    if not report.header_ok or not report.toc_ok:
        regions.append((0, off_start))
    G = section.group_blocks
    for g in report.corrupt_groups:
        regions.append((off_start + g * G, min(off_start + (g + 1) * G, off_end)))
        regions.append(
            (off_end + int(bounds[g]), off_end + int(bounds[g + 1]))
        )
    return regions


def send_resilient(
    data: np.ndarray,
    link: Link,
    rel: float = 1e-3,
    policy: str = "group",
    max_retries: int = 8,
    seed: int = 0,
    device: DeviceSpec = A100_40GB,
    mode: str = "outlier",
    group_blocks: int = _stream.DEFAULT_GROUP_BLOCKS,
) -> Tuple[np.ndarray, ResilientReport]:
    """Integrity-checked point-to-point transfer over a (lossy) link.

    The sender compresses once; the receiver verifies the v2 checksums on
    every arrival.  On corruption:

    * ``policy="full"``  -- retransmit the entire stream;
    * ``policy="group"`` -- retransmit only the damaged block groups'
      bytes (offsets + payload, plus the header/TOC prefix if that is
      what broke), splicing them into the received buffer.

    After ``max_retries`` failed repair rounds the transfer *degrades
    gracefully*: the raw uncompressed array is sent instead (modeled as
    delivered by a reliable bulk path), so the collective always
    completes.  Returns the received array and the byte/time accounting.
    """
    if policy not in ("group", "full"):
        raise ValueError(f"policy must be 'group' or 'full', got {policy!r}")
    rng = np.random.default_rng(seed)
    rep = ResilientReport(policy=policy)

    if data.size == 0:
        # Zero-length field: nothing to compress, nothing to corrupt.  One
        # empty transfer, delivered; the retry loop must never be entered.
        rep.attempts = 1
        rep.delivered_ok = True
        rep.transfer_s = link.transfer_time(0)
        return data.copy(), rep

    stream = _compress(data, rel=rel, mode=mode, group_blocks=group_blocks)
    c, d = _codec_times(data, stream, device)
    rep.compress_s = c
    return _deliver_stream(stream, data, link, policy, max_retries, rng, rep, d)


def _deliver_stream(
    stream: np.ndarray,
    data: np.ndarray,
    link: Link,
    policy: str,
    max_retries: int,
    rng: np.random.Generator,
    rep: ResilientReport,
    decompress_s: float,
) -> Tuple[np.ndarray, ResilientReport]:
    """Push one compressed stream through the (lossy) channel until its
    checksums verify, retransmitting per ``policy``; after ``max_retries``
    failed repair rounds degrade to shipping ``data`` raw.  Mutates and
    returns ``rep`` (shared across chunks by the chunked variant)."""
    d = decompress_s

    # first full transmission
    received = _channel(stream, link, rng)
    rep.attempts += 1
    rep.bytes_on_wire += float(stream.size)
    rep.transfer_s += link.transfer_time(stream.size)

    from .core.errors import CuSZp2Error

    for _ in range(max_retries):
        try:
            report = _verify(received)
        except CuSZp2Error:
            report = None  # not even parseable: no damage map available
        if report is not None and report.ok:
            rep.delivered_ok = True
            rep.decompress_s += d
            return _decompress(received), rep
        rep.corrupt_events += 1

        if report is None or policy == "full":
            received = _channel(stream, link, rng)
            rep.attempts += 1
            rep.bytes_on_wire += float(stream.size)
            rep.retransmitted_bytes += float(stream.size)
            rep.transfer_s += link.transfer_time(stream.size)
            continue

        if not report.recoverable:
            # geometry untrusted: resend the fixed-location prefix and
            # re-derive the damage map next round
            header_end = _stream.HEADER_SIZE + _stream.integrity_section_size(
                max(report.ngroups, 1)
            )
            patch = _channel(stream[:header_end], link, rng)
            received = received.copy()
            received[: patch.size] = patch
            rep.attempts += 1
            rep.bytes_on_wire += float(patch.size)
            rep.retransmitted_bytes += float(patch.size)
            rep.transfer_s += link.transfer_time(patch.size)
            continue

        if received.size != stream.size:
            # truncation: the missing tail is exactly known; extend first
            received = np.concatenate(
                [received, np.zeros(stream.size - received.size, dtype=np.uint8)]
            ) if received.size < stream.size else received[: stream.size].copy()

        # one retransmission message per repair round: gather the damaged
        # regions, roll the channel once, scatter the (possibly again
        # corrupted) bytes back into place
        regions = _corrupt_regions(stream, report)
        gathered = np.concatenate([stream[lo:hi] for lo, hi in regions])
        patch = _channel(gathered, link, rng)
        if patch.size < gathered.size:  # channel truncated the patch
            patch = np.concatenate(
                [patch, np.zeros(gathered.size - patch.size, dtype=np.uint8)]
            )
        received = received.copy()
        nbytes = 0
        for lo, hi in regions:
            received[lo:hi] = patch[nbytes : nbytes + (hi - lo)]
            nbytes += hi - lo
        rep.attempts += 1
        rep.groups_retransmitted += len(report.corrupt_groups)
        rep.bytes_on_wire += float(nbytes)
        rep.retransmitted_bytes += float(nbytes)
        rep.transfer_s += link.transfer_time(nbytes)

    try:
        final = _verify(received)
    except CuSZp2Error:
        final = None
    if final is not None and final.ok:
        rep.delivered_ok = True
        rep.decompress_s += d
        return _decompress(received), rep

    # graceful degradation: ship the raw array over the reliable bulk path
    rep.degraded = True
    rep.delivered_ok = True
    rep.bytes_on_wire += float(data.nbytes)
    rep.transfer_s += link.transfer_time(data.nbytes)
    return data.copy(), rep


def send_resilient_chunked(
    data: np.ndarray,
    link: Link,
    rel: float = 1e-3,
    policy: str = "group",
    max_retries: int = 8,
    seed: int = 0,
    device: DeviceSpec = A100_40GB,
    mode: str = "outlier",
    group_blocks: int = _stream.DEFAULT_GROUP_BLOCKS,
    chunk_bytes: int = 32 << 20,
    chunk_elems: Optional[int] = None,
    pool=None,
) -> Tuple[np.ndarray, ResilientReport]:
    """Integrity-checked transfer of a large field as group-aligned chunks.

    The sender runs the chunked streaming engine
    (:func:`repro.serve.compress_chunked`, optionally fanning chunks out
    over a :class:`~repro.serve.WorkerPool`); each chunk's self-contained
    v2 stream is then delivered over the link with the same
    verify-and-retransmit protocol as :func:`send_resilient`, so damage in
    one chunk never causes another chunk's bytes to be resent.  A chunk
    that exhausts ``max_retries`` degrades to a raw transfer of *that
    chunk only*.  Returns the reassembled field and one aggregate
    :class:`ResilientReport`.

    Simulated codec time assumes chunks compress/decompress concurrently
    across the pool's workers (sum of per-chunk times divided by the
    worker count); the wire is serial, as in :func:`send_resilient`.
    """
    if policy not in ("group", "full"):
        raise ValueError(f"policy must be 'group' or 'full', got {policy!r}")
    rng = np.random.default_rng(seed)
    rep = ResilientReport(policy=policy)

    if data.size == 0:
        rep.attempts = 1
        rep.delivered_ok = True
        rep.transfer_s = link.transfer_time(0)
        return data.copy(), rep

    from .serve import compress_chunked

    chunked = compress_chunked(
        data,
        rel=rel,
        mode=mode,
        group_blocks=group_blocks,
        chunk_bytes=chunk_bytes,
        chunk_elems=chunk_elems,
        pool=pool,
    )
    nworkers = getattr(pool, "nworkers", 1) if pool is not None else 1
    flat = data.reshape(-1)
    m = chunked.manifest

    parts: List[np.ndarray] = []
    compress_total = 0.0
    pos = 0
    for entry, stream in zip(m.entries, chunked.chunks):
        if m.axis == "flat":
            raw = flat[pos : pos + entry.nelems]
        else:
            raw = data[pos : pos + entry.nelems]
        pos += entry.nelems
        c, dtime = _codec_times(np.ascontiguousarray(raw), stream, device)
        compress_total += c
        part, rep = _deliver_stream(
            stream, raw, link, policy, max_retries, rng, rep, dtime / nworkers
        )
        parts.append(part)
    rep.compress_s = compress_total / nworkers
    rep.delivered_ok = True

    if m.axis == "flat":
        out = np.concatenate([p.reshape(-1) for p in parts])
    else:
        out = np.concatenate(parts, axis=0)
    return out.reshape(m.shape), rep
