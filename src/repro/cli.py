"""Command-line interface mirroring the paper's artifact-evaluation flow.

The AE appendix drives everything through two binaries (``gsz_p`` /
``gsz_o``) plus wrap-up Python scripts; this CLI reproduces that surface:

* ``repro compress file.f32 1e-3 --mode outlier`` -- compress a raw
  SDRBench field, verify the bound, and print the gsz-style report
  (ratio + simulated A100 end-to-end speeds, ``Pass error check!``).
* ``repro decompress file.csz2 -o out.f32`` -- reconstruct a field.
* ``repro evaluate CESM-ATM --rel 1e-3`` -- the per-dataset sweep the
  ``1-execution.py`` script prints (P and O modes, min/max/avg ratios,
  simulated throughput).
* ``repro experiment fig14`` -- regenerate any paper table/figure.
* ``repro datasets`` -- list the Table II/IV registry.

Run as ``python -m repro.cli ...`` (or the ``repro`` console script).
"""

from __future__ import annotations

import argparse
import signal
import sys
import time
from pathlib import Path

import numpy as np


def _load_raw(path: str, dims=None) -> np.ndarray:
    from .datasets.io import read_field

    return read_field(path, dims=tuple(dims) if dims else None)


def _parse_dims(text):
    if not text:
        return None
    return [int(x) for x in text.replace("x", ",").split(",") if x]


#: Kept as a literal (not imported from repro.core.backends) so ``--help``
#: works without importing numpy; tests pin it against the live registry.
KERNEL_BACKENDS = ["auto", "numpy", "numba", "fused-python"]

#: Compressor plugins (repro.codecs registry) plus the per-field
#: auto-tuner.  Same literal-not-imported deal as KERNEL_BACKENDS; a test
#: pins this list against the live registry.
CODECS = ["auto", "cuszp2", "cuszp", "fzgpu", "cuzfp", "cusz", "cuszx", "mgard"]


def _parse_codec_opts(items) -> dict:
    """``--codec-opt k=v`` pairs to a dict (values stay strings; the
    plugin's option schema coerces and validates them)."""
    opts = {}
    for item in items or []:
        key, sep, value = item.partition("=")
        if not sep or not key:
            raise SystemExit(f"--codec-opt expects name=value, got {item!r}")
        opts[key.strip()] = value.strip()
    return opts


def _add_kernel_backend_arg(parser) -> None:
    parser.add_argument(
        "--kernel-backend", default="auto", choices=KERNEL_BACKENDS,
        help="codec kernel implementation: the NumPy reference, the fused "
        "numba JIT kernels, or their pure-Python twin; 'auto' honors "
        "$REPRO_KERNEL_BACKEND then falls back to numpy (default auto). "
        "Distinct from --backend, which picks the worker-pool flavor.",
    )


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------

def cmd_compress(args) -> int:
    from . import compress, compression_ratio
    from .core import decompress
    from .gpusim import A100_40GB, Artifacts, get_device
    from .gpusim import pipelines as P
    from .metrics import check_error_bound

    data = _load_raw(args.input, _parse_dims(args.dims))
    if args.codec != "cuszp2":
        return _compress_codec_cli(args, data)
    mode = {"p": "plain", "o": "outlier"}.get(args.mode, args.mode)

    chunk_bytes = int(args.chunk_mb * (1 << 20))
    if args.workers > 1 or data.nbytes > chunk_bytes:
        return _compress_chunked_cli(args, data, mode, chunk_bytes)

    t0 = time.perf_counter()
    if args.absolute:
        stream = compress(data, abs=args.error_bound, mode=mode,
                          kernel_backend=args.kernel_backend)
        eb_abs = args.error_bound
    else:
        stream = compress(data, rel=args.error_bound, mode=mode,
                          kernel_backend=args.kernel_backend)
        rng = float(data.max() - data.min())
        eb_abs = args.error_bound * (rng if rng else max(abs(float(data.max())), 1.0))
    wall = time.perf_counter() - t0

    out_path = Path(args.output or (args.input + ".csz2"))
    stream.tofile(out_path)

    device = get_device(args.device) if args.device else A100_40GB
    art = Artifacts.from_cuszp2_stream(data, stream)
    comp = P.cuszp2_compression(art, device).end_to_end_throughput(device, art.input_bytes)
    dec = P.cuszp2_decompression(art, device).end_to_end_throughput(device, art.input_bytes)

    print("GSZ finished!")
    print(f"GSZ compression end-to-end speed: {comp:.6f} GB/s (simulated {device.name})")
    print(f"GSZ decompression end-to-end speed: {dec:.6f} GB/s (simulated {device.name})")
    print(f"GSZ compression ratio: {compression_ratio(data, stream):.6f}")
    print(f"(functional codec wall time: {wall:.3f} s for {data.nbytes / 1e6:.1f} MB)")
    print(f"compressed stream written to {out_path}")
    print()
    recon = decompress(stream, kernel_backend=args.kernel_backend)
    if check_error_bound(data.reshape(-1), recon.reshape(-1), eb_abs):
        print("Pass error check!")
        return 0
    print("ERROR CHECK FAILED")
    return 1


def _compress_codec_cli(args, data) -> int:
    """``repro compress --codec <name|auto>``: compress through a
    registered plugin (or the per-field auto-tuner) instead of the golden
    cuSZp2 path."""
    from . import codecs
    from .metrics import check_error_bound

    bound_key = "abs" if args.absolute else "rel"
    opts = _parse_codec_opts(args.codec_opt)
    t0 = time.perf_counter()
    if args.codec == "auto":
        if opts:
            raise SystemExit("--codec auto picks its own options; drop --codec-opt")
        stream, rec = codecs.autotune_compress(data, **{bound_key: args.error_bound})
        name, bounded, eb_abs = rec.codec, True, rec.eb_abs
        print(rec.describe())
    else:
        plugin = codecs.resolve(args.codec)
        name, bounded = plugin.name, plugin.bounded
        if bounded:
            opts[bound_key] = args.error_bound
        stream = codecs.encode(data, name, **opts)
        if args.absolute:
            eb_abs = args.error_bound
        else:
            rng = float(data.max() - data.min())
            eb_abs = args.error_bound * (rng if rng else max(abs(float(data.max())), 1.0))
    wall = time.perf_counter() - t0

    out_path = Path(args.output or (args.input + f".{name}"))
    stream.tofile(out_path)
    print(f"codec: {name} (repro.codecs plugin)")
    print(f"compression ratio: {data.nbytes / stream.size:.6f}")
    print(f"(functional codec wall time: {wall:.3f} s for {data.nbytes / 1e6:.1f} MB)")
    print(f"compressed stream written to {out_path}")
    print()
    recon = codecs.decode(stream)
    if not bounded:
        print(f"(fixed-rate codec {name}: no error bound to check)")
        return 0
    if check_error_bound(data.reshape(-1), recon.reshape(-1), eb_abs):
        print("Pass error check!")
        return 0
    print("ERROR CHECK FAILED")
    return 1


def _compress_chunked_cli(args, data, mode: str, chunk_bytes: int) -> int:
    """Bounded-memory (and optionally parallel) compression of big inputs."""
    from .metrics import check_error_bound
    from .serve import WorkerPool, compress_chunked, decompress_chunked

    bound = {"abs" if args.absolute else "rel": args.error_bound}
    pool = None
    t0 = time.perf_counter()
    try:
        if args.workers > 1:
            pool = WorkerPool(nworkers=args.workers, backend=args.backend)
            pool.wait_ready()
        chunked = compress_chunked(
            data, mode=mode, chunk_bytes=chunk_bytes, pool=pool,
            kernel_backend=args.kernel_backend, **bound
        )
        buf = chunked.to_bytes()
        wall = time.perf_counter() - t0

        out_path = Path(args.output or (args.input + ".csz2"))
        buf.tofile(out_path)

        print("GSZ finished!")
        print(
            f"chunked into {chunked.nchunks} group-aligned chunk(s) of "
            f"<= {chunk_bytes / (1 << 20):g} MiB input "
            f"({args.workers} worker(s), {args.backend} backend)"
        )
        print(f"GSZ compression ratio: {data.nbytes / buf.size:.6f}")
        print(f"(functional codec wall time: {wall:.3f} s for {data.nbytes / 1e6:.1f} MB)")
        print(f"compressed stream written to {out_path}")
        print()
        recon = decompress_chunked(
            chunked, pool=pool, kernel_backend=args.kernel_backend
        )
    finally:
        if pool is not None:
            pool.shutdown()
    eb_abs = chunked.manifest.eb_abs
    if check_error_bound(data.reshape(-1), recon.reshape(-1), eb_abs):
        print("Pass error check!")
        return 0
    print("ERROR CHECK FAILED")
    return 1


def cmd_decompress(args) -> int:
    from .core import IntegrityError, decompress
    from .core.errors import StreamFormatError
    from .core.stream import StreamHeader
    from .serve import decompress_chunked, is_chunked

    stream = np.fromfile(args.input, dtype=np.uint8)
    try:
        from .serve.chunked import is_raw, raw_from_bytes

        if is_raw(stream):
            # raw passthrough emitted by the serving degradation chain:
            # stored uncompressed, guarded by its own payload CRC32
            print("raw passthrough container (CSZ2RAW1, uncompressed, CRC32)")
            recon = raw_from_bytes(stream)
        elif is_chunked(stream):
            from .serve.chunked import ChunkedStream

            chunked = ChunkedStream.from_bytes(stream)
            print(
                f"chunked container: {chunked.nchunks} chunk(s), "
                f"format v2 streams (header+group checksums)"
            )
            bad = chunked.verify()
            if bad:
                print(f"integrity check FAILED: chunk(s) {bad} fail their manifest CRC32")
                print("hint: retransmit the damaged chunks (each chunk is independent)")
                return 1
            recon = decompress_chunked(chunked, kernel_backend=args.kernel_backend)
        else:
            from . import codecs as _codecs

            name = args.codec or _codecs.sniff(stream)
            if name is not None and name != "cuszp2":
                print(f"{name} stream (repro.codecs plugin)")
                recon = _codecs.decode(stream, codec=args.codec)
            else:
                header = StreamHeader.unpack(stream)
                checks = "header+group checksums" if header.version >= 2 else "no checksums"
                print(f"stream format v{header.version} ({checks})")
                recon = decompress(
                    stream,
                    on_corruption=args.on_corruption,
                    kernel_backend=args.kernel_backend,
                )
    except IntegrityError as e:
        print(f"integrity check FAILED: {e}")
        print("hint: retry with --on-corruption recover to salvage intact block groups")
        return 1
    except StreamFormatError as e:
        print(f"not a stream of any registered codec: {e}")
        return 1
    out_path = Path(args.output or (str(args.input).removesuffix(".csz2") + ".out"))
    suffix = ".f64" if recon.dtype == np.float64 else ".f32"
    if out_path.suffix not in (".f32", ".f64"):
        out_path = out_path.with_suffix(suffix)
    recon.tofile(out_path)
    print(f"decompressed {recon.size} x {recon.dtype} -> {out_path}")
    return 0


def cmd_serve_bench(args) -> int:
    from .serve.bench import BenchConfig, dump_report, format_report, run_serve_bench

    cfg = BenchConfig(
        size_mb=args.size_mb,
        workers=args.workers,
        backend=args.backend,
        transport=args.transport,
        requests=args.requests,
        clients=args.clients,
        rel=args.rel,
        mode=args.mode,
        chunk_mb=args.chunk_mb,
        distinct=args.distinct,
        seed=args.seed,
        dataset=args.dataset,
        field=args.field,
        kernel_backend=args.kernel_backend,
    )
    report = run_serve_bench(cfg)
    print(format_report(report))
    if args.json:
        dump_report(report, args.json)
        print(f"\n(report written to {args.json})")
    return 1 if report["errors"] else 0


def cmd_serve(args) -> int:
    """Serve compress/decompress over HTTP until interrupted."""
    from .serve.http import HttpConfig, HttpFrontend, parse_hostport
    from .serve.service import CompressionService, ServiceConfig

    host, port = parse_hostport(args.http)
    svc = CompressionService(
        ServiceConfig(
            workers=args.workers,
            backend=args.backend,
            kernel_backend=args.kernel_backend,
            transport=args.transport,
            deadline_s=args.deadline_s,
            autoscale=args.autoscale,
            autoscale_max_workers=args.max_workers,
        )
    )
    frontend = HttpFrontend(
        svc,
        HttpConfig(
            host=host,
            port=port,
            max_inflight=args.max_inflight,
            tenant_rate=args.tenant_rate,
            tenant_burst=args.tenant_burst,
        ),
    )
    print(
        f"serving on http://{host}:{port}  "
        f"(workers={args.workers} backend={args.backend} "
        f"transport={args.transport}"
        f"{' autoscale' if args.autoscale else ''})"
    )
    print("endpoints: POST /v1/compress  POST /v1/decompress  "
          "GET /v1/stats  GET /healthz")
    # SIGTERM must tear down like Ctrl-C does, or the shm arena's named
    # segments outlive the process in /dev/shm
    signal.signal(signal.SIGTERM, lambda *_: sys.exit(0))
    try:
        frontend.run()
    finally:
        svc.close()
    return 0


def cmd_trace(args) -> int:
    """Trace one compress + decompress round trip through the service and
    print the per-stage breakdown (paper Fig. 12's kernel-cost split,
    measured on the functional codec)."""
    from .metrics import check_error_bound
    from .obs import Tracer, activate, deactivate, folded, spans_to_json, summarize
    from .obs.export import prometheus_text
    from .serve.service import CompressionService

    if args.input:
        data = _load_raw(args.input, _parse_dims(args.dims))
    else:
        rng = np.random.default_rng(args.seed)
        n = max(int(args.size_mb * (1 << 20)) // 4, 1)
        data = np.cumsum(rng.standard_normal(n)).astype(np.float32)

    mode = {"p": "plain", "o": "outlier"}.get(args.mode, args.mode)
    bound = {"abs" if args.absolute else "rel": args.error_bound}
    tracer = Tracer()
    activate(tracer)  # capture caller-thread spans (cache) too
    try:
        with CompressionService(
            workers=args.workers,
            backend=args.backend,
            kernel_backend=args.kernel_backend,
            mode=mode,
            chunk_bytes=int(args.chunk_mb * (1 << 20)),
            tracer=tracer,
        ) as svc:
            svc.pool.wait_ready()
            t0 = time.perf_counter()
            stream = svc.compress(data, **bound).result()
            recon = svc.decompress(stream).result()
            wall = time.perf_counter() - t0
    finally:
        deactivate()

    roots = tracer.roots()
    table, cov = summarize(roots, wall)
    print(
        f"traced compress+decompress of {data.nbytes / 1e6:.1f} MB "
        f"({args.workers} worker(s), {args.backend} backend), "
        f"wall {wall * 1e3:.1f} ms"
    )
    print()
    print(table)
    print()
    print(f"trace coverage: {cov * 100:.1f}% of wall time inside spans")
    print(f"compression ratio: {data.nbytes / stream.size:.3f}")

    if args.json:
        Path(args.json).write_text(spans_to_json(roots))
        print(f"(span trees written to {args.json})")
    if args.folded:
        Path(args.folded).write_text(folded(roots))
        print(f"(folded stacks written to {args.folded}; feed to flamegraph.pl)")
    if args.metrics:
        Path(args.metrics).write_text(prometheus_text(svc.stats))
        print(f"(metrics exposition written to {args.metrics})")

    eb_abs = (
        args.error_bound
        if args.absolute
        else args.error_bound * float(np.ptp(data) or max(abs(float(data.max())), 1.0))
    )
    if check_error_bound(data.reshape(-1), recon.reshape(-1), eb_abs):
        print("Pass error check!")
        return 0
    print("ERROR CHECK FAILED")
    return 1


def cmd_fuzz(args) -> int:
    """Property-based differential fuzzing across every codec path."""
    from .qa import FuzzConfig, replay, run_fuzz
    from .qa.corpus import corpus_entries

    if args.replay:
        failures = 0
        for target in args.replay:
            target_path = Path(target)
            entries = [target_path] if target_path.is_file() else corpus_entries(target_path)
            if not entries:
                print(f"{target}: no corpus entries")
                continue
            for entry in entries:
                failure = replay(entry)
                if failure is None:
                    print(f"PASS {entry}")
                else:
                    failures += 1
                    print(f"FAIL {entry}\n     {failure}")
        print(f"replay: {failures} failing entr{'y' if failures == 1 else 'ies'}")
        return 1 if failures else 0

    cfg = FuzzConfig(
        seed=args.seed,
        iters=args.iters,
        paths=tuple(args.paths) if args.paths else FuzzConfig().paths,
        time_budget=args.time_budget,
        corpus_dir=args.corpus_dir,
        shrink=not args.no_shrink,
        max_failures=args.max_failures,
        workers=args.workers,
    )
    report = run_fuzz(cfg)
    print(report.summary())
    if not report.ok and cfg.corpus_dir:
        print(f"(shrunk counterexamples saved under {cfg.corpus_dir})")
    return 0 if report.ok else 1


def cmd_store_bench(args) -> int:
    """Working-set sweep of the compressed-array tier (repro.store)."""
    import json

    from .store.bench import check_regression, run_sweep

    multipliers = tuple(args.multiplier) if args.multiplier else None
    report = run_sweep(quick=args.quick, seed=args.seed, multipliers=multipliers)
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")
    h = report["headline"]
    print(
        f"headline: {h['multiplier']}x working set, {h['spills']} spills / "
        f"{h['faults']} faults, workload {h['workload_MiBps']:.1f} MiB/s"
    )
    if args.check:
        reference = json.loads(Path(args.check).read_text())
        ok, msg = check_regression(report, reference)
        print(msg)
        return 0 if ok else 1
    return 0


def cmd_faultcheck(args) -> int:
    from .faults import run_faultcheck

    result = run_faultcheck(
        trials=args.trials,
        seed=args.seed,
        quick=args.quick,
        injectors=args.injector or None,
    )
    print(result.summary())
    return 0 if result.ok else 1


def cmd_chaoscheck(args) -> int:
    from .faults import ChaosCheckConfig, run_chaoscheck

    cfg = ChaosCheckConfig(
        seed=args.seed,
        requests=args.requests,
        deadline_s=args.deadline_s,
        workers=args.workers,
        backend=args.backend,
        transport=args.transport,
        hang_rate=args.hang_rate,
        crash_rate=args.crash_rate,
        slow_rate=args.slow_rate,
        corrupt_rate=args.corrupt_rate,
        stall_rate=args.stall_rate,
        time_budget_s=args.time_budget,
    )
    result = run_chaoscheck(cfg)
    print(result.summary())
    if args.events:
        out = Path(args.events)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(result.to_json())
        print(f"(event log written to {args.events})")
    return 0 if result.ok else 1


def cmd_evaluate(args) -> int:
    from .datasets import get_dataset
    from .gpusim import A100_40GB
    from .harness import dataset_runs, simulate

    ds = get_dataset(args.dataset)
    rel = args.rel
    print(f"=====")
    print(f"Done with Execution GSZ-P and GSZ-O on {ds.name.lower()} under {rel:g}")
    for comp, label in (("cuszp2-p", "GSZ-P"), ("cuszp2-o", "GSZ-O")):
        runs = dataset_runs(ds.name, comp, rel)
        comp_t = np.mean([simulate(r, A100_40GB, "compress") for r in runs.values()])
        dec_t = np.mean([simulate(r, A100_40GB, "decompress") for r in runs.values()])
        ratios = [r.ratio for r in runs.values()]
        print(f"{label}\tcompression throughput: {comp_t} GB/s (simulated A100)")
        print(f"{label}\tdecompression throughput: {dec_t} GB/s (simulated A100)")
        print(f"{label}\tmax compression ratio: {max(ratios):.6f}")
        print(f"{label}\tmin compression ratio: {min(ratios):.6f}")
        print(f"{label}\tavg compression ratio: {np.mean(ratios)}")
        print()
    print("=====")
    return 0


EXPERIMENTS = {
    "table1": "table1_features",
    "fig02": "fig02_hybrid_gap",
    "fig09": "fig09_memory_motivation",
    "fig10": "fig10_vectorization",
    "fig14": "fig14_throughput",
    "fig15": "fig15_hacc_fields",
    "fig16": "fig16_memory_bandwidth",
    "fig17": "fig17_lookback",
    "fig18": "fig18_isosurface_quality",
    "table3": "table3_compression_ratio",
    "fig19": "fig19_double_precision",
    "table5": "table5_double_cr",
    "fig20": "fig20_random_access",
    "fig21": "fig21_other_gpus",
    "table6": "table6_dimensionality",
    "ablation": "ablation_breakdown",
    "block-size": "ablation_block_size",
}


def cmd_experiment(args) -> int:
    from .harness import experiments as E

    if args.name not in EXPERIMENTS:
        print(f"unknown experiment {args.name!r}; choose from: {', '.join(sorted(EXPERIMENTS))}")
        return 2
    result = getattr(E, EXPERIMENTS[args.name])()
    print(result.text)
    if args.output:
        Path(args.output).write_text(result.text + "\n")
        print(f"\n(written to {args.output})")
    return 0


def cmd_datasets(args) -> int:
    from .datasets import ALL_DATASETS

    print(f"{'dataset':<10} {'suite':<12} {'paper dims':<16} {'fields':>6} {'size':>9}  dtype")
    for ds in ALL_DATASETS:
        print(
            f"{ds.name:<10} {ds.suite:<12} {ds.paper_dims:<16} "
            f"{ds.paper_fields:>6} {ds.paper_size_gb:>7.2f}GB  {ds.dtype}"
        )
    return 0


def cmd_pack(args) -> int:
    from .core.archive import pack_dataset

    if args.codec != "cuszp2":
        return _pack_codec_cli(args)
    buf = pack_dataset(args.dataset, args.rel, mode=args.mode)
    out = Path(args.output or f"{args.dataset}.csz2arch")
    buf.tofile(out)
    print(f"packed {args.dataset} at REL {args.rel:g} -> {out} ({buf.size:,} bytes)")
    return 0


def _pack_codec_cli(args) -> int:
    """``repro pack --codec <name|auto>``: archive a dataset through a
    registered plugin, or let the auto-tuner pick per field."""
    from . import codecs
    from .core.archive import pack_streams
    from .datasets import get_dataset

    fields = get_dataset(args.dataset).generate_all()
    if args.codec == "auto":
        buf, records = codecs.autotune_pack(fields, rel=args.rel)
        for name, rec in records.items():
            label = rec.opts and " " + ",".join(f"{k}={v}" for k, v in rec.opts.items()) or ""
            print(f"  {name}: {rec.codec}{label} (sample ratio {rec.sample_ratio:.2f})")
    else:
        plugin = codecs.resolve(args.codec)
        bound = {"rel": args.rel} if plugin.bounded else {}
        buf = pack_streams(
            {name: codecs.encode(data, plugin.name, **bound) for name, data in fields.items()}
        )
    out = Path(args.output or f"{args.dataset}.csz2arch")
    buf.tofile(out)
    print(
        f"packed {args.dataset} (codec {args.codec}) at REL {args.rel:g} "
        f"-> {out} ({buf.size:,} bytes)"
    )
    return 0


def cmd_codecs(args) -> int:
    """List the compressor-plugin registry with each plugin's options."""
    from . import codecs

    for plugin in codecs.list_plugins().values():
        kind = "error-bounded" if plugin.bounded else "fixed-rate"
        if plugin.heavy:
            kind += ", CPU-GPU hybrid"
        default = " (default)" if plugin.name == codecs.DEFAULT_CODEC else ""
        print(f"{plugin.name}{default}: {plugin.description}")
        print(f"    [{kind}; stream magic {plugin.magic!r}; max ndim {plugin.max_ndim}]")
        for opt in plugin.options.values():
            bits = [f"{opt.type.__name__}"]
            if opt.default is not None:
                bits.append(f"default {opt.default}")
            if opt.choices is not None:
                bits.append("one of " + "/".join(str(c) for c in opt.choices))
            if opt.minimum is not None:
                bits.append(f">= {opt.minimum:g}")
            print(f"    {opt.name} ({', '.join(bits)}): {opt.doc}")
        print()
    print("compress with:  repro compress FILE BOUND --codec NAME [--codec-opt k=v]")
    print("auto-tune with: repro compress FILE BOUND --codec auto")
    return 0


def cmd_extract(args) -> int:
    from .core.archive import DatasetArchive
    from .datasets import write_field

    archive = DatasetArchive(np.fromfile(args.archive, dtype=np.uint8))
    if args.field is None:
        print("fields:", ", ".join(archive.names))
        return 0
    data = archive.extract(args.field)
    suffix = ".f64" if data.dtype == np.float64 else ".f32"
    out = Path(args.output or f"{args.field}{suffix}")
    write_field(out, data)
    print(f"extracted {args.field}: shape {data.shape} -> {out}")
    return 0


def cmd_generate(args) -> int:
    from .datasets import get_dataset, write_field

    ds = get_dataset(args.dataset)
    spec = ds.field(args.field)
    data = spec.generate(ds.dtype, scale=args.scale)
    suffix = ".f64" if ds.dtype == np.float64 else ".f32"
    out = Path(args.output or f"{ds.name}_{spec.name}{suffix}".replace("/", "_"))
    write_field(out, data)
    print(f"generated {ds.name}/{spec.name}: shape {data.shape}, {data.nbytes / 1e6:.1f} MB -> {out}")
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="cuSZp2 (SC 2024) reproduction: compression CLI + experiment runner",
    )
    sub = p.add_subparsers(dest="command", required=True)

    c = sub.add_parser("compress", help="compress a raw .f32/.f64 field")
    c.add_argument("input", help="raw field file (.f32 or .f64, SDRBench layout)")
    c.add_argument("error_bound", type=float, help="REL bound, e.g. 1e-3 (or ABS with --absolute)")
    c.add_argument("--mode", default="outlier", choices=["plain", "outlier", "p", "o"])
    c.add_argument("--absolute", action="store_true", help="treat the bound as absolute")
    c.add_argument("--dims", help="logical dims, e.g. 512x512x512 (optional)")
    c.add_argument("--device", help="device for simulated throughput (default A100-40GB)")
    c.add_argument("-o", "--output", help="output stream path (default <input>.csz2)")
    c.add_argument(
        "--workers", type=int, default=1,
        help="compress group-aligned chunks in parallel over N workers (default 1)",
    )
    c.add_argument(
        "--chunk-mb", type=float, default=32.0,
        help="inputs above this threshold stream through the chunked engine "
        "in bounded memory (default 32 MiB; also the chunk size)",
    )
    c.add_argument(
        "--backend", default="process", choices=["thread", "process"],
        help="worker-pool backend for --workers > 1 (default process); "
        "unrelated to --kernel-backend, which picks the codec kernels",
    )
    _add_kernel_backend_arg(c)
    c.add_argument(
        "--codec", default="cuszp2", choices=CODECS,
        help="compressor plugin from the repro.codecs registry, or 'auto' "
        "to let the per-field tuner pick (default cuszp2; see `repro codecs`)",
    )
    c.add_argument(
        "--codec-opt", action="append", metavar="NAME=VALUE",
        help="plugin option for --codec (repeatable; e.g. rate=16 for cuzfp); "
        "validated against the plugin's option schema",
    )
    c.set_defaults(fn=cmd_compress)

    d = sub.add_parser("decompress", help="decompress a .csz2 stream")
    d.add_argument("input")
    d.add_argument("-o", "--output")
    d.add_argument(
        "--on-corruption",
        default="raise",
        choices=["raise", "recover"],
        help="corrupt v2 stream: fail (default) or decode intact groups + NaN-fill",
    )
    _add_kernel_backend_arg(d)
    d.add_argument(
        "--codec", default=None, choices=[c for c in CODECS if c != "auto"],
        help="force a specific plugin instead of sniffing the stream magic",
    )
    d.set_defaults(fn=cmd_decompress)

    sb = sub.add_parser(
        "serve-bench",
        help="closed-loop load generator for the compression service",
    )
    sb.add_argument("--size-mb", type=float, default=8.0, help="field size (default 8 MB)")
    sb.add_argument("--workers", type=int, default=2)
    sb.add_argument(
        "--backend", default="thread", choices=["thread", "process"],
        help="worker-pool backend (distinct from --kernel-backend)",
    )
    sb.add_argument(
        "--transport", default="pickle", choices=["pickle", "shm"],
        help="worker transport: pickled queues or zero-copy shared memory",
    )
    _add_kernel_backend_arg(sb)
    sb.add_argument("--requests", type=int, default=8, help="total compress+decompress iterations")
    sb.add_argument("--clients", type=int, default=2, help="concurrent closed-loop clients")
    sb.add_argument("--rel", type=float, default=1e-3)
    sb.add_argument("--mode", default="outlier", choices=["plain", "outlier"])
    sb.add_argument("--chunk-mb", type=float, default=4.0)
    sb.add_argument("--distinct", type=int, default=2, help="distinct fields cycled per client")
    sb.add_argument("--seed", type=int, default=0)
    sb.add_argument("--dataset", help="use a registry dataset field instead of a random walk")
    sb.add_argument("--field", help="field name within --dataset (default: first)")
    sb.add_argument("--json", help="also dump the full JSON report to this path")
    sb.set_defaults(fn=cmd_serve_bench)

    sv = sub.add_parser(
        "serve",
        help="HTTP compression service (asyncio front end over the pool)",
    )
    sv.add_argument(
        "--http", default=":8080", metavar="HOST:PORT",
        help="bind address; ':8080' binds 127.0.0.1:8080 (default)",
    )
    sv.add_argument("--workers", type=int, default=2)
    sv.add_argument(
        "--backend", default="process", choices=["thread", "process"],
        help="worker-pool backend (default process for real parallelism)",
    )
    sv.add_argument(
        "--transport", default="shm", choices=["pickle", "shm"],
        help="worker transport (default shm: zero-copy shared memory)",
    )
    _add_kernel_backend_arg(sv)
    sv.add_argument("--deadline-s", type=float, default=None,
                    help="default per-request budget (None = unbounded)")
    sv.add_argument("--max-inflight", type=int, default=64,
                    help="admission-control cap on concurrent requests")
    sv.add_argument("--tenant-rate", type=float, default=50.0,
                    help="per-tenant token-bucket refill (requests/s)")
    sv.add_argument("--tenant-burst", type=float, default=20.0,
                    help="per-tenant token-bucket capacity")
    sv.add_argument("--autoscale", action="store_true",
                    help="grow/shrink the pool from queue depth")
    sv.add_argument("--max-workers", type=int, default=None,
                    help="autoscaler ceiling (default 4 x --workers)")
    sv.set_defaults(fn=cmd_serve)

    tr = sub.add_parser(
        "trace",
        help="trace a compress+decompress round trip; print the stage breakdown",
    )
    tr.add_argument(
        "input", nargs="?",
        help="raw field file (.f32/.f64); omit for a synthetic random walk",
    )
    tr.add_argument("--size-mb", type=float, default=4.0,
                    help="synthetic field size when no input file (default 4 MB)")
    tr.add_argument("--seed", type=int, default=0)
    tr.add_argument("--dims", help="logical dims for a raw input file")
    tr.add_argument("--error-bound", type=float, default=1e-3,
                    help="REL bound (ABS with --absolute), default 1e-3")
    tr.add_argument("--absolute", action="store_true")
    tr.add_argument("--mode", default="outlier", choices=["plain", "outlier", "p", "o"])
    tr.add_argument("--workers", type=int, default=2)
    tr.add_argument(
        "--backend", default="thread", choices=["thread", "process"],
        help="worker-pool backend (distinct from --kernel-backend)",
    )
    _add_kernel_backend_arg(tr)
    tr.add_argument("--chunk-mb", type=float, default=4.0)
    tr.add_argument("--json", help="write the span trees as JSON to this path")
    tr.add_argument("--folded", help="write flamegraph folded stacks to this path")
    tr.add_argument("--metrics", help="write Prometheus-style metrics text to this path")
    tr.set_defaults(fn=cmd_trace)

    fz = sub.add_parser(
        "fuzz",
        help="property-based differential fuzzing: all codec paths must agree",
    )
    fz.add_argument("--seed", type=int, default=0, help="campaign seed (default 0)")
    fz.add_argument("--iters", type=int, default=200, help="generated cases (default 200)")
    fz.add_argument(
        "--paths",
        action="append",
        choices=["roundtrip", "chunked", "random_access", "corruption", "store",
                 "backends", "serve_shm", "codecs"],
        help="restrict to one oracle path (repeatable; default all)",
    )
    fz.add_argument(
        "--time-budget", type=float, default=None,
        help="stop after this many seconds (default unbounded)",
    )
    fz.add_argument(
        "--corpus-dir", default="qa_corpus",
        help="where shrunk counterexamples are written (default ./qa_corpus; "
        "created only on failure)",
    )
    fz.add_argument("--no-shrink", action="store_true", help="skip counterexample minimization")
    fz.add_argument("--max-failures", type=int, default=5, help="stop after N failures")
    fz.add_argument(
        "--workers", type=int, default=0,
        help="also differential-check the worker-pool chunked path with N thread workers",
    )
    fz.add_argument(
        "--replay", action="append", metavar="FILE_OR_DIR",
        help="replay saved corpus entries instead of fuzzing (repeatable)",
    )
    fz.set_defaults(fn=cmd_fuzz)

    sb2 = sub.add_parser(
        "store-bench",
        help="compressed-array tier working-set sweep (spill/fault-in throughput)",
    )
    sb2.add_argument("--quick", action="store_true", help="small CI smoke sweep")
    sb2.add_argument("--seed", type=int, default=0)
    sb2.add_argument(
        "--multiplier", action="append", type=int, metavar="N",
        help="working-set multiple of the budget (repeatable; default sweep)",
    )
    sb2.add_argument(
        "--out", default="benchmarks/results/BENCH_store.json",
        help="report path (default benchmarks/results/BENCH_store.json)",
    )
    sb2.add_argument(
        "--check", metavar="REFERENCE_JSON",
        help="exit non-zero if workload throughput regresses >30%% vs this file",
    )
    sb2.set_defaults(fn=cmd_store_bench)

    fc = sub.add_parser("faultcheck", help="fault-injection campaign: every fault detected?")
    fc.add_argument("--trials", type=int, default=25, help="trials per injector x workload")
    fc.add_argument("--seed", type=int, default=0)
    fc.add_argument("--quick", action="store_true", help="small CI smoke campaign")
    fc.add_argument(
        "--injector",
        action="append",
        choices=["bitflip", "truncate", "burst", "header"],
        help="restrict to one injector (repeatable; default all)",
    )
    fc.set_defaults(fn=cmd_faultcheck)

    cc = sub.add_parser(
        "chaoscheck",
        help="behavioral chaos campaign: hangs/crashes/corruption vs the resilient service",
    )
    cc.add_argument("--seed", type=int, default=0)
    cc.add_argument("--requests", type=int, default=500)
    cc.add_argument("--deadline-s", type=float, default=0.5, help="per-request budget")
    cc.add_argument("--workers", type=int, default=2)
    cc.add_argument("--backend", choices=["thread", "process"], default="thread")
    cc.add_argument(
        "--transport", default="pickle", choices=["pickle", "shm"],
        help="worker transport: pickled queues or zero-copy shared memory",
    )
    cc.add_argument("--hang-rate", type=float, default=0.02)
    cc.add_argument("--crash-rate", type=float, default=0.05)
    cc.add_argument("--slow-rate", type=float, default=0.10)
    cc.add_argument("--corrupt-rate", type=float, default=0.05)
    cc.add_argument("--stall-rate", type=float, default=0.05)
    cc.add_argument("--time-budget", type=float, default=None,
                    help="stop submitting after SECONDS (requests already sent still settle)")
    cc.add_argument("--events", default=None, metavar="PATH",
                    help="write the JSON event log (outcome per request) to PATH")
    cc.set_defaults(fn=cmd_chaoscheck)

    e = sub.add_parser("evaluate", help="sweep one registry dataset (AE 1-execution.py style)")
    e.add_argument("dataset")
    e.add_argument("--rel", type=float, default=1e-3)
    e.set_defaults(fn=cmd_evaluate)

    x = sub.add_parser("experiment", help="regenerate a paper table/figure")
    x.add_argument("name", help=f"one of: {', '.join(sorted(EXPERIMENTS))}")
    x.add_argument("-o", "--output", help="also write the rendering to a file")
    x.set_defaults(fn=cmd_experiment)

    ls = sub.add_parser("datasets", help="list the Table II/IV dataset registry")
    ls.set_defaults(fn=cmd_datasets)

    pk = sub.add_parser("pack", help="compress a registry dataset into one archive")
    pk.add_argument("dataset")
    pk.add_argument("--rel", type=float, default=1e-3)
    pk.add_argument("--mode", default="outlier", choices=["plain", "outlier"])
    pk.add_argument(
        "--codec", default="cuszp2", choices=CODECS,
        help="plugin for every field, or 'auto' for per-field tuning "
        "(default cuszp2; extraction sniffs, so mixed archives just work)",
    )
    pk.add_argument("-o", "--output")
    pk.set_defaults(fn=cmd_pack)

    co = sub.add_parser(
        "codecs",
        help="list the compressor-plugin registry (names, options, flags)",
    )
    co.set_defaults(fn=cmd_codecs)

    ex = sub.add_parser("extract", help="extract a field from an archive (omit FIELD to list)")
    ex.add_argument("archive")
    ex.add_argument("field", nargs="?")
    ex.add_argument("-o", "--output")
    ex.set_defaults(fn=cmd_extract)

    g = sub.add_parser("generate", help="write a synthetic field as a raw file")
    g.add_argument("dataset")
    g.add_argument("field")
    g.add_argument("--scale", type=int, default=1)
    g.add_argument("-o", "--output")
    g.set_defaults(fn=cmd_generate)

    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:  # e.g. `repro datasets | head`
        import os

        try:
            sys.stdout.close()
        except Exception:
            pass
        os._exit(0)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
