"""Baseline compressors the paper compares against, built from scratch.

Pure-GPU designs: :class:`CuSZp` (the predecessor; Plain-FLE),
:class:`FZGPU` (Lorenzo + bitshuffle + zero-word removal),
:class:`CuZFP` (real fixed-rate ZFP).  CPU-GPU hybrids: :class:`CuSZ`
(Lorenzo + Huffman), :class:`CuSZx` (constant blocks + FLE),
:class:`MGARDLike` (multilevel refactoring).

These classes are the raw implementations.  The supported entry point is
the plugin surface, :mod:`repro.codecs` (docs/CODECS.md): every baseline
is registered there behind the uniform
``compress(ndarray, **opts)`` / ``decompress(bytes)`` contract that
preserves dtype+shape, validates options, answers only classified errors,
and dispatches by stream magic -- and that the CLI (``repro compress
--codec <name>``), the serve layer (``ServiceConfig.codec``), and the qa
fuzzer's ``codecs`` oracle all speak.
"""

from .cuszp import CuSZp
from .fzgpu import FZGPU, FZGPULaunchError, PAPER_BUG_DATASETS
from .huffman import HuffmanTable
from .hybrid import HYBRIDS, CuSZ, CuSZx, MGARDLike
from .zfp import CuZFP

__all__ = [
    "CuSZp",
    "FZGPU",
    "FZGPULaunchError",
    "PAPER_BUG_DATASETS",
    "CuZFP",
    "CuSZ",
    "CuSZx",
    "MGARDLike",
    "HYBRIDS",
    "HuffmanTable",
]
