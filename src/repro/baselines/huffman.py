"""Canonical Huffman coding -- the CPU stage of the hybrid compressors.

cuSZ [18] (and MGARD-style pipelines) finish with a Huffman pass whose tree
construction runs on the host; that CPU round trip is precisely what opens
the kernel-vs-end-to-end gap of Fig. 2.  This is a complete canonical
Huffman implementation: frequency analysis, heap-built tree, canonical code
assignment, vectorized encoding, and table-driven decoding.

Symbols are small unsigned integers (quantization bins); values outside the
table range are escaped through a reserved symbol followed by a raw 64-bit
value.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..core.errors import StreamFormatError

MAX_CODE_LEN = 48


def code_lengths(freqs: np.ndarray) -> np.ndarray:
    """Huffman code length per symbol (0 for absent symbols)."""
    heap = []
    counter = itertools.count()  # tie-breaker for deterministic trees
    for sym, f in enumerate(freqs):
        if f > 0:
            heap.append((int(f), next(counter), ("leaf", sym)))
    heapq.heapify(heap)
    if not heap:
        raise ValueError("cannot build a Huffman tree from an empty alphabet")
    if len(heap) == 1:
        lengths = np.zeros(len(freqs), dtype=np.uint8)
        lengths[heap[0][2][1]] = 1
        return lengths
    while len(heap) > 1:
        fa, _, a = heapq.heappop(heap)
        fb, _, b = heapq.heappop(heap)
        heapq.heappush(heap, (fa + fb, next(counter), ("node", a, b)))
    lengths = np.zeros(len(freqs), dtype=np.uint8)

    stack = [(heap[0][2], 0)]
    while stack:
        node, depth = stack.pop()
        if node[0] == "leaf":
            lengths[node[1]] = max(depth, 1)
        else:
            stack.append((node[1], depth + 1))
            stack.append((node[2], depth + 1))
    if lengths.max() > MAX_CODE_LEN:
        raise ValueError(f"Huffman code length {lengths.max()} exceeds {MAX_CODE_LEN}")
    return lengths


def canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Canonical code values from code lengths (shorter codes first,
    then by symbol index).  Returns uint64 codes, MSB-first semantics."""
    codes = np.zeros(len(lengths), dtype=np.uint64)
    order = sorted((int(l), s) for s, l in enumerate(lengths) if l > 0)
    code = 0
    prev_len = order[0][0] if order else 0
    for length, sym in order:
        code <<= length - prev_len
        prev_len = length
        codes[sym] = code
        code += 1
    return codes


@dataclass
class HuffmanTable:
    lengths: np.ndarray  # uint8 per symbol
    codes: np.ndarray  # uint64 per symbol

    @classmethod
    def from_frequencies(cls, freqs: np.ndarray) -> "HuffmanTable":
        lengths = code_lengths(freqs)
        return cls(lengths=lengths, codes=canonical_codes(lengths))

    @property
    def alphabet_size(self) -> int:
        return len(self.lengths)

    def expected_bits(self, freqs: np.ndarray) -> float:
        return float((freqs * self.lengths).sum())


def encode(symbols: np.ndarray, table: HuffmanTable) -> Tuple[np.ndarray, int]:
    """Vectorized encode; returns ``(packed bytes, total bits)``.

    Bits are MSB-first within each code and codes are concatenated in
    symbol order, packed LSB-byte-first for the decoder.
    """
    lens = table.lengths[symbols].astype(np.int64)
    if (lens == 0).any():
        bad = int(symbols[np.argmax(lens == 0)])
        raise ValueError(f"symbol {bad} has no code (zero frequency at table build)")
    codes = table.codes[symbols]
    total_bits = int(lens.sum())
    max_len = int(lens.max())
    # Right-align each code in a max_len-wide bit matrix: placing code c of
    # length l in the last l columns means column j holds bit
    # (c >> (max_len - 1 - j)) & 1 regardless of l, and row-major selection
    # of the valid (last l) columns yields the code MSB-first.
    col = np.arange(max_len, dtype=np.int64)[None, :]
    bitmat = ((codes[:, None] >> (max_len - 1 - col).astype(np.uint64)) & np.uint64(1)).astype(np.uint8)
    valid = col >= (max_len - lens[:, None])
    packed = np.packbits(bitmat[valid], bitorder="big")
    return packed, total_bits


def decode(packed: np.ndarray, total_bits: int, table: HuffmanTable, count: int) -> np.ndarray:
    """Table-driven canonical decode of ``count`` symbols."""
    # first_code[l], first_index[l], and symbols sorted canonically.
    order = sorted((int(l), s) for s, l in enumerate(table.lengths) if l > 0)
    sorted_syms = np.array([s for _, s in order], dtype=np.int64)
    lens = np.array([l for l, _ in order], dtype=np.int64)
    first_code: Dict[int, int] = {}
    first_index: Dict[int, int] = {}
    for i, (l, s) in enumerate(order):
        if l not in first_code:
            first_code[l] = int(table.codes[s])
            first_index[l] = i
    counts = {l: int((lens == l).sum()) for l in set(lens.tolist())}

    bits = np.unpackbits(packed, bitorder="big")[:total_bits]
    out = np.empty(count, dtype=np.int64)
    pos = 0
    for i in range(count):
        code = 0
        length = 0
        while True:
            if pos >= total_bits:
                raise StreamFormatError("Huffman stream exhausted mid-symbol")
            code = (code << 1) | int(bits[pos])
            pos += 1
            length += 1
            fc = first_code.get(length)
            if fc is not None and code - fc < counts[length] and code >= fc:
                out[i] = sorted_syms[first_index[length] + (code - fc)]
                break
            if length > MAX_CODE_LEN:
                raise StreamFormatError("invalid Huffman code in stream")
        continue
    return out
