"""FZ-GPU [22]: quantization + blockwise Lorenzo + bitshuffle + zero-word
removal, reimplemented from scratch.

FZ-GPU shares the lossy step with cuSZp2 ("FZ-GPU, cuSZp, and CUSZP2 share
the same lossy step", Section V-D) so, at equal error bound, its
reconstruction is identical -- only the lossless encoding (and thus the
compressed size) differs:

1. quantize (:mod:`repro.core.quantize`),
2. blockwise first-order difference (32-value blocks, like the other
   compressors here),
3. zigzag-map deltas to unsigned codes,
4. bit-shuffle each group of 32 codes into 32 words,
5. remove all-zero 32-bit words, keeping a presence bitmap.

Stream layout::

    [24-byte header][bitmap][nonzero words]

The "N.A. (due to bugs)" entries of Table III are modeled faithfully:
FZ-GPU's 3-D Lorenzo kernel crashes on several datasets, so this
implementation raises :class:`FZGPULaunchError` for the same dataset
shapes (opt-in via ``strict_paper_bugs``).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from ..core import predictor
from ..core.errors import CuSZp2Error, InvalidInputError, StreamFormatError
from ..core.quantize import ErrorBound, dequantize, quantize, validate_input
from . import bitshuffle

MAGIC = b"FZG1"
HEADER_FMT = "<4sBBHQd3Q"
HEADER_SIZE = struct.calcsize(HEADER_FMT)
BLOCK = 32


class FZGPULaunchError(CuSZp2Error):
    """Models the paper's 'N.A. (due to bugs)' cells: FZ-GPU fails to
    launch its 3-D Lorenzo kernel on some dataset geometries."""


#: Datasets whose geometry triggers the launch failure in the paper's
#: Table III (HACC, JetIn, Miranda, SynTruss).
PAPER_BUG_DATASETS = {"hacc", "jetin", "miranda", "syntruss"}


@dataclass
class FZGPU:
    """Functional FZ-GPU codec under a REL or ABS error bound.

    ``predictor_ndim=3`` enables the true 3-D Lorenzo prediction the real
    FZ-GPU applies to volumetric fields (a global separable first-order
    difference, inverted by a triple prefix sum); the default 1-D mode
    matches the other blockwise compressors here and is what the Table III
    harness uses.
    """

    error_bound: ErrorBound
    strict_paper_bugs: bool = False
    predictor_ndim: int = 1

    def compress(self, data: np.ndarray, dataset: str = "") -> np.ndarray:
        if self.strict_paper_bugs and dataset.lower() in PAPER_BUG_DATASETS:
            raise FZGPULaunchError(
                f"FZ-GPU's 3-D Lorenzo kernel fails on {dataset!r} (Table III: N.A.)"
            )
        arr = np.asarray(data)
        if self.predictor_ndim == 3 and arr.ndim != 3:
            raise FZGPULaunchError(
                f"3-D Lorenzo mode needs a 3-D array, got shape {arr.shape} "
                "(the real kernel's launch-geometry fragility)"
            )
        flat = validate_input(arr)
        eb_abs = self.error_bound.resolve(flat)
        q = quantize(flat, eb_abs)
        if self.predictor_ndim == 3:
            vol = q.reshape(arr.shape)
            for axis in range(3):
                shape = list(vol.shape)
                shape[axis] = 1
                vol = np.diff(vol, axis=axis, prepend=np.zeros(shape, dtype=vol.dtype))
            deltas = vol.reshape(-1)
        else:
            deltas = predictor.diff_1d(predictor.blockize_1d(q, BLOCK)).reshape(-1)
        codes = bitshuffle.zigzag(deltas)
        if codes.size and int(codes.max()) > 0xFFFFFFFF:
            raise StreamFormatError("zigzag code exceeds 32 bits; increase the error bound")
        words = bitshuffle.shuffle(codes.astype(np.uint32))

        nonzero = words != 0
        bitmap = np.packbits(nonzero.astype(np.uint8), bitorder="little")
        kept = words[nonzero]

        if arr.ndim <= 3:
            dims3 = tuple(arr.shape) + (1,) * (3 - arr.ndim)
            orig_ndim = arr.ndim
        else:
            dims3 = (flat.size, 1, 1)
            orig_ndim = 0  # >3-D inputs decode flat, like the core codec
        header = struct.pack(
            HEADER_FMT,
            MAGIC,
            2,  # version (v2: original ndim rides in the high byte below)
            0 if data.dtype == np.float32 else 1,
            # low byte: predictor dimensionality; high byte: the caller's
            # array ndim, so decompress restores the original shape.  v1
            # streams carry 0 there and keep decoding flat.
            self.predictor_ndim | (orig_ndim << 8),
            flat.size,
            eb_abs,
            *dims3,
        )
        return np.concatenate(
            [
                np.frombuffer(header, dtype=np.uint8),
                bitmap,
                kept.view(np.uint8),
            ]
        )

    def decompress(self, buf: np.ndarray) -> np.ndarray:
        if not isinstance(buf, np.ndarray):
            buf = np.frombuffer(bytes(buf), dtype=np.uint8)
        if buf.size < HEADER_SIZE:
            raise StreamFormatError("FZ-GPU stream shorter than its header")
        magic, _ver, dt, pred_field, nelems, eb_abs, d0, d1, d2 = struct.unpack(
            HEADER_FMT, buf[:HEADER_SIZE].tobytes()
        )
        if magic != MAGIC:
            raise StreamFormatError(f"bad FZ-GPU magic {magic!r}")
        pred_ndim = pred_field & 0xFF
        orig_ndim = pred_field >> 8  # 0 in v1 streams: flat decode
        dtype = np.dtype(np.float32 if dt == 0 else np.float64)
        if orig_ndim > 3:
            raise StreamFormatError(f"FZ-GPU header declares ndim {orig_ndim} > 3")
        shape = (d0, d1, d2)[:orig_ndim]
        nshape = 1
        for s in shape:
            nshape *= s
        if (pred_ndim == 3 and d0 * d1 * d2 != nelems) or (orig_ndim and nshape != nelems):
            raise StreamFormatError("FZ-GPU header dims inconsistent with element count")

        padded = nelems if pred_ndim == 3 else -(-nelems // BLOCK) * BLOCK
        padded = -(-padded // bitshuffle.GROUP) * bitshuffle.GROUP
        nwords = padded  # 32 words per 32-value group
        bitmap_bytes = -(-nwords // 8)
        bitmap = buf[HEADER_SIZE : HEADER_SIZE + bitmap_bytes]
        nonzero = np.unpackbits(bitmap, bitorder="little")[:nwords].astype(bool)
        word_bytes = buf[HEADER_SIZE + bitmap_bytes :]
        if word_bytes.size % 4:
            raise StreamFormatError("FZ-GPU word section is not 32-bit aligned (truncated?)")
        kept = word_bytes.view(np.uint32)
        if kept.size != int(nonzero.sum()):
            raise StreamFormatError(
                f"bitmap promises {int(nonzero.sum())} words, stream holds {kept.size}"
            )
        words = np.zeros(nwords, dtype=np.uint32)
        words[nonzero] = kept
        codes = bitshuffle.unshuffle(words, padded)
        deltas = bitshuffle.unzigzag(codes)
        if pred_ndim == 3:
            vol = deltas[:nelems].reshape(d0, d1, d2)
            for axis in range(3):
                vol = np.cumsum(vol, axis=axis)
            q = vol.reshape(-1)
        else:
            q = predictor.undiff_1d(deltas.reshape(-1, BLOCK)).reshape(-1)[:nelems]
        # corrupted streams can carry absurd quant codes; the cast's
        # overflow to +-inf is itself the corruption signal downstream
        with np.errstate(over="ignore"):
            out = dequantize(q, eb_abs, dtype)
        return out.reshape(shape) if orig_ndim else out


def compress(data: np.ndarray, rel: float = None, abs: float = None, **kw) -> np.ndarray:  # noqa: A002
    if (rel is None) == (abs is None):
        raise InvalidInputError("specify exactly one of rel= or abs=")
    eb = ErrorBound.relative(rel) if rel is not None else ErrorBound.absolute(abs)
    return FZGPU(eb, **kw).compress(data)


def decompress(buf: np.ndarray) -> np.ndarray:
    return FZGPU(ErrorBound.relative(1e-3)).decompress(buf)
