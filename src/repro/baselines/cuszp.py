"""cuSZp [23]: the predecessor cuSZp2 improves upon.

Functionally, cuSZp is Plain-FLE over the same quantization/first-order
difference pipeline: the paper excludes CUSZP2-P from Table III "because it
has very close compression ratios with cuSZp (e.g. less than 0.01%
differences) due to the same lossless encoding method".  In this
reproduction the two are byte-identical by construction, so the cuSZp codec
simply *is* the core compressor pinned to Plain mode.

What differs is performance: cuSZp uses scalar, partially strided memory
accesses and a plain chained-scan for the device-level prefix sum -- both
are captured by :func:`repro.gpusim.pipelines.cuszp_compression` /
``cuszp_decompression``, which the throughput experiments pair with the
artifacts this codec produces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.compressor import CuSZp2
from ..core.errors import InvalidInputError
from ..core.quantize import ErrorBound


@dataclass
class CuSZp:
    """Functional cuSZp codec (Plain-FLE, block 32)."""

    error_bound: ErrorBound

    def __post_init__(self):
        if isinstance(self.error_bound, (int, float)):
            self.error_bound = ErrorBound.relative(float(self.error_bound))
        self._impl = CuSZp2(self.error_bound, mode="plain")

    def compress(self, data: np.ndarray) -> np.ndarray:
        return self._impl.compress(data)

    def decompress(self, buf) -> np.ndarray:
        return self._impl.decompress(buf)


def compress(data: np.ndarray, rel: float = None, abs: float = None) -> np.ndarray:  # noqa: A002
    if (rel is None) == (abs is None):
        raise InvalidInputError("specify exactly one of rel= or abs=")
    eb = ErrorBound.relative(rel) if rel is not None else ErrorBound.absolute(abs)
    return CuSZp(eb).compress(data)


def decompress(buf) -> np.ndarray:
    from ..core.compressor import decompress as _d

    return _d(buf)
