"""CPU-GPU hybrid compressors: cuSZ [18], cuSZx [19], MGARD-GPU [20][26].

These are the Fig. 1/2 baselines whose *kernel* throughput looks healthy
but whose end-to-end throughput collapses to 0.32..1.79 GB/s because parts
of the pipeline (Huffman tree construction, global synchronization,
multigrid coordination) run on the host across PCIe.  Functionally each is
a complete error-bounded codec here; their hybrid cost structure lives in
:func:`repro.gpusim.pipelines.hybrid_compression`.

* **CuSZ** -- global 1-D Lorenzo prediction + linear quantization + a real
  canonical Huffman pass (:mod:`repro.baselines.huffman`) with outlier
  escape, mirroring cuSZ's dual-quant + Huffman design.
* **CuSZx** -- blockwise constant-block detection (store one mean per
  near-constant block) with Plain-FLE for the rest: the ultra-fast,
  modest-ratio point in the design space.
* **MGARDLike** -- multilevel interpolation decomposition with
  level-budgeted uniform quantization and a Huffman back end: a 1-D
  rendition of MGARD's multigrid refactoring.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..core import fle, predictor
from ..core.errors import StreamFormatError
from ..core.quantize import ErrorBound, dequantize, quantize, validate_input
from . import huffman

_QBINS = 256  # symbols for in-range quant deltas
_ESC = _QBINS  # escape symbol for outliers
_ALPHABET = _QBINS + 1


def _huff_pack(symbols: np.ndarray, outliers: np.ndarray) -> bytes:
    freqs = np.bincount(symbols, minlength=_ALPHABET)
    table = huffman.HuffmanTable.from_frequencies(freqs)
    packed, nbits = huffman.encode(symbols, table)
    head = struct.pack("<QQQ", len(symbols), nbits, len(outliers))
    return (
        head
        + table.lengths.astype(np.uint8).tobytes()
        + packed.tobytes()
        + outliers.astype("<i8").tobytes()
    )


def _huff_unpack(raw: bytes) -> Tuple[np.ndarray, np.ndarray]:
    nsym, nbits, nout = struct.unpack("<QQQ", raw[:24])
    off = 24
    lengths = np.frombuffer(raw[off : off + _ALPHABET], dtype=np.uint8)
    off += _ALPHABET
    nbytes = -(-nbits // 8)
    packed = np.frombuffer(raw[off : off + nbytes], dtype=np.uint8)
    off += nbytes
    outliers = np.frombuffer(raw[off : off + 8 * nout], dtype="<i8")
    table = huffman.HuffmanTable(lengths=lengths.copy(), codes=huffman.canonical_codes(lengths))
    symbols = huffman.decode(packed, int(nbits), table, int(nsym))
    return symbols, outliers


def _encode_deltas(deltas: np.ndarray) -> bytes:
    """Map signed deltas to Huffman symbols with escape for |d| > 127."""
    in_range = np.abs(deltas) < _QBINS // 2
    symbols = np.where(in_range, deltas + _QBINS // 2, _ESC).astype(np.int64)
    outliers = deltas[~in_range]
    return _huff_pack(symbols, outliers)


def _decode_deltas(raw: bytes) -> np.ndarray:
    symbols, outliers = _huff_unpack(raw)
    deltas = symbols - _QBINS // 2
    esc = symbols == _ESC
    if int(esc.sum()) != outliers.size:
        raise StreamFormatError("escape count does not match outlier list")
    deltas[esc] = outliers
    return deltas


# ---------------------------------------------------------------------------
# cuSZ
# ---------------------------------------------------------------------------

@dataclass
class CuSZ:
    """Lorenzo + quantization + canonical Huffman (the cuSZ recipe)."""

    error_bound: ErrorBound

    def compress(self, data: np.ndarray) -> np.ndarray:
        flat = validate_input(np.asarray(data))
        eb_abs = self.error_bound.resolve(flat)
        q = quantize(flat, eb_abs)
        deltas = np.diff(q, prepend=np.int64(0))  # global 1-D Lorenzo
        body = _encode_deltas(deltas)
        head = struct.pack("<4sBQd", b"CSZ1", 0 if data.dtype == np.float32 else 1, flat.size, eb_abs)
        return np.frombuffer(head + body, dtype=np.uint8)

    def decompress(self, buf) -> np.ndarray:
        raw = bytes(buf)
        magic, dt, nelems, eb_abs = struct.unpack("<4sBQd", raw[:21])
        if magic != b"CSZ1":
            raise StreamFormatError(f"bad cuSZ magic {magic!r}")
        deltas = _decode_deltas(raw[21:])
        if deltas.size != nelems:
            raise StreamFormatError("cuSZ symbol count mismatch")
        q = np.cumsum(deltas)
        return dequantize(q, eb_abs, np.dtype(np.float32 if dt == 0 else np.float64))


# ---------------------------------------------------------------------------
# cuSZx
# ---------------------------------------------------------------------------

_CUSZX_BLOCK = 128


@dataclass
class CuSZx:
    """Constant-block detection + Plain-FLE for the rest (cuSZx's
    speed-over-ratio design point)."""

    error_bound: ErrorBound

    def compress(self, data: np.ndarray) -> np.ndarray:
        flat = validate_input(np.asarray(data))
        eb_abs = self.error_bound.resolve(flat)
        n = flat.size
        nblocks = -(-n // _CUSZX_BLOCK)
        padded = np.concatenate([flat, np.full(nblocks * _CUSZX_BLOCK - n, flat[-1], flat.dtype)])
        blocks = padded.reshape(nblocks, _CUSZX_BLOCK).astype(np.float64)
        lo, hi = blocks.min(axis=1), blocks.max(axis=1)
        constant = (hi - lo) <= 2 * eb_abs
        # means stored in the *input* dtype: float32 storage would push an
        # f64 field's constant blocks past the error bound
        means = ((lo + hi) / 2).astype(data.dtype)

        # Non-constant blocks: quantize + blockwise diff + Plain-FLE.
        q = quantize(blocks[~constant].reshape(-1), eb_abs) if (~constant).any() else np.empty(0, np.int64)
        if q.size:
            deltas = predictor.diff_1d(q.reshape(-1, _CUSZX_BLOCK))
            offsets, payload = fle.encode_blocks(deltas, use_outlier=False)
        else:
            offsets = np.empty(0, np.uint8)
            payload = np.empty(0, np.uint8)

        bitmap = np.packbits(constant.astype(np.uint8), bitorder="little")
        head = struct.pack(
            "<4sBQdQ", b"CSZX", 0 if data.dtype == np.float32 else 1, n, eb_abs, int(constant.sum())
        )
        return np.concatenate(
            [
                np.frombuffer(head, dtype=np.uint8),
                bitmap,
                means[constant].view(np.uint8),
                offsets,
                payload,
            ]
        )

    def decompress(self, buf) -> np.ndarray:
        raw = np.asarray(buf, dtype=np.uint8) if not isinstance(buf, np.ndarray) else buf
        hsize = struct.calcsize("<4sBQdQ")
        magic, dt, n, eb_abs, ncon = struct.unpack("<4sBQdQ", raw[:hsize].tobytes())
        if magic != b"CSZX":
            raise StreamFormatError(f"bad cuSZx magic {magic!r}")
        dtype = np.dtype(np.float32 if dt == 0 else np.float64)
        nblocks = -(-n // _CUSZX_BLOCK)
        off = hsize
        bitmap_bytes = -(-nblocks // 8)
        constant = np.unpackbits(raw[off : off + bitmap_bytes], bitorder="little")[:nblocks].astype(bool)
        off += bitmap_bytes
        means = raw[off : off + dtype.itemsize * ncon].view(dtype)
        off += dtype.itemsize * ncon
        n_var = int((~constant).sum())
        offsets = raw[off : off + n_var]
        off += n_var
        payload = raw[off:]

        out = np.empty((nblocks, _CUSZX_BLOCK), dtype=dtype)
        out[constant] = means[:, None].astype(dtype)
        if n_var:
            deltas = fle.decode_blocks(offsets, payload, _CUSZX_BLOCK)
            q = predictor.undiff_1d(deltas)
            out[~constant] = dequantize(q.reshape(-1), eb_abs, dtype).reshape(-1, _CUSZX_BLOCK)
        return out.reshape(-1)[:n]


# ---------------------------------------------------------------------------
# MGARD-like
# ---------------------------------------------------------------------------

@dataclass
class MGARDLike:
    """Multilevel interpolation decomposition + quantization + Huffman.

    A 1-D rendition of MGARD's multigrid refactoring: odd grid points are
    predicted by linear interpolation of their even neighbours, residuals
    are quantized with a per-level share of the error budget, and the
    coarsest grid plus all residual levels are entropy coded.
    """

    error_bound: ErrorBound
    min_coarse: int = 4

    def _levels(self, n: int) -> int:
        levels = 0
        while n > self.min_coarse:
            n = (n + 1) // 2
            levels += 1
        return levels

    def compress(self, data: np.ndarray) -> np.ndarray:
        flat = validate_input(np.asarray(data)).astype(np.float64)
        eb_abs = self.error_bound.resolve(flat)
        nlevels = self._levels(flat.size)
        eb_level = eb_abs / (nlevels + 1)  # linear error accumulation budget

        residual_q: List[np.ndarray] = []
        cur = flat
        for _ in range(nlevels):
            even = cur[::2]
            odd = cur[1::2]
            right = even[1 : odd.size + 1] if even.size > odd.size else np.concatenate([even[1:], even[-1:]])
            pred = 0.5 * (even[: odd.size] + right)
            rq = quantize(odd - pred, eb_level)
            residual_q.append(rq)
            # Continue on the *reconstructable* coarse grid so decompression
            # sees the same predictions.
            cur = even
        coarse_q = quantize(cur, eb_level)

        all_syms = np.concatenate([coarse_q] + residual_q[::-1])
        body = _encode_deltas(np.diff(all_syms, prepend=np.int64(0)))
        head = struct.pack(
            "<4sBQdB", b"MGD1", 0 if data.dtype == np.float32 else 1, flat.size, eb_abs, nlevels
        )
        return np.frombuffer(head + body, dtype=np.uint8)

    def decompress(self, buf) -> np.ndarray:
        raw = bytes(buf)
        hsize = struct.calcsize("<4sBQdB")
        magic, dt, n, eb_abs, nlevels = struct.unpack("<4sBQdB", raw[:hsize])
        if magic != b"MGD1":
            raise StreamFormatError(f"bad MGARD magic {magic!r}")
        eb_level = eb_abs / (nlevels + 1)
        all_syms = np.cumsum(_decode_deltas(raw[hsize:]))

        sizes = [n]
        for _ in range(nlevels):
            sizes.append((sizes[-1] + 1) // 2)
        # sizes[k] = grid size at level k (0 = finest); coarse grid first in
        # the stream, then residuals from coarsest to finest.
        coarse_n = sizes[nlevels]
        coarse = dequantize(all_syms[:coarse_n], eb_level, np.dtype(np.float64))
        off = coarse_n
        cur = coarse
        for k in range(nlevels - 1, -1, -1):
            odd_n = sizes[k] - sizes[k + 1]
            res = dequantize(all_syms[off : off + odd_n], eb_level, np.dtype(np.float64))
            off += odd_n
            even = cur
            right = even[1 : odd_n + 1] if even.size > odd_n else np.concatenate([even[1:], even[-1:]])
            odd = 0.5 * (even[:odd_n] + right) + res
            merged = np.empty(sizes[k], dtype=np.float64)
            merged[::2] = even
            merged[1::2] = odd
            cur = merged
        dtype = np.dtype(np.float32 if dt == 0 else np.float64)
        return cur.astype(dtype)


HYBRIDS = {"cusz": CuSZ, "cuszx": CuSZx, "mgard": MGARDLike}
