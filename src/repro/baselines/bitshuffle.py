"""Bit-shuffle (bit transposition), the core of FZ-GPU's lossless stage.

FZ-GPU [22] follows its Lorenzo/quantization step with a *bitshuffle*: the
bits of a group of 32 values are transposed so that bit ``b`` of every
value lands in one 32-bit word.  On smooth data the quantized deltas are
tiny, so after the transpose the words holding high bit positions are all
zero and can be removed with a bitmap -- that removal is FZ-GPU's
"sparsification".

Shuffle layout: input values are processed in groups of 32; group ``g``
contributes 32 output words, where word ``b`` packs bit ``b`` of values
``32g .. 32g+31`` (value ``32g+j`` at bit position ``j``).
"""

from __future__ import annotations

import numpy as np

GROUP = 32


def _pad_to_group(values: np.ndarray) -> np.ndarray:
    n = values.shape[0]
    if n % GROUP:
        values = np.concatenate([values, np.zeros(GROUP - n % GROUP, dtype=values.dtype)])
    return values


def shuffle(values: np.ndarray) -> np.ndarray:
    """Bit-transpose uint32 values; returns one uint32 word per (group,
    bit-position) in group-major order.  The input is zero-padded to a
    multiple of 32."""
    values = _pad_to_group(np.ascontiguousarray(values, dtype=np.uint32))
    groups = values.reshape(-1, GROUP)  # (G, 32) values
    bits = (groups[:, None, :] >> np.arange(GROUP, dtype=np.uint32)[None, :, None]) & np.uint32(1)
    weights = (np.uint64(1) << np.arange(GROUP, dtype=np.uint64))
    words = (bits.astype(np.uint64) * weights[None, None, :]).sum(axis=2)
    return words.astype(np.uint32).reshape(-1)


def unshuffle(words: np.ndarray, count: int) -> np.ndarray:
    """Invert :func:`shuffle`; returns the first ``count`` original values."""
    words = np.ascontiguousarray(words, dtype=np.uint32).reshape(-1, GROUP)
    bits = (words[:, :, None] >> np.arange(GROUP, dtype=np.uint32)[None, None, :]) & np.uint32(1)
    weights = (np.uint64(1) << np.arange(GROUP, dtype=np.uint64))
    # bits[g, b, j] is bit b of value j in group g.
    values = (bits.astype(np.uint64) * weights[None, :, None]).sum(axis=1)
    return values.astype(np.uint32).reshape(-1)[:count]


def zigzag(values: np.ndarray) -> np.ndarray:
    """Map signed int64 to unsigned so small magnitudes keep small codes
    (0,-1,1,-2,... -> 0,1,2,3,...), maximizing zero words after the
    transpose."""
    v = values.astype(np.int64)
    return ((v << 1) ^ (v >> 63)).astype(np.uint64)


def unzigzag(codes: np.ndarray) -> np.ndarray:
    u = codes.astype(np.uint64)
    return ((u >> np.uint64(1)).astype(np.int64)) ^ -(u & np.uint64(1)).astype(np.int64)
