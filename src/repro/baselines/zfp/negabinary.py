"""ZFP stage 3: two's complement <-> negabinary.

The embedded coder consumes *unsigned* bit planes; ZFP maps signed
coefficients to negabinary (base -2), where small magnitudes of either sign
have small codes and no separate sign bit is needed:

    uint = (int + MASK) ^ MASK       MASK = 0xaaaaaaaa
    int  = (uint ^ MASK) - MASK
"""

from __future__ import annotations

import numpy as np

NBMASK32 = np.uint32(0xAAAAAAAA)
NBMASK64 = np.uint64(0xAAAAAAAAAAAAAAAA)


def int_to_negabinary(values: np.ndarray, intprec: int = 32) -> np.ndarray:
    """Signed fixed-point (int64 carrier) -> unsigned negabinary codes.

    ``intprec`` selects the 32- or 64-bit mapping (float32 / float64
    pipelines respectively)."""
    if intprec == 32:
        u = values.astype(np.int64).astype(np.uint64) & np.uint64(0xFFFFFFFF)
        mask = np.uint64(int(NBMASK32))
        return (((u + mask) & np.uint64(0xFFFFFFFF)) ^ mask).astype(np.uint32)
    if intprec == 64:
        with np.errstate(over="ignore"):
            u = values.astype(np.int64).view(np.uint64)
            return (u + NBMASK64) ^ NBMASK64  # wraps mod 2**64, as in C
    raise ValueError(f"intprec must be 32 or 64, got {intprec}")


def negabinary_to_int(codes: np.ndarray, intprec: int = 32) -> np.ndarray:
    """Unsigned negabinary codes -> signed int64 values."""
    if intprec == 32:
        mask = np.uint64(int(NBMASK32))
        u = (codes.astype(np.uint64) ^ mask)
        u = (u - mask) & np.uint64(0xFFFFFFFF)
        # Reinterpret the low 32 bits as signed.
        return u.astype(np.uint32).view(np.int32).astype(np.int64)
    if intprec == 64:
        with np.errstate(over="ignore"):
            u = (codes.astype(np.uint64) ^ NBMASK64) - NBMASK64
            return u.view(np.int64)
    raise ValueError(f"intprec must be 32 or 64, got {intprec}")
