"""ZFP stage 1: block-floating-point alignment.

Each 4^d block is aligned to the exponent of its largest magnitude value
and converted to signed fixed point with two guard bits for transform
growth (Lindstrom 2014): for float32 the fraction uses 30 of 32 bits, for
float64 62 of 64 (the double's 52-bit mantissa means the low fixed-point
bits are exact zeros, as in the C implementation).

Block exponents are stored out-of-band as biased 15-bit codes
(``emax + EXP_BIAS``), with code 0 reserved for all-zero blocks.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: Fraction bits per intprec: intprec - 2 guard bits.
FRACTION_BITS = {32: 30, 64: 62}
#: Exponent bias covering both f32 (+-127) and f64 (+-1023) ranges.
EXP_BIAS = 16384
EXP_BITS = 16

INTPREC_FOR_DTYPE = {np.dtype(np.float32): 32, np.dtype(np.float64): 64}


def block_exponents(blocks: np.ndarray) -> np.ndarray:
    """Per-block max exponent ``e`` with ``max|v| = f * 2**e, f in [0.5,1)``.
    All-zero blocks get the sentinel ``-EXP_BIAS`` (encodes as 0)."""
    maxes = np.abs(blocks).max(axis=1)
    _, e = np.frexp(maxes)
    return np.where(maxes > 0, e, -EXP_BIAS).astype(np.int32)


def to_fixed(blocks: np.ndarray, emax: np.ndarray, intprec: int = 32) -> np.ndarray:
    """Convert float blocks ``(n, bsize)`` to fixed point against the
    per-block exponent (int64 carrier for both precisions)."""
    frac = FRACTION_BITS[intprec]
    # scale via ldexp on the values themselves: a materialized 2**(frac-emax)
    # overflows to inf for denormal-range blocks (emax < frac - 1023), which
    # would turn exact zeros into 0*inf = NaN
    shift = (frac - emax.astype(np.int64)).astype(np.int32)
    q = np.ldexp(blocks.astype(np.float64), shift[:, None])
    return q.astype(np.int64)  # |q| <= 2**frac, guard bits left for the transform


def from_fixed(iblocks: np.ndarray, emax: np.ndarray, dtype=np.float32, intprec: int = 32) -> np.ndarray:
    """Invert :func:`to_fixed`."""
    frac = FRACTION_BITS[intprec]
    shift = (emax.astype(np.int64) - frac).astype(np.int32)
    return np.ldexp(iblocks.astype(np.float64), shift[:, None]).astype(dtype)


def encode_emax(emax: np.ndarray) -> np.ndarray:
    """Biased exponent codes (uint16; 0 marks an all-zero block)."""
    code = emax.astype(np.int64) + EXP_BIAS
    if (code < 0).any() or (code >= (1 << EXP_BITS)).any():
        raise ValueError("block exponent outside the representable range")
    return code.astype(np.uint16)


def decode_emax(code: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(emax, is_zero_block)``."""
    emax = code.astype(np.int32) - EXP_BIAS
    return emax, code == 0
