"""ZFP stage 4: embedded (group-tested) bit-plane coding.

Faithful port of ZFP's ``encode_ints`` / ``decode_ints``: bit planes are
emitted most-significant first; within a plane, the bits of coefficients
already known to be significant are written verbatim, and the remainder is
unary run-length coded (one test bit asking "any one-bits left?", then bits
until the next one-bit).  Truncating the resulting stream at ``maxbits``
yields the fixed-rate mode cuZFP exposes -- every block occupies exactly
``rate * 4**d`` bits.

Bit I/O uses Python integers as arbitrary-precision bit buffers
(LSB = first bit written), which keeps the port compact and exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence



@dataclass
class BitStream:
    """Append-only/read-only bit buffer; bit 0 of ``bits`` is the first bit."""

    bits: int = 0
    length: int = 0
    _pos: int = 0

    def write_bit(self, b: int) -> int:
        self.bits |= (b & 1) << self.length
        self.length += 1
        return b & 1

    def write_bits(self, value: int, n: int) -> int:
        """Write the low ``n`` bits of ``value``; returns the remaining
        (shifted) value, mirroring zfp's ``stream_write_bits``."""
        if n:
            self.bits |= (value & ((1 << n) - 1)) << self.length
            self.length += n
        return value >> n

    def read_bit(self) -> int:
        if self._pos >= self.length:
            return 0  # reading past a truncated fixed-rate stream yields 0s
        b = (self.bits >> self._pos) & 1
        self._pos += 1
        return b

    def read_bits(self, n: int) -> int:
        v = 0
        for i in range(n):
            v |= self.read_bit() << i
        return v

    def rewind(self) -> None:
        self._pos = 0

    def to_bytes(self, nbits: int) -> bytes:
        nbytes = -(-nbits // 8)
        return (self.bits & ((1 << nbits) - 1)).to_bytes(nbytes, "little")

    @classmethod
    def from_bytes(cls, raw: bytes, nbits: int) -> "BitStream":
        return cls(bits=int.from_bytes(raw, "little") & ((1 << nbits) - 1), length=nbits)


def encode_block(coeffs: Sequence[int], maxbits: int, intprec: int = 32) -> BitStream:
    """Encode one block of negabinary coefficients (uints) into exactly
    ``maxbits`` bits (zfp ``encode_ints`` with fixed-rate padding)."""
    size = len(coeffs)
    s = BitStream()
    bits = maxbits
    n = 0
    for k in range(intprec - 1, -1, -1):
        if bits == 0:
            break
        # step 1: extract bit plane k
        x = 0
        for i in range(size):
            x |= ((int(coeffs[i]) >> k) & 1) << i
        # step 2: emit the bits of already-significant coefficients
        m = min(n, bits)
        bits -= m
        x = s.write_bits(x, m)
        # step 3: unary run-length encode the rest of the plane.  This
        # mirrors zfp's nested for-loops exactly: the outer test bit says
        # "one-bits remain"; the inner loop emits literal bits up to (and
        # excluding) the next one-bit; the outer increment consumes the
        # one-bit coefficient itself (implicit for the final coefficient).
        while n < size and bits:
            bits -= 1
            test = 1 if x else 0
            s.write_bit(test)
            if not test:
                break
            while n < size - 1 and bits:
                bits -= 1
                b = x & 1
                s.write_bit(b)
                if b:
                    break
                x >>= 1
                n += 1
            # outer-loop increment (runs whether the inner loop found the
            # one-bit, exhausted the budget, or reached the last position)
            x >>= 1
            n += 1
    # fixed-rate: pad to exactly maxbits
    s.length = maxbits
    return s


def decode_block(stream: BitStream, maxbits: int, size: int, intprec: int = 32) -> List[int]:
    """Inverse of :func:`encode_block`; returns negabinary coefficients."""
    stream.rewind()
    coeffs = [0] * size
    bits = maxbits
    n = 0
    for k in range(intprec - 1, -1, -1):
        if bits == 0:
            break
        m = min(n, bits)
        bits -= m
        x = stream.read_bits(m)
        # unary run-length decode (exact mirror of the encoder's loops)
        while n < size and bits:
            bits -= 1
            if not stream.read_bit():
                break
            while n < size - 1 and bits:
                bits -= 1
                if stream.read_bit():
                    break
                n += 1
            # outer-loop increment: the coefficient the run stopped at is
            # significant at this plane
            x |= 1 << n
            n += 1
        # deposit plane k
        for i in range(size):
            if (x >> i) & 1:
                coeffs[i] |= 1 << k
    return coeffs
