"""cuZFP [21]: fixed-rate ZFP compression of 1-D/2-D/3-D float fields.

Pipeline per 4^d block (Lindstrom 2014): block-floating-point alignment ->
integer lifting transform -> sequency reordering -> negabinary -> embedded
bit-plane coding truncated at the fixed per-block bit budget.  Fixed-rate
mode is the only mode cuZFP supports in the paper's comparison ("cuZFP only
supports fixed-rate mode", Section V-A), so the compression ratio is set by
the rate, not the data, and there is no error bound.

Stream layout (deviation from the zfp container, documented in DESIGN.md):
block exponents live in a separate uint16 section and each block's embedded
payload is padded to whole bytes, so the effective rate is slightly above
the nominal one; the reported compressed size is the real stream size.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from ...core.errors import InvalidInputError, StreamFormatError
from . import embedded, fixedpoint, negabinary, transform

MAGIC = b"ZFP1"
HEADER_FMT = "<4sBBHH3Q"
HEADER_SIZE = struct.calcsize(HEADER_FMT)
#: intprec per input dtype: 32-bit pipeline for float32, 64 for float64.
INTPREC = 32


def _blockize(field: np.ndarray) -> np.ndarray:
    """Split an ndim field into (nblocks, 4**ndim) blocks, edge-padding."""
    ndim = field.ndim
    pads = [(0, (-s) % 4) for s in field.shape]
    if any(p[1] for p in pads):
        field = np.pad(field, pads, mode="edge")
    if ndim == 1:
        return field.reshape(-1, 4)
    if ndim == 2:
        h, w = field.shape
        return field.reshape(h // 4, 4, w // 4, 4).transpose(0, 2, 1, 3).reshape(-1, 16)
    if ndim == 3:
        d0, d1, d2 = field.shape
        return (
            field.reshape(d0 // 4, 4, d1 // 4, 4, d2 // 4, 4)
            .transpose(0, 2, 4, 1, 3, 5)
            .reshape(-1, 64)
        )
    raise InvalidInputError(f"cuZFP supports 1-3 dimensions, got {ndim}")


def _unblockize(blocks: np.ndarray, shape: tuple) -> np.ndarray:
    ndim = len(shape)
    padded = tuple(s + (-s) % 4 for s in shape)
    if ndim == 1:
        out = blocks.reshape(-1)[: padded[0]]
        return out[: shape[0]]
    if ndim == 2:
        h, w = padded
        out = blocks.reshape(h // 4, w // 4, 4, 4).transpose(0, 2, 1, 3).reshape(h, w)
        return out[: shape[0], : shape[1]]
    d0, d1, d2 = padded
    out = (
        blocks.reshape(d0 // 4, d1 // 4, d2 // 4, 4, 4, 4)
        .transpose(0, 3, 1, 4, 2, 5)
        .reshape(d0, d1, d2)
    )
    return out[: shape[0], : shape[1], : shape[2]]


@dataclass
class CuZFP:
    """Fixed-rate ZFP codec.  ``rate`` is bits per value (the paper sweeps
    4, 8 and 16)."""

    rate: float

    def __post_init__(self):
        if self.rate <= 0:
            raise InvalidInputError(f"rate must be positive, got {self.rate}")

    def maxbits(self, ndim: int) -> int:
        return max(int(round(self.rate * 4**ndim)), fixedpoint.EXP_BITS + 1)

    def compress(self, field: np.ndarray) -> np.ndarray:
        field = np.asarray(field)
        if field.dtype not in (np.float32, np.float64):
            raise InvalidInputError("cuZFP handles float32 or float64 fields")
        if not np.isfinite(field).all():
            raise InvalidInputError("cuZFP requires finite data")
        intprec = fixedpoint.INTPREC_FOR_DTYPE[field.dtype]
        ndim = field.ndim
        blocks = _blockize(field)
        nblocks, bsize = blocks.shape
        maxbits = self.maxbits(ndim)
        payload_bits = maxbits - 16  # exponent stored out-of-band in 16 bits
        payload_bytes = -(-payload_bits // 8)

        emax = fixedpoint.block_exponents(blocks)
        iblocks = fixedpoint.to_fixed(blocks, emax, intprec)
        coeffs = transform.forward(iblocks, ndim)
        nb = negabinary.int_to_negabinary(coeffs, intprec)

        emax_codes = fixedpoint.encode_emax(np.where(np.abs(blocks).max(axis=1) > 0, emax, -fixedpoint.EXP_BIAS))
        payload = np.zeros((nblocks, payload_bytes), dtype=np.uint8)
        nb_list = nb.tolist()
        for b in range(nblocks):
            if emax_codes[b] == 0:
                continue  # all-zero block: payload stays zero
            s = embedded.encode_block(nb_list[b], payload_bits, intprec)
            payload[b] = np.frombuffer(
                s.to_bytes(payload_bits).ljust(payload_bytes, b"\0"), dtype=np.uint8
            )

        header = struct.pack(
            HEADER_FMT,
            MAGIC,
            1,
            ndim,
            int(round(self.rate * 16)),  # rate in 1/16 bit units
            0 if intprec == 32 else 1,  # dtype code
            *(tuple(field.shape) + (1,) * (3 - ndim)),
        )
        return np.concatenate(
            [
                np.frombuffer(header, dtype=np.uint8),
                emax_codes.astype("<u2").view(np.uint8),
                payload.reshape(-1),
            ]
        )

    def decompress(self, buf: np.ndarray) -> np.ndarray:
        if not isinstance(buf, np.ndarray):
            buf = np.frombuffer(bytes(buf), dtype=np.uint8)
        if buf.size < HEADER_SIZE:
            raise StreamFormatError("cuZFP stream shorter than its header")
        magic, _ver, ndim, rate16, dtype_code, d0, d1, d2 = struct.unpack(
            HEADER_FMT, buf[:HEADER_SIZE].tobytes()
        )
        if magic != MAGIC:
            raise StreamFormatError(f"bad cuZFP magic {magic!r}")
        if dtype_code not in (0, 1):
            raise StreamFormatError(f"bad cuZFP dtype code {dtype_code}")
        intprec = 32 if dtype_code == 0 else 64
        dtype = np.float32 if dtype_code == 0 else np.float64
        shape = (d0, d1, d2)[:ndim]
        rate = rate16 / 16.0
        maxbits = max(int(round(rate * 4**ndim)), fixedpoint.EXP_BITS + 1)
        payload_bits = maxbits - 16
        payload_bytes = -(-payload_bits // 8)
        bsize = 4**ndim
        nblocks = 1
        for s in shape:
            nblocks *= (s + 3) // 4

        off = HEADER_SIZE
        emax_codes = buf[off : off + 2 * nblocks].view("<u2").astype(np.uint16)
        off += 2 * nblocks
        payload = buf[off : off + nblocks * payload_bytes]
        if payload.size != nblocks * payload_bytes:
            raise StreamFormatError("cuZFP payload truncated")
        payload = payload.reshape(nblocks, payload_bytes)

        emax, is_zero = fixedpoint.decode_emax(emax_codes)
        nb = np.zeros((nblocks, bsize), dtype=np.uint32 if intprec == 32 else np.uint64)
        for b in range(nblocks):
            if is_zero[b]:
                continue
            s = embedded.BitStream.from_bytes(payload[b].tobytes(), payload_bits)
            nb[b] = embedded.decode_block(s, payload_bits, bsize, intprec)
        coeffs = negabinary.negabinary_to_int(nb, intprec)
        iblocks = transform.inverse(coeffs, ndim)
        blocks = fixedpoint.from_fixed(iblocks, emax, dtype, intprec)
        blocks[is_zero] = 0.0
        return _unblockize(blocks, shape)

    def ratio(self, field: np.ndarray) -> float:
        """Compression ratio implied by the stream this codec emits."""
        return field.size * field.dtype.itemsize / self.compress(field).size


def compress(field: np.ndarray, rate: float) -> np.ndarray:
    return CuZFP(rate).compress(field)


def decompress(buf) -> np.ndarray:
    return CuZFP(rate=8).decompress(buf)
