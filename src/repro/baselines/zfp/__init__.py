"""A from-scratch fixed-rate ZFP implementation standing in for cuZFP.

Stages: :mod:`fixedpoint` (block exponent alignment), :mod:`transform`
(integer lifting + sequency ordering), :mod:`negabinary`, :mod:`embedded`
(group-tested bit-plane coding), composed in :mod:`codec`.
"""

from .codec import CuZFP, compress, decompress

__all__ = ["CuZFP", "compress", "decompress"]
