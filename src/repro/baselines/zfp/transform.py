"""ZFP stage 2: the orthogonal-ish decorrelating lifting transform.

The forward transform applied along each dimension of a 4^d block is the
integer lifting scheme from the ZFP source (``fwd_lift``)::

           ( 4  4  4  4) (x)
    1/16 * ( 5  1 -1 -5) (y)
           (-4  4  4 -4) (z)
           (-2  6 -6  2) (w)

implemented with adds and arithmetic right shifts only.  The inverse
(``inv_lift``) undoes it up to the low bits the shifts discard -- ZFP's
transform is deliberately slightly lossy in the last bit positions, which
its error analysis absorbs.

After the transform, coefficients are reordered by total sequency (sum of
per-axis frequencies) so that the embedded coder sees magnitudes in roughly
decreasing order.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np


def _fwd_lift_axis(b: np.ndarray, axis: int) -> None:
    """In-place forward lifting of length-4 vectors along ``axis`` of an
    int64 array whose ``axis`` has extent 4."""
    idx = [slice(None)] * b.ndim
    def at(i):
        s = list(idx)
        s[axis] = i
        return tuple(s)

    x, y, z, w = b[at(0)].copy(), b[at(1)].copy(), b[at(2)].copy(), b[at(3)].copy()
    x += w; x >>= 1; w -= x
    z += y; z >>= 1; y -= z
    x += z; x >>= 1; z -= x
    w += y; w >>= 1; y -= w
    w += y >> 1; y -= w >> 1
    b[at(0)], b[at(1)], b[at(2)], b[at(3)] = x, y, z, w


def _inv_lift_axis(b: np.ndarray, axis: int) -> None:
    idx = [slice(None)] * b.ndim
    def at(i):
        s = list(idx)
        s[axis] = i
        return tuple(s)

    x, y, z, w = b[at(0)].copy(), b[at(1)].copy(), b[at(2)].copy(), b[at(3)].copy()
    y += w >> 1; w -= y >> 1
    y += w; w <<= 1; w -= y
    z += x; x <<= 1; x -= z
    y += z; z <<= 1; z -= y
    w += x; x <<= 1; x -= w
    b[at(0)], b[at(1)], b[at(2)], b[at(3)] = x, y, z, w


def forward(iblocks: np.ndarray, ndim: int) -> np.ndarray:
    """Forward transform of ``(n, 4**ndim)`` int64 blocks; returns
    coefficients in sequency order, shape ``(n, 4**ndim)``."""
    n = iblocks.shape[0]
    b = iblocks.reshape((n,) + (4,) * ndim).copy()
    # Transform along x first, then y, then z (matching zfp's fwd_xform).
    for axis in range(ndim, 0, -1):
        _fwd_lift_axis(b, axis)
    coeffs = b.reshape(n, -1)
    return coeffs[:, coef_order(ndim)]


def inverse(coeffs: np.ndarray, ndim: int) -> np.ndarray:
    """Inverse transform from sequency-ordered coefficients."""
    n = coeffs.shape[0]
    raw = np.empty_like(coeffs)
    raw[:, coef_order(ndim)] = coeffs
    b = raw.reshape((n,) + (4,) * ndim).copy()
    for axis in range(1, ndim + 1):
        _inv_lift_axis(b, axis)
    return b.reshape(n, -1)


@lru_cache(maxsize=None)
def coef_order(ndim: int) -> tuple:
    """Permutation putting block coefficients in total-sequency order
    (low frequencies first).  Ties are broken by reversed index tuple to
    fix a deterministic order shared by encoder and decoder; this matches
    ZFP's intent (its PERM tables order by total degree) though not
    necessarily its exact tie-breaks."""
    coords = np.indices((4,) * ndim).reshape(ndim, -1).T  # (bsize, ndim)
    keys = sorted(range(len(coords)), key=lambda i: (int(coords[i].sum()), tuple(coords[i])[::-1]))
    return tuple(keys)
