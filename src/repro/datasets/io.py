"""Raw binary field I/O following SDRBench conventions.

SDRBench distributes fields as headerless little-endian ``.f32`` / ``.f64``
files whose dimensions are published out-of-band (Table II); these helpers
read and write that format so the examples can operate on real SDRBench
downloads when available.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Tuple

import numpy as np

_SUFFIX_DTYPES = {".f32": np.dtype("<f4"), ".f64": np.dtype("<f8")}


def dtype_for_path(path) -> np.dtype:
    suffix = Path(path).suffix.lower()
    try:
        return _SUFFIX_DTYPES[suffix]
    except KeyError:
        raise ValueError(
            f"cannot infer dtype from suffix {suffix!r}; expected .f32 or .f64"
        ) from None


def read_field(path, dims: Optional[Tuple[int, ...]] = None) -> np.ndarray:
    """Read a raw SDRBench field; reshape to ``dims`` when given."""
    dtype = dtype_for_path(path)
    data = np.fromfile(path, dtype=dtype)
    if dims is not None:
        expected = int(np.prod(dims))
        if data.size != expected:
            raise ValueError(
                f"{path}: holds {data.size} values but dims {dims} need {expected}"
            )
        data = data.reshape(dims)
    return data


def write_field(path, data: np.ndarray) -> None:
    """Write a field in the raw format matching the path suffix."""
    dtype = dtype_for_path(path)
    np.ascontiguousarray(data, dtype=dtype).tofile(path)
