"""Spectral synthesis of correlated random fields.

Real HPC fields (climate states, hydrodynamic densities, seismic
wavefields) are characterized by power-law spectra: energy concentrated at
low spatial frequencies, with the spectral slope controlling smoothness.
Sampling Gaussian Fourier modes with amplitude ``k^(-beta/2)`` and
inverse-transforming yields fields whose first-order-difference statistics
-- the quantity that determines fixed-length-encoding ratios -- can be
tuned to mimic each Table II dataset (see ``repro.datasets.registry``).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def power_law_field(
    shape: Tuple[int, ...],
    beta: float,
    seed: int,
    dtype=np.float32,
    k_cut: float = None,
) -> np.ndarray:
    """Gaussian random field with isotropic power spectrum ``k**-beta``.

    ``beta`` ~ 0 is white noise; 2 resembles Brownian sheets; 3-4 gives the
    very smooth fields where Outlier-FLE shines.  ``k_cut`` (cycles per
    sample) optionally band-limits the field: the paper's fields live on
    grids of ~1000 samples per axis, so their per-sample gradients are far
    below the value range -- a cutoff reproduces that fine-sampling regime
    on our smaller grids.  Output is normalized to zero mean, unit standard
    deviation.
    """
    rng = np.random.default_rng(seed)
    freqs = np.meshgrid(*[np.fft.fftfreq(s) for s in shape], indexing="ij")
    k2 = sum(f * f for f in freqs)
    k2.flat[0] = np.inf  # kill the DC mode
    amplitude = k2 ** (-beta / 4.0)  # |k|^-beta/2 with k2 = |k|^2
    amplitude.flat[0] = 0.0
    if k_cut is not None:
        amplitude = np.where(k2 <= k_cut * k_cut, amplitude, 0.0)

    noise = rng.normal(size=shape) + 1j * rng.normal(size=shape)
    field = np.fft.ifftn(noise * amplitude).real
    field -= field.mean()
    std = field.std()
    if std > 0:
        field /= std
    return field.astype(dtype)


def band_limited_noise(
    shape: Tuple[int, ...],
    k_min: float,
    k_max: float,
    seed: int,
    dtype=np.float32,
) -> np.ndarray:
    """Noise restricted to an isotropic frequency band (useful for
    oscillatory wavefunction-like data, e.g. QMCPack)."""
    rng = np.random.default_rng(seed)
    freqs = np.meshgrid(*[np.fft.fftfreq(s) for s in shape], indexing="ij")
    k = np.sqrt(sum(f * f for f in freqs))
    mask = (k >= k_min) & (k <= k_max)
    noise = (rng.normal(size=shape) + 1j * rng.normal(size=shape)) * mask
    field = np.fft.ifftn(noise).real
    std = field.std()
    if std > 0:
        field /= std
    return field.astype(dtype)
