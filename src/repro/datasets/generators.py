"""Synthetic stand-ins for the paper's dataset families.

Each generator targets the compression-relevant statistics of one Table
II/IV family (documented per function): smoothness (first-difference
magnitude relative to range), sparsity (zero-block fraction), and
oscillation.  Absolute values are arbitrary; ratios and orderings are what
the reproduction preserves (DESIGN.md Section 2).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .spectral import band_limited_noise, power_law_field


def smooth_field(shape: Tuple[int, ...], beta: float, noise: float, seed: int, dtype=np.float32) -> np.ndarray:
    """Power-law field plus a white-noise floor.

    ``noise`` (relative to unit field std) sets the quantized-delta floor:
    larger noise -> larger fixed lengths -> lower ratios.  Climate/
    hydrodynamics families (CESM-ATM, SCALE, Miranda, NYX) use this with
    different (beta, noise).
    """
    rng = np.random.default_rng(seed + 1)
    f = power_law_field(shape, beta, seed, np.float64)
    if noise > 0:
        f = f + noise * rng.normal(size=shape)
    return f.astype(dtype)


def sparse_wavefield(
    shape: Tuple[int, ...],
    active_fraction: float,
    beta: float,
    seed: int,
    dtype=np.float32,
) -> np.ndarray:
    """Mostly-zero field with localized smooth wave packets.

    Mimics RTM pressure snapshots and the JetIn combustion volume: large
    exactly-zero regions (zero blocks -> 1 byte each) surrounding a smooth
    active region.  ``active_fraction`` is the kept volume fraction.
    """
    f = power_law_field(shape, beta, seed, np.float64)
    envelope = power_law_field(shape, 3.0, seed + 7, np.float64)
    threshold = np.quantile(envelope, 1.0 - active_fraction)
    out = np.where(envelope > threshold, f, 0.0)
    return out.astype(dtype)


def particle_field(n: int, smoothness: float, seed: int, dtype=np.float32) -> np.ndarray:
    """1-D particle attribute stream (HACC positions/velocities).

    HACC stores per-particle attributes; particles are laid out in a
    spatially correlated order, so position fields (xx/yy/zz) are smooth
    ramps with small jitter while velocity fields (vx/vy/vz) carry much
    more entropy.  ``smoothness`` in [0, 1] interpolates between white
    jitter and an almost monotone ramp.
    """
    rng = np.random.default_rng(seed)
    ramp = np.linspace(0.0, 1.0, n)
    walk = np.cumsum(rng.normal(size=n))
    walk /= max(np.abs(walk).max(), 1e-12)
    jitter = rng.normal(size=n)
    jitter /= max(np.abs(jitter).max(), 1e-12)
    f = smoothness * (ramp + 0.2 * walk) + (1.0 - smoothness) * jitter
    return f.astype(dtype)


def oscillatory_field(shape: Tuple[int, ...], k_center: float, seed: int, dtype=np.float32) -> np.ndarray:
    """Band-limited oscillatory data (QMCPack wavefunctions, NWChem
    integrals): neighbouring samples decorrelate quickly, so Outlier-FLE
    gains little over Plain-FLE."""
    return band_limited_noise(shape, 0.5 * k_center, 1.5 * k_center, seed, dtype)


def lattice_field(shape: Tuple[int, ...], period: int, noise: float, seed: int, dtype=np.float32) -> np.ndarray:
    """Periodic solid/void structure with CT-style noise (SynTruss: an
    additively manufactured truss scanned synthetically).  Noise rides on
    the solid material only; voids scan as exact zeros, giving the large
    zero-block population the paper observes for this dataset."""
    rng = np.random.default_rng(seed)
    grids = np.meshgrid(*[np.arange(s) for s in shape], indexing="ij")
    phase = sum(np.sin(2 * np.pi * g / period) for g in grids)
    solid = (phase > 0.3).astype(np.float64)
    f = solid * (1.0 + noise * rng.normal(size=shape))
    return f.astype(dtype)


def turbulence_field(shape: Tuple[int, ...], beta: float, seed: int, dtype=np.float32) -> np.ndarray:
    """Lognormal density field (NYX baryon density, S3D species): smooth in
    the log domain, heavy-tailed in the linear one."""
    g = power_law_field(shape, beta, seed, np.float64)
    f = np.exp(0.8 * g)
    return f.astype(dtype)


def hpc_field(
    shape: Tuple[int, ...],
    seed: int,
    k_cut: float = 0.02,
    body_power: float = 1.0,
    zero_fraction: float = 0.0,
    inflate_range: float = 0.0,
    noise: float = 0.0,
    zero_envelope_kcut: float = 0.02,
    dtype=np.float32,
) -> np.ndarray:
    """Composite generator covering the Table II field families.

    Knobs map directly onto the block-cost tiers of the cuSZp2 format:

    ``k_cut``
        Band limit (cycles/sample): lower -> smaller per-sample drift ->
        smaller fixed lengths (the fine-sampling regime of the paper's
        ~1000-per-axis grids).
    ``body_power``
        Values are shaped as ``sign(g) |g|^p``: large ``p`` concentrates
        the body near zero so a range-relative error bound turns most
        blocks into zero blocks (NYX/SCALE-style heavy tails).
    ``zero_fraction``
        Fraction of the domain forced to exact zero via a smooth envelope
        (RTM/JetIn-style inactive regions, decoded via the memset path).
    ``inflate_range``
        If > 0, a handful of isolated samples are set to +-R times the
        body scale: real HPC fields' global range is dominated by rare
        extremes, which shrinks every other block's quantization integers
        under a range-relative bound.
    ``noise``
        White-noise floor relative to the body scale: the entropy floor
        that keeps ratios finite on rough fields (HACC velocities,
        QMCPack).
    """
    rng = np.random.default_rng(seed + 13)
    g = power_law_field(shape, 3.0, seed, np.float64, k_cut=k_cut)
    f = np.sign(g) * np.abs(g) ** body_power
    std = f.std()
    if std > 0:
        f /= std
    if noise > 0:
        f = f + noise * rng.normal(size=shape)
    if zero_fraction > 0:
        envelope = power_law_field(shape, 3.0, seed + 7, np.float64, k_cut=zero_envelope_kcut)
        threshold = np.quantile(envelope, zero_fraction)
        f = np.where(envelope > threshold, f, 0.0)
    if inflate_range > 0:
        n = max(2, int(f.size * 1e-5))
        idx = rng.choice(f.size, n, replace=False)
        f.flat[idx] = rng.choice([-1.0, 1.0], n) * inflate_range
    return f.astype(dtype)


GENERATORS = {
    "smooth": smooth_field,
    "sparse_wavefield": sparse_wavefield,
    "particle": particle_field,
    "oscillatory": oscillatory_field,
    "lattice": lattice_field,
    "turbulence": turbulence_field,
    "hpc": hpc_field,
}
