"""Synthetic HPC dataset substrate (stand-ins for Tables II and IV)."""

from .generators import GENERATORS, hpc_field
from .io import read_field, write_field
from .registry import (
    ALL_DATASETS,
    DATASETS,
    DOUBLE_PRECISION,
    SINGLE_PRECISION,
    DatasetSpec,
    FieldSpec,
    get_dataset,
)
from .spectral import band_limited_noise, power_law_field

__all__ = [
    "GENERATORS",
    "hpc_field",
    "power_law_field",
    "band_limited_noise",
    "DatasetSpec",
    "FieldSpec",
    "DATASETS",
    "ALL_DATASETS",
    "SINGLE_PRECISION",
    "DOUBLE_PRECISION",
    "get_dataset",
    "read_field",
    "write_field",
]
