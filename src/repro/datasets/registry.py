"""Dataset registry mirroring the paper's Tables II and IV.

Every paper dataset is represented by a :class:`DatasetSpec` holding its
published metadata (suite, dims, field count, size) plus a set of synthetic
:class:`FieldSpec` stand-ins at reproduction scale.  Field generators and
parameters were tuned once against Table III's structure at REL 1e-3
(see EXPERIMENTS.md for the resulting paper-vs-measured table):

* JetIn / RTM-P1000 are dominated by zero blocks (high ``zero_fraction``),
* CESM-ATM / SCALE mix zero regions with very smooth active regions
  (Outlier-FLE gain well above 1),
* HACC position fields are smooth particle streams (the ~2x Outlier gain
  of Fig. 15) while velocity fields are nearly incompressible,
* QMCPack / SynTruss / NYX show modest Outlier gain (oscillation, lattice
  edges, heavy tails respectively),
* Miranda is smooth but dense: low ratio, big Outlier gain.

Synthetic fields are coarser-sampled than the paper's ~1000-per-axis
grids, so absolute ratios land below Table III while orderings and
Outlier/Plain gain factors are preserved; EXPERIMENTS.md quantifies this.

Reproduction-scale shapes hold a few hundred thousand elements per field so
the whole evaluation suite runs in seconds; the 3-D shape is elongated
along the fastest-varying axis (the axis cuSZp2's 1-D blocks follow) so
per-sample drift statistics can be tuned independently of field volume.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field as dc_field
from typing import Dict, Tuple

import numpy as np

from . import generators


@dataclass(frozen=True)
class FieldSpec:
    """One synthetic field: generator name + parameters + shape."""

    name: str
    generator: str
    shape: Tuple[int, ...]
    params: dict = dc_field(default_factory=dict)

    def generate(self, dtype=np.float32, scale: int = 1) -> np.ndarray:
        """Instantiate the field (deterministic in the field name).

        ``scale`` multiplies the extent of the first axis so benchmarks can
        grow streams without retuning per-sample statistics.
        """
        seed = zlib.crc32(self.name.encode()) & 0x7FFFFFFF
        shape = (self.shape[0] * scale,) + tuple(self.shape[1:])
        fn = generators.GENERATORS[self.generator]
        if self.generator == "particle":
            n = int(np.prod(shape))
            return fn(n, seed=seed, dtype=dtype, **self.params)
        return fn(shape, seed=seed, dtype=dtype, **self.params)


@dataclass(frozen=True)
class DatasetSpec:
    """Paper metadata + synthetic fields for one dataset."""

    name: str
    suite: str
    paper_dims: str
    paper_fields: int
    paper_size_gb: float
    dtype: np.dtype
    fields: Tuple[FieldSpec, ...]

    def field(self, name: str) -> FieldSpec:
        for f in self.fields:
            if f.name == name:
                return f
        raise KeyError(f"{self.name} has no field {name!r}; have {[f.name for f in self.fields]}")

    def generate_all(self, scale: int = 1) -> Dict[str, np.ndarray]:
        return {f.name: f.generate(self.dtype, scale) for f in self.fields}


def _hpc(name, shape, **params):
    return FieldSpec(name, "hpc", shape, params)


_2D = (448, 448)
_3D = (48, 48, 256)

#: Table II -- single-precision datasets.
SINGLE_PRECISION = (
    DatasetSpec(
        "CESM-ATM", "SDRBench", "3600x1800x26", 33, 20.71, np.dtype(np.float32),
        (
            _hpc("CLDHGH", _2D, k_cut=0.004, zero_fraction=0.65, inflate_range=25.0, zero_envelope_kcut=0.04),
            _hpc("CLDLOW", _2D, k_cut=0.006, zero_fraction=0.50, inflate_range=18.0, zero_envelope_kcut=0.04),
            _hpc("FLDS", _2D, k_cut=0.003, zero_fraction=0.75, inflate_range=30.0, zero_envelope_kcut=0.03),
            _hpc("PRECT", _2D, k_cut=0.005, body_power=3.0, zero_fraction=0.60, inflate_range=40.0, zero_envelope_kcut=0.05),
            _hpc("TS", _2D, k_cut=0.01, zero_fraction=0.30, inflate_range=12.0, zero_envelope_kcut=0.04),
            _hpc("PHIS", _2D, k_cut=0.003, zero_fraction=0.80, inflate_range=20.0, zero_envelope_kcut=0.03),
        ),
    ),
    DatasetSpec(
        "HACC", "SDRBench", "1,073,726,487", 6, 23.99, np.dtype(np.float32),
        (
            FieldSpec("xx", "particle", (393216,), {"smoothness": 0.998}),
            FieldSpec("yy", "particle", (393216,), {"smoothness": 0.996}),
            FieldSpec("zz", "particle", (393216,), {"smoothness": 0.994}),
            FieldSpec("vx", "particle", (393216,), {"smoothness": 0.35}),
            FieldSpec("vy", "particle", (393216,), {"smoothness": 0.30}),
            FieldSpec("vz", "particle", (393216,), {"smoothness": 0.25}),
        ),
    ),
    DatasetSpec(
        "RTM", "SDRBench", "1008x1008x352", 3, 3.99, np.dtype(np.float32),
        (
            _hpc("P1000", _3D, k_cut=0.01, zero_fraction=0.99, inflate_range=6.0, zero_envelope_kcut=0.08),
            _hpc("P2000", _3D, k_cut=0.015, zero_fraction=0.85, inflate_range=6.0, zero_envelope_kcut=0.06),
            _hpc("P3000", _3D, k_cut=0.025, zero_fraction=0.60, inflate_range=5.0, zero_envelope_kcut=0.05),
        ),
    ),
    DatasetSpec(
        "SCALE", "SDRBench", "1200x1200x98", 12, 6.31, np.dtype(np.float32),
        (
            _hpc("QC", _3D, k_cut=0.005, body_power=2.0, zero_fraction=0.80, inflate_range=25.0, zero_envelope_kcut=0.06),
            _hpc("QR", _3D, k_cut=0.006, body_power=1.5, zero_fraction=0.70, inflate_range=20.0, zero_envelope_kcut=0.06),
            _hpc("U", _3D, k_cut=0.012, zero_fraction=0.35, inflate_range=12.0, zero_envelope_kcut=0.05),
            _hpc("V", _3D, k_cut=0.012, zero_fraction=0.40, inflate_range=12.0, zero_envelope_kcut=0.05),
            _hpc("T", _3D, k_cut=0.008, zero_fraction=0.55, inflate_range=18.0, zero_envelope_kcut=0.05),
        ),
    ),
    DatasetSpec(
        "QMCPack", "SDRBench", "69x69x33120", 2, 1.17, np.dtype(np.float32),
        (
            FieldSpec("einspline", "oscillatory", _3D, {"k_center": 0.015}),
            FieldSpec("einspline-2", "oscillatory", _3D, {"k_center": 0.025}),
        ),
    ),
    DatasetSpec(
        "NYX", "SDRBench", "512x512x512", 6, 3.00, np.dtype(np.float32),
        (
            _hpc("baryon_density", _3D, k_cut=0.008, body_power=3.0, zero_fraction=0.65, inflate_range=50.0, zero_envelope_kcut=0.08),
            _hpc("dark_matter_density", _3D, k_cut=0.008, body_power=4.0, zero_fraction=0.75, inflate_range=60.0, zero_envelope_kcut=0.08),
            _hpc("temperature", _3D, k_cut=0.006, body_power=2.0, zero_fraction=0.60, inflate_range=30.0, zero_envelope_kcut=0.06),
            _hpc("velocity_x", _3D, k_cut=0.02, zero_fraction=0.15, inflate_range=6.0, zero_envelope_kcut=0.05),
        ),
    ),
    DatasetSpec(
        "JetIn", "Open-SciVis", "1408x1080x1100", 1, 6.23, np.dtype(np.float32),
        (_hpc("jet", _3D, k_cut=0.008, zero_fraction=0.9985, inflate_range=8.0, zero_envelope_kcut=0.15),),
    ),
    DatasetSpec(
        "Miranda", "Open-SciVis", "1024x1024x1024", 1, 4.00, np.dtype(np.float32),
        (_hpc("density", _3D, k_cut=0.04),),
    ),
    DatasetSpec(
        "SynTruss", "Open-SciVis", "1200x1200x1200", 1, 6.42, np.dtype(np.float32),
        (FieldSpec("truss", "lattice", _3D, {"period": 64, "noise": 0.25}),),
    ),
)

#: Table IV -- double-precision datasets.
DOUBLE_PRECISION = (
    DatasetSpec(
        "S3D", "SDRBench", "11x500x500x500", 5, 51.22, np.dtype(np.float64),
        (
            _hpc("YCO2", _3D, k_cut=0.005, zero_fraction=0.70, inflate_range=12.0, zero_envelope_kcut=0.06),
            _hpc("YH2O", _3D, k_cut=0.006, zero_fraction=0.65, inflate_range=12.0, zero_envelope_kcut=0.06),
            _hpc("T", _3D, k_cut=0.008, zero_fraction=0.55, inflate_range=10.0, zero_envelope_kcut=0.05),
        ),
    ),
    DatasetSpec(
        "NWChem", "SDRBench", "801,098,891", 1, 5.96, np.dtype(np.float64),
        (
            _hpc("eigenvalues", _3D, k_cut=0.01, body_power=2.0, zero_fraction=0.65, inflate_range=25.0, zero_envelope_kcut=0.08, noise=0.0005),
        ),
    ),
)

ALL_DATASETS = SINGLE_PRECISION + DOUBLE_PRECISION
DATASETS = {d.name: d for d in ALL_DATASETS}


def get_dataset(name: str) -> DatasetSpec:
    try:
        return DATASETS[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(DATASETS)}") from None
