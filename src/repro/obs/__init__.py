"""repro.obs -- observability: structured tracing and metric exporters.

The paper's evaluation is built on per-stage cost attribution (Fig. 12's
kernel split, Fig. 13's scan-state latency, Fig. 16's bandwidth
utilization).  This package gives the reproduction the same lens over its
own hot paths:

* :mod:`~repro.obs.trace` -- :class:`Span`/:class:`Tracer` nested span
  trees; thread-safe, process-aware (pool-worker spans ship back with
  results and re-parent under the submitting request), and zero-cost when
  no tracer is active;
* :mod:`~repro.obs.export` -- JSON span dumps, flamegraph folded stacks,
  Prometheus text exposition of the serve-layer
  :class:`~repro.serve.stats.MetricsRegistry`, and the per-stage cost
  table behind the ``repro trace`` CLI.

See docs/OBSERVABILITY.md for usage and overhead numbers.
"""

from .export import (
    coverage,
    folded,
    prometheus_text,
    spans_to_json,
    stage_rows,
    stage_table,
    summarize,
)
from .trace import (
    Span,
    TraceContext,
    Tracer,
    activate,
    current_tracer,
    deactivate,
    maybe_span,
    set_thread_tracer,
    tracing,
)

__all__ = [
    "Span",
    "TraceContext",
    "Tracer",
    "activate",
    "coverage",
    "current_tracer",
    "deactivate",
    "folded",
    "maybe_span",
    "prometheus_text",
    "set_thread_tracer",
    "spans_to_json",
    "stage_rows",
    "stage_table",
    "summarize",
    "tracing",
]
