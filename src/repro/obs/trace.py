"""Structured tracing: nested span trees over the codec and service layers.

The paper's headline claims are *throughput* numbers -- per-kernel cost
splits (Fig. 12), memory-bandwidth utilization (Fig. 16), scan-state
latency (Fig. 13).  This module is the reproduction's instrument for the
same questions: a :class:`Span` records one timed region (wall time,
bytes in/out, arbitrary attributes), a :class:`Tracer` collects spans
into trees, and the hot paths (codec stages, chunk tasks, pool workers,
scheduler, cache, service facade) open spans through the
zero-cost-when-disabled :func:`maybe_span` guard.

Design constraints, in order:

1. **Zero cost when disabled.**  No tracer active means every
   instrumentation point reduces to one thread-local read plus a shared
   no-op context manager -- no allocation of ``Span`` objects, no locks.
2. **Thread safety.**  Span *nesting* is tracked per thread (each thread
   has its own current-span stack inside a tracer), while the span trees
   themselves are guarded by one tracer lock, so concurrent service
   threads can record into a single tracer.
3. **Process awareness.**  A worker process cannot share a tracer object,
   so the pool protocol ships finished span trees back as plain dicts
   (:meth:`Span.to_dict`) with the task result and the submitting side
   re-parents them under the request's span (:meth:`Tracer.adopt`).
   Span timestamps are ``perf_counter`` values and therefore only
   comparable within one process; *durations* are always valid, which is
   all the exporters use.
"""

from __future__ import annotations

import itertools
import os
import threading
from contextlib import contextmanager, nullcontext
from typing import Any, Dict, List, NamedTuple, Optional, Union
from time import perf_counter

__all__ = [
    "Span",
    "Tracer",
    "TraceContext",
    "activate",
    "current_tracer",
    "deactivate",
    "maybe_span",
    "set_thread_tracer",
    "tracing",
]

_ids = itertools.count(1)


def _new_id() -> str:
    # pid-qualified so ids never collide across pool processes
    return f"{os.getpid():x}-{next(_ids):x}"


class Span:
    """One timed region: name, wall-time, attributes, child spans."""

    __slots__ = ("span_id", "name", "parent_id", "t0", "t1", "pid", "thread",
                 "attrs", "children")

    def __init__(self, name: str, span_id: Optional[str] = None,
                 parent_id: Optional[str] = None, **attrs):
        self.name = name
        self.span_id = span_id if span_id is not None else _new_id()
        self.parent_id = parent_id
        self.t0 = perf_counter()
        self.t1: Optional[float] = None
        self.pid = os.getpid()
        self.thread = threading.current_thread().name
        self.attrs: Dict[str, Any] = dict(attrs)
        self.children: List["Span"] = []

    # -- state ---------------------------------------------------------------

    @property
    def duration_s(self) -> float:
        return (self.t1 if self.t1 is not None else perf_counter()) - self.t0

    @property
    def done(self) -> bool:
        return self.t1 is not None

    def set(self, **attrs) -> "Span":
        """Attach attributes (bytes_in/bytes_out by convention)."""
        self.attrs.update(attrs)
        return self

    def self_s(self) -> float:
        """Duration minus children's durations (clamped at 0: children
        that ran in parallel workers can overlap and exceed the parent)."""
        return max(self.duration_s - sum(c.duration_s for c in self.children), 0.0)

    # -- serialization (crosses the process boundary) ------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "t0": self.t0,
            "t1": self.t1,
            "duration_s": self.duration_s,
            "pid": self.pid,
            "thread": self.thread,
            "attrs": dict(self.attrs),
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Span":
        span = cls.__new__(cls)
        span.name = d["name"]
        span.span_id = d["span_id"]
        span.parent_id = d.get("parent_id")
        span.t0 = d["t0"]
        span.t1 = d["t1"] if d["t1"] is not None else d["t0"] + d["duration_s"]
        span.pid = d.get("pid", 0)
        span.thread = d.get("thread", "?")
        span.attrs = dict(d.get("attrs", {}))
        span.children = [cls.from_dict(c) for c in d.get("children", [])]
        return span

    def __repr__(self):  # pragma: no cover - debugging aid
        state = f"{self.duration_s * 1e3:.3f}ms" if self.done else "open"
        return f"Span({self.name!r}, {state}, children={len(self.children)})"


class Tracer:
    """Thread-safe collector of span trees.

    Two usage styles compose:

    * **implicit nesting** (same thread)::

          with tracer.span("compress") as sp:
              with tracer.span("quantize"):
                  ...

    * **explicit parents** (across threads / callbacks)::

          root = tracer.begin("service.compress", bytes_in=n)
          ...                      # later, possibly on another thread
          tracer.end(root, bytes_out=m)
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._roots: List[Span] = []
        self._index: Dict[str, Span] = {}
        self._tls = threading.local()

    # -- thread-local current-span stack -------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def current(self) -> Optional[Span]:
        """This thread's innermost open span (None outside any span)."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- span lifecycle ------------------------------------------------------

    def _resolve(self, parent: Union[None, str, Span]) -> Optional[Span]:
        if parent is None or isinstance(parent, Span):
            return parent
        return self._index.get(parent)

    def begin(self, name: str, parent: Union[None, str, Span] = None,
              **attrs) -> Span:
        """Open a span.  ``parent`` may be a Span, a span id, or None
        (None nests under this thread's current span, else a new root)."""
        span = Span(name, **attrs)
        with self._lock:
            p = self._resolve(parent)
            if p is None:
                p = self.current()
            if p is not None:
                span.parent_id = p.span_id
                p.children.append(span)
            else:
                self._roots.append(span)
            self._index[span.span_id] = span
        return span

    def end(self, span: Span, **attrs) -> Span:
        if attrs:
            span.attrs.update(attrs)
        if span.t1 is None:
            span.t1 = perf_counter()
        return span

    @contextmanager
    def span(self, name: str, parent: Union[None, str, Span] = None, **attrs):
        """Context manager: open a span, make it this thread's current,
        close it on exit."""
        sp = self.begin(name, parent=parent, **attrs)
        stack = self._stack()
        stack.append(sp)
        try:
            yield sp
        finally:
            stack.pop()
            self.end(sp)

    @contextmanager
    def attach(self, span: Span):
        """Make an *existing* span this thread's current span without
        closing it on exit -- how async completions (callbacks running on
        pool/manager threads) parent their work under a request span."""
        stack = self._stack()
        stack.append(span)
        try:
            yield span
        finally:
            stack.pop()

    def record(self, name: str, t0: float, t1: float,
               parent: Union[None, str, Span] = None, **attrs) -> Span:
        """Insert an already-finished interval (e.g. queue wait measured
        from enqueue/dispatch timestamps)."""
        span = self.begin(name, parent=parent, **attrs)
        span.t0 = t0
        span.t1 = t1
        return span

    # -- cross-process adoption ----------------------------------------------

    def adopt(self, parent: Union[None, str, Span],
              span_dicts: List[dict]) -> List[Span]:
        """Attach span trees serialized by a worker (thread or process)
        under ``parent`` (or as roots).  Worker-side timestamps keep their
        own clock base; only durations are meaningful afterwards."""
        spans = [Span.from_dict(d) for d in span_dicts]
        with self._lock:
            p = self._resolve(parent)
            for span in spans:
                if p is not None:
                    span.parent_id = p.span_id
                    p.children.append(span)
                else:
                    span.parent_id = None
                    self._roots.append(span)
                self._register_tree(span)
        return spans

    def _register_tree(self, span: Span) -> None:
        self._index[span.span_id] = span
        for c in span.children:
            self._register_tree(c)

    # -- inspection ----------------------------------------------------------

    def roots(self) -> List[Span]:
        with self._lock:
            return list(self._roots)

    def find(self, name: str) -> List[Span]:
        """All spans with ``name``, depth-first across every tree."""
        out = []

        def walk(span):
            if span.name == name:
                out.append(span)
            for c in span.children:
                walk(c)

        for r in self.roots():
            walk(r)
        return out

    def clear(self) -> None:
        with self._lock:
            self._roots.clear()
            self._index.clear()


class TraceContext(NamedTuple):
    """What a submission carries down the service stack: which tracer to
    adopt worker spans into, and which span to parent them under
    (``span=None`` adopts at the root)."""

    tracer: Tracer
    span: Optional[Span]


# ---------------------------------------------------------------------------
# The zero-cost-when-disabled guard
# ---------------------------------------------------------------------------

#: Sentinel a pool worker installs so ambient (global) tracing never leaks
#: stray spans into a worker thread -- worker spans are only collected via
#: the explicit ship-back protocol.
DISABLED = object()

_global_tracer: Optional[Tracer] = None
_tls = threading.local()
_NULL = nullcontext()


def activate(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-wide ambient tracer; every
    :func:`maybe_span` instrumentation point starts recording into it."""
    global _global_tracer
    _global_tracer = tracer
    return tracer


def deactivate() -> None:
    global _global_tracer
    _global_tracer = None


def set_thread_tracer(tracer) -> Any:
    """Override the ambient tracer for *this thread only* (a fresh tracer
    per traced pool task, or :data:`DISABLED` to suppress tracing).
    Returns the previous override for restoration."""
    prev = getattr(_tls, "tracer", None)
    _tls.tracer = tracer
    return prev


def current_tracer() -> Optional[Tracer]:
    """The tracer instrumentation points record into: this thread's
    override if set (:data:`DISABLED` -> None), else the global one."""
    tr = getattr(_tls, "tracer", None)
    if tr is None:
        return _global_tracer
    if tr is DISABLED:
        return None
    return tr


@contextmanager
def tracing(tracer: Optional[Tracer] = None):
    """``with tracing() as tracer:`` -- activate (a fresh) tracer for the
    block, deactivate after."""
    tracer = tracer if tracer is not None else Tracer()
    prev = _global_tracer
    activate(tracer)
    try:
        yield tracer
    finally:
        if prev is None:
            deactivate()
        else:
            activate(prev)


def maybe_span(name: str, **attrs):
    """A span context if a tracer is active, else a shared no-op context.

    This is the only call hot paths make; when no tracer is active it
    performs one thread-local read and returns a singleton
    ``nullcontext`` (which yields None, so ``with maybe_span(...) as sp:``
    callers guard attribute updates with ``if sp is not None``).
    """
    tr = current_tracer()
    if tr is None:
        return _NULL
    return tr.span(name, **attrs)
