"""Exporters for span trees and the metrics registry.

Three output shapes, each matched to an existing toolchain:

* :func:`spans_to_json` -- the raw span trees as JSON (machine analysis,
  diffing two runs);
* :func:`folded` -- flamegraph-ready folded stacks
  (``root;child;leaf <self-time-us>`` -- pipe into ``flamegraph.pl`` or
  speedscope);
* :func:`prometheus_text` -- the ``MetricsRegistry`` in Prometheus text
  exposition format (counters, gauges, cumulative histogram buckets);
* :func:`stage_table` -- the human-readable per-stage cost breakdown the
  ``repro trace`` CLI prints: the reproduction's analogue of the paper's
  Fig. 12 kernel-cost split.
"""

from __future__ import annotations

import json
import re
from typing import Dict, Iterable, List, Optional, Tuple

from .trace import Span, Tracer

__all__ = ["folded", "prometheus_text", "spans_to_json", "stage_rows", "stage_table"]


def _roots(obj) -> List[Span]:
    if isinstance(obj, Tracer):
        return obj.roots()
    return list(obj)


def walk(roots: Iterable[Span]):
    """Depth-first iteration over every span in a forest."""
    stack = list(_roots(roots))[::-1]
    while stack:
        span = stack.pop()
        yield span
        stack.extend(span.children[::-1])


# ---------------------------------------------------------------------------
# JSON
# ---------------------------------------------------------------------------

def spans_to_json(obj, indent: Optional[int] = 2) -> str:
    """Serialize a tracer's span forest (or a span list) as JSON."""
    return json.dumps([s.to_dict() for s in _roots(obj)], indent=indent)


# ---------------------------------------------------------------------------
# Folded stacks (flamegraph input)
# ---------------------------------------------------------------------------

def folded(obj) -> str:
    """Folded-stack lines, one per unique span path, weighted by *self*
    time in integer microseconds (the flamegraph convention: a frame's
    total is its own weight plus its descendants')."""
    agg: Dict[str, int] = {}

    def visit(span: Span, prefix: str) -> None:
        path = f"{prefix};{span.name}" if prefix else span.name
        us = int(round(span.self_s() * 1e6))
        if us > 0:
            agg[path] = agg.get(path, 0) + us
        for c in span.children:
            visit(c, path)

    for root in _roots(obj):
        visit(root, "")
    return "\n".join(f"{path} {us}" for path, us in sorted(agg.items()))


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

def _prom_name(name: str, prefix: str) -> str:
    return f"{prefix}_{re.sub(r'[^a-zA-Z0-9_]', '_', name)}"


def _fmt(v: float) -> str:
    return repr(float(v))


def prometheus_text(registry, prefix: str = "repro") -> str:
    """Render a :class:`~repro.serve.stats.MetricsRegistry` in Prometheus
    text exposition format (histograms as cumulative ``_bucket{le=...}``
    series plus ``_sum``/``_count``)."""
    counters, gauges, histograms = registry.metrics()
    lines: List[str] = []
    for name, c in sorted(counters.items()):
        n = _prom_name(name, prefix)
        lines.append(f"# TYPE {n} counter")
        lines.append(f"{n}_total {_fmt(c.value)}")
    for name, g in sorted(gauges.items()):
        n = _prom_name(name, prefix)
        lines.append(f"# TYPE {n} gauge")
        lines.append(f"{n} {_fmt(g.value)}")
        lines.append(f"# TYPE {n}_max gauge")
        lines.append(f"{n}_max {_fmt(g.max)}")
    for name, h in sorted(histograms.items()):
        n = _prom_name(name, prefix)
        bounds, counts, count, total = h.buckets()
        lines.append(f"# TYPE {n} histogram")
        cum = 0
        for bound, c in zip(bounds, counts):
            cum += c
            lines.append(f'{n}_bucket{{le="{_fmt(bound)}"}} {cum}')
        lines.append(f'{n}_bucket{{le="+Inf"}} {count}')
        lines.append(f"{n}_sum {_fmt(total)}")
        lines.append(f"{n}_count {count}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Stage breakdown table
# ---------------------------------------------------------------------------

def stage_rows(obj) -> List[dict]:
    """Aggregate a span forest by span name.

    Each row: ``name``, ``count``, ``total_s`` (sum of durations),
    ``self_s`` (sum of durations minus child durations), ``bytes_in``,
    ``bytes_out`` (summed where present).  Rows are ordered by first
    appearance in a depth-first walk, which reads as pipeline order.
    """
    rows: Dict[str, dict] = {}
    for span in walk(obj):
        row = rows.get(span.name)
        if row is None:
            row = rows[span.name] = {
                "name": span.name, "count": 0, "total_s": 0.0, "self_s": 0.0,
                "bytes_in": 0, "bytes_out": 0,
            }
        row["count"] += 1
        row["total_s"] += span.duration_s
        row["self_s"] += span.self_s()
        row["bytes_in"] += int(span.attrs.get("bytes_in", 0))
        row["bytes_out"] += int(span.attrs.get("bytes_out", 0))
    return list(rows.values())


def coverage(obj, wall_s: float) -> float:
    """Fraction of ``wall_s`` covered by root-span durations (roots run
    sequentially in the trace CLI, so this approaches 1.0 when tracing
    loses nothing to untraced glue)."""
    if wall_s <= 0:
        return 0.0
    return sum(r.duration_s for r in _roots(obj)) / wall_s


def stage_table(obj, wall_s: Optional[float] = None) -> str:
    """Fixed-width stage-cost table over a span forest.

    ``self ms`` is exclusive time (a parent is not charged for its
    children), so the column sums to the traced wall time up to untraced
    glue; ``% wall`` uses ``wall_s`` when given, else the root total.
    """
    rows = stage_rows(obj)
    roots = _roots(obj)
    root_total = sum(r.duration_s for r in roots)
    denom = wall_s if wall_s else root_total
    name_w = max([len(r["name"]) for r in rows] + [len("stage")])
    header = (
        f"{'stage':<{name_w}}  {'count':>6}  {'total ms':>10}  "
        f"{'self ms':>10}  {'% wall':>7}  {'MB in':>8}  {'MB out':>8}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        pct = 100.0 * r["self_s"] / denom if denom else 0.0
        lines.append(
            f"{r['name']:<{name_w}}  {r['count']:>6}  {r['total_s'] * 1e3:>10.3f}  "
            f"{r['self_s'] * 1e3:>10.3f}  {pct:>7.2f}  "
            f"{r['bytes_in'] / 1e6:>8.2f}  {r['bytes_out'] / 1e6:>8.2f}"
        )
    if wall_s:
        gap = max(wall_s - sum(r["self_s"] for r in rows), 0.0)
        lines.append(
            f"{'(untraced)':<{name_w}}  {'':>6}  {'':>10}  "
            f"{gap * 1e3:>10.3f}  {100.0 * gap / denom if denom else 0.0:>7.2f}  "
            f"{'':>8}  {'':>8}"
        )
    return "\n".join(lines)


def summarize(obj, wall_s: float) -> Tuple[str, float]:
    """The stage table plus its root-span coverage of ``wall_s``."""
    return stage_table(obj, wall_s), coverage(obj, wall_s)
