"""Compression-ratio and bit-rate helpers."""

from __future__ import annotations

import numpy as np


def compression_ratio(original_bytes: float, compressed_bytes: float) -> float:
    """Original size over compressed size (Table III's metric)."""
    if compressed_bytes <= 0:
        raise ValueError("compressed size must be positive")
    return float(original_bytes) / float(compressed_bytes)


def ratio_for(data: np.ndarray, stream) -> float:
    """Ratio for a dataset/stream pair."""
    stream = np.asarray(stream)
    return compression_ratio(data.size * data.dtype.itemsize, stream.size)


def bit_rate(data: np.ndarray, stream) -> float:
    """Compressed bits per value (cuZFP's 'rate'; the x-axis of
    rate-distortion curves)."""
    stream = np.asarray(stream)
    return 8.0 * stream.size / data.size


def rate_to_ratio(rate_bits: float, elem_bits: int = 32) -> float:
    """Fixed-rate bits/value -> compression ratio."""
    return elem_bits / rate_bits


def summarize(values) -> str:
    """Table III cell format: 'min~max (avg: X)'."""
    values = list(values)
    return f"{min(values):.2f}~{max(values):.2f} (avg: {np.mean(values):.2f})"
