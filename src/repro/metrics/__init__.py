"""Quality and size metrics (PSNR, SSIM, isosurface preservation, ratios)."""

from .error import check_error_bound, max_abs_error, mse, nrmse, psnr, value_range
from .isosurface import (
    boundary_displacement,
    default_levels,
    isosurface_preservation,
    level_set_iou,
)
from .rate_distortion import RDPoint, curve, dominates
from .ratio import bit_rate, compression_ratio, rate_to_ratio, ratio_for, summarize
from .ssim import ssim, ssim_slices

__all__ = [
    "max_abs_error",
    "check_error_bound",
    "mse",
    "nrmse",
    "psnr",
    "value_range",
    "ssim",
    "ssim_slices",
    "level_set_iou",
    "default_levels",
    "isosurface_preservation",
    "boundary_displacement",
    "compression_ratio",
    "ratio_for",
    "bit_rate",
    "rate_to_ratio",
    "summarize",
    "RDPoint",
    "curve",
    "dominates",
]
