"""Rate-distortion curves: PSNR (or SSIM) as a function of bit rate.

Section V-D argues cuSZp2 "should have the best rate-distortion curves
among all error-bounded GPU lossy compressors" because the FLE compressors
share one lossy step -- identical distortion -- while cuSZp2 emits the
fewest bits.  This module computes the curves that verify that argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from .error import psnr
from .ratio import bit_rate


@dataclass(frozen=True)
class RDPoint:
    error_bound: float
    bits_per_value: float
    psnr_db: float


def curve(
    data: np.ndarray,
    compress_fn: Callable[[np.ndarray, float], np.ndarray],
    decompress_fn: Callable[[np.ndarray], np.ndarray],
    rel_bounds: Sequence[float] = (1e-1, 1e-2, 1e-3, 1e-4),
) -> List[RDPoint]:
    """Sweep REL bounds, returning (rate, PSNR) points sorted by rate."""
    points = []
    for rel in rel_bounds:
        stream = compress_fn(data, rel)
        recon = decompress_fn(stream)
        points.append(RDPoint(rel, bit_rate(data, stream), psnr(data, recon.reshape(data.shape))))
    return sorted(points, key=lambda p: p.bits_per_value)


def dominates(a: List[RDPoint], b: List[RDPoint]) -> bool:
    """Does curve ``a`` dominate ``b``: at every rate of ``b``, does ``a``
    offer at least that PSNR at no more bits?  (Interpolated comparison on
    the overlapping rate range.)"""
    if not a or not b:
        return False
    ra = [p.bits_per_value for p in a]
    pa = [p.psnr_db for p in a]
    lo, hi = max(min(ra), min(p.bits_per_value for p in b)), min(max(ra), max(p.bits_per_value for p in b))
    ok = True
    for p in b:
        if lo <= p.bits_per_value <= hi:
            interp = np.interp(p.bits_per_value, ra, pa)
            if interp < p.psnr_db - 1e-9:
                ok = False
    return ok
