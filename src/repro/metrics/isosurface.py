"""Isosurface-preservation metrics: the quantitative stand-in for Fig. 18.

The paper renders isosurfaces of reconstructed RTM fields with Mayavi and
inspects them visually; cuZFP "corrupts the original images" at aggressive
ratios while cuSZp2 "almost preserves identical features due to error
control".  Without a renderer we quantify the same phenomenon: an
isosurface at level ``t`` is the boundary of the super-level set
``data > t``, so comparing the super-level sets of original and
reconstructed volumes (intersection over union) measures exactly how much
the rendered surface would move.  A score of 1.0 means the isosurface is
pixel-identical.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def level_set_iou(original: np.ndarray, reconstructed: np.ndarray, level: float) -> float:
    """IoU of the ``> level`` super-level sets (1.0 = identical surface)."""
    a = np.asarray(original) > level
    b = np.asarray(reconstructed) > level
    union = np.logical_or(a, b).sum()
    if union == 0:
        return 1.0  # neither volume crosses the level: surfaces agree (empty)
    return float(np.logical_and(a, b).sum() / union)


def default_levels(data: np.ndarray, n: int = 5) -> np.ndarray:
    """Representative iso levels: evenly spaced interior quantiles, which is
    where visualization tools place surfaces by default."""
    qs = np.linspace(0.1, 0.9, n)
    return np.quantile(np.asarray(data, dtype=np.float64), qs)


def isosurface_preservation(
    original: np.ndarray,
    reconstructed: np.ndarray,
    levels: Sequence[float] = None,
) -> float:
    """Mean level-set IoU over several iso levels -- the Fig. 18 score."""
    if levels is None:
        levels = default_levels(original)
    scores = [level_set_iou(original, reconstructed, float(t)) for t in levels]
    return float(np.mean(scores))


def boundary_displacement(original: np.ndarray, reconstructed: np.ndarray, level: float) -> float:
    """Fraction of samples whose side of the isosurface flipped -- a
    stricter, symmetric-difference view of surface corruption."""
    a = np.asarray(original) > level
    b = np.asarray(reconstructed) > level
    return float(np.logical_xor(a, b).mean())
