"""Pointwise error metrics: the error-bound contract, NRMSE and PSNR."""

from __future__ import annotations

import numpy as np


def max_abs_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Largest pointwise absolute error (the quantity REL/ABS bounds cap)."""
    a = np.asarray(original, dtype=np.float64).reshape(-1)
    b = np.asarray(reconstructed, dtype=np.float64).reshape(-1)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return float(np.abs(a - b).max())


def check_error_bound(original, reconstructed, eb_abs: float, ulp_slack: bool = True) -> bool:
    """The paper's 'Pass error check!': is every pointwise error within the
    bound?  ``ulp_slack`` allows the half-ULP the final float cast of the
    reconstruction may add (see repro.core.quantize)."""
    err = max_abs_error(original, reconstructed)
    slack = 0.0
    if ulp_slack:
        r = np.asarray(reconstructed)
        slack = 0.5 * float(np.spacing(np.abs(r).max()))
    return err <= eb_abs + slack


def value_range(data: np.ndarray) -> float:
    return float(np.max(data) - np.min(data))


def mse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    a = np.asarray(original, dtype=np.float64).reshape(-1)
    b = np.asarray(reconstructed, dtype=np.float64).reshape(-1)
    return float(np.mean((a - b) ** 2))


def nrmse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Root mean squared error normalized by the value range."""
    rng = value_range(original)
    if rng == 0.0:
        return 0.0 if max_abs_error(original, reconstructed) == 0 else float("inf")
    return float(np.sqrt(mse(original, reconstructed)) / rng)


def psnr(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB against the value range (the metric
    of the paper's rate-distortion discussion, Section V-D)."""
    m = mse(original, reconstructed)
    rng = value_range(original)
    if m == 0.0:
        return float("inf")
    if rng == 0.0:
        return float("-inf")
    return float(10.0 * np.log10(rng * rng / m))
