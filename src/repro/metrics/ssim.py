"""Structural similarity (SSIM), windowed, for 2-D slices and 3-D volumes.

Implements the Wang et al. [66] index with a Gaussian window via separable
``scipy.ndimage`` filtering, generalized to N dimensions (HPC practice
evaluates SSIM on volumes or on slice stacks).  Higher is better; identical
arrays score 1.0.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

#: Standard SSIM stabilization constants (relative to the dynamic range).
K1 = 0.01
K2 = 0.03


def _filter(x: np.ndarray, sigma: float) -> np.ndarray:
    return ndimage.gaussian_filter(x, sigma=sigma, mode="reflect")


def ssim(
    original: np.ndarray,
    reconstructed: np.ndarray,
    sigma: float = 1.5,
    data_range: float = None,
) -> float:
    """Mean SSIM over the field.

    ``data_range`` defaults to the original's value range (the convention
    for floating HPC data, where no fixed 255 peak exists).
    """
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(reconstructed, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if data_range is None:
        data_range = float(a.max() - a.min())
    if data_range == 0.0:
        return 1.0 if np.array_equal(a, b) else 0.0

    c1 = (K1 * data_range) ** 2
    c2 = (K2 * data_range) ** 2

    mu_a = _filter(a, sigma)
    mu_b = _filter(b, sigma)
    mu_aa = mu_a * mu_a
    mu_bb = mu_b * mu_b
    mu_ab = mu_a * mu_b
    var_a = _filter(a * a, sigma) - mu_aa
    var_b = _filter(b * b, sigma) - mu_bb
    cov = _filter(a * b, sigma) - mu_ab

    num = (2 * mu_ab + c1) * (2 * cov + c2)
    den = (mu_aa + mu_bb + c1) * (var_a + var_b + c2)
    return float(np.mean(num / den))


def ssim_slices(original: np.ndarray, reconstructed: np.ndarray, axis: int = 0, sigma: float = 1.5) -> float:
    """Mean 2-D SSIM over slices of a 3-D volume along ``axis`` (the way
    visualization-oriented studies often report volume SSIM)."""
    a = np.moveaxis(np.asarray(original), axis, 0)
    b = np.moveaxis(np.asarray(reconstructed), axis, 0)
    data_range = float(a.max() - a.min())
    vals = [ssim(sa, sb, sigma=sigma, data_range=data_range) for sa, sb in zip(a, b)]
    return float(np.mean(vals))
