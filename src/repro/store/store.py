"""``CompressedStore``: named compressed arrays under one memory budget.

The store is the capacity lever the ROADMAP's QTensor direction asks for:
hold a working set of arrays compressed in RAM, and when even the
*compressed* footprint outgrows the configured budget, spill the coldest
arrays to disk as CSZ2ARC2 archives and fault them back in transparently
on next access.  Accessing ``store["psi"]`` always returns a live
:class:`~repro.store.array.CompressedArray`, wherever its bytes currently
live.

Budget semantics (see docs/STORE.md):

* the budget covers the *resident footprint* -- compressed streams plus
  dirty write overlays plus decode caches -- of every in-RAM array;
* eviction is LRU over whole arrays (an array is the spill unit because a
  CSZ2 stream is the integrity/addressing unit);
* the most recently touched array is never spilled, so a single array
  larger than the budget stays resident -- the budget is a target the
  store converges to, not a hard allocation failure;
* spilling flushes dirty blocks first, so a spill file always verifies
  clean and fault-in is byte-exact.

``checkpoint(path)`` flushes everything and writes one archive holding
every array (resident or spilled); ``restore(path)`` reloads it.
"""

from __future__ import annotations

import tempfile
from collections import OrderedDict
from typing import Dict, List, Optional

import numpy as np

from repro.obs import trace as obs_trace

from .array import CompressedArray, StoreError
from .spill import SpillDir, read_checkpoint, write_checkpoint


class CompressedStore:
    """A dict of :class:`CompressedArray` with LRU spill-to-disk.

    Parameters
    ----------
    budget_bytes:
        Resident-footprint target.  ``0`` (or anything smaller than the
        hottest array) degenerates to exactly one resident array.
    spill_dir:
        Directory for spill archives.  ``None`` creates a private
        temporary directory that lives as long as the store.
    stats:
        Optional :class:`~repro.serve.stats.MetricsRegistry`; the store
        publishes ``store.*`` gauges/counters into it (Prometheus-ready
        via :func:`repro.obs.prometheus_text`).
    """

    def __init__(
        self,
        budget_bytes: int = 256 << 20,
        spill_dir: Optional[str] = None,
        stats=None,
        default_rel: float = 1e-3,
        cache_bytes_per_array: Optional[int] = None,
    ):
        if budget_bytes < 0:
            raise StoreError(f"budget_bytes must be >= 0, got {budget_bytes}")
        self.budget_bytes = int(budget_bytes)
        self._tmpdir = None
        if spill_dir is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-store-")
            spill_dir = self._tmpdir.name
        self._spill = SpillDir(spill_dir)
        self._stats = stats
        self.default_rel = default_rel
        self._cache_bytes = cache_bytes_per_array
        #: resident arrays in LRU order (last = most recently used)
        self._resident: "OrderedDict[str, CompressedArray]" = OrderedDict()
        #: names currently on disk only
        self._spilled: set = set()
        self.spills = 0
        self.faults = 0
        self.spill_bytes = 0
        self.fault_bytes = 0

    # -- insertion -----------------------------------------------------------

    def put(
        self,
        name: str,
        data: np.ndarray,
        rel: Optional[float] = None,
        abs: Optional[float] = None,  # noqa: A002 - mirrors repro.compress
        **kw,
    ) -> CompressedArray:
        """Compress ``data`` and store it under ``name`` (replacing any
        previous array of that name, resident or spilled)."""
        if rel is None and abs is None:
            rel = self.default_rel
        if self._cache_bytes is not None:
            kw.setdefault("cache_bytes", self._cache_bytes)
        arr = CompressedArray.from_array(data, rel=rel, abs=abs, **kw)
        self._install(name, arr)
        return arr

    def adopt(self, name: str, buf, **kw) -> CompressedArray:
        """Store an existing CSZ2 stream under ``name`` without recoding."""
        if self._cache_bytes is not None:
            kw.setdefault("cache_bytes", self._cache_bytes)
        arr = CompressedArray.from_stream(buf, **kw)
        self._install(name, arr)
        return arr

    def _install(self, name: str, arr: CompressedArray) -> None:
        self._resident.pop(name, None)
        if name in self._spilled:
            self._spilled.discard(name)
            self._spill.remove(name)
        self._resident[name] = arr
        self._enforce_budget(protect=name)
        self._publish()

    def __setitem__(self, name: str, data) -> None:
        """``store[name] = ndarray`` compresses under the store default
        bound; assigning a :class:`CompressedArray` adopts it as-is."""
        if isinstance(data, CompressedArray):
            self._install(name, data)
        else:
            self.put(name, np.asarray(data))

    # -- access --------------------------------------------------------------

    def __getitem__(self, name: str) -> CompressedArray:
        arr = self._resident.get(name)
        if arr is not None:
            self._resident.move_to_end(name)
            # write-back overlays and decode caches grow between accesses,
            # so re-check the budget on every touch, not just on install
            self._enforce_budget(protect=name)
            self._publish()
            return arr
        if name not in self._spilled:
            raise KeyError(f"store has no array {name!r}; have {self.names()}")
        return self._fault_in(name)

    def get(self, name: str, default=None):
        try:
            return self[name]
        except KeyError:
            return default

    def __contains__(self, name: str) -> bool:
        return name in self._resident or name in self._spilled

    def __len__(self) -> int:
        return len(self._resident) + len(self._spilled)

    def names(self) -> List[str]:
        return sorted(list(self._resident) + list(self._spilled))

    def drop(self, name: str) -> bool:
        """Forget an array entirely (RAM and disk)."""
        hit = self._resident.pop(name, None) is not None
        if name in self._spilled:
            self._spilled.discard(name)
            self._spill.remove(name)
            hit = True
        self._publish()
        return hit

    # -- tiering -------------------------------------------------------------

    @property
    def resident_bytes(self) -> int:
        return sum(a.resident_nbytes for a in self._resident.values())

    @property
    def compressed_bytes(self) -> int:
        return sum(a.compressed_nbytes for a in self._resident.values())

    @property
    def dirty_bytes(self) -> int:
        return sum(a.dirty_nbytes for a in self._resident.values())

    @property
    def logical_bytes(self) -> int:
        """Decoded size of the resident working set (what plain ndarrays
        would cost)."""
        return sum(a.nbytes for a in self._resident.values())

    @property
    def spilled_names(self) -> List[str]:
        return sorted(self._spilled)

    def _enforce_budget(self, protect: Optional[str] = None) -> None:
        """Spill coldest-first until resident footprint fits the budget.
        ``protect`` (the array just touched) is never spilled."""
        while self.resident_bytes > self.budget_bytes and len(self._resident) > 1:
            victim = next((n for n in self._resident if n != protect), None)
            if victim is None:
                break
            self._spill_one(victim)

    def _spill_one(self, name: str) -> None:
        arr = self._resident.pop(name)
        with obs_trace.maybe_span("store.spill", array=name) as sp:
            buf = arr.flush()  # spill files always verify clean
            nbytes = self._spill.spill(name, buf)
            self._spilled.add(name)
            self.spills += 1
            self.spill_bytes += nbytes
            if sp is not None:
                sp.set(bytes_out=nbytes)
        if self._stats is not None:
            self._stats.counter("store.spills").inc()
            self._stats.counter("store.spill_bytes").inc(nbytes)
        self._publish()

    def _fault_in(self, name: str) -> CompressedArray:
        with obs_trace.maybe_span("store.fault_in", array=name) as sp:
            buf = self._spill.fault_in(name)
            kw = {}
            if self._cache_bytes is not None:
                kw["cache_bytes"] = self._cache_bytes
            # the archive CRC already vouched for the bytes; skip the
            # stream-level re-verify on the hot fault path
            arr = CompressedArray.from_stream(buf, verify="skip", **kw)
            self._spilled.discard(name)
            self._spill.remove(name)
            self._resident[name] = arr
            self.faults += 1
            self.fault_bytes += int(buf.size)
            if sp is not None:
                sp.set(bytes_in=int(buf.size))
        if self._stats is not None:
            self._stats.counter("store.faults").inc()
            self._stats.counter("store.fault_bytes").inc(int(buf.size))
        self._enforce_budget(protect=name)
        self._publish()
        return arr

    def spill_all(self) -> None:
        """Push every resident array to disk (e.g. before a fork)."""
        for name in list(self._resident):
            self._spill_one(name)

    def flush_all(self) -> None:
        """Flush every resident array's dirty blocks (no spilling)."""
        for arr in self._resident.values():
            arr.flush()
        self._publish()

    # -- checkpoint / restore ------------------------------------------------

    def checkpoint(self, path: str) -> int:
        """Flush everything and write one archive holding every array
        (resident or spilled); returns bytes written."""
        with obs_trace.maybe_span("store.checkpoint", path=path) as sp:
            streams: Dict[str, np.ndarray] = {}
            for name, arr in self._resident.items():
                streams[name] = arr.flush()
            for name in self._spilled:
                streams[name] = self._spill.fault_in(name)
            if not streams:
                raise StoreError("cannot checkpoint an empty store")
            nbytes = write_checkpoint(path, streams)
            if sp is not None:
                sp.set(bytes_out=nbytes, arrays=len(streams))
            if self._stats is not None:
                self._stats.counter("store.checkpoints").inc()
            return nbytes

    def restore(self, path: str) -> List[str]:
        """Load a checkpoint, replacing same-named arrays; returns the
        restored names.  Arrays beyond the budget spill right back out."""
        with obs_trace.maybe_span("store.restore", path=path):
            streams = read_checkpoint(path)
            for name, buf in streams.items():
                # checkpoint CRCs verified on read; adopt without re-scan
                kw = {"verify": "skip"}
                if self._cache_bytes is not None:
                    kw["cache_bytes"] = self._cache_bytes
                self._install(name, CompressedArray.from_stream(buf, **kw))
            return sorted(streams)

    # -- observability -------------------------------------------------------

    def _publish(self) -> None:
        if self._stats is None:
            return
        g = self._stats.gauge
        g("store.resident_bytes").set(self.resident_bytes)
        g("store.compressed_bytes").set(self.compressed_bytes)
        g("store.dirty_bytes").set(self.dirty_bytes)
        g("store.logical_bytes").set(self.logical_bytes)
        g("store.arrays_resident").set(len(self._resident))
        g("store.arrays_spilled").set(len(self._spilled))
        g("store.budget_bytes").set(self.budget_bytes)

    def stats_snapshot(self) -> dict:
        """Counters and footprint in one dict (used by store-bench)."""
        return {
            "arrays_resident": len(self._resident),
            "arrays_spilled": len(self._spilled),
            "resident_bytes": self.resident_bytes,
            "compressed_bytes": self.compressed_bytes,
            "dirty_bytes": self.dirty_bytes,
            "logical_bytes": self.logical_bytes,
            "budget_bytes": self.budget_bytes,
            "spills": self.spills,
            "faults": self.faults,
            "spill_bytes": self.spill_bytes,
            "fault_bytes": self.fault_bytes,
        }

    def __repr__(self) -> str:
        return (
            f"CompressedStore({len(self._resident)} resident / "
            f"{len(self._spilled)} spilled, {self.resident_bytes}B of "
            f"{self.budget_bytes}B budget)"
        )

    def close(self) -> None:
        """Drop resident arrays and clean the private temp spill dir."""
        self._resident.clear()
        self._spilled.clear()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    def __enter__(self) -> "CompressedStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
