"""``CompressedArray``: an N-d array whose backing storage is a CSZ2 stream.

The codec so far has been a request/response service: hand it a full
field, get bytes back, decode the whole thing to touch one value.  This
module turns it into a *data structure*.  A :class:`CompressedArray`
holds exactly one compressed stream in memory and serves numpy-style
basic indexing against it:

* ``__getitem__`` decodes only the 32-element blocks (1-D predictor) or
  Lorenzo tiles (2-D/3-D predictor) the requested region touches, through
  a per-array decoded-block LRU (:class:`~repro.serve.cache.DecodeCache`
  machinery, so eviction and hit accounting come for free);
* ``__setitem__`` (1-D-predictor streams) keeps the written blocks as a
  decoded *dirty overlay* -- reads see them immediately -- and re-encodes
  lazily: :meth:`flush` splices every dirty block back into the stream in
  one batched :meth:`~repro.core.random_access.RandomAccessor.rewrite_blocks`
  pass, quantized under the array's stored error bound.

The write-back path is only available for 1-D-predictor streams (the
cuSZp2 default, and what :meth:`from_array` produces for any logical
shape); tile streams are readable but refuse writes, matching the
read-only scope of :class:`~repro.core.tile_access.TileAccessor`.

Error-bound semantics of read-modify-write: a written value is stored
exactly until the next flush, then snapped to the quantization lattice
(error <= eb).  Quantization is idempotent on lattice values, so repeated
flushes never accumulate error; but every *fresh* write re-quantizes, so
a value is only ever one quantization step from what was last written.
See docs/STORE.md for the full caveats (including REL-bound arrays whose
writes exceed the original value range).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.obs import trace as obs_trace

from ..core import compress
from ..core.compressor import CuSZp2, decompress
from ..core.errors import CuSZp2Error
from ..core.random_access import RandomAccessor
from ..core.tile_access import TileAccessor
from ..core.stream import StreamHeader
from ..serve.cache import DecodeCache


class StoreError(CuSZp2Error):
    """Misuse of the compressed-array tier (bad index, read-only write)."""


#: Default decoded-block cache budget per array (256 KiB: ~2000 blocks of
#: 32 float32 -- enough to keep a scan's working stripe hot without letting
#: hot arrays silently re-inflate to their decoded size).
DEFAULT_CACHE_BYTES = 256 << 10


def _shape_of(header: StreamHeader, orig_ndim: int) -> Tuple[int, ...]:
    if orig_ndim == 0:
        return (header.nelems,)
    dims = header.dims[:orig_ndim] if orig_ndim <= len(header.dims) else header.dims
    return tuple(int(d) for d in dims)


class CompressedArray:
    """A numpy-like array held compressed in RAM (see module docstring).

    Construct with :meth:`from_array` (compresses for you, always
    writable) or :meth:`from_stream` (wraps an existing CSZ2 stream;
    writable iff it uses the 1-D predictor).
    """

    def __init__(
        self,
        buf,
        *,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        verify: str = "auto",
        stats=None,
    ):
        if not isinstance(buf, np.ndarray):
            buf = np.frombuffer(bytes(buf), dtype=np.uint8)
        self._buf = buf
        self._stats = stats
        header = StreamHeader.unpack(buf)
        self._tile_accessor: Optional[TileAccessor] = None
        self._accessor: Optional[RandomAccessor] = None
        if header.predictor_ndim == 1:
            self._accessor = RandomAccessor(buf, verify_integrity=verify)
            self.header = self._accessor.header
        else:
            self._tile_accessor = TileAccessor(buf, verify_integrity=verify)
            self.header = self._tile_accessor.header
        self.shape = _shape_of(self.header, CuSZp2._read_orig_ndim(buf))
        self.dtype = np.dtype(self.header.dtype)
        self._strides = tuple(
            int(np.prod(self.shape[k + 1 :], dtype=np.int64))
            for k in range(len(self.shape))
        )
        self._cache = DecodeCache(max_bytes=cache_bytes)
        self._dirty: dict = {}  # block index -> decoded values (valid length)
        self._dirty_bytes = 0

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_array(
        cls,
        data: np.ndarray,
        rel: Optional[float] = None,
        abs: Optional[float] = None,  # noqa: A002 - mirrors repro.compress
        mode: str = "outlier",
        block: int = 32,
        group_blocks: Optional[int] = None,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        stats=None,
    ) -> "CompressedArray":
        """Compress ``data`` (1-D predictor, so the array is writable) and
        wrap the stream.  The logical shape is preserved for <= 3-D data."""
        kw = {} if group_blocks is None else {"group_blocks": group_blocks}
        buf = compress(data, rel=rel, abs=abs, mode=mode, block=block, **kw)
        # the stream was assembled this instant; skip the integrity re-scan
        return cls(buf, cache_bytes=cache_bytes, verify="skip", stats=stats)

    @classmethod
    def from_stream(
        cls,
        buf,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        verify: str = "auto",
        stats=None,
    ) -> "CompressedArray":
        """Wrap an existing CSZ2 stream (verified by default)."""
        return cls(buf, cache_bytes=cache_bytes, verify=verify, stats=stats)

    # -- sizes ---------------------------------------------------------------

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        return int(self.header.nelems)

    @property
    def nbytes(self) -> int:
        """Logical (decoded) size: what this array would cost as an ndarray."""
        return self.size * self.dtype.itemsize

    @property
    def compressed_nbytes(self) -> int:
        return int(self._buf.size)

    @property
    def dirty_nbytes(self) -> int:
        return self._dirty_bytes

    @property
    def cache_nbytes(self) -> int:
        return self._cache.bytes

    @property
    def resident_nbytes(self) -> int:
        """Actual RAM footprint: stream + dirty overlay + decode cache."""
        return self.compressed_nbytes + self.dirty_nbytes + self.cache_nbytes

    @property
    def eb_abs(self) -> float:
        return float(self.header.eb_abs)

    @property
    def dirty_blocks(self) -> int:
        return len(self._dirty)

    @property
    def writable(self) -> bool:
        return self._accessor is not None

    @property
    def cache(self) -> DecodeCache:
        """The per-array decoded-block LRU (hit/miss/eviction accounting)."""
        return self._cache

    def __repr__(self) -> str:
        kind = "blocks" if self.writable else "tiles"
        return (
            f"CompressedArray(shape={self.shape}, dtype={self.dtype.name}, "
            f"{self.compressed_nbytes}B compressed / {self.nbytes}B logical, "
            f"{kind}, dirty={self.dirty_blocks})"
        )

    # -- index resolution ----------------------------------------------------

    def _resolve_index(self, key):
        """Normalize basic indexing to per-axis int64 index arrays.

        Returns ``(axes, out_shape)`` where ``axes`` has one sorted-ascending
        or stepped ``np.arange`` per array axis and ``out_shape`` drops the
        axes indexed by scalars (numpy squeezing semantics).  Fancy/boolean
        indexing is out of scope for the compressed tier.
        """
        if not isinstance(key, tuple):
            key = (key,)
        if key.count(Ellipsis) > 1:
            raise StoreError("an index may use at most one Ellipsis")
        if Ellipsis in key:
            i = key.index(Ellipsis)
            fill = self.ndim - (len(key) - 1)
            if fill < 0:
                raise StoreError(
                    f"too many indices for a {self.ndim}-d compressed array"
                )
            key = key[:i] + (slice(None),) * fill + key[i + 1 :]
        if len(key) > self.ndim:
            raise StoreError(
                f"too many indices for a {self.ndim}-d compressed array: {len(key)}"
            )
        key = key + (slice(None),) * (self.ndim - len(key))

        axes = []
        out_shape = []
        for k, (idx, dim) in enumerate(zip(key, self.shape)):
            if isinstance(idx, slice):
                r = np.arange(*idx.indices(dim), dtype=np.int64)
                axes.append(r)
                out_shape.append(r.size)
            elif isinstance(idx, (int, np.integer)):
                i = int(idx)
                if i < 0:
                    i += dim
                if not 0 <= i < dim:
                    raise StoreError(
                        f"index {int(idx)} out of bounds for axis {k} (size {dim})"
                    )
                axes.append(np.array([i], dtype=np.int64))
                # scalar index: axis squeezed from the result
            else:
                raise StoreError(
                    f"compressed arrays support basic indexing only "
                    f"(int/slice/Ellipsis); got {type(idx).__name__} on axis {k}"
                )
        return axes, tuple(out_shape)

    def _flat_indices(self, axes) -> np.ndarray:
        """Row-major flat element indices of the selected region (C order)."""
        if not axes:
            return np.zeros(1, dtype=np.int64)
        grids = np.ix_(*axes)
        flat = sum(g * s for g, s in zip(grids, self._strides))
        return np.asarray(flat, dtype=np.int64).reshape(-1)

    # -- block materialization (1-D predictor path) --------------------------

    def _valid_len(self, b: int) -> int:
        L = self.header.block
        return min(L, self.size - b * L)

    def _block_table(self, uniq: np.ndarray) -> np.ndarray:
        """Decoded values for blocks ``uniq`` (sorted) as an ``(k, L)``
        table: dirty overlay first, then the LRU, then a single batched
        stream decode for whatever is left."""
        L = self.header.block
        table = np.empty((uniq.size, L), dtype=self.dtype)
        missing = []
        for row, b in enumerate(uniq.tolist()):
            dirty = self._dirty.get(b)
            if dirty is not None:
                table[row, : dirty.size] = dirty
                if dirty.size < L:
                    table[row, dirty.size :] = dirty[-1] if dirty.size else 0
                continue
            hit = self._cache.get(f"b{b}")
            if hit is not None:
                table[row] = hit
                continue
            missing.append((row, b))
        if missing:
            rows = self._accessor.decode_blocks(
                np.array([b for _, b in missing], dtype=np.int64)
            )
            for (row, b), decoded in zip(missing, rows):
                table[row] = decoded
                self._cache.put(f"b{b}", decoded)
        return table

    # -- reads ---------------------------------------------------------------

    def __getitem__(self, key):
        with obs_trace.maybe_span("store.read") as sp:
            axes, out_shape = self._resolve_index(key)
            if self._accessor is not None:
                out = self._read_blocks(axes, out_shape)
            else:
                out = self._read_tiles(axes, out_shape)
            if sp is not None:
                sp.set(bytes_out=int(out.nbytes if isinstance(out, np.ndarray) else self.dtype.itemsize))
            if self._stats is not None:
                self._stats.counter("store.reads").inc()
                self._stats.counter("store.read_bytes").inc(
                    int(np.prod(out_shape, dtype=np.int64)) * self.dtype.itemsize
                )
            return out

    def _read_blocks(self, axes, out_shape) -> np.ndarray:
        flat = self._flat_indices(axes)
        L = self.header.block
        blocks = flat // L
        offs = flat % L
        uniq = np.unique(blocks)
        table = self._block_table(uniq)
        pos = np.searchsorted(uniq, blocks)
        out = table[pos, offs].reshape(out_shape)
        return out[()] if out_shape == () else out

    def _read_tiles(self, axes, out_shape) -> np.ndarray:
        if any(a.size == 0 for a in axes):
            return np.empty(out_shape, dtype=self.dtype)
        # decode the bounding box of the selection (stepped/reversed slices
        # included), then gather the selected lattice out of it
        lo = tuple(int(a.min()) for a in axes)
        hi = tuple(int(a.max()) + 1 for a in axes)
        region = self._tile_accessor.decode_region(lo, hi)
        rel = [a - l for a, l in zip(axes, lo)]
        out = region[np.ix_(*rel)].reshape(out_shape)
        return out[()] if out_shape == () else out

    def to_numpy(self) -> np.ndarray:
        """Full decode with the dirty overlay applied (no flush)."""
        with obs_trace.maybe_span("store.read", full=True):
            out = decompress(self._buf, integrity="skip")
            if self._dirty:
                flat = out.reshape(-1)
                L = self.header.block
                for b, vals in self._dirty.items():
                    flat[b * L : b * L + vals.size] = vals
            return out

    # -- writes --------------------------------------------------------------

    def __setitem__(self, key, value) -> None:
        if self._accessor is None:
            raise StoreError(
                f"stream uses the {self.header.predictor_ndim}-D tile predictor; "
                "write-back requires the 1-D predictor (recompress with "
                "predictor_ndim=1, e.g. CompressedArray.from_array)"
            )
        with obs_trace.maybe_span("store.write") as sp:
            axes, out_shape = self._resolve_index(key)
            flat = self._flat_indices(axes)
            value = np.broadcast_to(
                np.asarray(value, dtype=self.dtype), out_shape
            ).reshape(-1)
            if value.size != flat.size:
                raise StoreError(
                    f"cannot write {value.size} values into a selection of {flat.size}"
                )
            if not np.isfinite(value).all():
                raise StoreError("compressed arrays require finite values")
            L = self.header.block
            blocks = flat // L
            offs = flat % L
            uniq = np.unique(blocks)
            table = self._block_table(uniq)
            pos = np.searchsorted(uniq, blocks)
            table[pos, offs] = value
            for row, b in enumerate(uniq.tolist()):
                valid = self._valid_len(b)
                old = self._dirty.get(b)
                if old is not None:
                    self._dirty_bytes -= old.nbytes
                vals = table[row, :valid].copy()
                self._dirty[b] = vals
                self._dirty_bytes += vals.nbytes
                self._cache.drop(f"b{b}")
            if sp is not None:
                sp.set(bytes_in=int(value.nbytes), dirty_blocks=len(self._dirty))
            if self._stats is not None:
                self._stats.counter("store.writes").inc()
                self._stats.counter("store.write_bytes").inc(int(value.nbytes))

    def flush(self) -> np.ndarray:
        """Re-encode every dirty block into the backing stream (one batched
        splice) and return the updated stream buffer.  No-op when clean."""
        if not self._dirty:
            return self._buf
        with obs_trace.maybe_span("store.flush", dirty_blocks=len(self._dirty)) as sp:
            idxs = sorted(self._dirty)
            new_buf = self._accessor.rewrite_blocks(
                idxs, [self._dirty[i] for i in idxs]
            )
            self._buf = new_buf
            # the stream was assembled this instant; skip the integrity re-scan
            self._accessor = RandomAccessor(new_buf, verify_integrity="skip")
            self.header = self._accessor.header
            for b in idxs:
                self._cache.drop(f"b{b}")
            self._dirty.clear()
            self._dirty_bytes = 0
            if sp is not None:
                sp.set(bytes_out=int(new_buf.size))
            if self._stats is not None:
                self._stats.counter("store.flushes").inc()
            return new_buf

    @property
    def stream(self) -> np.ndarray:
        """The backing compressed stream, flushing pending writes first."""
        return self.flush()
