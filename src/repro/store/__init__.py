"""repro.store: the in-process compressed-array tier.

Two layers turn the codec from a request/response service into a data
structure (ROADMAP: QTensor direction; cuSZ's framing of compression as a
memory-capacity lever):

* :class:`CompressedArray` -- a numpy-like N-d array backed by one CSZ2
  stream: sliced reads decode only the touched blocks/tiles (LRU-cached),
  writes land in a dirty overlay and re-encode in one batched splice on
  :meth:`~CompressedArray.flush`.
* :class:`CompressedStore` -- named arrays under a global memory budget
  with LRU spill to disk (CSZ2ARC2 archives), transparent fault-in, and
  ``checkpoint()/restore()``.

See docs/STORE.md for the full API and semantics.
"""

from .array import CompressedArray, StoreError
from .spill import SpillDir, read_checkpoint, write_checkpoint
from .store import CompressedStore

__all__ = [
    "CompressedArray",
    "CompressedStore",
    "SpillDir",
    "StoreError",
    "read_checkpoint",
    "write_checkpoint",
]
