"""Disk tier for the compressed-array store: spill files and checkpoints.

Both are CSZ2ARC2 archives (:mod:`repro.core.archive`), so a spilled array
is a normal one-field dataset archive any existing tool can open, and a
checkpoint is the same container holding every array at once.  The archive
layer adds framing only -- each stream is stored byte-identical to its
in-memory form -- so spill -> fault-in round trips are exact, not merely
within the error bound.

A :class:`SpillDir` owns one directory.  Spill files are named
``<quoted-array-name>.csz2arc`` (URL-quoting keeps arbitrary array names
safe as filenames); checkpoints are single ``.csz2arc`` files wherever the
caller points them.  Writes go through a temp file + ``os.replace`` so a
crash mid-spill never leaves a torn archive under the final name.
"""

from __future__ import annotations

import os
import tempfile
from typing import Dict, List
from urllib.parse import quote, unquote

import numpy as np

from ..core.archive import DatasetArchive, pack_streams

SUFFIX = ".csz2arc"


def _atomic_write(path: str, buf: np.ndarray) -> None:
    d = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=d, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as f:
            f.write(buf.tobytes())
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def write_checkpoint(path: str, streams: Dict[str, np.ndarray]) -> int:
    """Archive every named stream into one file; returns bytes written."""
    buf = pack_streams(streams)
    _atomic_write(path, buf)
    return int(buf.size)


def read_checkpoint(path: str) -> Dict[str, np.ndarray]:
    """Load a checkpoint archive back into named streams, verifying every
    field's archive CRC (a torn or bit-flipped field raises)."""
    with open(path, "rb") as f:
        arc = DatasetArchive(np.frombuffer(f.read(), dtype=np.uint8))
    bad = [name for name, ok in arc.verify_all().items() if not ok]
    if bad:
        from ..core.errors import IntegrityError

        raise IntegrityError(
            f"checkpoint {path!r}: field(s) {bad} failed archive CRC"
        )
    return {name: arc.stream(name).copy() for name in arc.names}


class SpillDir:
    """One directory of per-array spill archives."""

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)

    def path_for(self, name: str) -> str:
        return os.path.join(self.root, quote(name, safe="") + SUFFIX)

    def spill(self, name: str, buf: np.ndarray) -> int:
        """Write one array's stream to disk; returns bytes written."""
        nbytes = write_checkpoint(self.path_for(name), {name: buf})
        return nbytes

    def fault_in(self, name: str) -> np.ndarray:
        """Read one array's stream back (archive CRC verified)."""
        streams = read_checkpoint(self.path_for(name))
        if name not in streams:
            from ..core.errors import StreamFormatError

            raise StreamFormatError(
                f"spill file for {name!r} holds {list(streams)} instead"
            )
        return streams[name]

    def contains(self, name: str) -> bool:
        return os.path.exists(self.path_for(name))

    def remove(self, name: str) -> bool:
        """Delete one spill file (returns whether it existed)."""
        p = self.path_for(name)
        if os.path.exists(p):
            os.unlink(p)
            return True
        return False

    def names(self) -> List[str]:
        out = []
        for fn in os.listdir(self.root):
            if fn.endswith(SUFFIX):
                out.append(unquote(fn[: -len(SUFFIX)]))
        return sorted(out)

    def nbytes(self) -> int:
        """Total bytes currently spilled."""
        total = 0
        for fn in os.listdir(self.root):
            if fn.endswith(SUFFIX):
                total += os.path.getsize(os.path.join(self.root, fn))
        return total
