"""store-bench: working-set sweep for the compressed-array tier.

For each working-set multiplier the bench builds a :class:`CompressedStore`
with a fixed resident budget, fills it until the *compressed* working set
is ``multiplier x budget``, then runs a seeded read/write workload of
random slices across randomly chosen arrays.  Multipliers above 1 force
the store to live off its spill tier, so the numbers answer the capacity
question the subsystem exists for: what does touching a working set N
times larger than RAM cost, and how often does it hit disk?

Spill and fault-in counts are read back from the ``repro.obs`` metrics
registry the store publishes into (not from private attributes), so the
bench double-checks the observability wiring while it measures.

The report (``benchmarks/results/BENCH_store.json``) follows the shape of
``BENCH_core.json``: a ``results`` sweep, a ``headline`` entry (the >= 4x
multiplier), and -- on full runs -- a ``ci_reference`` section measured
with the quick parameters so CI smoke runs regress against an
apples-to-apples number.
"""

from __future__ import annotations

import time
from typing import List, Optional

import numpy as np

from ..serve.stats import MetricsRegistry
from .store import CompressedStore

#: bench fails when quick throughput drops below this fraction of the
#: committed ci_reference (mirrors bench_core_throughput)
REGRESSION_FLOOR = 0.70

FULL = {"budget_bytes": 4 << 20, "array_elems": 1 << 18, "ops_per_array": 4}
QUICK = {"budget_bytes": 1 << 20, "array_elems": 1 << 16, "ops_per_array": 4}
MULTIPLIERS = (1, 2, 4, 8)
QUICK_MULTIPLIERS = (1, 4)


def _make_field(rng: np.random.Generator, elems: int) -> np.ndarray:
    """A smooth random walk (the regime the codec was designed for), so
    compression ratios -- and therefore working-set sizing -- are realistic
    rather than noise-bound."""
    return np.cumsum(rng.normal(size=elems)).astype(np.float32)


def _run_one(
    multiplier: int,
    budget_bytes: int,
    array_elems: int,
    ops_per_array: int,
    seed: int,
    rel: float = 1e-3,
) -> dict:
    rng = np.random.default_rng(np.random.SeedSequence([seed, multiplier]))
    registry = MetricsRegistry()
    with CompressedStore(budget_bytes=budget_bytes, stats=registry) as store:
        # fill until the compressed working set reaches multiplier x budget
        working_set = 0
        names: List[str] = []
        t0 = time.perf_counter()
        while working_set < multiplier * budget_bytes:
            name = f"a{len(names)}"
            arr = store.put(name, _make_field(rng, array_elems), rel=rel)
            working_set += arr.compressed_nbytes
            names.append(name)
        fill_s = time.perf_counter() - t0

        ops = ops_per_array * len(names)
        read_bytes = write_bytes = 0
        read_s = write_s = 0.0
        n = array_elems
        span = max(1, n // 16)
        for op in range(ops):
            name = names[int(rng.integers(0, len(names)))]
            lo = int(rng.integers(0, n - span + 1))
            if op % 2 == 0:
                t0 = time.perf_counter()
                got = store[name][lo : lo + span]
                read_s += time.perf_counter() - t0
                read_bytes += got.nbytes
            else:
                vals = np.full(span, float(rng.normal()), dtype=np.float32)
                t0 = time.perf_counter()
                store[name][lo : lo + span] = vals
                write_s += time.perf_counter() - t0
                write_bytes += vals.nbytes
        t0 = time.perf_counter()
        store.flush_all()
        flush_s = time.perf_counter() - t0

        # counts come from the obs registry the store publishes into
        spills = int(registry.counter("store.spills").value)
        faults = int(registry.counter("store.faults").value)
        snapshot = store.stats_snapshot()

    mib = 1 << 20
    total_s = read_s + write_s + flush_s
    total_bytes = read_bytes + write_bytes
    return {
        "multiplier": multiplier,
        "arrays": len(names),
        "budget_bytes": budget_bytes,
        "working_set_bytes": working_set,
        "ws_over_budget": round(working_set / budget_bytes, 2),
        "logical_bytes": len(names) * array_elems * 4,
        "ops": ops,
        "spills": spills,
        "faults": faults,
        "fill_s": round(fill_s, 4),
        "flush_s": round(flush_s, 4),
        "read_MiBps": round(read_bytes / mib / read_s, 1) if read_s else 0.0,
        "write_MiBps": round(write_bytes / mib / write_s, 1) if write_s else 0.0,
        "workload_MiBps": round(total_bytes / mib / total_s, 1) if total_s else 0.0,
        "resident_bytes_final": snapshot["resident_bytes"],
    }


def run_sweep(
    quick: bool = False,
    seed: int = 0,
    multipliers: Optional[tuple] = None,
) -> dict:
    params = QUICK if quick else FULL
    if multipliers is None:
        multipliers = QUICK_MULTIPLIERS if quick else MULTIPLIERS
    results = []
    for mult in multipliers:
        r = _run_one(mult, seed=seed, **params)
        results.append(r)
        print(
            f"ws {mult}x budget: {r['arrays']:3d} arrays "
            f"({r['working_set_bytes'] / 2**20:.1f} MiB compressed / "
            f"{r['budget_bytes'] / 2**20:.0f} MiB budget)  "
            f"spills {r['spills']:4d}  faults {r['faults']:4d}  "
            f"read {r['read_MiBps']:7.1f} MiB/s  write {r['write_MiBps']:7.1f} MiB/s"
        )
    headline = max(
        (r for r in results if r["multiplier"] >= 4),
        key=lambda r: r["multiplier"],
        default=results[-1],
    )
    report = {
        "generated_by": "repro store-bench",
        "numpy": np.__version__,
        "quick": bool(quick),
        "seed": seed,
        "params": dict(params),
        "results": results,
        "headline": headline,
    }
    if not quick:
        print("-- ci reference (quick params) --")
        qres = [
            _run_one(m, seed=seed, **QUICK) for m in QUICK_MULTIPLIERS
        ]
        qh = max(qres, key=lambda r: r["multiplier"])
        report["ci_reference"] = {
            "multiplier": qh["multiplier"],
            "workload_MiBps": qh["workload_MiBps"],
            "read_MiBps": qh["read_MiBps"],
            "write_MiBps": qh["write_MiBps"],
        }
        print(
            f"quick {qh['multiplier']}x: workload {qh['workload_MiBps']:.1f} MiB/s"
        )
    return report


def check_regression(report: dict, reference: dict):
    """``(ok, message)`` comparing this run against a committed report."""
    if report["quick"]:
        ref = reference.get("ci_reference") or reference["headline"]
    else:
        ref = reference["headline"]
    got = report["headline"]["workload_MiBps"]
    floor = REGRESSION_FLOOR * ref["workload_MiBps"]
    if got < floor:
        return False, (
            f"REGRESSION: headline workload {got:.1f} MiB/s is below "
            f"{REGRESSION_FLOOR:.0%} of the committed reference "
            f"{ref['workload_MiBps']:.1f} MiB/s (floor {floor:.1f})"
        )
    return True, (
        f"regression check OK: {got:.1f} MiB/s >= {floor:.1f} MiB/s "
        f"({REGRESSION_FLOOR:.0%} of committed {ref['workload_MiBps']:.1f})"
    )
