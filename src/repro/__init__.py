"""repro -- a from-scratch Python reproduction of *cuSZp2: A GPU Lossy
Compressor with Extreme Throughput and Optimized Compression Ratio*
(Huang, Di, Li, Cappello; SC 2024).

The package contains:

* :mod:`repro.core` -- the cuSZp2 codec itself (bit-exact stream format,
  Plain-/Outlier-FLE, random access, f32/f64, 1-D/2-D/3-D predictors).
* :mod:`repro.gpusim` -- a GPU execution-model substrate (device specs,
  memory-access efficiency model, instruction accounting, a cooperative
  virtual GPU for concurrent kernel protocols, and a calibrated timing
  model that converts real byte traffic into simulated throughput).
* :mod:`repro.scan` -- device-level prefix-sum algorithms: reduce-then-scan,
  plain chained-scan, and the decoupled-lookback design of cuSZp2.
* :mod:`repro.baselines` -- FZ-GPU, cuSZp, cuZFP (a real ZFP fixed-rate
  implementation) and the CPU-GPU hybrid pipelines (cuSZ/cuSZx/MGARD-GPU).
* :mod:`repro.datasets` -- synthetic stand-ins for the SDRBench /
  Open-SciVis datasets of Tables II and IV.
* :mod:`repro.metrics` -- PSNR, SSIM, isosurface preservation,
  rate-distortion.
* :mod:`repro.harness` -- experiment runners that regenerate every table
  and figure of the paper's evaluation.
"""

from .core import (
    CuSZp2,
    DatasetArchive,
    ErrorBound,
    RandomAccessor,
    TileAccessor,
    compress,
    compression_ratio,
    decompress,
    verify,
)

__version__ = "1.0.0"

__all__ = [
    "CuSZp2",
    "ErrorBound",
    "RandomAccessor",
    "TileAccessor",
    "DatasetArchive",
    "compress",
    "decompress",
    "compression_ratio",
    "verify",
    "__version__",
]
