"""Fault-injection self-check: every injected fault must be detected.

The contract being checked (ISSUE: stream format v2):

* any corruption of a v2 stream is either **detected** -- decoding raises
  a typed :class:`~repro.core.errors.CuSZp2Error` (``IntegrityError`` with
  a corruption report for checksum mismatches, ``StreamFormatError`` for
  unparseable layouts) -- or **harmless** -- the decode is bit-identical
  to the uncorrupted decode (possible only when the injector happened to
  be a no-op, e.g. a truncation that cut zero bytes);
* in recover mode, every intact block group reconstructs bit-identically
  to the uncorrupted decode.

``run_faultcheck`` runs a seeded campaign of injector x workload trials
and reports any **missed** fault (silent garbage) or **recover mismatch**.
It backs the ``repro faultcheck`` CLI command and the ``-m faults`` test
marker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import compress, decompress
from ..core.errors import CuSZp2Error
from ..core.integrity import verify
from .injectors import INJECTORS, make_injector


@dataclass(frozen=True)
class FaultTrial:
    """One injected fault and what the decoder did about it."""

    injector: str
    workload: str
    seed: int
    outcome: str  # "detected" | "harmless" | "MISSED" | "RECOVER-MISMATCH"
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.outcome in ("detected", "harmless")


@dataclass
class FaultCheckResult:
    """Aggregate of a fault-injection campaign."""

    trials: List[FaultTrial] = field(default_factory=list)

    @property
    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for t in self.trials:
            out[t.outcome] = out.get(t.outcome, 0) + 1
        return out

    @property
    def ok(self) -> bool:
        return all(t.ok for t in self.trials)

    @property
    def failures(self) -> List[FaultTrial]:
        return [t for t in self.trials if not t.ok]

    def summary(self) -> str:
        c = self.counts
        lines = [
            f"faultcheck: {len(self.trials)} trials -- "
            + ", ".join(f"{k}: {v}" for k, v in sorted(c.items()))
        ]
        for t in self.failures[:20]:
            lines.append(
                f"  FAIL {t.injector} on {t.workload} (seed {t.seed}): "
                f"{t.outcome} {t.detail}"
            )
        lines.append("FAULTCHECK " + ("PASSED" if self.ok else "FAILED"))
        return "\n".join(lines)


def _workloads(n: int, rng: np.random.Generator) -> Dict[str, np.ndarray]:
    return {
        "smooth-f32": np.cumsum(rng.normal(size=n)).astype(np.float32),
        "sparse-f32": np.where(
            rng.random(n) < 0.01, rng.normal(size=n), 0.0
        ).astype(np.float32),
        "smooth-f64": np.cumsum(rng.normal(size=n // 2)).astype(np.float64),
    }


def classify_decode(
    stream: np.ndarray, corrupt: np.ndarray, clean: np.ndarray
) -> Tuple[str, str]:
    """Outcome of decoding one corrupted stream against the clean decode.

    Returns ``("detected", ...)`` for a typed error, ``("harmless", ...)``
    when the corruption was a no-op or decoded bit-identically, and
    ``("MISSED", ...)`` for silent garbage.  Shared by :func:`run_faultcheck`
    and the :mod:`repro.qa` corruption oracle.
    """
    if corrupt.size == stream.size and np.array_equal(corrupt, stream):
        return "harmless", "injector was a no-op"
    try:
        out = decompress(corrupt)
    except CuSZp2Error as e:
        return "detected", type(e).__name__
    if out.shape == clean.shape and np.array_equal(out, clean):
        return "harmless", "decode unchanged"
    return "MISSED", "silent garbage: decode differs from clean decode"


def check_recovery(
    corrupt: np.ndarray, clean: np.ndarray, block: int = 32
) -> Optional[str]:
    """In recover mode, intact groups must match the clean decode exactly.

    ``block`` is the stream's elements-per-block (needed to map corrupt
    block-group ranges to element ranges).  Returns an error string on
    mismatch, None when recovery held (or was legitimately impossible:
    damaged header/TOC, truncated layout...).
    """
    try:
        report = verify(corrupt)
    except CuSZp2Error:
        return None
    if report.ok or not report.recoverable:
        return None
    try:
        out = decompress(corrupt, on_corruption="recover")
    except CuSZp2Error:
        return None  # e.g. 2-D/3-D streams have no recover path
    if out.shape != clean.shape:
        return f"recover shape {out.shape} != clean {clean.shape}"
    flat_out = out.reshape(-1)
    flat_clean = clean.reshape(-1)
    L = block
    mask = np.ones(flat_out.size, dtype=bool)
    for lo_blk, hi_blk in report.corrupt_block_ranges():
        mask[lo_blk * L : hi_blk * L] = False
    if not np.array_equal(flat_out[mask], flat_clean[mask]):
        return "intact block groups did not reconstruct bit-identically"
    if not np.all(np.isnan(flat_out[~mask])):
        return "corrupt block groups were not sentinel-filled"
    return None


def run_faultcheck(
    trials: int = 25,
    seed: int = 0,
    quick: bool = False,
    injectors: Optional[Sequence[str]] = None,
    n: Optional[int] = None,
    group_blocks: int = 64,
) -> FaultCheckResult:
    """Run a seeded fault-injection campaign over the v2 codec.

    ``quick`` shrinks the campaign for CI smoke use (a few seconds);
    ``group_blocks`` is deliberately small so multi-group code paths are
    exercised on test-sized data.
    """
    if quick:
        trials = min(trials, 6)
        n = n or 6_000
    n = n or 20_000
    names = list(injectors) if injectors else list(INJECTORS)
    rng = np.random.default_rng(seed)
    result = FaultCheckResult()

    for wname, data in _workloads(n, rng).items():
        stream = compress(data, rel=1e-3, mode="outlier", group_blocks=group_blocks)
        clean = decompress(stream)
        for iname in names:
            for t in range(trials):
                # zlib.crc32 rather than hash(): str hashes are salted
                # per-process, and the campaign must be reproducible.
                import zlib

                tag = zlib.crc32(f"{wname}/{iname}".encode()) % 65_536
                inj_seed = seed * 1_000_003 + tag + t
                inj = make_injector(iname, seed=inj_seed)
                corrupt = inj.apply(stream)
                outcome, detail = classify_decode(stream, corrupt, clean)
                if outcome in ("detected", "harmless"):
                    mismatch = check_recovery(corrupt, clean, block=32)
                    if mismatch is not None:
                        outcome, detail = "RECOVER-MISMATCH", mismatch
                result.trials.append(
                    FaultTrial(iname, wname, inj_seed, outcome, detail)
                )
    return result
