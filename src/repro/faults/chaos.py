"""Behavioral chaos: seeded fault injection for the serving layer.

:mod:`repro.faults.injectors` attacks *bytes at rest*; this module
attacks *behavior in flight*.  A :class:`ChaosWorkerPool` wraps a real
:class:`~repro.serve.pool.WorkerPool` and, with seeded probabilities,
makes submitted tasks hang, crash, run slow, ship back corrupted
results, or stall in the queue -- the misbehaviors the resilience layer
(docs/RESILIENCE.md) exists to absorb.  Determinism matters: the same
``ChaosConfig.seed`` produces the same fault schedule, so a chaos
campaign failure reproduces exactly.

Fault semantics (per drawn fault, at most one per submission):

``hang``
    The worker sleeps ``hang_s`` *before* running the task -- long
    enough that the pool watchdog reclaims the worker at the task's
    deadline.  Thread workers cannot be killed; they are abandoned (the
    pool discards their late result) and a replacement is spawned.
``crash``
    The worker dies mid-task: :class:`SimulatedCrash` (a
    :class:`~repro.serve.pool.WorkerCrash`) makes a process worker
    ``os._exit`` and a thread worker announce death and unwind, so real
    crash detection, respawn, and loss-free resubmission run.
``slow``
    The worker sleeps ``slow_s`` before running the task: latency
    without failure (what breakers with a latency threshold, and tight
    deadlines, must handle).
``corrupt``
    The task runs, then its *result* -- only when it is a ``uint8``
    stream, i.e. compressed bytes -- is bit-flipped before shipping
    back.  The router's CRC validator must catch this and retry; decode
    results (float arrays) are never corrupted, so a wrong-bytes escape
    can only come from a real bug, which is exactly what the chaos
    harness is hunting.
``stall``
    The submission itself is delayed ``stall_s`` before reaching the
    pool: queue stalls and scheduling hiccups, testing deadline sheds.

Injection happens *below* the scheduler and router (the service's
``pool_wrapper`` hook), so every resilience mechanism sits between the
chaos and the caller -- nothing is mocked.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.serve.pool import (
    PoolFuture,
    WorkerCrash,
    WorkerPool,
    _run_task,
    register_task,
)

__all__ = [
    "ChaosConfig",
    "ChaosWorkerPool",
    "SimulatedCrash",
    "FAULT_KINDS",
]

FAULT_KINDS = ("hang", "crash", "slow", "corrupt", "stall")


class SimulatedCrash(WorkerCrash):
    """Raised inside a chaotic worker to make it die for real: the worker
    loop treats any :class:`WorkerCrash` as fatal -- a process worker
    ``os._exit``\\ s, a thread worker announces death and returns -- so the
    pool's genuine crash-recovery machinery (respawn, resubmission,
    restart budget) is exercised, not simulated."""


@dataclass(frozen=True)
class ChaosConfig:
    """Seeded fault schedule for a :class:`ChaosWorkerPool`.

    Rates are independent per-submission probabilities; at most one
    fault fires per submission (drawn in :data:`FAULT_KINDS` order from
    a single uniform sample, so rates must sum to <= 1).
    """

    seed: int = 0
    hang_rate: float = 0.0
    crash_rate: float = 0.0
    slow_rate: float = 0.0
    corrupt_rate: float = 0.0
    stall_rate: float = 0.0
    hang_s: float = 2.0  # must exceed the campaign deadline
    slow_s: float = 0.05
    stall_s: float = 0.05
    corrupt_flips: int = 8  # bytes flipped in a corrupted result

    def __post_init__(self):
        rates = self.rates()
        for kind, rate in zip(FAULT_KINDS, rates):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{kind}_rate must be in [0, 1], got {rate}")
        if sum(rates) > 1.0 + 1e-9:
            raise ValueError(f"fault rates must sum to <= 1, got {sum(rates)}")

    def rates(self) -> Tuple[float, ...]:
        return (self.hang_rate, self.crash_rate, self.slow_rate,
                self.corrupt_rate, self.stall_rate)

    @property
    def total_rate(self) -> float:
        return sum(self.rates())


def _corrupt_result(out: Any, seed: int, flips: int) -> Any:
    """Bit-flip a compressed (uint8) result; anything else passes through
    untouched (never corrupt decoded payloads -- see module docstring)."""
    if not (isinstance(out, np.ndarray) and out.dtype == np.uint8 and out.size > 0):
        return out
    rng = random.Random(seed)
    dam = out.copy()
    for _ in range(max(1, flips)):
        pos = rng.randrange(dam.size)
        dam[pos] ^= 1 << rng.randrange(8)
    return dam


@register_task("chaos.wrap")
def _chaos_wrap(arg) -> Any:
    """Run a wrapped task under a fault directive (inside the worker)."""
    name, inner_arg, directive = arg
    fault = directive.get("fault")
    if fault == "hang":
        time.sleep(directive["sleep_s"])
    elif fault == "slow":
        time.sleep(directive["sleep_s"])
    elif fault == "crash":
        raise SimulatedCrash(f"chaos: worker dies running {name!r}")
    out = _run_task(name, inner_arg)
    if fault == "corrupt":
        out = _corrupt_result(out, directive["seed"], directive["flips"])
    return out


class ChaosWorkerPool:
    """A :class:`WorkerPool` proxy that injects behavioral faults.

    Drop-in at the service's ``pool_wrapper`` hook::

        chaos = ChaosConfig(seed=7, hang_rate=0.05, crash_rate=0.1)
        svc = CompressionService(
            deadline_s=0.5,
            pool_wrapper=lambda pool: ChaosWorkerPool(pool, chaos),
        )

    Everything except :meth:`submit` delegates to the wrapped pool.
    Injections are counted per kind in the pool's stats registry
    (``chaos.injected.<kind>``) and recorded in :attr:`events` as
    ``(task_name, kind)`` tuples for campaign logs.
    """

    def __init__(self, pool: WorkerPool, config: ChaosConfig):
        self._pool = pool
        self.config = config
        self._rng = random.Random(config.seed)
        self._rng_lock = threading.Lock()
        self.events: List[Tuple[str, str]] = []

    def _draw(self) -> Tuple[Optional[str], int]:
        """One uniform sample split across the fault kinds; also returns
        a per-injection seed for deterministic corruption."""
        with self._rng_lock:
            u = self._rng.random()
            sub = self._rng.randrange(1 << 30)
        lo = 0.0
        for kind, rate in zip(FAULT_KINDS, self.config.rates()):
            if lo <= u < lo + rate:
                return kind, sub
            lo += rate
        return None, sub

    def submit(
        self,
        name: str,
        arg: Any,
        future: Optional[PoolFuture] = None,
        trace=None,
        deadline=None,
    ) -> PoolFuture:
        fault, sub = self._draw()
        if fault is None:
            return self._pool.submit(
                name, arg, future=future, trace=trace, deadline=deadline
            )
        self._pool.stats.counter(f"chaos.injected.{fault}").inc()
        with self._rng_lock:
            self.events.append((name, fault))
        if fault == "stall":
            # delay the hand-off itself: the task sits outside any queue
            # while its deadline keeps ticking
            future = future if future is not None else PoolFuture()

            def _deliver(name=name, arg=arg, future=future, trace=trace,
                         deadline=deadline):
                if future.cancelled():
                    return
                try:
                    self._pool.submit(
                        name, arg, future=future, trace=trace, deadline=deadline
                    )
                except Exception as e:  # noqa: BLE001 - late PoolClosed etc.
                    if not future.done():
                        future.set_exception(e)

            t = threading.Timer(self.config.stall_s, _deliver)
            t.daemon = True
            t.start()
            return future
        cfg = self.config
        directive = {
            "fault": fault,
            "sleep_s": cfg.hang_s if fault == "hang" else cfg.slow_s,
            "seed": sub,
            "flips": cfg.corrupt_flips,
        }
        return self._pool.submit(
            "chaos.wrap", (name, arg, directive),
            future=future, trace=trace, deadline=deadline,
        )

    def __getattr__(self, item):
        return getattr(self._pool, item)
