"""Seedable, deterministic stream-corruption injectors.

Every injector is constructed with a seed and draws all randomness from
its own :class:`numpy.random.Generator`, so a fault campaign is exactly
reproducible: the same seed and the same input bytes produce the same
corruption, and the *n*-th :meth:`~FaultInjector.apply` call of two
equally-seeded injectors agrees byte for byte.

Injectors never mutate their input; they return a corrupted copy and
record what they did in :attr:`~FaultInjector.events` (one dict per
``apply``) so failures can be triaged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

import numpy as np

from ..core.errors import InvalidInputError

#: Byte length of the stream header (kept local to avoid importing the
#: codec for what is plain byte surgery).
_HEADER_SIZE = 52


def _as_bytes(buf) -> np.ndarray:
    if not isinstance(buf, np.ndarray):
        buf = np.frombuffer(bytes(buf), dtype=np.uint8)
    if buf.dtype != np.uint8:
        raise InvalidInputError(f"injectors operate on uint8 bytes, got {buf.dtype}")
    return buf


class FaultInjector:
    """Base class: seeded corruption of a byte buffer."""

    name = "fault"

    def __init__(self, seed: Optional[int] = None):
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.events: List[Dict] = []

    def apply(self, buf) -> np.ndarray:
        """Return a corrupted copy of ``buf`` (never mutates the input)."""
        buf = _as_bytes(buf)
        out = buf.copy()
        event = self._corrupt(out)
        event["injector"] = self.name
        self.events.append(event)
        return out

    def _corrupt(self, out: np.ndarray) -> Dict:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(seed={self.seed})"


class BitFlip(FaultInjector):
    """Flip ``nflips`` uniformly random bits anywhere in the stream."""

    name = "bitflip"

    def __init__(self, seed: Optional[int] = None, nflips: int = 1):
        super().__init__(seed)
        if nflips < 1:
            raise InvalidInputError(f"nflips must be >= 1, got {nflips}")
        self.nflips = nflips

    def _corrupt(self, out: np.ndarray) -> Dict:
        if out.size == 0:
            return {"positions": [], "bits": []}
        pos = self.rng.integers(0, out.size, size=self.nflips)
        bits = self.rng.integers(0, 8, size=self.nflips)
        for p, b in zip(pos, bits):
            out[p] ^= np.uint8(1 << int(b))
        return {"positions": pos.tolist(), "bits": bits.tolist()}


class Truncation(FaultInjector):
    """Cut the stream short at a random point (a partial transfer).

    The apply contract differs from the other injectors in one way: the
    returned buffer is *shorter* than the input.
    """

    name = "truncate"

    def __init__(self, seed: Optional[int] = None, min_keep: int = 0):
        super().__init__(seed)
        self.min_keep = min_keep

    def apply(self, buf) -> np.ndarray:
        buf = _as_bytes(buf)
        if buf.size == 0:
            keep = 0
        else:
            lo = min(self.min_keep, buf.size - 1)
            keep = int(self.rng.integers(lo, buf.size))
        self.events.append({"injector": self.name, "keep": keep, "cut": int(buf.size) - keep})
        return buf[:keep].copy()

    def _corrupt(self, out: np.ndarray) -> Dict:  # pragma: no cover
        raise NotImplementedError("Truncation overrides apply()")


class BurstErasure(FaultInjector):
    """Overwrite a contiguous run of bytes (a dropped/zeroed packet)."""

    name = "burst"

    def __init__(
        self,
        seed: Optional[int] = None,
        burst: int = 64,
        value: Optional[int] = 0,
    ):
        super().__init__(seed)
        if burst < 1:
            raise InvalidInputError(f"burst length must be >= 1, got {burst}")
        self.burst = burst
        self.value = value  # None = random garbage instead of a constant

    def _corrupt(self, out: np.ndarray) -> Dict:
        if out.size == 0:
            return {"start": 0, "length": 0}
        n = min(self.burst, out.size)
        start = int(self.rng.integers(0, out.size - n + 1))
        if self.value is None:
            out[start : start + n] = self.rng.integers(0, 256, size=n, dtype=np.uint8)
        else:
            out[start : start + n] = np.uint8(self.value)
        return {"start": start, "length": n, "value": self.value}


class HeaderCorruption(FaultInjector):
    """Corrupt bytes inside the header + integrity TOC region -- the
    highest-leverage target, since a wrong length field misdirects every
    later read."""

    name = "header"

    def __init__(self, seed: Optional[int] = None, nbytes: int = 1):
        super().__init__(seed)
        if nbytes < 1:
            raise InvalidInputError(f"nbytes must be >= 1, got {nbytes}")
        self.nbytes = nbytes

    def _corrupt(self, out: np.ndarray) -> Dict:
        if out.size == 0:
            return {"positions": []}
        limit = min(_HEADER_SIZE + 64, out.size)
        pos = self.rng.integers(0, limit, size=self.nbytes)
        old = out[pos].copy()
        delta = self.rng.integers(1, 256, size=self.nbytes, dtype=np.uint8)
        out[pos] = old + delta  # uint8 wraps mod 256; delta >= 1 guarantees change
        return {"positions": pos.tolist(), "old": old.tolist()}


INJECTORS: Dict[str, Type[FaultInjector]] = {
    cls.name: cls for cls in (BitFlip, Truncation, BurstErasure, HeaderCorruption)
}


def make_injector(name: str, seed: Optional[int] = None, **params) -> FaultInjector:
    """Instantiate an injector by registry name (CLI / config surface)."""
    try:
        cls = INJECTORS[name]
    except KeyError:
        raise InvalidInputError(
            f"unknown fault injector {name!r}; choose from {sorted(INJECTORS)}"
        ) from None
    return cls(seed=seed, **params)
