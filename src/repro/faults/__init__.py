"""Deterministic fault injection for compressed streams.

Production compressed data crosses unreliable links and sits on storage
that bit-rots; this subsystem provides the *attack side* of the format-v2
integrity story: seedable injectors that damage a stream the way real
transports do (bit flips, truncation, burst erasure, header corruption),
plus a self-check harness (:func:`repro.faults.check.run_faultcheck`,
``repro faultcheck`` in the CLI) asserting that every injected fault is
either detected by the decoder or provably harmless.

The same injectors drive the lossy-link model in
:mod:`repro.collective` and the hypothesis fuzzing suite.
"""

from .injectors import (
    INJECTORS,
    BitFlip,
    BurstErasure,
    FaultInjector,
    HeaderCorruption,
    Truncation,
    make_injector,
)
from .check import (
    FaultCheckResult,
    FaultTrial,
    check_recovery,
    classify_decode,
    run_faultcheck,
)

__all__ = [
    "FaultInjector",
    "BitFlip",
    "Truncation",
    "BurstErasure",
    "HeaderCorruption",
    "INJECTORS",
    "make_injector",
    "run_faultcheck",
    "FaultCheckResult",
    "FaultTrial",
    "classify_decode",
    "check_recovery",
]
