"""Deterministic fault injection for compressed streams.

Production compressed data crosses unreliable links and sits on storage
that bit-rots; this subsystem provides the *attack side* of the format-v2
integrity story: seedable injectors that damage a stream the way real
transports do (bit flips, truncation, burst erasure, header corruption),
plus a self-check harness (:func:`repro.faults.check.run_faultcheck`,
``repro faultcheck`` in the CLI) asserting that every injected fault is
either detected by the decoder or provably harmless.

The same injectors drive the lossy-link model in
:mod:`repro.collective` and the hypothesis fuzzing suite.

:mod:`repro.faults.chaos` extends the idea from bytes to *behavior*:
seeded worker hangs, crashes, slow responses, corrupted results, and
queue stalls injected below the serving layer's scheduler, with
:mod:`repro.faults.chaoscheck` (``repro chaoscheck``) running campaign
oracles -- every request succeeds in time, degrades with correct bytes,
or fails with a classified error; never hangs, never lies.
"""

from .chaos import ChaosConfig, ChaosWorkerPool, SimulatedCrash
from .chaoscheck import ChaosCheckConfig, ChaosCheckResult, run_chaoscheck
from .injectors import (
    INJECTORS,
    BitFlip,
    BurstErasure,
    FaultInjector,
    HeaderCorruption,
    Truncation,
    make_injector,
)
from .check import (
    FaultCheckResult,
    FaultTrial,
    check_recovery,
    classify_decode,
    run_faultcheck,
)

__all__ = [
    "ChaosConfig",
    "ChaosWorkerPool",
    "ChaosCheckConfig",
    "ChaosCheckResult",
    "SimulatedCrash",
    "run_chaoscheck",
    "FaultInjector",
    "BitFlip",
    "Truncation",
    "BurstErasure",
    "HeaderCorruption",
    "INJECTORS",
    "make_injector",
    "run_faultcheck",
    "FaultCheckResult",
    "FaultTrial",
    "classify_decode",
    "check_recovery",
]
