"""Chaos campaign: drive a real service through injected failure.

``repro chaoscheck`` (CLI) and :func:`run_chaoscheck` (library) stand up
a real :class:`~repro.serve.service.CompressionService` with resilience
enabled, interpose a :class:`~repro.faults.chaos.ChaosWorkerPool` below
the scheduler, and push a seeded request mix through it while workers
hang, crash, dawdle, corrupt results, and stall.  Three behavioral
oracles judge every single request:

* **no-hang** -- the request's future completes within a generous wall
  guard (several deadlines); a future that never resolves is the one
  unacceptable outcome of a resilient system.
* **right-bytes** -- a successful compress returns either bytes
  *bit-identical* to the monolithic codec's output for the same input,
  or a flagged raw-passthrough container that round-trips the input
  exactly; a successful decompress returns the exact expected array.
  Degradation may change *where* work ran, never *what* it produced.
* **classified-failure** -- an unsuccessful request fails with an error
  from the documented taxonomy (`repro.serve.is_classified` or a
  deterministic client error), so callers can always dispatch on type.

Any oracle violation is recorded with enough context to replay (seed,
request index, fault schedule) and fails the campaign.  Zero violations
over a seeded campaign is the serving layer's behavioral contract --
CI runs this on every push (the ``chaos-smoke`` job).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core import compress as core_compress, decompress as core_decompress
from repro.serve import chunked as _chunked
from repro.serve.pool import WaitTimeout
from repro.serve.resilience import CLIENT_ERRORS, classify_error, is_classified
from repro.serve.service import CompressionService

from .chaos import ChaosConfig, ChaosWorkerPool

__all__ = ["ChaosCheckConfig", "ChaosCheckResult", "run_chaoscheck"]


@dataclass(frozen=True)
class ChaosCheckConfig:
    """Campaign shape: request mix, fault rates, and budgets."""

    seed: int = 0
    requests: int = 500
    deadline_s: float = 0.5
    workers: int = 2
    backend: str = "thread"
    transport: str = "pickle"  # worker transport ("pickle" | "shm")
    hang_rate: float = 0.02
    crash_rate: float = 0.05
    slow_rate: float = 0.10
    corrupt_rate: float = 0.05
    stall_rate: float = 0.05
    inflight: int = 16  # outstanding requests kept in flight
    max_elems: int = 4096  # request payload size cap (float32 elements)
    decompress_frac: float = 0.3  # fraction of requests that decode
    rel: float = 1e-3
    time_budget_s: Optional[float] = None  # stop submitting when exceeded
    hang_guard_s: Optional[float] = None  # default: 4x deadline + 2s

    @property
    def guard_s(self) -> float:
        if self.hang_guard_s is not None:
            return self.hang_guard_s
        return 4.0 * self.deadline_s + 2.0


@dataclass
class ChaosCheckResult:
    """Everything a triage needs: counts, violations, and the event log."""

    config: dict
    requests: int = 0
    successes: int = 0
    raw_successes: int = 0  # served by the raw-passthrough floor
    classified_errors: Dict[str, int] = field(default_factory=dict)
    injected: Dict[str, int] = field(default_factory=dict)
    violations: List[dict] = field(default_factory=list)
    events: List[dict] = field(default_factory=list)
    elapsed_s: float = 0.0
    resilience_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_json(self, indent: int = 2) -> str:
        payload = asdict(self)
        payload["ok"] = self.ok
        return json.dumps(payload, indent=indent)

    def summary(self) -> str:
        errs = sum(self.classified_errors.values())
        lines = [
            f"chaoscheck: {self.requests} requests, "
            f"{self.successes} ok ({self.raw_successes} via raw passthrough), "
            f"{errs} classified failures, {len(self.violations)} violations",
            f"  injected: " + (
                ", ".join(f"{k}={v}" for k, v in sorted(self.injected.items()))
                or "none"
            ),
        ]
        if self.classified_errors:
            lines.append(
                "  errors:   "
                + ", ".join(
                    f"{k}={v}" for k, v in sorted(self.classified_errors.items())
                )
            )
        keys = (
            "resilience.retries", "resilience.degraded.threads",
            "resilience.degraded.inline", "resilience.raw_fallbacks",
            "resilience.breaker.transitions", "pool.watchdog_kills",
            "pool.worker_crashes", "pool.deadline_sheds",
            "scheduler.deadline_sheds",
        )
        shown = {k: self.resilience_stats[k] for k in keys
                 if self.resilience_stats.get(k)}
        if shown:
            lines.append(
                "  recovery: " + ", ".join(f"{k}={v}" for k, v in shown.items())
            )
        for v in self.violations[:10]:
            lines.append(f"  VIOLATION {v['kind']} @ request {v['index']}: "
                         f"{v['detail']}")
        if len(self.violations) > 10:
            lines.append(f"  ... and {len(self.violations) - 10} more violations")
        lines.append("chaoscheck: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Oracles (one verdict per completed request)
# ---------------------------------------------------------------------------

def _check_compress_result(blob, data: np.ndarray, rel: float) -> Tuple[bool, str]:
    """right-bytes for compress: (is_raw, failure detail or '')."""
    arr = np.asarray(blob)
    if _chunked.is_raw(arr):
        back = _chunked.raw_from_bytes(arr)
        if not (back.shape == data.shape and back.dtype == data.dtype
                and np.array_equal(back, data)):
            return True, "raw passthrough does not round-trip the input exactly"
        return True, ""
    if _chunked.is_chunked(arr):
        stream = _chunked.ChunkedStream.from_bytes(arr)
        got = _chunked.decompress_chunked(arr)
        if any(e.raw for e in stream.manifest.entries):
            # degraded container: raw chunks are exact, compressed chunks
            # are bounded, so the whole decode must respect the bound
            from repro.core.quantize import ErrorBound, validate_input

            eb_abs = ErrorBound.relative(rel).resolve(validate_input(data))
            err = float(np.max(np.abs(got.astype(np.float64) - data)))
            if err > eb_abs * (1.0 + 1e-6):
                return True, (
                    f"degraded container violates the error bound "
                    f"({err:.3e} > {eb_abs:.3e})"
                )
            return True, ""
        # fully compressed container: framing differs from a monolithic
        # stream by design, decode bit-identity is the contract
        want = core_decompress(core_compress(data, rel=rel))
        if not np.array_equal(got, want):
            return False, "chunked container decode differs from monolithic decode"
        return False, ""
    reference = core_compress(data, rel=rel)
    if not np.array_equal(arr, reference):
        return False, (
            f"compressed bytes differ from monolithic codec output "
            f"({arr.size} vs {reference.size} bytes)"
        )
    return False, ""


def _check_decompress_result(out, expected: np.ndarray) -> str:
    got = np.asarray(out)
    if got.shape != expected.shape or got.dtype != expected.dtype:
        return (f"decode shape/dtype mismatch: {got.dtype}{got.shape} vs "
                f"{expected.dtype}{expected.shape}")
    if not np.array_equal(got, expected):
        return "decoded array differs from the expected reconstruction"
    return ""


def _classify(exc: BaseException) -> Tuple[bool, str]:
    """(is part of the documented taxonomy, label)."""
    if is_classified(exc) or isinstance(exc, CLIENT_ERRORS):
        return True, classify_error(exc)
    return False, f"unclassified:{type(exc).__name__}"


# ---------------------------------------------------------------------------
# Campaign driver
# ---------------------------------------------------------------------------

def run_chaoscheck(
    config: Optional[ChaosCheckConfig] = None,
    progress: Optional[Callable[[int, int], None]] = None,
) -> ChaosCheckResult:
    """Run one seeded chaos campaign; see the module docstring for the
    oracles.  Deterministic per ``config.seed`` up to thread timing (the
    *fault schedule* and payloads always replay exactly)."""
    cfg = config if config is not None else ChaosCheckConfig()
    result = ChaosCheckResult(config=asdict(cfg))
    rng = np.random.default_rng(cfg.seed)

    # reference corpus for decode requests, built with the direct codec
    # before any chaos exists
    corpus: List[Tuple[np.ndarray, np.ndarray]] = []  # (blob, expected recon)
    for _ in range(8):
        n = int(rng.integers(256, cfg.max_elems + 1))
        data = rng.standard_normal(n, dtype=np.float32)
        blob = core_compress(data, rel=cfg.rel)
        corpus.append((blob, core_decompress(blob)))

    chaos_cfg = ChaosConfig(
        seed=cfg.seed,
        hang_rate=cfg.hang_rate,
        crash_rate=cfg.crash_rate,
        slow_rate=cfg.slow_rate,
        corrupt_rate=cfg.corrupt_rate,
        stall_rate=cfg.stall_rate,
        hang_s=min(4.0 * cfg.deadline_s, 2.0),
    )
    chaos_pool: List[ChaosWorkerPool] = []

    def wrapper(pool):
        cp = ChaosWorkerPool(pool, chaos_cfg)
        chaos_pool.append(cp)
        return cp

    svc = CompressionService(
        workers=cfg.workers,
        backend=cfg.backend,
        transport=cfg.transport,
        warmup=False,
        deadline_s=cfg.deadline_s,
        max_respawns=8 * cfg.requests,  # chaos burns restarts by design
        breaker_reset_s=max(cfg.deadline_s / 4.0, 0.05),
        pool_wrapper=wrapper,
    )

    t_start = time.perf_counter()
    pending: List[dict] = []  # {"future", "kind", "index", "data"/"expected", "t0"}

    def violation(kind: str, index: int, detail: str, **extra) -> None:
        result.violations.append(
            {"kind": kind, "index": index, "detail": detail, **extra}
        )

    def settle(entry: dict) -> None:
        fut = entry["future"]
        idx = entry["index"]
        event = {"index": idx, "kind": entry["kind"]}
        try:
            value = fut.result(timeout=cfg.guard_s)
        except WaitTimeout:
            fut.cancel()
            event["outcome"] = "hang"
            violation(
                "hang", idx,
                f"{entry['kind']} future unresolved after {cfg.guard_s:.1f}s "
                f"(deadline was {cfg.deadline_s}s)",
            )
            result.events.append(event)
            return
        except BaseException as e:  # noqa: BLE001 - the oracle judges it
            known, label = _classify(e)
            event["outcome"] = "error"
            event["error"] = label
            if known:
                result.classified_errors[label] = (
                    result.classified_errors.get(label, 0) + 1
                )
            else:
                violation("unclassified_error", idx, f"{e!r}")
            result.events.append(event)
            return
        event["elapsed_s"] = round(time.perf_counter() - entry["t0"], 4)
        if entry["kind"] == "compress":
            raw, detail = _check_compress_result(value, entry["data"], cfg.rel)
            if detail:
                event["outcome"] = "wrong_bytes"
                violation("wrong_bytes", idx, detail)
            else:
                event["outcome"] = "ok_raw" if raw else "ok"
                result.successes += 1
                result.raw_successes += int(raw)
        else:
            detail = _check_decompress_result(value, entry["expected"])
            if detail:
                event["outcome"] = "wrong_bytes"
                violation("wrong_bytes", idx, detail)
            else:
                event["outcome"] = "ok"
                result.successes += 1
        result.events.append(event)

    try:
        for i in range(cfg.requests):
            if (
                cfg.time_budget_s is not None
                and time.perf_counter() - t_start > cfg.time_budget_s
            ):
                break
            entry: dict = {"index": i, "t0": time.perf_counter()}
            if rng.random() < cfg.decompress_frac:
                blob, expected = corpus[int(rng.integers(len(corpus)))]
                entry["kind"] = "decompress"
                entry["expected"] = expected
                # cache=False: every decode must take the chaotic path
                entry["future"] = svc.decompress(blob, cache=False)
            else:
                n = int(rng.integers(256, cfg.max_elems + 1))
                data = rng.standard_normal(n, dtype=np.float32)
                entry["kind"] = "compress"
                entry["data"] = data
                entry["future"] = svc.compress(data, rel=cfg.rel)
            pending.append(entry)
            result.requests += 1
            if len(pending) >= cfg.inflight:
                settle(pending.pop(0))
            if progress is not None:
                progress(i + 1, cfg.requests)
        while pending:
            settle(pending.pop(0))
    finally:
        closer = threading.Thread(target=svc.close, daemon=True)
        closer.start()
        closer.join(timeout=max(cfg.guard_s, 10.0))
        if closer.is_alive():
            violation(
                "shutdown_hang", result.requests,
                "service.close() did not return within the guard window",
            )

    result.elapsed_s = round(time.perf_counter() - t_start, 3)
    if chaos_pool:
        injected: Dict[str, int] = {}
        for _, kind in chaos_pool[0].events:
            injected[kind] = injected.get(kind, 0) + 1
        result.injected = injected
    snap = svc.stats.snapshot()
    counters = snap.get("counters", snap)
    result.resilience_stats = {
        k: v for k, v in counters.items()
        if isinstance(v, (int, float))
        and (k.startswith(("resilience.", "chaos.", "scheduler.deadline"))
             or k in ("pool.watchdog_kills", "pool.worker_crashes",
                      "pool.deadline_sheds", "pool.resubmissions"))
    }
    return result
