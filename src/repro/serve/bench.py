"""Closed-loop load generator for the compression service.

Drives a :class:`~repro.serve.service.CompressionService` with ``clients``
concurrent closed-loop clients (each issues its next request only after
the previous one completed -- the standard way to measure a service's
latency under a fixed concurrency level, as opposed to open-loop arrival
rates that conflate queueing with service time).  Each iteration
compresses one field (bulk lane) and decompresses the result (interactive
lane), so the report exercises both paths plus the decode cache.

``repro serve-bench`` is the CLI front-end; ``benchmarks/bench_serve.py``
records the 1-worker vs N-worker baseline into ``BENCH_serve.json``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import asdict, dataclass
from typing import List, Optional

import numpy as np

from .service import CompressionService, ServiceConfig


@dataclass(frozen=True)
class BenchConfig:
    """One serve-bench run."""

    size_mb: float = 8.0
    workers: int = 2
    backend: str = "thread"  # worker-pool flavor, not the codec kernels
    kernel_backend: str = "auto"  # codec kernel registry name
    transport: str = "pickle"  # "pickle" | "shm" (zero-copy arena)
    requests: int = 8  # total iterations (compress + decompress each)
    clients: int = 2
    rel: float = 1e-3
    mode: str = "outlier"
    chunk_mb: float = 4.0
    distinct: int = 2  # distinct fields cycled through (cache misses)
    seed: int = 0
    verify: bool = True  # error-bound check on the first decode
    dataset: Optional[str] = None
    field: Optional[str] = None


def _make_fields(cfg: BenchConfig) -> List[np.ndarray]:
    if cfg.dataset is not None:
        from repro.datasets import get_dataset

        ds = get_dataset(cfg.dataset)
        spec = ds.field(cfg.field) if cfg.field else ds.fields[0]
        base = spec.generate(ds.dtype).reshape(-1)
        nelems = max(int(cfg.size_mb * 1e6) // base.dtype.itemsize, 1)
        reps = -(-nelems // base.size)
        base = np.tile(base, reps)[:nelems]
        fields = []
        for i in range(cfg.distinct):
            f = base.copy()
            f[:1] += i * 1e-9  # distinct content hash, same statistics
            fields.append(f)
        return fields
    rng = np.random.default_rng(cfg.seed)
    nelems = max(int(cfg.size_mb * 1e6) // 4, 1)
    return [
        np.cumsum(rng.normal(size=nelems)).astype(np.float32)
        for _ in range(cfg.distinct)
    ]


def run_serve_bench(cfg: BenchConfig) -> dict:
    """Run one closed-loop campaign; returns the JSON-able report."""
    fields = _make_fields(cfg)
    svc = CompressionService(
        ServiceConfig(
            workers=cfg.workers,
            backend=cfg.backend,
            kernel_backend=cfg.kernel_backend,
            transport=cfg.transport,
            mode=cfg.mode,
            chunk_bytes=int(cfg.chunk_mb * (1 << 20)),
        )
    )
    errors: List[str] = []
    processed = [0]
    lock = threading.Lock()
    try:
        svc.pool.wait_ready(60.0)  # exclude worker warmup from the timing

        per_client = -(-cfg.requests // cfg.clients)
        iters = [per_client] * cfg.clients
        for i in range(per_client * cfg.clients - cfg.requests):
            iters[i] -= 1
        start_gate = threading.Event()

        def client(cid: int, n: int) -> None:
            start_gate.wait()
            for it in range(n):
                field = fields[(cid + it) % len(fields)]
                try:
                    blob = svc.compress(field, rel=cfg.rel, priority="bulk").result(600)
                    recon = svc.decompress(blob, priority="interactive").result(600)
                    if cfg.verify and it == 0:
                        from repro.metrics import check_error_bound

                        eb_abs = cfg.rel * float(field.max() - field.min())
                        if not check_error_bound(field, recon, eb_abs):
                            errors.append(
                                f"client {cid}: reconstruction exceeds "
                                f"eb_abs={eb_abs:g}"
                            )
                    with lock:
                        processed[0] += field.nbytes + recon.nbytes
                except Exception as e:  # noqa: BLE001 - reported in summary
                    errors.append(f"client {cid} iter {it}: {e!r}")

        threads = [
            threading.Thread(target=client, args=(cid, n), daemon=True)
            for cid, n in enumerate(iters)
        ]
        for t in threads:
            t.start()
        t0 = time.perf_counter()
        start_gate.set()
        for t in threads:
            t.join()
        wall = time.perf_counter() - t0
        snap = svc.stats_snapshot()
    finally:
        svc.close()

    field_bytes = fields[0].nbytes
    chunk_bytes = int(cfg.chunk_mb * (1 << 20))
    counters = snap.get("counters", {})
    transport_bytes = {
        stage: counters.get(f"pool.transport.{stage}_bytes", 0.0)
        for stage in (
            "dispatch_shm", "dispatch_pickled", "result_shm", "result_pickled",
        )
    }
    transport_bytes["fallbacks"] = (
        snap.get("gauges", {})
        .get("pool.transport.fallbacks", {})
        .get("value", 0.0)
    )
    return {
        "config": asdict(cfg),
        "cpu_count": os.cpu_count(),
        "field_mb": field_bytes / 1e6,
        "chunks_per_request": max(-(-field_bytes // chunk_bytes), 1)
        if field_bytes > chunk_bytes
        else 1,
        "wall_s": wall,
        "throughput_mbs": processed[0] / wall / 1e6 if wall > 0 else 0.0,
        "transport": cfg.transport,
        "transport_bytes": transport_bytes,
        "errors": errors,
        "stats": snap,
    }


def format_report(report: dict) -> str:
    """Human-readable rendering of a :func:`run_serve_bench` report."""
    cfg = report["config"]
    hists = report["stats"]["histograms"]
    gauges = report["stats"]["gauges"]
    lines = [
        f"serve-bench: workers={cfg['workers']} backend={cfg['backend']} "
        f"transport={cfg.get('transport', 'pickle')} "
        f"chunk={cfg['chunk_mb']:g}MiB requests={cfg['requests']} "
        f"clients={cfg['clients']} rel={cfg['rel']:g} mode={cfg['mode']}",
        f"field: {report['field_mb']:.1f} MB x {cfg['distinct']} distinct "
        f"({report['chunks_per_request']} chunk(s)/request)",
        f"wall time: {report['wall_s']:.3f} s",
        f"throughput: {report['throughput_mbs']:.1f} MB/s "
        "(uncompressed bytes through the service)",
    ]
    for name, label in (
        ("service.compress_latency_s", "compress  "),
        ("service.decompress_latency_s", "decompress"),
    ):
        h = hists.get(name)
        if h:
            lines.append(
                f"{label} p50={h['p50_s'] * 1e3:8.1f} ms  "
                f"p95={h['p95_s'] * 1e3:8.1f} ms  "
                f"max={h['max_s'] * 1e3:8.1f} ms  (n={h['count']})"
            )
    tb = report.get("transport_bytes")
    if tb is not None:
        lines.append(
            "transport bytes: "
            f"dispatch shm={tb['dispatch_shm'] / 1e6:.1f}MB "
            f"pickled={tb['dispatch_pickled'] / 1e6:.1f}MB | "
            f"result shm={tb['result_shm'] / 1e6:.1f}MB "
            f"pickled={tb['result_pickled'] / 1e6:.1f}MB "
            f"(fallbacks={tb['fallbacks']:.0f})"
        )
    cache = report["stats"].get("cache", {})
    util = gauges.get("pool.utilization", {}).get("value", 0.0)
    depth = gauges.get("scheduler.queue_depth", {}).get("max", 0.0)
    lines.append(
        f"worker utilization: {util * 100:.0f}%   max queue depth: {depth:.0f}   "
        f"cache hit rate: {cache.get('hit_rate', 0.0) * 100:.0f}% "
        f"({cache.get('hits', 0)}/{cache.get('hits', 0) + cache.get('misses', 0)})"
    )
    if report["errors"]:
        lines.append(f"ERRORS ({len(report['errors'])}):")
        lines += [f"  {e}" for e in report["errors"][:10]]
    return "\n".join(lines)


def dump_report(report: dict, path) -> None:
    with open(path, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
