"""Service metrics: counters, gauges, latency histograms, JSON dump.

Every moving part of the service layer (pool, scheduler, cache, facade)
reports into one :class:`MetricsRegistry` so a single snapshot answers
"what is the service doing right now": per-request latency distributions,
queue depth, worker utilization, cache hit rate, and bytes in/out.

The histogram uses fixed log2-spaced buckets (1 us .. ~67 s), the standard
shape for service latency: cheap to record (one bisect per observation),
mergeable, and quantile-estimable without keeping samples.

Every primitive is **thread-safe**: the service mutates metrics from pool
threads, the scheduler's dispatcher, and callers concurrently, so each
metric serializes its mutations behind its own lock (``value += n`` and
the histogram's count/sum/bucket triple are not atomic in Python) and
reads its summary under the same lock, making a snapshot internally
consistent per metric (a histogram's sum, count, and buckets always
describe the same set of observations).
"""

from __future__ import annotations

import json
import threading
import time
from bisect import bisect_left
from typing import Dict, List, Optional, Tuple


def _bucket_bounds() -> List[float]:
    # 1us * 2**k for k = 0..26 -> last finite bound ~67s.
    return [1e-6 * (1 << k) for k in range(27)]


class Counter:
    """A monotonically increasing counter (thread-safe)."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value; also tracks the high-water mark (thread-safe)."""

    __slots__ = ("_lock", "_value", "_max")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0
        self._max = 0.0

    def set(self, v: float) -> None:
        v = float(v)
        with self._lock:
            self._value = v
            if v > self._max:
                self._max = v

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    @property
    def max(self) -> float:
        with self._lock:
            return self._max


class Histogram:
    """Log2-bucketed distribution of non-negative observations (seconds).

    All mutation and every multi-field read happen under one lock, so an
    observer never sees a torn state where ``sum``/``count``/bucket
    counts disagree.
    """

    def __init__(self):
        self.bounds = _bucket_bounds()
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.bounds) + 1)  # +1: overflow bucket
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = 0.0

    def observe(self, v: float) -> None:
        v = float(v)
        i = bisect_left(self.bounds, v)
        with self._lock:
            self._counts[i] += 1
            self._count += 1
            self._sum += v
            if v < self._min:
                self._min = v
            if v > self._max:
                self._max = v

    # -- consistent reads ----------------------------------------------------

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def min(self) -> float:
        with self._lock:
            return self._min

    @property
    def max(self) -> float:
        with self._lock:
            return self._max

    @property
    def counts(self) -> List[int]:
        with self._lock:
            return list(self._counts)

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def buckets(self) -> Tuple[List[float], List[int], int, float]:
        """Atomic ``(bounds, per-bucket counts, count, sum)`` -- the raw
        state exporters need, read in one lock acquisition."""
        with self._lock:
            return list(self.bounds), list(self._counts), self._count, self._sum

    def _quantile_locked(self, q: float) -> float:
        if not self._count:
            return 0.0
        target = q * self._count
        seen = 0
        for i, c in enumerate(self._counts):
            seen += c
            if seen >= target:
                bound = self.bounds[i] if i < len(self.bounds) else self._max
                return min(bound, self._max)
        return self._max

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the q-quantile observation
        (clamped to the observed max; 0.0 when empty)."""
        with self._lock:
            return self._quantile_locked(q)

    def summary(self) -> Dict[str, float]:
        with self._lock:
            return {
                "count": self._count,
                "mean_s": self._sum / self._count if self._count else 0.0,
                "min_s": self._min if self._count else 0.0,
                "p50_s": self._quantile_locked(0.50),
                "p95_s": self._quantile_locked(0.95),
                "p99_s": self._quantile_locked(0.99),
                "max_s": self._max,
            }


class MetricsRegistry:
    """Thread-safe named metrics with a JSON-dumpable snapshot."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._t0 = time.perf_counter()

    def counter(self, name: str) -> Counter:
        with self._lock:
            return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            return self._gauges.setdefault(name, Gauge())

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            return self._histograms.setdefault(name, Histogram())

    def observe_latency(self, name: str, started_at: float) -> float:
        """Record ``now - started_at`` into histogram ``name``; returns it."""
        dt = time.perf_counter() - started_at
        self.histogram(name).observe(dt)
        return dt

    @property
    def uptime_s(self) -> float:
        return time.perf_counter() - self._t0

    def metrics(self) -> Tuple[Dict[str, Counter], Dict[str, Gauge], Dict[str, Histogram]]:
        """Shallow copies of the metric maps (for exporters; the metric
        objects themselves stay live and thread-safe)."""
        with self._lock:
            return dict(self._counters), dict(self._gauges), dict(self._histograms)

    def snapshot(self) -> Dict[str, dict]:
        with self._lock:
            return {
                "uptime_s": self.uptime_s,
                "counters": {k: c.value for k, c in sorted(self._counters.items())},
                "gauges": {
                    k: {"value": g.value, "max": g.max}
                    for k, g in sorted(self._gauges.items())
                },
                "histograms": {
                    k: h.summary() for k, h in sorted(self._histograms.items())
                },
            }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)
