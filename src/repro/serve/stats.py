"""Service metrics: counters, gauges, latency histograms, JSON dump.

Every moving part of the service layer (pool, scheduler, cache, facade)
reports into one :class:`MetricsRegistry` so a single snapshot answers
"what is the service doing right now": per-request latency distributions,
queue depth, worker utilization, cache hit rate, and bytes in/out.

The histogram uses fixed log2-spaced buckets (1 us .. ~67 s), the standard
shape for service latency: cheap to record (one bisect per observation),
mergeable, and quantile-estimable without keeping samples.
"""

from __future__ import annotations

import json
import threading
import time
from bisect import bisect_left
from typing import Dict, List, Optional


def _bucket_bounds() -> List[float]:
    # 1us * 2**k for k = 0..26 -> last finite bound ~67s.
    return [1e-6 * (1 << k) for k in range(27)]


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        self.value += n


class Gauge:
    """A point-in-time value; also tracks the high-water mark."""

    __slots__ = ("value", "max")

    def __init__(self):
        self.value = 0.0
        self.max = 0.0

    def set(self, v: float) -> None:
        self.value = float(v)
        if v > self.max:
            self.max = float(v)


class Histogram:
    """Log2-bucketed distribution of non-negative observations (seconds)."""

    def __init__(self):
        self.bounds = _bucket_bounds()
        self.counts = [0] * (len(self.bounds) + 1)  # +1: overflow bucket
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, v: float) -> None:
        v = float(v)
        self.counts[bisect_left(self.bounds, v)] += 1
        self.count += 1
        self.sum += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the q-quantile observation
        (clamped to the observed max; 0.0 when empty)."""
        if not self.count:
            return 0.0
        target = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= target:
                bound = self.bounds[i] if i < len(self.bounds) else self.max
                return min(bound, self.max)
        return self.max

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_s": self.mean,
            "min_s": self.min if self.count else 0.0,
            "p50_s": self.quantile(0.50),
            "p95_s": self.quantile(0.95),
            "p99_s": self.quantile(0.99),
            "max_s": self.max,
        }


class MetricsRegistry:
    """Thread-safe named metrics with a JSON-dumpable snapshot."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._t0 = time.perf_counter()

    def counter(self, name: str) -> Counter:
        with self._lock:
            return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            return self._gauges.setdefault(name, Gauge())

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            return self._histograms.setdefault(name, Histogram())

    def observe_latency(self, name: str, started_at: float) -> float:
        """Record ``now - started_at`` into histogram ``name``; returns it."""
        dt = time.perf_counter() - started_at
        self.histogram(name).observe(dt)
        return dt

    @property
    def uptime_s(self) -> float:
        return time.perf_counter() - self._t0

    def snapshot(self) -> Dict[str, dict]:
        with self._lock:
            return {
                "uptime_s": self.uptime_s,
                "counters": {k: c.value for k, c in sorted(self._counters.items())},
                "gauges": {
                    k: {"value": g.value, "max": g.max}
                    for k, g in sorted(self._gauges.items())
                },
                "histograms": {
                    k: h.summary() for k, h in sorted(self._histograms.items())
                },
            }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)
