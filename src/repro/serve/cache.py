"""LRU decode cache keyed by stream content hash.

Decompression requests for hot streams (a checkpoint that many readers
open, a gradient block every rank pulls) are served from memory instead of
re-running the codec.  The key is a digest of the *compressed bytes*, so
identical streams hit regardless of where they came from, and a stream
that changes by one bit misses -- content addressing gives correctness for
free.  Eviction is by decoded-byte budget, least recently used first.

The cache is shared across request threads, so every read of the internal
state (entry map, byte total, hit/miss counts) happens under the same lock
as the mutations -- including the dunder accessors, which are exactly the
calls monitoring code makes while pool threads are mid-``put``.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Optional

import numpy as np

from repro.obs import trace as obs_trace

from .stats import MetricsRegistry


def content_key(buf) -> str:
    """Digest of a compressed stream's bytes (the cache key).

    Arrays are hashed over their raw underlying bytes whatever the dtype
    (a float stream chunk and its uint8 view hash identically); they are
    never value-cast, which would collapse distinct buffers onto one key.
    """
    if isinstance(buf, np.ndarray):
        if buf.dtype.hasobject:
            raise TypeError(
                f"cannot content-hash an object-dtype array (dtype {buf.dtype})"
            )
        buf = np.ascontiguousarray(buf)
    return hashlib.sha1(buf).hexdigest()


class DecodeCache:
    """Byte-budgeted LRU of decoded arrays with hit/miss accounting.

    Entries are isolated from the caller on ``put`` (writable input is
    copied) and returned as read-only views on ``get``; callers that need
    to mutate a hit must copy.
    """

    def __init__(
        self,
        max_bytes: int = 256 << 20,
        stats: Optional[MetricsRegistry] = None,
    ):
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._stats = stats

    # -- core ---------------------------------------------------------------

    def get(self, key: str) -> Optional[np.ndarray]:
        with obs_trace.maybe_span("cache.get") as sp:
            with self._lock:
                arr = self._entries.get(key)
                if arr is None:
                    self._misses += 1
                else:
                    self._entries.move_to_end(key)
                    self._hits += 1
                self._publish()
            if sp is not None:
                sp.set(hit=arr is not None)
            return arr

    def put(self, key: str, arr: np.ndarray) -> bool:
        """Insert a decoded array; returns False if it exceeds the whole
        budget (oversized values are never cached -- they would evict
        everything for a single-use entry).

        The cached entry never aliases caller-writable memory: a view of
        the caller's array would let the caller's original reference keep
        mutating the cached bytes in place after ``put``, silently
        poisoning every later hit.  Arrays that could still be written
        through any live reference (writable, or a view into someone
        else's buffer) are copied; an own-data read-only array is already
        frozen and is cached as-is.
        """
        arr = np.asarray(arr)
        if arr.nbytes > self.max_bytes:
            return False
        if arr.flags.writeable or not arr.flags.owndata:
            view = arr.copy()
        else:
            view = arr.view()
        view.flags.writeable = False
        with obs_trace.maybe_span("cache.put", bytes_in=int(view.nbytes)):
            with self._lock:
                old = self._entries.pop(key, None)
                if old is not None:
                    self._bytes -= old.nbytes
                self._entries[key] = view
                self._bytes += view.nbytes
                evicted = 0
                while self._bytes > self.max_bytes:
                    _, victim = self._entries.popitem(last=False)
                    self._bytes -= victim.nbytes
                    evicted += 1
                self._evictions += evicted
                self._publish(evicted)
                return True

    def drop(self, key: str) -> bool:
        """Remove one entry (returns whether it was present).  Used by
        writers that know a cached decode is about to go stale (e.g. the
        compressed-array tier invalidating a dirty block)."""
        with self._lock:
            arr = self._entries.pop(key, None)
            if arr is None:
                return False
            self._bytes -= arr.nbytes
            self._publish()
            return True

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self._publish()

    # -- accounting ---------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def bytes(self) -> int:
        with self._lock:
            return self._bytes

    @property
    def hits(self) -> int:
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        with self._lock:
            return self._misses

    @property
    def evictions(self) -> int:
        with self._lock:
            return self._evictions

    @property
    def hit_rate(self) -> float:
        with self._lock:
            return self._hit_rate()

    def _hit_rate(self) -> float:
        total = self._hits + self._misses
        return self._hits / total if total else 0.0

    def _publish(self, evicted: int = 0) -> None:
        # called under self._lock; the registry's metrics have their own
        # locks and never call back into the cache, so ordering is safe
        if self._stats is None:
            return
        self._stats.gauge("cache.bytes").set(self._bytes)
        self._stats.gauge("cache.entries").set(len(self._entries))
        self._stats.gauge("cache.hit_rate").set(self._hit_rate())
        if evicted:
            self._stats.counter("cache.evictions").inc(evicted)
