"""LRU decode cache keyed by stream content hash.

Decompression requests for hot streams (a checkpoint that many readers
open, a gradient block every rank pulls) are served from memory instead of
re-running the codec.  The key is a digest of the *compressed bytes*, so
identical streams hit regardless of where they came from, and a stream
that changes by one bit misses -- content addressing gives correctness for
free.  Eviction is by decoded-byte budget, least recently used first.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Optional

import numpy as np

from .stats import MetricsRegistry


def content_key(buf) -> str:
    """Digest of a compressed stream's bytes (the cache key)."""
    if isinstance(buf, np.ndarray):
        buf = np.ascontiguousarray(buf, dtype=np.uint8)
    return hashlib.sha1(buf).hexdigest()


class DecodeCache:
    """Byte-budgeted LRU of decoded arrays with hit/miss accounting.

    Cached arrays are returned as read-only views (no defensive copy on
    the hot path); callers that need to mutate must copy.
    """

    def __init__(
        self,
        max_bytes: int = 256 << 20,
        stats: Optional[MetricsRegistry] = None,
    ):
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._stats = stats

    # -- core ---------------------------------------------------------------

    def get(self, key: str) -> Optional[np.ndarray]:
        with self._lock:
            arr = self._entries.get(key)
            if arr is None:
                self.misses += 1
            else:
                self._entries.move_to_end(key)
                self.hits += 1
            self._publish()
            return arr

    def put(self, key: str, arr: np.ndarray) -> bool:
        """Insert a decoded array; returns False if it exceeds the whole
        budget (oversized values are never cached -- they would evict
        everything for a single-use entry)."""
        arr = np.asarray(arr)
        if arr.nbytes > self.max_bytes:
            return False
        view = arr.view()
        view.flags.writeable = False
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._entries[key] = view
            self._bytes += view.nbytes
            while self._bytes > self.max_bytes:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes
                self.evictions += 1
            self._publish()
            return True

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self._publish()

    # -- accounting ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    @property
    def bytes(self) -> int:
        return self._bytes

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def _publish(self) -> None:
        if self._stats is None:
            return
        self._stats.gauge("cache.bytes").set(self._bytes)
        self._stats.gauge("cache.entries").set(len(self._entries))
        self._stats.gauge("cache.hit_rate").set(self.hit_rate)
        self._stats.counter("cache.evictions").value = float(self.evictions)
