"""Chunked streaming engine: bounded-memory codec over group-aligned chunks.

Arbitrarily large fields are split into chunks whose boundaries land on
checksum-group boundaries (:func:`repro.core.stream.chunk_spans`), and each
chunk is compressed into its *own* self-contained format-v2 stream.  Three
properties follow:

* **bounded memory** -- compression touches one chunk of input and one
  chunk of output at a time, so peak RSS tracks the chunk size, not the
  field size;
* **bit-identical output** -- the codec's blocks are independent (each
  block's first element is stored raw, differences never cross block
  boundaries) and the error bound is resolved *once against the whole
  field*, so decoding the chunks and concatenating reproduces exactly the
  bytes the monolithic stream would decode to;
* **worker parallelism** -- a chunk is a complete codec job with no shared
  state, which is what lets :mod:`repro.serve.pool` fan chunks out over
  processes.

The chunk streams plus a manifest serialize into a ``CSZ2CHNK`` container
(:meth:`ChunkedStream.to_bytes`) that round-trips through files and
sockets; each chunk remains individually decodable (and individually
retransmittable, see :func:`repro.collective.send_resilient_chunked`).
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core import stream as _stream
from repro.core.compressor import DEFAULT_BLOCK, MODES, compress as _compress
from repro.core.compressor import decompress as _decompress
from repro.core.errors import InvalidInputError, StreamFormatError
from repro.core.quantize import ErrorBound, validate_input
from repro.obs import trace as obs_trace

from .pool import register_task

CHUNK_MAGIC = b"CSZ2CHNK"
CONTAINER_VERSION = 1
_FIXED_FMT = "<8sHHIQ"  # magic, version, reserved, nchunks, meta_len
_FIXED_SIZE = struct.calcsize(_FIXED_FMT)
_CRC_SIZE = 4

RAW_MAGIC = b"CSZ2RAW1"
_RAW_FMT = "<8sHHQ"  # magic, version, reserved, meta_len
_RAW_SIZE = struct.calcsize(_RAW_FMT)

#: Default chunk size: large enough to amortize per-chunk header overhead
#: to noise, small enough that a handful of in-flight chunks stay cheap.
DEFAULT_CHUNK_BYTES = 32 << 20


# ---------------------------------------------------------------------------
# Planning
# ---------------------------------------------------------------------------

def plan_chunks(
    shape: Tuple[int, ...],
    itemsize: int,
    predictor_ndim: int = 1,
    block: int = DEFAULT_BLOCK,
    group_blocks: int = _stream.DEFAULT_GROUP_BLOCKS,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    chunk_elems: Optional[int] = None,
) -> Tuple[List[Tuple[int, int]], str]:
    """Chunk spans for a field of ``shape``.

    Returns ``(spans, axis)`` where ``axis`` is ``"flat"`` (spans are
    element ranges of the flattened field; 1-D predictor) or ``"rows"``
    (spans are ranges of axis-0 rows aligned to the Lorenzo tile, so 2-D/
    3-D tiles never straddle a chunk).
    """
    nelems = 1
    for s in shape:
        nelems *= int(s)
    if nelems == 0:
        raise InvalidInputError("cannot chunk an empty field")
    if chunk_elems is None:
        chunk_elems = max(chunk_bytes // itemsize, 1)
    if predictor_ndim == 1:
        return _stream.chunk_spans(nelems, chunk_elems, block, group_blocks), "flat"
    if len(shape) != predictor_ndim:
        raise InvalidInputError(
            f"{predictor_ndim}-D predictor requires a {predictor_ndim}-D field, "
            f"got shape {tuple(shape)}"
        )
    t = round(block ** (1.0 / predictor_ndim))
    rowsize = nelems // shape[0]
    rows_per = max(chunk_elems // rowsize // t, 1) * t
    spans = [(lo, min(lo + rows_per, shape[0])) for lo in range(0, shape[0], rows_per)]
    return spans, "rows"


# ---------------------------------------------------------------------------
# Manifest + container
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ChunkEntry:
    """One chunk's extent in the field and in the container."""

    nelems: int  # elements ("flat") or axis-0 rows ("rows")
    nbytes: int  # compressed stream bytes
    crc32: int  # CRC32 of the chunk's stream bytes
    #: True when the chunk is a raw-passthrough payload (``CSZ2RAW1``):
    #: the resilience chain exhausted every compressed tier and stored
    #: the chunk uncompressed.  Flagged here so degradation is visible
    #: in the container itself, not just in service metrics.
    raw: bool = False


@dataclass(frozen=True)
class ChunkManifest:
    """Everything needed to reassemble (or partially decode) the field."""

    shape: Tuple[int, ...]
    dtype: str
    mode: str
    predictor_ndim: int
    block: int
    group_blocks: int
    eb_abs: float
    axis: str  # "flat" | "rows"
    entries: Tuple[ChunkEntry, ...] = field(default_factory=tuple)

    def to_json(self) -> str:
        return json.dumps(
            {
                "shape": list(self.shape),
                "dtype": self.dtype,
                "mode": self.mode,
                "predictor_ndim": self.predictor_ndim,
                "block": self.block,
                "group_blocks": self.group_blocks,
                # hex round-trips the float exactly (JSON decimal may not)
                "eb_abs": float(self.eb_abs).hex(),
                "axis": self.axis,
                # the "raw" key is emitted only when set, keeping the JSON
                # (and the golden container fixtures) byte-identical for
                # fully compressed streams
                "chunks": [
                    dict(
                        {"nelems": e.nelems, "nbytes": e.nbytes, "crc32": e.crc32},
                        **({"raw": True} if e.raw else {}),
                    )
                    for e in self.entries
                ],
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "ChunkManifest":
        d = json.loads(text)
        return cls(
            shape=tuple(d["shape"]),
            dtype=d["dtype"],
            mode=d["mode"],
            predictor_ndim=int(d["predictor_ndim"]),
            block=int(d["block"]),
            group_blocks=int(d["group_blocks"]),
            eb_abs=float.fromhex(d["eb_abs"]),
            axis=d["axis"],
            entries=tuple(
                ChunkEntry(
                    int(c["nelems"]), int(c["nbytes"]), int(c["crc32"]),
                    raw=bool(c.get("raw", False)),
                )
                for c in d["chunks"]
            ),
        )


class ChunkedStream:
    """A compressed field as independent chunk streams plus a manifest."""

    def __init__(self, manifest: ChunkManifest, chunks: Sequence[np.ndarray]):
        if len(chunks) != len(manifest.entries):
            raise StreamFormatError(
                f"manifest lists {len(manifest.entries)} chunks, got {len(chunks)}"
            )
        self.manifest = manifest
        self.chunks = [np.asarray(c, dtype=np.uint8) for c in chunks]

    @property
    def nchunks(self) -> int:
        return len(self.chunks)

    @property
    def compressed_bytes(self) -> int:
        return sum(c.size for c in self.chunks)

    @property
    def container_bytes(self) -> int:
        meta = self.manifest.to_json().encode()
        return _FIXED_SIZE + len(meta) + _CRC_SIZE + self.compressed_bytes

    def decompress(self, pool=None) -> np.ndarray:
        return decompress_chunked(self, pool=pool)

    # -- differential-testing seam ------------------------------------------
    #
    # repro.qa compares chunked output against the monolithic codec chunk
    # by chunk; these accessors expose the container's internals without
    # going through a full reassembling decode.

    def verify(self) -> List[int]:
        """CRC-check every chunk stream against its manifest entry; returns
        the indices of damaged chunks (empty = container intact)."""
        bad = []
        for i, (entry, chunk) in enumerate(zip(self.manifest.entries, self.chunks)):
            if (
                int(chunk.size) != entry.nbytes
                or (zlib.crc32(chunk.tobytes()) & 0xFFFFFFFF) != entry.crc32
            ):
                bad.append(i)
        return bad

    def decode_chunk(self, i: int) -> np.ndarray:
        """Decode chunk ``i`` in isolation (flat elements for axis="flat",
        axis-0 rows for axis="rows")."""
        return decompress_chunk(self.chunks[i])

    def element_spans(self) -> List[Tuple[int, int]]:
        """Flat element range ``[lo, hi)`` each chunk covers in the field."""
        m = self.manifest
        nelems = 1
        for s in m.shape:
            nelems *= int(s)
        per_row = nelems // m.shape[0] if m.axis == "rows" else 1
        spans, pos = [], 0
        for e in m.entries:
            n = e.nelems * per_row
            spans.append((pos, pos + n))
            pos += n
        return spans

    # -- serialization ------------------------------------------------------

    def to_bytes(self) -> np.ndarray:
        meta = self.manifest.to_json().encode()
        head = struct.pack(
            _FIXED_FMT, CHUNK_MAGIC, CONTAINER_VERSION, 0, self.nchunks, len(meta)
        )
        prefix = head + meta
        crc = struct.pack("<I", zlib.crc32(prefix) & 0xFFFFFFFF)
        return np.concatenate(
            [np.frombuffer(prefix + crc, dtype=np.uint8)] + self.chunks
        )

    @classmethod
    def from_bytes(cls, buf) -> "ChunkedStream":
        if not isinstance(buf, np.ndarray):
            buf = np.frombuffer(bytes(buf), dtype=np.uint8)
        if buf.dtype != np.uint8:
            raise StreamFormatError(f"container must be uint8 bytes, got {buf.dtype}")
        if buf.size < _FIXED_SIZE:
            raise StreamFormatError(
                f"container is {buf.size} bytes, the fixed header needs {_FIXED_SIZE}"
            )
        magic, version, _res, nchunks, meta_len = struct.unpack(
            _FIXED_FMT, buf[:_FIXED_SIZE].tobytes()
        )
        if magic != CHUNK_MAGIC:
            raise StreamFormatError(
                f"bad magic {magic!r} at byte offset 0 (expected {CHUNK_MAGIC!r}); "
                "not a chunked cuSZp2 container"
            )
        if version != CONTAINER_VERSION:
            raise StreamFormatError(f"unsupported container version {version}")
        meta_end = _FIXED_SIZE + meta_len
        if buf.size < meta_end + _CRC_SIZE:
            raise StreamFormatError("container truncated inside the manifest")
        (crc,) = struct.unpack(
            "<I", buf[meta_end : meta_end + _CRC_SIZE].tobytes()
        )
        if crc != (zlib.crc32(buf[:meta_end].tobytes()) & 0xFFFFFFFF):
            raise StreamFormatError("container manifest failed its CRC32 check")
        manifest = ChunkManifest.from_json(buf[_FIXED_SIZE:meta_end].tobytes().decode())
        if len(manifest.entries) != nchunks:
            raise StreamFormatError(
                f"fixed header declares {nchunks} chunks, manifest lists "
                f"{len(manifest.entries)}"
            )
        chunks = []
        pos = meta_end + _CRC_SIZE
        for i, entry in enumerate(manifest.entries):
            end = pos + entry.nbytes
            if buf.size < end:
                raise StreamFormatError(
                    f"container truncated inside chunk {i}: bytes [{pos}, {end}) "
                    f"needed, container ends at {buf.size}"
                )
            chunks.append(buf[pos:end])
            pos = end
        return cls(manifest, chunks)


def is_chunked(buf) -> bool:
    """Does ``buf`` start with the chunked-container magic?"""
    if isinstance(buf, np.ndarray):
        head = buf[: len(CHUNK_MAGIC)].tobytes()
    else:
        head = bytes(buf[: len(CHUNK_MAGIC)])
    return head == CHUNK_MAGIC


# ---------------------------------------------------------------------------
# Raw passthrough (graceful-degradation floor)
# ---------------------------------------------------------------------------

def is_raw(buf) -> bool:
    """Does ``buf`` start with the raw-passthrough magic?"""
    if isinstance(buf, np.ndarray):
        head = buf[: len(RAW_MAGIC)].tobytes()
    else:
        head = bytes(buf[: len(RAW_MAGIC)])
    return head == RAW_MAGIC


def raw_to_bytes(data: np.ndarray) -> np.ndarray:
    """Store ``data`` uncompressed in a self-describing ``CSZ2RAW1``
    container (the last rung of the degradation chain: correctness with a
    compression ratio of ~1).  The payload carries its own CRC32 so
    transport corruption of a degraded result is still detected."""
    data = np.ascontiguousarray(data)
    payload = data.tobytes()
    meta = json.dumps(
        {
            "shape": list(data.shape),
            "dtype": np.dtype(data.dtype).name,
            "crc32": zlib.crc32(payload) & 0xFFFFFFFF,
        }
    ).encode()
    head = struct.pack(_RAW_FMT, RAW_MAGIC, 1, 0, len(meta))
    return np.frombuffer(head + meta + payload, dtype=np.uint8)


def raw_from_bytes(buf) -> np.ndarray:
    """Decode a ``CSZ2RAW1`` container back to its array (CRC-checked)."""
    if not isinstance(buf, np.ndarray):
        buf = np.frombuffer(bytes(buf), dtype=np.uint8)
    if buf.size < _RAW_SIZE:
        raise StreamFormatError(
            f"raw container is {buf.size} bytes, the header needs {_RAW_SIZE}"
        )
    magic, version, _res, meta_len = struct.unpack(
        _RAW_FMT, buf[:_RAW_SIZE].tobytes()
    )
    if magic != RAW_MAGIC:
        raise StreamFormatError(f"bad raw-container magic {magic!r}")
    if version != 1:
        raise StreamFormatError(f"unsupported raw-container version {version}")
    meta_end = _RAW_SIZE + meta_len
    if buf.size < meta_end:
        raise StreamFormatError("raw container truncated inside its metadata")
    try:
        meta = json.loads(buf[_RAW_SIZE:meta_end].tobytes().decode())
        shape = tuple(int(s) for s in meta["shape"])
        dtype = np.dtype(meta["dtype"])
        crc = int(meta["crc32"])
    except (ValueError, KeyError, TypeError) as e:
        raise StreamFormatError(f"raw container metadata unparseable: {e!r}") from None
    payload = buf[meta_end:].tobytes()
    nelems = 1
    for s in shape:
        nelems *= s
    if len(payload) != nelems * dtype.itemsize:
        raise StreamFormatError(
            f"raw container payload is {len(payload)} bytes, metadata "
            f"declares {nelems * dtype.itemsize}"
        )
    if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
        from repro.core.errors import IntegrityError

        raise IntegrityError("raw container payload failed its CRC32 check")
    return np.frombuffer(payload, dtype=dtype).reshape(shape).copy()


# ---------------------------------------------------------------------------
# Pool task functions (registered by name so process workers resolve them)
# ---------------------------------------------------------------------------

@register_task("chunk.compress")
def compress_chunk(arg: dict) -> np.ndarray:
    """Compress one chunk under an already-resolved ABS bound.  The task
    dict carries the kernel-backend name so process workers make the same
    backend choice as the coordinating session (every backend is
    byte-identical, so a mixed fleet would still be correct -- just
    unintentional)."""
    data = arg["data"]
    with obs_trace.maybe_span("chunk.compress", bytes_in=int(data.nbytes)) as sp:
        out = _compress(
            data,
            abs=arg["eb_abs"],
            mode=arg.get("mode", "outlier"),
            block=arg.get("block", DEFAULT_BLOCK),
            predictor_ndim=arg.get("predictor_ndim", 1),
            group_blocks=arg.get("group_blocks", _stream.DEFAULT_GROUP_BLOCKS),
            kernel_backend=arg.get("kernel_backend", "auto"),
        )
        if sp is not None:
            sp.set(bytes_out=int(out.size))
        return out


@register_task("chunk.decompress")
def decompress_chunk(arg) -> np.ndarray:
    """Decompress one self-contained chunk stream (or decode a
    raw-passthrough chunk emitted by the degradation chain).  ``arg`` is
    either the stream bytes themselves or a dict
    ``{"stream": ..., "kernel_backend": ...}`` carrying the worker's
    kernel-backend choice.

    Streams that are neither raw containers nor core CSZ2 sniff through
    the :mod:`repro.codecs` plugin registry, so a service decodes any
    registered codec's output without being told which codec made it."""
    kernel_backend = "auto"
    if isinstance(arg, dict):
        kernel_backend = arg.get("kernel_backend", "auto")
        arg = arg["stream"]
    nbytes = int(arg.size) if isinstance(arg, np.ndarray) else len(arg)
    with obs_trace.maybe_span("chunk.decompress", bytes_in=nbytes) as sp:
        if is_raw(arg):
            out = raw_from_bytes(arg)
        elif _is_csz2(arg):
            out = _decompress(arg, kernel_backend=kernel_backend)
        else:
            from repro import codecs as _codecs

            out = _codecs.decode(arg)
        if sp is not None:
            sp.set(bytes_out=int(out.nbytes))
        return out


def _is_csz2(buf) -> bool:
    head = buf[:4] if isinstance(buf, np.ndarray) else np.frombuffer(
        bytes(buf[:4]), dtype=np.uint8
    )
    return head.size >= 4 and bytes(head[:4]) == _stream.MAGIC


@register_task("codec.compress")
def codec_compress(arg: dict) -> np.ndarray:
    """Compress through a registered :mod:`repro.codecs` plugin.  The task
    dict is ``{"data": ndarray, "codec": name, "opts": {...}}`` with the
    error bound (for bounded plugins) already inside ``opts``."""
    from repro import codecs as _codecs

    data = arg["data"]
    with obs_trace.maybe_span(
        "codec.compress", bytes_in=int(data.nbytes), codec=arg["codec"]
    ) as sp:
        out = _codecs.encode(data, arg["codec"], **arg.get("opts", {}))
        if sp is not None:
            sp.set(bytes_out=int(out.size))
        return out


@register_task("codec.decompress")
def codec_decompress(arg) -> np.ndarray:
    """Decode through the plugin registry (sniffing unless ``codec`` is
    forced).  ``arg`` is the stream bytes or ``{"stream": ..., "codec": ...}``."""
    from repro import codecs as _codecs

    codec = None
    if isinstance(arg, dict):
        codec = arg.get("codec")
        arg = arg["stream"]
    nbytes = int(arg.size) if isinstance(arg, np.ndarray) else len(arg)
    with obs_trace.maybe_span("codec.decompress", bytes_in=nbytes) as sp:
        out = _codecs.decode(arg, codec=codec)
        if sp is not None:
            sp.set(bytes_out=int(out.nbytes))
        return out


# ---------------------------------------------------------------------------
# Engine entry points
# ---------------------------------------------------------------------------

def _chunk_views(data: np.ndarray, spans, axis: str):
    if axis == "flat":
        flat = data.reshape(-1)
        return [flat[lo:hi] for lo, hi in spans]
    return [data[lo:hi] for lo, hi in spans]


def compress_chunked(
    data: np.ndarray,
    rel: Optional[float] = None,
    abs: Optional[float] = None,  # noqa: A002 - mirrors repro.compress
    mode: str = "outlier",
    block: int = DEFAULT_BLOCK,
    predictor_ndim: int = 1,
    group_blocks: int = _stream.DEFAULT_GROUP_BLOCKS,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    chunk_elems: Optional[int] = None,
    pool=None,
    kernel_backend: str = "auto",
) -> ChunkedStream:
    """Compress ``data`` chunk by chunk into a :class:`ChunkedStream`.

    The REL bound is resolved against the *whole* field before chunking
    (each chunk is then compressed under the same ABS bound), so the
    decoded result is bit-identical to the monolithic codec's.  Pass a
    :class:`~repro.serve.pool.WorkerPool` to compress chunks in parallel.
    """
    data = np.asarray(data)
    if mode not in MODES:
        raise InvalidInputError(f"mode must be 'plain' or 'outlier', got {mode!r}")
    if (rel is None) == (abs is None):
        raise InvalidInputError("specify exactly one of rel= or abs=")
    eb = ErrorBound.relative(rel) if rel is not None else ErrorBound.absolute(abs)
    eb_abs = eb.resolve(validate_input(data))

    spans, axis = plan_chunks(
        data.shape,
        data.dtype.itemsize,
        predictor_ndim=predictor_ndim,
        block=block,
        group_blocks=group_blocks,
        chunk_bytes=chunk_bytes,
        chunk_elems=chunk_elems,
    )
    args = [
        {
            "data": view,
            "eb_abs": eb_abs,
            "mode": mode,
            "block": block,
            "predictor_ndim": predictor_ndim,
            "group_blocks": group_blocks,
            "kernel_backend": kernel_backend,
        }
        for view in _chunk_views(data, spans, axis)
    ]
    if pool is not None:
        streams = pool.map("chunk.compress", args)
    else:
        streams = [compress_chunk(a) for a in args]

    entries = tuple(
        ChunkEntry(
            nelems=hi - lo,
            nbytes=int(s.size),
            crc32=zlib.crc32(s.tobytes()) & 0xFFFFFFFF,
        )
        for (lo, hi), s in zip(spans, streams)
    )
    manifest = ChunkManifest(
        shape=tuple(data.shape),
        dtype=np.dtype(data.dtype).name,
        mode=mode,
        predictor_ndim=predictor_ndim,
        block=block,
        group_blocks=group_blocks,
        eb_abs=eb_abs,
        axis=axis,
        entries=entries,
    )
    return ChunkedStream(manifest, streams)


def decompress_chunked(obj, pool=None, kernel_backend: str = "auto") -> np.ndarray:
    """Decode a :class:`ChunkedStream` (or serialized container) back to
    the original field shape; chunks decode independently (optionally in
    parallel over ``pool``)."""
    chunked = obj if isinstance(obj, ChunkedStream) else ChunkedStream.from_bytes(obj)
    m = chunked.manifest
    if kernel_backend != "auto":
        args = [{"stream": c, "kernel_backend": kernel_backend} for c in chunked.chunks]
    else:
        args = list(chunked.chunks)
    if pool is not None:
        parts = pool.map("chunk.decompress", args)
    else:
        parts = [decompress_chunk(c) for c in args]
    if m.axis == "flat":
        out = np.concatenate([p.reshape(-1) for p in parts])
    else:
        out = np.concatenate(parts, axis=0)
    if out.dtype != np.dtype(m.dtype):  # pragma: no cover - defensive
        raise StreamFormatError(
            f"chunks decoded to {out.dtype}, manifest says {m.dtype}"
        )
    return out.reshape(m.shape)
