"""Queue-depth-driven autoscaling for the worker pool.

The serving pool is elastic (:meth:`~repro.serve.pool.WorkerPool.resize`
grows it immediately and drains idle workers to shrink), but something
has to decide *when*.  The :class:`Autoscaler` polls the scheduler's
queue depth and the pool's live worker count, and converges the pool
between ``min_workers`` and ``max_workers``:

* depth > ``high_watermark`` tasks *per worker* -> scale up one step;
* depth < ``low_watermark`` per worker (and idle) -> scale down one step;
* a ``cooldown_s`` window after every decision suppresses oscillation --
  a burst that drains right after a scale-up cannot trigger an immediate
  scale-down, and vice versa.

The policy itself is the pure function :func:`decide` so property tests
can drive it through thousands of synthetic load traces without threads
or clocks; :class:`Autoscaler` adds the wall-clock loop (injectable
``clock`` for tests), metric emission, and an optional bump of the
scheduler's ``max_inflight`` so admission control tracks capacity.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Optional

from .stats import MetricsRegistry

__all__ = ["AutoscaleConfig", "Autoscaler", "decide"]


@dataclass(frozen=True)
class AutoscaleConfig:
    """Scaling policy knobs.

    ``high_watermark`` / ``low_watermark`` are queue depth *per worker*;
    hysteresis requires ``low < high`` so the two thresholds can never
    both fire for one observation.  ``step`` bounds how many workers one
    decision adds or removes; ``cooldown_s`` is the minimum wall-clock
    gap between two decisions.
    """

    min_workers: int = 1
    max_workers: int = 4
    high_watermark: float = 4.0
    low_watermark: float = 1.0
    step: int = 1
    cooldown_s: float = 5.0
    poll_s: float = 0.25

    def __post_init__(self):
        if not 1 <= self.min_workers <= self.max_workers:
            raise ValueError(
                f"need 1 <= min_workers <= max_workers, got "
                f"{self.min_workers}..{self.max_workers}"
            )
        if self.low_watermark >= self.high_watermark:
            raise ValueError(
                f"low_watermark ({self.low_watermark}) must be below "
                f"high_watermark ({self.high_watermark})"
            )
        if self.step < 1:
            raise ValueError(f"step must be >= 1, got {self.step}")


def decide(cfg: AutoscaleConfig, workers: int, queue_depth: int,
           now: float, last_change: float) -> int:
    """Pure scaling policy: the worker count to target *now*.

    Returns a value in ``[min_workers, max_workers]``; returning the
    current ``workers`` means "hold".  Within ``cooldown_s`` of the last
    change the answer is always "hold" (clamped into bounds), which is
    what makes the policy oscillation-free by construction.
    """
    workers = max(1, workers)
    clamped = min(max(workers, cfg.min_workers), cfg.max_workers)
    if now - last_change < cfg.cooldown_s:
        return clamped
    per_worker = queue_depth / workers
    if per_worker > cfg.high_watermark:
        return min(workers + cfg.step, cfg.max_workers)
    if per_worker < cfg.low_watermark:
        return max(workers - cfg.step, cfg.min_workers)
    return clamped


class Autoscaler:
    """Background loop applying :func:`decide` to a live pool.

    Parameters
    ----------
    pool:
        Anything with ``queue_depth``, ``workers_alive``, and
        ``resize(n)`` -- a :class:`~repro.serve.pool.WorkerPool` or the
        chaos wrapper around one (which delegates all three).
    scheduler:
        Optional :class:`~repro.serve.scheduler.Scheduler`; when given,
        its ``max_inflight`` is scaled proportionally with the worker
        count so admission control follows capacity, and its queue depth
        is added to the pool's (work parked above the pool is still load).
    clock:
        Injectable monotonic clock for deterministic tests.
    """

    def __init__(
        self,
        pool,
        cfg: Optional[AutoscaleConfig] = None,
        scheduler=None,
        stats: Optional[MetricsRegistry] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        import time

        self.pool = pool
        self.cfg = cfg if cfg is not None else AutoscaleConfig()
        self.scheduler = scheduler
        self.stats = stats if stats is not None else MetricsRegistry()
        self._clock = clock if clock is not None else time.monotonic
        self._last_change = self._clock() - self.cfg.cooldown_s  # act at once
        self._inflight_per_worker = None
        if scheduler is not None and getattr(scheduler, "max_inflight", 0):
            base = max(1, getattr(pool, "workers_alive", 1) or 1)
            self._inflight_per_worker = max(1, scheduler.max_inflight // base)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- one observation ----------------------------------------------------

    def tick(self) -> int:
        """Observe, decide, and apply once.  Returns the (possibly
        unchanged) target worker count; safe to call from tests without
        starting the background thread."""
        depth = self.pool.queue_depth
        if self.scheduler is not None:
            depth += self.scheduler.queue_depth
        workers = self.pool.workers_alive or 1
        now = self._clock()
        target = decide(self.cfg, workers, depth, now, self._last_change)
        self.stats.gauge("autoscale.queue_depth").set(depth)
        self.stats.gauge("autoscale.workers").set(workers)
        if target != workers:
            if self.pool.resize(target):
                self._last_change = now
                if target > workers:
                    self.stats.counter("autoscale.scale_ups").inc()
                else:
                    self.stats.counter("autoscale.scale_downs").inc()
                if self.scheduler is not None and self._inflight_per_worker:
                    self.scheduler.max_inflight = (
                        self._inflight_per_worker * target
                    )
        self.stats.gauge("autoscale.target").set(target)
        return target

    # -- background loop ----------------------------------------------------

    def start(self) -> "Autoscaler":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run, name="serve-autoscaler", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.cfg.poll_s):
            try:
                self.tick()
            except Exception:  # noqa: BLE001 - scaling never kills serving
                self.stats.counter("autoscale.errors").inc()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc):
        self.stop()
