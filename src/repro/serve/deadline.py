"""Request deadlines: the one clock every serve-layer stage agrees on.

A :class:`Deadline` is an *absolute* point on ``time.perf_counter``'s
monotonic clock.  Callers state a budget once (``Deadline.after(0.5)``)
and the same object threads through :class:`~repro.serve.scheduler.Scheduler`,
:class:`~repro.serve.pool.WorkerPool`, and the resilience router, so every
stage answers the same two questions consistently:

* *is it too late to start this work?* -- queues shed expired entries
  before dispatch instead of wasting a worker on an answer nobody is
  waiting for;
* *is in-flight work overrunning?* -- the pool watchdog kills (process)
  or abandons (thread) a worker whose task has outlived its deadline.

Deadlines never cross the process boundary: workers do not watch the
clock themselves (a hung worker by definition cannot), enforcement lives
entirely in the parent's manager threads.
"""

from __future__ import annotations

import time
from typing import Optional


class DeadlineExceeded(RuntimeError):
    """The request's deadline passed before a result was produced.

    Raised for both *sheds* (the deadline expired while the request was
    still queued, so it was dropped before dispatch) and *overruns* (the
    watchdog reclaimed a worker that outlived the deadline and no retry
    budget remained).  Always a terminal, classified outcome.
    """


class WorkerTimeout(RuntimeError):
    """The watchdog reclaimed a worker whose in-flight task outlived its
    deadline.  Distinct from :class:`DeadlineExceeded` because a
    micro-batch is killed on its *earliest* member's deadline: members
    whose own deadline still has budget receive this retryable error,
    while the expired member's is converted to :class:`DeadlineExceeded`.
    """


class Deadline:
    """An absolute deadline on the monotonic ``perf_counter`` clock."""

    __slots__ = ("at",)

    def __init__(self, at: float):
        self.at = float(at)

    @classmethod
    def after(cls, timeout_s: float) -> "Deadline":
        """The deadline ``timeout_s`` seconds from now."""
        if timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {timeout_s}")
        return cls(time.perf_counter() + float(timeout_s))

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.at - time.perf_counter()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def __repr__(self) -> str:
        return f"Deadline(in {self.remaining() * 1e3:+.1f} ms)"


def earliest(*deadlines: Optional[Deadline]) -> Optional[Deadline]:
    """The tightest of several optional deadlines (None = unbounded)."""
    have = [d for d in deadlines if d is not None]
    if not have:
        return None
    return min(have, key=lambda d: d.at)
