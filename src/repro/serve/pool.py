"""Worker pool: fan tasks out over threads or processes.

Chunked streams (:mod:`repro.serve.chunked`) make every chunk a
self-contained codec job, so compression parallelism reduces to a generic
task pool.  Two interchangeable backends:

* :class:`ThreadBackend` -- same-process workers.  The NumPy codec holds
  the GIL for most of its time, so threads give little speedup; they exist
  for deterministic tests (shared memory, injectable failures) and for
  I/O-bound task mixes.
* :class:`ProcessBackend` -- ``multiprocessing`` workers for real
  parallelism on multi-core hosts.

Tasks are referenced *by registered name* (:func:`register_task`), never
by pickled callables: process workers resolve the name in their own copy
of the registry (inherited through ``fork`` / module import), so a
submission carries only the name plus the argument payload, and an
unregistered name fails with the classified :class:`UnknownTask` error
instead of an ``AttributeError`` from a missing function.  The registry
is explicit -- :func:`registered_tasks` lists it, :func:`unregister_task`
removes entries (tests use this to exercise the unknown-task path).

The *argument payload* crosses the pool boundary through one of two
transports:

* ``"pickle"`` (default) -- payloads ride the ``multiprocessing`` queue
  verbatim, pickled on the way in and out;
* ``"shm"`` (:mod:`repro.serve.shm`) -- ndarrays are written into a
  shared-memory arena and only small descriptors are pickled; workers
  read zero-copy views and ship results back the same way.  Slots are
  refcounted with generation guards, crash recovery reclaims whatever a
  dead worker held, and oversized payloads fall back to pickling.

Each worker runs a warmup task before accepting work (priming NumPy and
the codec so the first real request does not pay first-touch costs),
reports per-task busy time for utilization accounting, and is replaced
if it dies: a dead worker's in-flight task is resubmitted to a fresh
worker (at most ``max_task_retries`` times) so a crash loses no request.
The pool is elastic: :meth:`WorkerPool.resize` grows it immediately and
shrinks it by stopping idle workers (in-flight tasks always finish) --
the autoscaler (:mod:`repro.serve.autoscale`) drives this from queue
depth.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import queue
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional

from repro.obs import trace as obs_trace
from repro.obs.trace import TraceContext, Tracer

from .deadline import Deadline, DeadlineExceeded, WorkerTimeout
from .stats import MetricsRegistry


class PoolClosed(RuntimeError):
    """Submission after shutdown (or to a broken pool)."""


class WaitTimeout(TimeoutError):
    """``future.result(timeout=...)`` ran out of patience.

    Subclasses :class:`TimeoutError` for compatibility.  The future is
    *not* cancelled and the task stays queued/in-flight; call
    :meth:`PoolFuture.cancel` to drop a not-yet-dispatched task (the
    dispatcher skips cancelled entries) or keep waiting.
    """


class WorkerCrash(RuntimeError):
    """A worker died while running a task.

    Raised *inside a task* it kills the worker (threads: the worker loop
    exits; processes: the interpreter hard-exits) -- the mechanism tests
    use to exercise crash recovery.  Delivered *from a future* it means
    the task was lost to repeated worker deaths.
    """


class TaskError(RuntimeError):
    """A task raised an exception that could not cross the process
    boundary intact; carries its ``repr``."""


class UnknownTask(TaskError):
    """A submission named a task that is not in the registry.

    Classified (it subclasses :class:`TaskError`) but deterministic --
    the resilience layer delivers it without burning retries, because no
    tier can run a task that was never registered.
    """


# ---------------------------------------------------------------------------
# Task registry
# ---------------------------------------------------------------------------

_TASKS: Dict[str, Callable[[Any], Any]] = {}


def register_task(name: str, fn: Optional[Callable[[Any], Any]] = None):
    """Register ``fn`` under ``name`` (usable as a decorator).

    Process workers inherit the registry through ``fork``; tasks must
    therefore be registered at import time of a module the parent has
    imported before the pool starts.
    """
    def _register(f):
        _TASKS[name] = f
        return f

    return _register if fn is None else _register(fn)


def unregister_task(name: str) -> None:
    """Remove ``name`` from the registry (idempotent)."""
    _TASKS.pop(name, None)


def registered_tasks() -> List[str]:
    """Sorted names currently in the registry."""
    return sorted(_TASKS)


def _run_task(name: str, arg: Any) -> Any:
    fn = _TASKS.get(name)
    if fn is None:
        raise UnknownTask(f"unknown task {name!r}; registered: {sorted(_TASKS)}")
    return fn(arg)


@register_task("pool.echo")
def _echo(arg):
    return arg


@register_task("pool.sleep")
def _sleep(arg):
    time.sleep(float(arg))
    return float(arg)


@register_task("pool.batch")
def _batch(arg):
    """Run ``(name, [args])`` sub-tasks in one dispatch; per-item outcomes
    ``(ok, value_or_exception)`` so one bad item cannot sink its batch."""
    name, items = arg
    out = []
    for item in items:
        try:
            out.append((True, _run_task(name, item)))
        except WorkerCrash:
            raise
        except Exception as e:  # noqa: BLE001 - outcome is delivered per item
            out.append((False, e))
    return out


def _warmup_codec() -> None:
    import numpy as np

    from repro.core import compress, decompress

    data = np.linspace(0.0, 1.0, 256, dtype=np.float32)
    decompress(compress(data, rel=1e-2))


# ---------------------------------------------------------------------------
# Futures
# ---------------------------------------------------------------------------

class CancelledError(RuntimeError):
    """The request was cancelled before a worker ran it."""


class PoolFuture:
    """Minimal thread-safe future (result / exception / cancel / callbacks)."""

    def __init__(self):
        self._cv = threading.Condition()
        self._done = False
        self._cancelled = False
        self._result: Any = None
        self._exc: Optional[BaseException] = None
        self._callbacks: List[Callable[["PoolFuture"], None]] = []

    def done(self) -> bool:
        with self._cv:
            return self._done

    def cancelled(self) -> bool:
        with self._cv:
            return self._cancelled

    def cancel(self) -> bool:
        with self._cv:
            if self._done:
                return False
            self._cancelled = True
            self._done = True
            self._exc = CancelledError("request cancelled")
            callbacks, self._callbacks = self._callbacks, []
        self._run_callbacks(callbacks)
        return True

    def set_result(self, value: Any) -> None:
        self._finish(result=value)

    def set_exception(self, exc: BaseException) -> None:
        self._finish(exc=exc)

    def _finish(self, result: Any = None, exc: Optional[BaseException] = None):
        with self._cv:
            if self._done:  # late completion of a cancelled task: ignore
                return
            self._result = result
            self._exc = exc
            self._done = True
            callbacks, self._callbacks = self._callbacks, []
        self._run_callbacks(callbacks)

    def _run_callbacks(self, callbacks) -> None:
        # Callbacks run BEFORE waiters are released: completion side
        # effects (stats accounting, the service's decode-cache fill)
        # are visible by the time result() returns, so a caller that
        # immediately re-issues the same request hits the cache
        # deterministically.  No lock is held while they run, and the
        # finally guarantees a raising callback never strands waiters.
        try:
            for cb in callbacks:
                cb(self)
        finally:
            with self._cv:
                self._cv.notify_all()

    def add_done_callback(self, cb: Callable[["PoolFuture"], None]) -> None:
        with self._cv:
            if not self._done:
                self._callbacks.append(cb)
                return
        cb(self)

    def result(self, timeout: Optional[float] = None) -> Any:
        with self._cv:
            if not self._cv.wait_for(lambda: self._done, timeout):
                raise WaitTimeout(
                    f"future not done within {timeout}s; cancel() drops a "
                    "not-yet-dispatched task"
                )
            if self._exc is not None:
                raise self._exc
            return self._result

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        with self._cv:
            if not self._cv.wait_for(lambda: self._done, timeout):
                raise WaitTimeout(
                    f"future not done within {timeout}s; cancel() drops a "
                    "not-yet-dispatched task"
                )
            return self._exc


# ---------------------------------------------------------------------------
# Worker loops
# ---------------------------------------------------------------------------

_STOP = None  # input-queue sentinel


def _run_traced(name: str, arg: Any, wid: int, backend: str, spans_out: list):
    """Run one task under a fresh per-task tracer, filling ``spans_out``
    with the finished span trees (as dicts) even when the task raises.
    The fresh tracer is installed as this thread's override so
    codec-stage ``maybe_span`` calls inside the task record into it (and
    never bleed into an ambient tracer shared with other worker
    threads); the trees ship back with the result for re-parenting under
    the submitting span."""
    tracer = Tracer()
    prev = obs_trace.set_thread_tracer(tracer)
    try:
        with tracer.span(
            f"pool.task.{name}", task=name, worker=wid, pid=os.getpid(),
            backend=backend,
        ):
            return _run_task(name, arg)
    finally:
        obs_trace.set_thread_tracer(prev)
        spans_out.extend(s.to_dict() for s in tracer.roots())


def _resolve_transport(transport):
    """Materialize the worker-side transport: ``None`` (pickled path), a
    live :class:`~repro.serve.shm.ShmTransport` (thread workers share the
    parent's), or an attach spec tuple (process workers map the segment
    themselves)."""
    if transport is None or not isinstance(transport, tuple):
        return transport
    from .shm import ShmTransport

    return ShmTransport.attach(transport)


def _worker_loop(wid: int, inq, outq, warmup: bool, process: bool,
                 transport=None) -> None:
    # Suppress ambient tracing in this thread: worker spans are only
    # collected through the explicit per-task ship-back protocol.
    obs_trace.set_thread_tracer(obs_trace.DISABLED)
    transport = _resolve_transport(transport)
    if warmup:
        try:
            _warmup_codec()
        except Exception:  # noqa: BLE001 - warmup is best-effort priming
            pass
    outq.put(("ready", wid, None, None, 0.0, None))
    backend = "process" if process else "thread"
    while True:
        msg = inq.get()
        if msg is _STOP:
            outq.put(("stopped", wid, None, None, 0.0, None))
            return
        task_id, name, arg, want_trace = msg
        t0 = time.perf_counter()
        spans_buf: list = []
        spans = None
        try:
            if transport is not None:
                # zero-copy read-only views; the parent keeps the request
                # slots claimed until this task's outcome lands
                arg = transport.decode(arg)
            if want_trace:
                value = _run_traced(name, arg, wid, backend, spans_buf)
                spans = spans_buf
            else:
                value = _run_task(name, arg)
        except WorkerCrash as e:
            if process:
                os._exit(17)  # a real death: no goodbye message
            outq.put(("crashed", wid, task_id, repr(e), time.perf_counter() - t0, None))
            return
        except BaseException as e:  # noqa: BLE001 - delivered via the future
            dur = time.perf_counter() - t0
            spans = spans_buf or None
            try:
                outq.put(("done", wid, task_id, (False, e), dur, spans))
            except Exception:  # unpicklable exception: degrade to TaskError
                outq.put(("done", wid, task_id, (False, TaskError(repr(e))), dur, spans))
        else:
            dur = time.perf_counter() - t0
            if transport is not None:
                # result slots are owned by this worker (owner_pid) until
                # the parent copies them out; a full arena falls back to
                # shipping the raw value through the queue
                value, _ = transport.encode(value)
            outq.put(("done", wid, task_id, (True, value), dur, spans))


def _process_worker_main(wid: int, inq, outq, warmup: bool, transport=None) -> None:
    _worker_loop(wid, inq, outq, warmup, process=True, transport=transport)


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------

class _ThreadHandle:
    def __init__(self, thread: threading.Thread):
        self._thread = thread

    def is_alive(self) -> bool:
        return self._thread.is_alive()

    def join(self, timeout: Optional[float] = None) -> None:
        self._thread.join(timeout)

    def terminate(self) -> None:  # threads cannot be killed; rely on sentinel
        pass


class ThreadBackend:
    """Same-process workers: deterministic, shared-memory, test-friendly."""

    name = "thread"

    def make_queue(self):
        return queue.Queue()

    def spawn(self, wid: int, inq, outq, warmup: bool, transport=None):
        t = threading.Thread(
            target=_worker_loop,
            args=(wid, inq, outq, warmup, False, transport),
            name=f"serve-worker-{wid}",
            daemon=True,
        )
        t.start()
        return _ThreadHandle(t)


class ProcessBackend:
    """``multiprocessing`` workers (fork where available) for real
    parallelism; a crashed process is detected by liveness polling."""

    name = "process"

    def __init__(self):
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            self._ctx = multiprocessing.get_context()

    def make_queue(self):
        return self._ctx.Queue()

    def spawn(self, wid: int, inq, outq, warmup: bool, transport=None):
        # a live transport cannot be pickled; ship the attach spec and
        # let the child map the segment itself
        spec = transport.spec() if transport is not None else None
        p = self._ctx.Process(
            target=_process_worker_main,
            args=(wid, inq, outq, warmup, spec),
            name=f"serve-worker-{wid}",
            daemon=True,
        )
        p.start()
        return p


def make_backend(backend) -> object:
    if isinstance(backend, str):
        if backend == "thread":
            return ThreadBackend()
        if backend == "process":
            return ProcessBackend()
        raise ValueError(f"backend must be 'thread' or 'process', got {backend!r}")
    return backend


# ---------------------------------------------------------------------------
# The pool
# ---------------------------------------------------------------------------

class _Task:
    __slots__ = ("task_id", "name", "arg", "future", "retries", "trace",
                 "deadline", "shm_refs")

    def __init__(self, task_id, name, arg, future, trace=None, deadline=None):
        self.task_id = task_id
        self.name = name
        self.arg = arg  # always the ORIGINAL arg; re-encoded per dispatch
        self.future = future
        self.retries = 0
        self.trace: Optional[TraceContext] = trace
        self.deadline: Optional[Deadline] = deadline
        self.shm_refs: list = []  # request-slot descriptors held while in flight


class _WorkerState:
    __slots__ = ("wid", "handle", "inq", "ready", "stopping", "inflight",
                 "spawned_at")

    def __init__(self, wid, handle, inq):
        self.wid = wid
        self.handle = handle
        self.inq = inq
        self.ready = False
        self.stopping = False
        self.inflight: Optional[_Task] = None
        self.spawned_at = time.perf_counter()


class WorkerPool:
    """Fixed-size pool with warmup, crash recovery, and graceful shutdown.

    Parameters
    ----------
    nworkers:
        Concurrent workers (>= 1).
    backend:
        ``"thread"``, ``"process"``, or a backend instance.
    warmup:
        Run the codec warmup task in each worker before it accepts work.
    max_task_retries:
        Times a task is resubmitted after killing its worker before its
        future fails with :class:`WorkerCrash`.
    max_respawns:
        Restart budget: total worker replacements (crashes plus watchdog
        kills) before the pool declares itself broken.  Default
        ``4 + 2 * nworkers``; chaos campaigns pass something generous.
    watchdog_grace_s:
        Slack past a task's deadline before the watchdog reclaims the
        worker running it (kills a process worker, abandons a thread
        worker) and spawns a replacement.
    spawn_timeout_s:
        A worker that has not reported ready this long after spawning is
        presumed wedged at birth (e.g. a fork child deadlocked on a lock
        another parent thread held at fork time) and is killed and
        replaced, charging the restart budget.  Without this, a stillborn
        worker is invisible: the process is alive, so liveness polling
        passes, and it has no in-flight task, so the deadline watchdog
        never looks at it -- while dispatch skips it forever.
    transport:
        ``"pickle"`` (default) ships payloads through the worker queues;
        ``"shm"`` moves ndarrays through a shared-memory arena and ships
        only descriptors (see :mod:`repro.serve.shm`).  An existing
        :class:`~repro.serve.shm.ShmTransport` instance is accepted too.
    shm_slots / shm_slot_bytes / shm_min_bytes:
        Arena shape for ``transport="shm"``: slot count (default
        ``4 * nworkers + 8``), bytes per slot, and the ndarray size below
        which pickling is used anyway.
    """

    def __init__(
        self,
        nworkers: int = 2,
        backend="thread",
        warmup: bool = True,
        max_task_retries: int = 1,
        stats: Optional[MetricsRegistry] = None,
        poll_s: float = 0.02,
        max_respawns: Optional[int] = None,
        watchdog_grace_s: float = 0.05,
        spawn_timeout_s: float = 15.0,
        transport="pickle",
        shm_slots: Optional[int] = None,
        shm_slot_bytes: int = 8 << 20,
        shm_min_bytes: Optional[int] = None,
    ):
        if nworkers < 1:
            raise ValueError(f"nworkers must be >= 1, got {nworkers}")
        self.backend = make_backend(backend)
        self.nworkers = nworkers
        self.stats = stats if stats is not None else MetricsRegistry()
        self._warmup = warmup
        self._max_task_retries = max_task_retries
        self._poll_s = poll_s
        self._watchdog_grace_s = watchdog_grace_s
        self._spawn_timeout_s = spawn_timeout_s
        from .shm import DEFAULT_MIN_BYTES, make_transport

        self._transport = make_transport(
            transport,
            nslots=shm_slots if shm_slots is not None else 4 * nworkers + 8,
            slot_bytes=shm_slot_bytes,
            min_bytes=shm_min_bytes if shm_min_bytes is not None else DEFAULT_MIN_BYTES,
        )
        self.transport_name = "shm" if self._transport is not None else "pickle"
        self._lock = threading.Lock()
        self._ready_cv = threading.Condition(self._lock)
        self._pending: "deque[_Task]" = deque()
        self._closing = False
        self._drain = True  # finish pending work on shutdown?
        self._broken = False
        self._task_ids = itertools.count()
        self._wids = itertools.count()
        self._workers: Dict[int, _WorkerState] = {}
        self._busy_s = 0.0
        self._t0 = time.perf_counter()
        self._respawns = 0
        self._max_respawns = (
            max_respawns if max_respawns is not None else 4 + 2 * nworkers
        )
        self._target_workers = nworkers
        self._outq = self.backend.make_queue()
        for _ in range(nworkers):
            self._spawn_worker()
        self._manager = threading.Thread(
            target=self._manage, name="serve-pool-manager", daemon=True
        )
        self._manager.start()

    # -- public -------------------------------------------------------------

    def submit(
        self,
        name: str,
        arg: Any,
        future: Optional[PoolFuture] = None,
        trace: Optional[TraceContext] = None,
        deadline: Optional[Deadline] = None,
    ) -> PoolFuture:
        """Queue task ``name(arg)``; returns (or completes into) a future.

        ``trace`` parents the worker's span tree under a specific span of
        a specific tracer; when omitted and a tracer is ambiently active
        on the calling thread, the task is traced under that thread's
        current span.  ``deadline`` arms shedding (an expired task is
        dropped before dispatch with :class:`DeadlineExceeded`) and the
        watchdog (a worker still running the task past the deadline is
        reclaimed and the future fails with :class:`WorkerTimeout`)."""
        future = future if future is not None else PoolFuture()
        if trace is None:
            tr = obs_trace.current_tracer()
            if tr is not None:
                trace = TraceContext(tr, tr.current())
        with self._lock:
            if self._closing or self._broken:
                raise PoolClosed(
                    "pool is broken (worker crash loop)" if self._broken
                    else "pool is shut down"
                )
            self._pending.append(
                _Task(next(self._task_ids), name, arg, future, trace, deadline)
            )
            self.stats.counter("pool.tasks").inc()
            self.stats.gauge("pool.queue_depth").set(len(self._pending))
        return future

    def map(self, name: str, args: List[Any]) -> List[Any]:
        """Submit one task per element and gather ordered results
        (raises the first failure)."""
        futures = [self.submit(name, a) for a in args]
        return [f.result() for f in futures]

    def wait_ready(self, timeout: float = 30.0) -> bool:
        """Block until every current worker finished warmup.

        Event-driven: the manager notifies ``_ready_cv`` as each worker's
        ready message arrives (no busy-polling); same timeout semantics
        as before (returns False when the timeout elapses first)."""
        with self._ready_cv:
            return self._ready_cv.wait_for(
                lambda: bool(self._workers)
                and all(w.ready for w in self._workers.values()),
                timeout,
            )

    def utilization(self) -> float:
        """Aggregate busy-time fraction across workers since start."""
        wall = (time.perf_counter() - self._t0) * self.nworkers
        return min(self._busy_s / wall, 1.0) if wall > 0 else 0.0

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return len(self._pending)

    @property
    def transport(self):
        """The live :class:`~repro.serve.shm.ShmTransport`, or ``None``
        on the pickled path."""
        return self._transport

    @property
    def workers_alive(self) -> int:
        """Workers currently in the table and not draining to a stop."""
        return sum(1 for w in self._workers.values() if not w.stopping)

    def resize(self, nworkers: int) -> bool:
        """Grow or shrink the pool toward ``nworkers``.

        Growth spawns immediately; shrink stops *idle* workers (a busy
        worker finishes its in-flight task first, so no work is lost).
        The manager thread applies the change -- this only records the
        target.  Returns False on a closing/broken pool."""
        if nworkers < 1:
            raise ValueError(f"nworkers must be >= 1, got {nworkers}")
        with self._lock:
            if self._closing or self._broken:
                return False
            self._target_workers = nworkers
            self.nworkers = nworkers
        self.stats.gauge("pool.target_workers").set(nworkers)
        return True

    def shutdown(self, wait: bool = True, timeout: float = 30.0) -> None:
        """Stop the pool.  ``wait=True`` finishes queued + in-flight work
        first; ``wait=False`` cancels queued tasks (in-flight tasks still
        complete -- workers are never killed mid-task)."""
        with self._lock:
            self._closing = True
            self._drain = wait
            if not wait:
                cancelled, self._pending = list(self._pending), deque()
                self.stats.gauge("pool.queue_depth").set(0)
        if not wait:
            for task in cancelled:
                task.future.cancel()
        self._manager.join(timeout)
        for w in list(self._workers.values()):
            w.handle.join(1.0)
            if w.handle.is_alive():  # pragma: no cover - stuck worker
                w.handle.terminate()
        if self._transport is not None:
            self._transport.destroy()
        self.stats.gauge("pool.utilization").set(self.utilization())

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.shutdown(wait=not any(exc))

    # -- internals ----------------------------------------------------------

    def _spawn_worker(self) -> None:
        wid = next(self._wids)
        inq = self.backend.make_queue()
        handle = self.backend.spawn(
            wid, inq, self._outq, self._warmup, self._transport
        )
        self._workers[wid] = _WorkerState(wid, handle, inq)

    def _manage(self) -> None:
        while True:
            try:
                msg = self._outq.get(timeout=self._poll_s)
            except queue.Empty:
                msg = None
            except (EOFError, OSError):  # pragma: no cover - queue torn down
                msg = None
            if msg is not None:
                self._handle_message(msg)
                while True:  # drain whatever else already arrived
                    try:
                        self._handle_message(self._outq.get_nowait())
                    except queue.Empty:
                        break
            self._check_liveness()
            self._check_spawn_watchdog()
            self._check_watchdog()
            self._apply_resize()
            self._shed_expired_pending()
            self._dispatch()
            if self._maybe_finish():
                return

    def _apply_resize(self) -> None:
        """Converge the worker table toward ``_target_workers``.

        Runs on the manager thread (the only mutator of the table).
        Shrink is graceful: only idle workers are told to stop; busy ones
        are revisited on the next loop once their task completes."""
        if self._closing or self._broken:
            return
        target = self._target_workers
        active = [w for w in self._workers.values() if not w.stopping]
        if len(active) < target:
            for _ in range(target - len(active)):
                self.stats.counter("pool.scale_ups").inc()
                self._spawn_worker()
        elif len(active) > target:
            idle = [w for w in active if w.inflight is None and w.ready]
            for w in idle[: len(active) - target]:
                w.stopping = True
                self.stats.counter("pool.scale_downs").inc()
                w.inq.put(_STOP)
        self.stats.gauge("pool.workers").set(
            sum(1 for w in self._workers.values() if not w.stopping)
        )

    def _handle_message(self, msg) -> None:
        kind, wid, task_id, payload, dur, spans = msg
        worker = self._workers.get(wid)
        if kind == "ready":
            if worker is not None:
                with self._ready_cv:
                    worker.ready = True
                    self._ready_cv.notify_all()
            return
        if kind == "stopped":
            self._workers.pop(wid, None)
            return
        if worker is None or worker.inflight is None:
            # late message from a worker already declared dead; free any
            # result slots it encoded so an abandoned worker cannot leak
            if kind == "done" and self._transport is not None:
                ok_late, value_late = payload
                if ok_late:
                    self._transport.release_all(value_late)
            return
        task = worker.inflight
        if task.task_id != task_id:  # pragma: no cover - defensive
            return
        worker.inflight = None
        self._busy_s += dur
        if spans and task.trace is not None:
            # re-parent the worker's span trees under the submitting span
            # BEFORE completing the future, so a caller blocked on
            # result() observes a fully assembled trace
            try:
                task.trace.tracer.adopt(task.trace.span, spans)
            except Exception:  # pragma: no cover - tracing never kills the pool
                pass
        if kind == "done":
            # the outcome landed: the request slots held for this dispatch
            # are no longer needed whatever happens next
            self._release_task_refs(task)
            ok, value = payload
            if ok:
                if self._transport is not None:
                    value, exc = self._copy_out_result(value)
                    if exc is not None:
                        self.stats.counter("pool.task_errors").inc()
                        task.future.set_exception(exc)
                        return
                task.future.set_result(value)
            else:
                self.stats.counter("pool.task_errors").inc()
                task.future.set_exception(value)
        elif kind == "crashed":  # thread worker announced its own death
            del self._workers[wid]
            self._recover(task, payload)

    def _copy_out_result(self, value):
        """Materialize a worker result: copy descriptor-backed arrays out
        of the arena, release the worker-owned result slots, and account
        transport bytes.  Returns ``(value, exc)`` -- a reclaimed slot
        (crash recovery raced the copy) yields a classified error rather
        than garbage bytes."""
        from .shm import ShmReclaimed, payload_nbytes

        descs = self._transport.descriptors(value)
        exc = None
        try:
            value = self._transport.decode(value, copy=True)
        except ShmReclaimed as e:
            exc = e
        finally:
            self._transport.release_refs(descs)
        shm_bytes = sum(d.nbytes for d in descs)
        self.stats.counter("pool.transport.result_shm_bytes").inc(shm_bytes)
        if exc is None:
            self.stats.counter("pool.transport.result_pickled_bytes").inc(
                payload_nbytes(value) - shm_bytes
            )
        return value, exc

    def _reclaim_worker_slots(self, w: "_WorkerState") -> None:
        """Free arena slots a dead *process* worker still owned (results
        it encoded, or a slot it died mid-write in).  Thread workers share
        the parent pid and must not trigger a blanket reclaim."""
        if self._transport is None:
            return
        pid = getattr(w.handle, "pid", None)
        if pid and pid != os.getpid():
            self._transport.reclaim_owner(pid)

    def _check_liveness(self) -> None:
        dead = [w for w in self._workers.values()
                if not w.stopping and not w.handle.is_alive()]
        for w in dead:
            del self._workers[w.wid]
            self._reclaim_worker_slots(w)
            task = w.inflight
            self._recover(task, f"worker {w.wid} died")

    def _check_spawn_watchdog(self) -> None:
        """Replace workers wedged at birth (spawned but never ready).

        A fork child can deadlock before its first message when another
        parent thread held a lock (thread-registry, logging, ...) at fork
        time; the process is alive and has no in-flight task, so neither
        liveness polling nor the deadline watchdog would ever reclaim it,
        and dispatch would skip it forever.
        """
        now = time.perf_counter()
        wedged = [
            w for w in self._workers.values()
            if not w.ready and not w.stopping
            and now - w.spawned_at > self._spawn_timeout_s
        ]
        for w in wedged:
            self.stats.counter("pool.spawn_timeouts").inc()
            task = w.inflight
            del self._workers[w.wid]
            w.inflight = None
            w.handle.terminate()
            self._reclaim_worker_slots(w)
            self._recover(
                task, f"worker {w.wid} never became ready "
                f"(wedged spawn, {self._spawn_timeout_s:.1f}s)"
            )

    def _check_watchdog(self) -> None:
        """Reclaim workers whose in-flight task outlived its deadline.

        A process worker is killed (SIGTERM); a thread worker cannot be
        killed, so it is *abandoned*: dropped from the worker table (its
        eventual late message is ignored) while a replacement spawns.
        Either way the task's future fails with :class:`WorkerTimeout`
        and the restart budget is charged.
        """
        now = time.perf_counter()
        stuck = [
            w for w in self._workers.values()
            if not w.stopping
            and w.inflight is not None
            and w.inflight.deadline is not None
            and now >= w.inflight.deadline.at + self._watchdog_grace_s
        ]
        for w in stuck:
            task = w.inflight
            self.stats.counter("pool.watchdog_kills").inc()
            del self._workers[w.wid]
            w.inflight = None
            w.handle.terminate()
            self._reclaim_worker_slots(w)
            self._recover(task, f"watchdog reclaimed worker {w.wid}", overrun=True)

    def _release_task_refs(self, task: _Task) -> None:
        """Drop the request-slot claims held for a dispatch.  Generation
        guards make this idempotent and safe against crash-reclaim races."""
        if task.shm_refs:
            if self._transport is not None:
                self._transport.release_refs(task.shm_refs)
            task.shm_refs = []

    def _recover(self, task: Optional[_Task], why: str, overrun: bool = False) -> None:
        if task is not None:
            # the dispatch died with the worker; free its request slots --
            # resubmission re-encodes from the original arg
            self._release_task_refs(task)
        if not overrun:
            self.stats.counter("pool.worker_crashes").inc()
        self._respawns += 1
        if self._respawns > self._max_respawns:
            self._broken = True
            failures = [task] if task is not None else []
            with self._lock:
                failures += list(self._pending)
                self._pending.clear()
            for t in failures:
                t.future.set_exception(
                    WorkerCrash(f"pool broken after {self._respawns} worker deaths")
                )
            return
        self._spawn_worker()
        if task is None:
            return
        if overrun:
            # the task itself overran; retrying identical work would only
            # overrun again, so fail it (retry policy lives above the pool)
            task.future.set_exception(
                WorkerTimeout(f"task {task.name!r} overran its deadline ({why})")
            )
            return
        if task.deadline is not None and task.deadline.expired:
            self.stats.counter("pool.deadline_sheds").inc()
            task.future.set_exception(
                WorkerTimeout(
                    f"task {task.name!r} not resubmitted: deadline expired ({why})"
                )
            )
            return
        if task.retries < self._max_task_retries:
            task.retries += 1
            self.stats.counter("pool.resubmissions").inc()
            with self._lock:
                self._pending.appendleft(task)
        else:
            task.future.set_exception(
                WorkerCrash(f"task {task.name!r} lost to repeated worker deaths ({why})")
            )

    def _shed_expired_pending(self) -> None:
        """Fail queued tasks whose deadline expired, even when no worker
        is idle to pop them -- a stalled pool must still honor deadlines."""
        shed: List[_Task] = []
        with self._lock:
            if not self._pending:
                return
            if not any(
                t.deadline is not None and t.deadline.expired
                for t in self._pending
            ):
                return
            keep: "deque[_Task]" = deque()
            for t in self._pending:
                if t.deadline is not None and t.deadline.expired:
                    shed.append(t)
                else:
                    keep.append(t)
            self._pending = keep
            self.stats.gauge("pool.queue_depth").set(len(self._pending))
        # complete futures outside the lock (done-callbacks re-enter submit)
        for t in shed:
            self.stats.counter("pool.deadline_sheds").inc()
            t.future.set_exception(
                DeadlineExceeded(
                    f"task {t.name!r} shed: deadline expired while queued"
                )
            )

    def _dispatch(self) -> None:
        idle = [w for w in self._workers.values()
                if w.ready and not w.stopping and w.inflight is None]
        for w in idle:
            task = None
            shed: List[_Task] = []
            with self._lock:
                while self._pending:
                    candidate = self._pending.popleft()
                    if candidate.future.cancelled():
                        continue
                    if candidate.deadline is not None and candidate.deadline.expired:
                        shed.append(candidate)
                        continue
                    task = candidate
                    break
                self.stats.gauge("pool.queue_depth").set(len(self._pending))
            # complete shed futures outside the lock: done-callbacks may
            # re-enter submit(), which takes the same lock
            for t in shed:
                self.stats.counter("pool.deadline_sheds").inc()
                t.future.set_exception(
                    DeadlineExceeded(
                        f"task {t.name!r} shed: deadline expired while queued"
                    )
                )
            if task is None:
                return
            w.inflight = task
            w.inq.put((task.task_id, task.name, self._encode_arg(task),
                       task.trace is not None))

    def _encode_arg(self, task: _Task):
        """Encode the dispatch payload through the transport (request
        slots stay claimed by the parent until the outcome lands) and
        account per-stage transport bytes."""
        from .shm import payload_nbytes

        if self._transport is None:
            self.stats.counter("pool.transport.dispatch_pickled_bytes").inc(
                payload_nbytes(task.arg)
            )
            return task.arg
        arg_enc, refs = self._transport.encode(task.arg)
        task.shm_refs = refs
        shm_bytes = sum(d.nbytes for d in refs)
        self.stats.counter("pool.transport.dispatch_shm_bytes").inc(shm_bytes)
        self.stats.counter("pool.transport.dispatch_pickled_bytes").inc(
            payload_nbytes(task.arg) - shm_bytes
        )
        # parent-side fallbacks only; worker-side ones stay in the worker
        self.stats.gauge("pool.transport.fallbacks").set(
            self._transport.fallbacks
        )
        return arg_enc

    def _maybe_finish(self) -> bool:
        with self._lock:
            if not self._closing:
                return False
            if self._drain and self._pending and not self._broken:
                return False
        if any(w.inflight is not None for w in self._workers.values()):
            return False
        for w in self._workers.values():
            if not w.stopping:
                w.stopping = True
                w.inq.put(_STOP)
        # give workers a moment to acknowledge; handles are joined by
        # shutdown() after the manager exits
        return True
