"""repro.serve -- the in-process compression service layer.

cuSZp2's pitch is end-to-end throughput: compression fast enough to sit
inline with I/O and communication (paper Section 1; Section 5.6's in-situ
checkpointing and compression-enabled collectives).  This package turns
the library codec into that pipeline component:

* :mod:`~repro.serve.chunked` -- bounded-memory chunked streaming engine
  (group-aligned, bit-identical to the monolithic codec);
* :mod:`~repro.serve.pool` -- thread/process worker pool with warmup,
  crash recovery, and graceful shutdown;
* :mod:`~repro.serve.scheduler` -- bounded queue, priority lanes,
  micro-batching, explicit :class:`~repro.serve.scheduler.QueueFull`
  backpressure;
* :mod:`~repro.serve.cache` -- content-hashed LRU decode cache;
* :mod:`~repro.serve.stats` -- metrics registry (latency histograms,
  queue depth, utilization, hit rates) dumpable as JSON;
* :mod:`~repro.serve.deadline` / :mod:`~repro.serve.resilience` --
  deadline propagation, retries with backoff, per-tier circuit breakers,
  and the graceful-degradation chain down to raw passthrough;
* :mod:`~repro.serve.shm` -- zero-copy shared-memory transport: chunk
  payloads live in refcounted arena slots, only descriptors cross the
  pool boundary;
* :mod:`~repro.serve.autoscale` -- queue-depth-driven worker-pool
  autoscaler with hysteresis and cooldown;
* :mod:`~repro.serve.http` -- stdlib-asyncio HTTP front end with
  admission control, per-tenant quotas, and SLO-driven shedding;
* :mod:`~repro.serve.service` -- :class:`CompressionService`, the facade
  gluing the pieces together.

See docs/SERVING.md for architecture and tuning guidance, and
docs/RESILIENCE.md for the failure-handling model.
"""

from .autoscale import AutoscaleConfig, Autoscaler
from .cache import DecodeCache, content_key
from .chunked import (
    DEFAULT_CHUNK_BYTES,
    ChunkedStream,
    ChunkManifest,
    compress_chunked,
    decompress_chunked,
    is_chunked,
    is_raw,
    plan_chunks,
    raw_from_bytes,
    raw_to_bytes,
)
from .deadline import Deadline, DeadlineExceeded, WorkerTimeout
from .http import HttpConfig, HttpFrontend, TokenBucket
from .pool import (
    PoolClosed,
    PoolFuture,
    ProcessBackend,
    TaskError,
    ThreadBackend,
    UnknownTask,
    WaitTimeout,
    WorkerCrash,
    WorkerPool,
    register_task,
    registered_tasks,
    unregister_task,
)
from .resilience import (
    BreakerConfig,
    CircuitBreaker,
    CircuitOpen,
    CorruptResult,
    ResilienceError,
    ResilientRouter,
    RetryPolicy,
    TaskFailure,
    classify_error,
    is_classified,
)
from .scheduler import QueueFull, Scheduler
from .service import CompressionService, ServiceConfig
from .shm import ShmArena, ShmDescriptor, ShmReclaimed, ShmTransport
from .stats import Histogram, MetricsRegistry

__all__ = [
    "CompressionService",
    "ServiceConfig",
    "AutoscaleConfig",
    "Autoscaler",
    "BreakerConfig",
    "CircuitBreaker",
    "CircuitOpen",
    "CorruptResult",
    "Deadline",
    "DeadlineExceeded",
    "ResilienceError",
    "ResilientRouter",
    "RetryPolicy",
    "TaskFailure",
    "WaitTimeout",
    "WorkerTimeout",
    "classify_error",
    "is_classified",
    "is_raw",
    "raw_from_bytes",
    "raw_to_bytes",
    "ChunkedStream",
    "ChunkManifest",
    "DecodeCache",
    "DEFAULT_CHUNK_BYTES",
    "Histogram",
    "HttpConfig",
    "HttpFrontend",
    "MetricsRegistry",
    "PoolClosed",
    "PoolFuture",
    "ProcessBackend",
    "QueueFull",
    "Scheduler",
    "ShmArena",
    "ShmDescriptor",
    "ShmReclaimed",
    "ShmTransport",
    "TaskError",
    "ThreadBackend",
    "TokenBucket",
    "UnknownTask",
    "WorkerCrash",
    "WorkerPool",
    "compress_chunked",
    "content_key",
    "decompress_chunked",
    "is_chunked",
    "plan_chunks",
    "register_task",
    "registered_tasks",
    "unregister_task",
]
