"""Zero-copy shared-memory transport for the worker pool.

The pickled transport serializes every chunk payload (and every result)
through a ``multiprocessing`` queue: two full copies plus pickle framing
per crossing, which is what capped BENCH_serve.json's process-worker
scaling.  This module replaces the *payload bytes* with named
``multiprocessing.shared_memory`` segments: ndarrays are written once
into a slot of a shared arena and only a tiny :class:`ShmDescriptor`
(segment, slot, offset, length, dtype, shape, generation) crosses the
queue.  The worker maps the same segment and reads the payload as a
zero-copy NumPy view; results travel back the same way.

Safety model (the part chaos must not break):

* every slot carries a header ``(refcount, generation, owner_pid,
  used_bytes)``; allocation bumps the generation, so a descriptor is
  valid only while its generation matches the slot's.  Releasing with a
  stale generation is a no-op (double-free safe) and *reading* through a
  stale descriptor raises :class:`ShmReclaimed` -- a classified
  :class:`~repro.serve.pool.TaskError` subclass, never garbage bytes.
* request slots are owned by the dispatching parent: it releases them
  when the task completes or when crash recovery gives up on the worker.
  Result slots are owned by the worker that allocated them (``owner_pid``
  records it); the parent copies the result out and releases the slot,
  and :meth:`ShmArena.reclaim_owner` frees everything a worker that died
  mid-write left behind.
* payloads that do not fit a slot (or find the arena full) fall back to
  the pickled path, counted in ``pool.transport.fallbacks`` -- the
  transport degrades, it never refuses work.

Python < 3.13 registers *every* attach with the ``resource_tracker``,
which would unlink the segment when the first worker exits; attaches here
go through :func:`_attach_segment`, which suppresses that registration
(``track=False`` on interpreters that have it).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from .pool import TaskError

__all__ = [
    "SEGMENT_PREFIX",
    "ShmArena",
    "ShmDescriptor",
    "ShmReclaimed",
    "ShmTransport",
    "TRANSPORTS",
    "active_segments",
    "payload_nbytes",
]

#: Every arena segment name starts with this, so tests (and operators)
#: can audit ``/dev/shm`` for leaks without false positives.
SEGMENT_PREFIX = "reproshm-"

#: Transport names accepted by the pool / service / CLI.
TRANSPORTS = ("pickle", "shm")

#: ndarrays smaller than this ride the pickled path even under shm --
#: a descriptor plus a slot round-trip costs more than pickling does.
DEFAULT_MIN_BYTES = 4096

#: Per-slot header: refcount, generation, owner_pid, used_bytes (int64).
_HDR_FIELDS = 4
_HDR_BYTES = _HDR_FIELDS * 8
_REFCOUNT, _GENERATION, _OWNER, _USED = range(_HDR_FIELDS)

#: Live arena names created by *this* process (for leak auditing).
_LIVE_SEGMENTS: Dict[str, "ShmArena"] = {}
_LIVE_LOCK = threading.Lock()


class ShmReclaimed(TaskError):
    """A descriptor pointed at a slot that was already reclaimed (its
    generation moved on).  Classified and retryable: the payload is gone
    but re-encoding from the original argument succeeds."""


def active_segments() -> List[str]:
    """Names of arena segments created by this process and not yet
    destroyed -- the leak-check hook used by the test suite."""
    with _LIVE_LOCK:
        return sorted(_LIVE_SEGMENTS)


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker side
    effects (pre-3.13 registers every attach, which would unlink the
    segment when any single attaching process exits)."""
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track flag
        pass
    from multiprocessing import resource_tracker

    orig = resource_tracker.register
    resource_tracker.register = lambda *a, **kw: None  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = orig  # type: ignore[assignment]


@dataclass(frozen=True)
class ShmDescriptor:
    """A payload's address: everything a peer needs to map it back.

    ``offset``/``nbytes`` locate the bytes inside ``segment``;
    ``slot``/``generation`` validate the claim against the slot header
    (a reclaimed slot's generation has moved on).  ``dtype``/``shape``/
    ``order`` rebuild the ndarray view without copying.
    """

    segment: str
    slot: int
    offset: int
    nbytes: int
    generation: int
    dtype: str
    shape: Tuple[int, ...]
    order: str = "C"


class ShmArena:
    """A named shared segment carved into fixed-size refcounted slots.

    The creating process owns the segment (and unlinks it on
    :meth:`destroy`); workers attach by name.  All slot-state mutation
    happens under ``lock`` -- a ``multiprocessing`` lock shared by fork /
    spawn args, so parent and workers serialize against each other.
    """

    def __init__(
        self,
        nslots: int = 16,
        slot_bytes: int = 8 << 20,
        name: Optional[str] = None,
        lock=None,
        _attach: bool = False,
    ):
        if nslots < 1:
            raise ValueError(f"nslots must be >= 1, got {nslots}")
        if slot_bytes < _HDR_BYTES:
            raise ValueError(f"slot_bytes must be >= {_HDR_BYTES}, got {slot_bytes}")
        self.nslots = nslots
        self.slot_bytes = slot_bytes
        self._data_off = nslots * _HDR_BYTES
        total = self._data_off + nslots * slot_bytes
        if lock is None:
            import multiprocessing

            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-fork platforms
                ctx = multiprocessing.get_context()
            lock = ctx.Lock()
        self.lock = lock
        self._closed = False
        if _attach:
            self.name = name
            self._owner = False
            self._shm = _attach_segment(name)
        else:
            self.name = (
                name
                if name is not None
                else f"{SEGMENT_PREFIX}{os.getpid():x}-{os.urandom(4).hex()}"
            )
            self._owner = True
            self._shm = shared_memory.SharedMemory(
                name=self.name, create=True, size=total
            )
            self._headers().fill(0)
            with _LIVE_LOCK:
                _LIVE_SEGMENTS[self.name] = self
        # generation counters survive attach (they live in the segment)

    # -- spec / attach -------------------------------------------------------

    def spec(self) -> tuple:
        """Picklable attach recipe for worker processes."""
        return (self.name, self.nslots, self.slot_bytes, self.lock)

    @classmethod
    def attach(cls, spec: tuple) -> "ShmArena":
        name, nslots, slot_bytes, lock = spec
        return cls(nslots=nslots, slot_bytes=slot_bytes, name=name, lock=lock,
                   _attach=True)

    # -- raw views -----------------------------------------------------------

    def _headers(self) -> np.ndarray:
        return np.ndarray(
            (self.nslots, _HDR_FIELDS), dtype=np.int64, buffer=self._shm.buf
        )

    def _slot_view(self, slot: int, nbytes: int, offset_in_slot: int = 0) -> np.ndarray:
        off = self._data_off + slot * self.slot_bytes + offset_in_slot
        return np.ndarray((nbytes,), dtype=np.uint8, buffer=self._shm.buf, offset=off)

    def slot_offset(self, slot: int) -> int:
        """Byte offset of ``slot``'s payload region inside the segment."""
        return self._data_off + slot * self.slot_bytes

    # -- slot lifecycle ------------------------------------------------------

    def alloc(self, nbytes: int) -> Optional[Tuple[int, int]]:
        """Claim a free slot for ``nbytes``; ``(slot, generation)`` or
        ``None`` when the payload does not fit / the arena is full."""
        if self._closed or nbytes > self.slot_bytes:
            return None
        with self.lock:
            hdr = self._headers()
            free = np.flatnonzero(hdr[:, _REFCOUNT] == 0)
            if free.size == 0:
                return None
            slot = int(free[0])
            gen = int(hdr[slot, _GENERATION]) + 1
            hdr[slot, _REFCOUNT] = 1
            hdr[slot, _GENERATION] = gen
            hdr[slot, _OWNER] = os.getpid()
            hdr[slot, _USED] = nbytes
            return slot, gen

    def write(self, slot: int, payload: np.ndarray) -> None:
        """Copy ``payload`` bytes into a claimed slot."""
        flat = np.ascontiguousarray(payload).view(np.uint8).reshape(-1)
        self._slot_view(slot, flat.size)[:] = flat

    def put(self, arr: np.ndarray) -> Optional[ShmDescriptor]:
        """Claim a slot, write ``arr`` into it, and return its descriptor
        (``None`` on fallback)."""
        contiguous = np.ascontiguousarray(arr)
        claim = self.alloc(contiguous.nbytes)
        if claim is None:
            return None
        slot, gen = claim
        self.write(slot, contiguous)
        return ShmDescriptor(
            segment=self.name,
            slot=slot,
            offset=self.slot_offset(slot),
            nbytes=int(contiguous.nbytes),
            generation=gen,
            dtype=np.dtype(arr.dtype).str,
            shape=tuple(int(s) for s in arr.shape),
        )

    def get(self, desc: ShmDescriptor, copy: bool = False) -> np.ndarray:
        """Resolve a descriptor to an ndarray.

        ``copy=False`` returns a read-only zero-copy view (valid until
        the slot is released); ``copy=True`` detaches from the segment.
        A stale descriptor (reclaimed slot) raises :class:`ShmReclaimed`.
        """
        if desc.segment != self.name:
            raise ShmReclaimed(
                f"descriptor for segment {desc.segment!r} resolved against "
                f"{self.name!r}"
            )
        with self.lock:
            hdr = self._headers()
            if (
                desc.slot < 0
                or desc.slot >= self.nslots
                or int(hdr[desc.slot, _GENERATION]) != desc.generation
                or int(hdr[desc.slot, _REFCOUNT]) <= 0
            ):
                raise ShmReclaimed(
                    f"slot {desc.slot} of {self.name} was reclaimed "
                    f"(descriptor generation {desc.generation})"
                )
            raw = self._slot_view(desc.slot, desc.nbytes)
            arr = np.ndarray(desc.shape, dtype=np.dtype(desc.dtype), buffer=raw.data)
            if copy:
                return arr.copy()
            view = arr.view()
            view.setflags(write=False)
            return view

    def release(self, desc: ShmDescriptor) -> bool:
        """Drop one reference; generation-guarded, so releasing twice (or
        after a reclaim) is a safe no-op.  True when the ref was live."""
        if self._closed or desc.segment != self.name:
            return False
        with self.lock:
            hdr = self._headers()
            if (
                desc.slot < 0
                or desc.slot >= self.nslots
                or int(hdr[desc.slot, _GENERATION]) != desc.generation
                or int(hdr[desc.slot, _REFCOUNT]) <= 0
            ):
                return False
            hdr[desc.slot, _REFCOUNT] -= 1
            if hdr[desc.slot, _REFCOUNT] <= 0:
                hdr[desc.slot, _REFCOUNT] = 0
                hdr[desc.slot, _OWNER] = 0
                hdr[desc.slot, _USED] = 0
            return True

    def reclaim_owner(self, pid: int) -> int:
        """Free every slot owned by ``pid`` (a worker that died mid-write
        left them claimed forever otherwise).  Returns slots reclaimed."""
        if self._closed:
            return 0
        with self.lock:
            hdr = self._headers()
            mine = np.flatnonzero(
                (hdr[:, _OWNER] == pid) & (hdr[:, _REFCOUNT] > 0)
            )
            for slot in mine:
                hdr[slot, _REFCOUNT] = 0
                hdr[slot, _GENERATION] += 1  # invalidate outstanding descriptors
                hdr[slot, _OWNER] = 0
                hdr[slot, _USED] = 0
            return int(mine.size)

    def slots_in_use(self) -> int:
        with self.lock:
            return int(np.count_nonzero(self._headers()[:, _REFCOUNT] > 0))

    # -- teardown ------------------------------------------------------------

    def close(self) -> None:
        """Unmap this process's view (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except (OSError, BufferError):  # pragma: no cover - torn-down mapping
            pass

    def destroy(self) -> None:
        """Close and unlink the segment (creator only; idempotent)."""
        owner = self._owner
        self.close()
        if owner:
            self._owner = False
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            with _LIVE_LOCK:
                _LIVE_SEGMENTS.pop(self.name, None)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.destroy() if self._owner else self.close()


# ---------------------------------------------------------------------------
# Payload walkers
# ---------------------------------------------------------------------------

def payload_nbytes(obj: Any) -> int:
    """Total ndarray bytes reachable inside a task payload (the bytes a
    pickled crossing would copy; descriptor crossings move ~100)."""
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, dict):
        return sum(payload_nbytes(v) for v in obj.values())
    if isinstance(obj, (list, tuple)):
        return sum(payload_nbytes(v) for v in obj)
    return 0


class ShmTransport:
    """Encode/decode task payloads against a shared :class:`ShmArena`.

    One transport per pool; the parent creates it, workers attach via
    :meth:`spec`/:meth:`attach`.  ``encode`` swaps every ndarray of at
    least ``min_bytes`` for a :class:`ShmDescriptor` (recursing dicts /
    lists / tuples, so chunk dicts, batch tuples, and chaos directives
    all work unchanged); ``decode`` swaps them back.  Arrays that do not
    fit ride the pickled path and are counted as fallbacks.
    """

    name = "shm"

    def __init__(self, arena: ShmArena, min_bytes: int = DEFAULT_MIN_BYTES):
        self.arena = arena
        self.min_bytes = min_bytes
        self.fallbacks = 0  # arrays big enough for shm that did not fit
        self._fb_lock = threading.Lock()

    @classmethod
    def create(
        cls,
        nslots: int = 16,
        slot_bytes: int = 8 << 20,
        min_bytes: int = DEFAULT_MIN_BYTES,
    ) -> "ShmTransport":
        return cls(ShmArena(nslots=nslots, slot_bytes=slot_bytes), min_bytes)

    def spec(self) -> tuple:
        return ("shm", self.arena.spec(), self.min_bytes)

    @classmethod
    def attach(cls, spec: tuple) -> "ShmTransport":
        tag, arena_spec, min_bytes = spec
        if tag != "shm":  # pragma: no cover - defensive
            raise ValueError(f"not an shm transport spec: {spec!r}")
        return cls(ShmArena.attach(arena_spec), min_bytes)

    # -- encode/decode -------------------------------------------------------

    def encode(self, obj: Any, refs: Optional[List[ShmDescriptor]] = None):
        """Replace large ndarrays in ``obj`` with descriptors.

        Returns ``(encoded, refs)`` where ``refs`` lists every descriptor
        created -- the caller owns those references and must
        :meth:`release_refs` them when the peer is done (or lost)."""
        if refs is None:
            refs = []
        encoded = self._encode(obj, refs)
        return encoded, refs

    def _encode(self, obj: Any, refs: List[ShmDescriptor]) -> Any:
        if isinstance(obj, np.ndarray):
            if obj.nbytes < self.min_bytes:
                return obj
            desc = self.arena.put(obj)
            if desc is None:
                with self._fb_lock:
                    self.fallbacks += 1
                return obj
            refs.append(desc)
            return desc
        if isinstance(obj, dict):
            return {k: self._encode(v, refs) for k, v in obj.items()}
        if isinstance(obj, tuple):
            return tuple(self._encode(v, refs) for v in obj)
        if isinstance(obj, list):
            return [self._encode(v, refs) for v in obj]
        return obj

    def decode(self, obj: Any, copy: bool = False) -> Any:
        """Resolve descriptors back to ndarrays (zero-copy views by
        default; ``copy=True`` detaches from the arena)."""
        if isinstance(obj, ShmDescriptor):
            return self.arena.get(obj, copy=copy)
        if isinstance(obj, dict):
            return {k: self.decode(v, copy) for k, v in obj.items()}
        if isinstance(obj, tuple):
            return tuple(self.decode(v, copy) for v in obj)
        if isinstance(obj, list):
            return [self.decode(v, copy) for v in obj]
        return obj

    # -- accounting / reclamation -------------------------------------------

    @staticmethod
    def descriptors(obj: Any, out: Optional[List[ShmDescriptor]] = None):
        """Every descriptor reachable inside ``obj``."""
        if out is None:
            out = []
        if isinstance(obj, ShmDescriptor):
            out.append(obj)
        elif isinstance(obj, dict):
            for v in obj.values():
                ShmTransport.descriptors(v, out)
        elif isinstance(obj, (list, tuple)):
            for v in obj:
                ShmTransport.descriptors(v, out)
        return out

    def release_refs(self, refs: List[ShmDescriptor]) -> None:
        for desc in refs:
            self.arena.release(desc)

    def release_all(self, obj: Any) -> None:
        """Release every descriptor reachable in ``obj`` (used for late
        results from abandoned workers, which would otherwise leak)."""
        self.release_refs(self.descriptors(obj))

    def reclaim_owner(self, pid: int) -> int:
        return self.arena.reclaim_owner(pid)

    def close(self) -> None:
        self.arena.close()

    def destroy(self) -> None:
        self.arena.destroy()


def make_transport(transport, nslots: int = 16, slot_bytes: int = 8 << 20,
                   min_bytes: int = DEFAULT_MIN_BYTES):
    """``None`` for the pickled path, a :class:`ShmTransport` for shm.

    Accepts the string names in :data:`TRANSPORTS`, an existing
    transport instance, or ``None``/"pickle"."""
    if transport is None or transport == "pickle":
        return None
    if isinstance(transport, ShmTransport):
        return transport
    if transport == "shm":
        return ShmTransport.create(
            nslots=nslots, slot_bytes=slot_bytes, min_bytes=min_bytes
        )
    raise ValueError(
        f"transport must be one of {TRANSPORTS} (or a transport instance), "
        f"got {transport!r}"
    )
