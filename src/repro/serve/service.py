"""The service facade: chunked engine + scheduler + pool + cache, one API.

:class:`CompressionService` is the piece a training stack embeds: submit
arrays, get futures for compressed bytes; submit compressed bytes, get
futures for arrays.  Internally a request either rides the scheduler's
micro-batching path (small arrays) or fans out as independent group-aligned
chunks (large arrays), and decode results are served from a content-hashed
LRU when the same stream is requested twice.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace
from typing import Callable, Optional

import numpy as np

from repro.core import stream as _stream
from repro.core.compressor import DEFAULT_BLOCK
from repro.core.errors import IntegrityError, InvalidInputError
from repro.core.quantize import ErrorBound, validate_input
from repro.obs.trace import TraceContext, Tracer

from . import chunked as _chunked
from .cache import DecodeCache, content_key
from .deadline import Deadline
from .pool import PoolFuture, WorkerPool
from .resilience import BreakerConfig, ResilientRouter, RetryPolicy
from .scheduler import Scheduler
from .stats import MetricsRegistry


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of a :class:`CompressionService` (see docs/SERVING.md and
    docs/RESILIENCE.md)."""

    workers: int = 2
    backend: str = "thread"  # "thread" (tests / I/O mixes) | "process" (CPU)
    kernel_backend: str = "auto"  # codec kernel registry name; workers inherit it
    transport: str = "pickle"  # "pickle" | "shm" (zero-copy, serve/shm.py)
    shm_slots: Optional[int] = None  # arena slots (None: 4*workers+8)
    shm_slot_bytes: int = 8 << 20  # bytes per arena slot
    shm_min_bytes: Optional[int] = None  # below this, pickle anyway
    mode: str = "outlier"
    block: int = DEFAULT_BLOCK
    group_blocks: int = _stream.DEFAULT_GROUP_BLOCKS
    #: Compressor plugin (repro.codecs registry name).  The default keeps
    #: the golden CSZ2 chunked/resilient path; any other name routes
    #: requests through the plugin's worker task.  Decoding always sniffs,
    #: so a service decompresses any registered codec's streams.
    codec: str = "cuszp2"
    #: Extra plugin options as ``(name, value)`` pairs (kept a tuple so the
    #: frozen config stays hashable), e.g. ``(("rate", 16.0),)`` for cuzfp.
    codec_opts: tuple = ()
    chunk_bytes: int = _chunked.DEFAULT_CHUNK_BYTES  # fan-out threshold
    cache_bytes: int = 256 << 20
    max_pending: int = 256
    max_inflight: Optional[int] = None
    batch_max: int = 8
    batch_bytes: int = 1 << 20
    batch_wait_s: float = 0.005
    warmup: bool = True
    # -- resilience (docs/RESILIENCE.md) ------------------------------------
    resilience: bool = True  # route via ResilientRouter
    deadline_s: Optional[float] = None  # default per-request budget (None = off)
    max_respawns: Optional[int] = None  # pool restart budget (None = auto)
    watchdog_grace_s: float = 0.05  # slack past the deadline before a kill
    retry_max_attempts: int = 3  # per tier, first try included
    retry_backoff_s: float = 0.01
    retry_backoff_max_s: float = 0.25
    breaker_window: int = 16
    breaker_min_volume: int = 4
    breaker_failure_threshold: float = 0.5
    breaker_reset_s: float = 0.5
    fallback_workers: Optional[int] = None  # None: 2 if backend=="process" else 0
    degrade_inline: bool = True  # inline-codec tier
    degrade_raw: bool = True  # raw-passthrough floor (compress only)
    validate_results: bool = True  # CRC-verify compressed ship-backs
    resilience_seed: int = 0  # deterministic backoff jitter
    # -- autoscaling (serve/autoscale.py) ------------------------------------
    autoscale: bool = False  # start an Autoscaler over the pool
    autoscale_min_workers: Optional[int] = None  # None: 1
    autoscale_max_workers: Optional[int] = None  # None: 4 * workers
    autoscale_high_watermark: float = 4.0  # queue depth per worker -> grow
    autoscale_low_watermark: float = 1.0  # queue depth per worker -> shrink
    autoscale_cooldown_s: float = 5.0  # min gap between decisions
    autoscale_poll_s: float = 0.25


def _verify_stream_result(out) -> None:
    """Router validator: CRC-check a compressed ship-back without
    decoding it (catches results corrupted in transit / by chaos)."""
    from repro.core.integrity import verify as verify_stream

    report = verify_stream(out)
    if not report.ok:
        raise IntegrityError(report.summary())


def _gather(futures, combine, master: Optional[PoolFuture] = None) -> PoolFuture:
    """Join ``futures`` into one future resolving to ``combine(results)``
    (first failure wins)."""
    master = master if master is not None else PoolFuture()
    lock = threading.Lock()
    left = [len(futures)]

    def on_done(f: PoolFuture) -> None:
        exc = f.exception()
        if exc is not None:
            master.set_exception(exc)  # no-op if already failed
        with lock:
            left[0] -= 1
            last = left[0] == 0
        if last and not master.done():
            try:
                master.set_result(combine([g.result() for g in futures]))
            except BaseException as e:  # noqa: BLE001 - delivered via future
                master.set_exception(e)

    if not futures:
        master.set_result(combine([]))
        return master
    for f in futures:
        f.add_done_callback(on_done)
    return master


def _resolved(value) -> PoolFuture:
    f = PoolFuture()
    f.set_result(value)
    return f


class CompressionService:
    """In-process compression service with batching, fan-out, and caching.

    >>> from repro.serve import CompressionService
    >>> with CompressionService(workers=2) as svc:
    ...     blob = svc.compress(field, rel=1e-3).result()
    ...     recon = svc.decompress(blob).result()   # second call: cache hit
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        tracer: Optional[Tracer] = None,
        pool_wrapper: Optional[Callable[[WorkerPool], object]] = None,
        **overrides,
    ):
        cfg = config if config is not None else ServiceConfig()
        if overrides:
            cfg = replace(cfg, **overrides)
        self.config = cfg
        #: When set, every request records a ``service.compress`` /
        #: ``service.decompress`` span, and worker span trees (codec
        #: stages included) re-parent under it.  Also
        #: :func:`repro.obs.activate` the tracer to capture spans from
        #: code running on the caller's own thread (cache lookups).
        self.tracer = tracer
        self.stats = MetricsRegistry()
        self.pool = WorkerPool(
            nworkers=cfg.workers,
            backend=cfg.backend,
            warmup=cfg.warmup,
            stats=self.stats,
            max_respawns=cfg.max_respawns,
            watchdog_grace_s=cfg.watchdog_grace_s,
            transport=cfg.transport,
            shm_slots=cfg.shm_slots,
            shm_slot_bytes=cfg.shm_slot_bytes,
            shm_min_bytes=cfg.shm_min_bytes,
        )
        # pool_wrapper interposes on pool.submit (the chaos harness wraps
        # tasks with fault injectors here); the scheduler and everything
        # above it only ever see the wrapped pool
        sched_pool = pool_wrapper(self.pool) if pool_wrapper is not None else self.pool
        self.scheduler = Scheduler(
            sched_pool,
            max_pending=cfg.max_pending,
            max_inflight=cfg.max_inflight,
            batch_max=cfg.batch_max,
            batch_bytes=cfg.batch_bytes,
            batch_wait_s=cfg.batch_wait_s,
            stats=self.stats,
        )
        self.router: Optional[ResilientRouter] = None
        if cfg.resilience:
            fallback = cfg.fallback_workers
            if fallback is None:
                fallback = 2 if self.pool.backend.name == "process" else 0
            self.router = ResilientRouter(
                self.scheduler,
                stats=self.stats,
                retry=RetryPolicy(
                    max_attempts=cfg.retry_max_attempts,
                    backoff_base_s=cfg.retry_backoff_s,
                    backoff_max_s=cfg.retry_backoff_max_s,
                ),
                breaker=BreakerConfig(
                    window=cfg.breaker_window,
                    min_volume=cfg.breaker_min_volume,
                    failure_threshold=cfg.breaker_failure_threshold,
                    reset_timeout_s=cfg.breaker_reset_s,
                ),
                fallback_workers=fallback,
                inline=cfg.degrade_inline,
                seed=cfg.resilience_seed,
            )
        self.cache = DecodeCache(cfg.cache_bytes, stats=self.stats)
        self.autoscaler = None
        if cfg.autoscale:
            from .autoscale import AutoscaleConfig, Autoscaler

            self.autoscaler = Autoscaler(
                sched_pool,  # chaos wrapper delegates resize/queue_depth
                AutoscaleConfig(
                    min_workers=cfg.autoscale_min_workers or 1,
                    max_workers=cfg.autoscale_max_workers or 4 * cfg.workers,
                    high_watermark=cfg.autoscale_high_watermark,
                    low_watermark=cfg.autoscale_low_watermark,
                    cooldown_s=cfg.autoscale_cooldown_s,
                    poll_s=cfg.autoscale_poll_s,
                ),
                scheduler=self.scheduler,
                stats=self.stats,
            ).start()
        self._closed = False

    def _deadline(self, timeout_s: Optional[float]) -> Optional[Deadline]:
        budget = timeout_s if timeout_s is not None else self.config.deadline_s
        return Deadline.after(budget) if budget is not None else None

    def _submit(
        self,
        name,
        arg,
        priority,
        nbytes,
        batchable,
        trace,
        deadline,
        validator=None,
        raw_fallback=None,
    ) -> PoolFuture:
        if self.router is not None:
            return self.router.submit(
                name, arg, deadline=deadline, priority=priority,
                batchable=batchable, nbytes=nbytes, trace=trace,
                validator=validator, raw_fallback=raw_fallback,
            )
        return self.scheduler.submit(
            name, arg, priority=priority, nbytes=nbytes, batchable=batchable,
            trace=trace, deadline=deadline,
        )

    # -- compression --------------------------------------------------------

    def compress(
        self,
        data: np.ndarray,
        rel: Optional[float] = None,
        abs: Optional[float] = None,  # noqa: A002 - mirrors repro.compress
        mode: Optional[str] = None,
        priority: str = "bulk",
        timeout_s: Optional[float] = None,
    ) -> PoolFuture:
        """Submit a compression request; the future resolves to the
        compressed bytes (a single v2 stream below the chunk threshold, a
        ``CSZ2CHNK`` container above it).

        ``timeout_s`` (default: ``config.deadline_s``) bounds the request
        end to end: expired work is shed, overrunning workers are
        reclaimed, and with resilience enabled the degradation chain may
        answer with a raw-passthrough container (``CSZ2RAW1`` -- lossless,
        flagged, decodable by :meth:`decompress`) rather than miss the
        deadline or fail."""
        cfg = self.config
        data = np.asarray(data)
        if cfg.codec != "cuszp2":
            return self._compress_codec(
                data, rel=rel, abs=abs, priority=priority, timeout_s=timeout_s
            )
        if (rel is None) == (abs is None):
            raise InvalidInputError("specify exactly one of rel= or abs=")
        eb = ErrorBound.relative(rel) if rel is not None else ErrorBound.absolute(abs)
        eb_abs = eb.resolve(validate_input(data))
        mode = mode if mode is not None else cfg.mode
        t0 = time.perf_counter()
        self.stats.counter("service.requests").inc()
        self.stats.counter("service.bytes_in").inc(data.nbytes)
        span = (
            self.tracer.begin(
                "service.compress", bytes_in=int(data.nbytes), mode=mode,
                priority=priority,
            )
            if self.tracer is not None
            else None
        )
        trace = TraceContext(self.tracer, span) if span is not None else None
        deadline = self._deadline(timeout_s)
        validator = _verify_stream_result if cfg.validate_results else None

        if data.nbytes <= cfg.chunk_bytes:
            arg = {
                "data": data,
                "eb_abs": eb_abs,
                "mode": mode,
                "block": cfg.block,
                "group_blocks": cfg.group_blocks,
                "kernel_backend": cfg.kernel_backend,
            }
            master = self._submit(
                "chunk.compress", arg, priority=priority, nbytes=data.nbytes,
                batchable=True, trace=trace, deadline=deadline,
                validator=validator,
                raw_fallback=(
                    (lambda: _chunked.raw_to_bytes(data))
                    if cfg.degrade_raw else None
                ),
            )
        else:
            spans, axis = _chunked.plan_chunks(
                data.shape,
                data.dtype.itemsize,
                block=cfg.block,
                group_blocks=cfg.group_blocks,
                chunk_bytes=cfg.chunk_bytes,
            )
            views = _chunked._chunk_views(data, spans, axis)
            futures = [
                self._submit(
                    "chunk.compress",
                    {
                        "data": view,
                        "eb_abs": eb_abs,
                        "mode": mode,
                        "block": cfg.block,
                        "group_blocks": cfg.group_blocks,
                        "kernel_backend": cfg.kernel_backend,
                    },
                    priority=priority,
                    nbytes=view.nbytes,
                    batchable=False,
                    trace=trace,
                    deadline=deadline,
                    validator=validator,
                    # per-chunk raw floor: a sick fleet degrades only the
                    # chunks it failed, flagged per-entry in the manifest
                    raw_fallback=(
                        (lambda view=view: _chunked.raw_to_bytes(view))
                        if cfg.degrade_raw else None
                    ),
                )
                for view in views
            ]

            def assemble(streams):
                import zlib

                entries = tuple(
                    _chunked.ChunkEntry(
                        nelems=hi - lo,
                        nbytes=int(s.size),
                        crc32=zlib.crc32(s.tobytes()) & 0xFFFFFFFF,
                        raw=_chunked.is_raw(s),
                    )
                    for (lo, hi), s in zip(spans, streams)
                )
                manifest = _chunked.ChunkManifest(
                    shape=tuple(data.shape),
                    dtype=np.dtype(data.dtype).name,
                    mode=mode,
                    predictor_ndim=1,
                    block=cfg.block,
                    group_blocks=cfg.group_blocks,
                    eb_abs=eb_abs,
                    axis=axis,
                    entries=entries,
                )
                return _chunked.ChunkedStream(manifest, streams).to_bytes()

            master = _gather(futures, assemble)

        def account(f: PoolFuture) -> None:
            self.stats.histogram("service.compress_latency_s").observe(
                time.perf_counter() - t0
            )
            err = f.exception()
            if err is None:
                self.stats.counter("service.bytes_out").inc(int(f.result().size))
            if span is not None:
                self.tracer.end(
                    span, ok=err is None,
                    bytes_out=int(f.result().size) if err is None else 0,
                )

        master.add_done_callback(account)
        return master

    def _compress_codec(
        self,
        data: np.ndarray,
        rel: Optional[float],
        abs: Optional[float],  # noqa: A002 - mirrors compress()
        priority: str,
        timeout_s: Optional[float],
    ) -> PoolFuture:
        """Route a compression request through a non-default plugin
        (``config.codec``): one ``codec.compress`` task, no chunk fan-out.

        The error bound rides inside the plugin's options (bounded plugins
        only; fixed-rate plugins like cuzfp ignore it and take their knobs
        from ``config.codec_opts``).  ``validate_results`` is a CSZ2 CRC
        check, so it does not apply here; the raw-passthrough degradation
        floor still does."""
        cfg = self.config
        from repro import codecs as _codecs

        plugin = _codecs.resolve(cfg.codec)
        opts = dict(cfg.codec_opts)
        if plugin.bounded:
            if (rel is None) == (abs is None):
                raise InvalidInputError("specify exactly one of rel= or abs=")
            opts["rel" if rel is not None else "abs"] = rel if rel is not None else abs
        # fail fast on the caller's thread: bad options should not cost a
        # round trip to a worker (the worker re-validates regardless)
        plugin.validate_options(dict(opts))

        t0 = time.perf_counter()
        self.stats.counter("service.requests").inc()
        self.stats.counter("service.bytes_in").inc(data.nbytes)
        span = (
            self.tracer.begin(
                "service.compress", bytes_in=int(data.nbytes), codec=cfg.codec,
                priority=priority,
            )
            if self.tracer is not None
            else None
        )
        trace = TraceContext(self.tracer, span) if span is not None else None
        master = self._submit(
            "codec.compress",
            {"data": data, "codec": cfg.codec, "opts": opts},
            priority=priority,
            nbytes=data.nbytes,
            batchable=True,
            trace=trace,
            deadline=self._deadline(timeout_s),
            raw_fallback=(
                (lambda: _chunked.raw_to_bytes(data)) if cfg.degrade_raw else None
            ),
        )

        def account(f: PoolFuture) -> None:
            self.stats.histogram("service.compress_latency_s").observe(
                time.perf_counter() - t0
            )
            err = f.exception()
            if err is None:
                self.stats.counter("service.bytes_out").inc(int(f.result().size))
            if span is not None:
                self.tracer.end(
                    span, ok=err is None,
                    bytes_out=int(f.result().size) if err is None else 0,
                )

        master.add_done_callback(account)
        return master

    # -- decompression ------------------------------------------------------

    def decompress(
        self,
        buf,
        priority: str = "interactive",
        cache: bool = True,
        timeout_s: Optional[float] = None,
    ) -> PoolFuture:
        """Submit a decode request; the future resolves to the array.

        Hot streams are served from the content-hashed LRU without
        touching the pool (the returned array is read-only; copy to
        mutate)."""
        if not isinstance(buf, np.ndarray):
            buf = np.frombuffer(bytes(buf), dtype=np.uint8)
        t0 = time.perf_counter()
        self.stats.counter("service.requests").inc()
        self.stats.counter("service.bytes_in").inc(buf.nbytes)
        span = (
            self.tracer.begin(
                "service.decompress", bytes_in=int(buf.nbytes), priority=priority,
            )
            if self.tracer is not None
            else None
        )
        trace = TraceContext(self.tracer, span) if span is not None else None
        key = content_key(buf) if cache else None
        if key is not None:
            if span is not None:
                # make the request span current so the cache's own
                # span (if ambient tracing is on) nests under it
                with self.tracer.attach(span):
                    hit = self.cache.get(key)
            else:
                hit = self.cache.get(key)
            if hit is not None:
                self.stats.histogram("service.decompress_latency_s").observe(
                    time.perf_counter() - t0
                )
                self.stats.counter("service.bytes_out").inc(hit.nbytes)
                if span is not None:
                    self.tracer.end(span, ok=True, cache_hit=True,
                                    bytes_out=int(hit.nbytes))
                return _resolved(hit)

        deadline = self._deadline(timeout_s)
        kb = self.config.kernel_backend

        def decode_arg(stream):
            # the bare-bytes form keeps golden traffic shapes for the
            # default; an explicit backend rides along in the task dict
            if kb == "auto":
                return stream
            return {"stream": stream, "kernel_backend": kb}

        if _chunked.is_chunked(buf):
            chunks = _chunked.ChunkedStream.from_bytes(buf)
            futures = [
                self._submit(
                    "chunk.decompress", decode_arg(c), priority=priority,
                    nbytes=int(c.size), batchable=False, trace=trace,
                    deadline=deadline,
                )
                for c in chunks.chunks
            ]
            m = chunks.manifest

            def assemble(parts):
                if m.axis == "flat":
                    out = np.concatenate([p.reshape(-1) for p in parts])
                else:
                    out = np.concatenate(parts, axis=0)
                return out.reshape(m.shape)

            master = _gather(futures, assemble)
        else:
            # single v2 stream, a CSZ2RAW1 passthrough container, or any
            # registered plugin's stream; the worker task sniffs the magic
            master = self._submit(
                "chunk.decompress", decode_arg(buf), priority=priority,
                nbytes=int(buf.size), batchable=True, trace=trace,
                deadline=deadline,
            )

        def account(f: PoolFuture) -> None:
            self.stats.histogram("service.decompress_latency_s").observe(
                time.perf_counter() - t0
            )
            err = f.exception()
            if err is None:
                arr = f.result()
                self.stats.counter("service.bytes_out").inc(arr.nbytes)
                if key is not None:
                    if span is not None:
                        with self.tracer.attach(span):
                            self.cache.put(key, arr)
                    else:
                        self.cache.put(key, arr)
            if span is not None:
                self.tracer.end(
                    span, ok=err is None, cache_hit=False,
                    bytes_out=int(f.result().nbytes) if err is None else 0,
                )

        master.add_done_callback(account)
        return master

    # -- lifecycle / reporting ----------------------------------------------

    def stats_snapshot(self) -> dict:
        self.stats.gauge("pool.utilization").set(self.pool.utilization())
        snap = self.stats.snapshot()
        snap["cache"] = {
            "hits": self.cache.hits,
            "misses": self.cache.misses,
            "evictions": self.cache.evictions,
            "hit_rate": self.cache.hit_rate,
            "bytes": self.cache.bytes,
            "entries": len(self.cache),
        }
        return snap

    def close(self, cancel_pending: bool = False) -> None:
        if self._closed:
            return
        self._closed = True
        if self.autoscaler is not None:
            self.autoscaler.stop()
        if self.router is not None:
            self.router.close()  # cancel retry timers, stop fallback tiers
        self.scheduler.shutdown(cancel_pending=cancel_pending)
        self.pool.shutdown(wait=not cancel_pending)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close(cancel_pending=any(exc))
