"""Asyncio HTTP/1.1 front end over :class:`CompressionService`.

Pure stdlib (``asyncio`` streams -- no new hard deps): a single event
loop accepts connections, parses minimal HTTP/1.1, and bridges each
request onto the service's :class:`~repro.serve.pool.PoolFuture` without
blocking the loop.  The protocol is deliberately small:

* ``POST /v1/compress``   -- body: raw array bytes; headers ``X-Dtype``
  and ``X-Shape`` describe the array, query ``?rel=`` / ``?abs=`` the
  error bound.  Response body: the compressed CSZ2/CSZ2CHNK stream.
* ``POST /v1/decompress`` -- body: a compressed stream.  Response body:
  raw array bytes, with ``X-Dtype`` / ``X-Shape`` echoing the layout.
* ``GET /v1/stats``       -- JSON snapshot of the service's
  :class:`~repro.serve.stats.MetricsRegistry` (plus cache counters).
* ``GET /healthz``        -- liveness probe.

Overload handling is layered exactly like the in-process path:

* **admission control** -- more than ``max_inflight`` requests already
  in flight -> ``503`` + ``Retry-After`` before any work is queued;
* **per-tenant quotas** -- the ``X-Tenant`` header maps to a token
  bucket (``tenant_rate``/s, burst ``tenant_burst``); an empty bucket
  -> ``429`` + ``Retry-After``;
* **SLO shedding** -- ``X-Deadline-Ms`` arms the same
  :class:`~repro.serve.deadline.Deadline` machinery the service uses
  internally; a request that misses it (shed while queued, reclaimed
  mid-run, or expired on arrival) -> ``503`` + ``Retry-After``;
* **error taxonomy** -- every error response is JSON
  ``{"error": <classify_error label>, "detail": ...}``, so clients see
  the same closed taxonomy the chaos harness asserts in-process
  (malformed requests are ``400 {"error": "client"}``).
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.errors import StreamFormatError
from .deadline import DeadlineExceeded, WorkerTimeout
from .pool import PoolFuture
from .resilience import classify_error
from .scheduler import QueueFull

__all__ = ["HttpConfig", "HttpFrontend", "TokenBucket", "parse_hostport"]

_MAX_HEADER_BYTES = 32 << 10


class _HttpError(Exception):
    """Internal: carries a ready-to-send error response."""

    def __init__(self, status: int, code: str, detail: str,
                 retry_after: Optional[float] = None):
        super().__init__(detail)
        self.status = status
        self.code = code
        self.detail = detail
        self.retry_after = retry_after


@dataclass(frozen=True)
class HttpConfig:
    """Front-end knobs (see docs/SERVING.md)."""

    host: str = "127.0.0.1"
    port: int = 8080
    max_inflight: int = 64  # admission cap across all connections
    max_body_bytes: int = 256 << 20
    tenant_rate: float = 50.0  # tokens/s refill per tenant
    tenant_burst: float = 20.0  # bucket capacity
    default_deadline_ms: Optional[float] = None  # applied when no header
    retry_after_s: float = 1.0  # hint on 429/503


class TokenBucket:
    """Classic token bucket; thread-safe, injectable clock for tests."""

    def __init__(self, rate: float, burst: float, clock=time.monotonic):
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._t = clock()
        self._lock = threading.Lock()

    def try_acquire(self, n: float = 1.0) -> bool:
        with self._lock:
            now = self._clock()
            self._tokens = min(self.burst, self._tokens + (now - self._t) * self.rate)
            self._t = now
            if self._tokens >= n:
                self._tokens -= n
                return True
            return False

    def retry_after(self, n: float = 1.0) -> float:
        """Seconds until ``n`` tokens will be available (>= 0)."""
        with self._lock:
            deficit = n - self._tokens
        return max(0.0, deficit / self.rate) if self.rate > 0 else 60.0


def parse_hostport(spec: str, default_host: str = "127.0.0.1",
                   default_port: int = 8080) -> Tuple[str, int]:
    """Parse ``host:port``, ``:port``, or ``port`` CLI specs."""
    spec = spec.strip()
    if ":" in spec:
        host, _, port = spec.rpartition(":")
        return host or default_host, int(port) if port else default_port
    if spec.isdigit():
        return default_host, int(spec)
    return spec or default_host, default_port


async def _await_pool_future(fut: PoolFuture):
    """Bridge a thread-side :class:`PoolFuture` into the event loop."""
    loop = asyncio.get_running_loop()
    afut = loop.create_future()

    def _resolve(f: PoolFuture, _afut=afut, _loop=loop):
        exc = f.exception()

        def _apply():
            if _afut.done():  # connection already torn down
                return
            if exc is not None:
                _afut.set_exception(exc)
            else:
                _afut.set_result(f.result())

        _loop.call_soon_threadsafe(_apply)

    fut.add_done_callback(_resolve)
    return await afut


class HttpFrontend:
    """Serve a :class:`~repro.serve.service.CompressionService` over HTTP.

    Tests drive it with :meth:`start` / :meth:`stop` inside their own
    event loop (bind ``port=0`` for an ephemeral port, then read
    :attr:`port`); the CLI uses the blocking :meth:`run`.
    """

    def __init__(self, service, cfg: Optional[HttpConfig] = None):
        self.service = service
        self.cfg = cfg if cfg is not None else HttpConfig()
        self.stats = service.stats
        self._server: Optional[asyncio.AbstractServer] = None
        self._inflight = 0
        self._buckets: Dict[str, TokenBucket] = {}
        self._buckets_lock = threading.Lock()

    # -- lifecycle ----------------------------------------------------------

    @property
    def port(self) -> Optional[int]:
        """The actually-bound port (useful after binding port 0)."""
        if self._server is None or not self._server.sockets:
            return None
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "HttpFrontend":
        self._server = await asyncio.start_server(
            self._handle_conn, self.cfg.host, self.cfg.port
        )
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def run(self) -> None:  # pragma: no cover - interactive entry point
        """Blocking serve-forever loop (the ``repro serve`` command)."""

        async def _main():
            await self.start()
            assert self._server is not None
            async with self._server:
                await self._server.serve_forever()

        try:
            asyncio.run(_main())
        except KeyboardInterrupt:
            pass

    # -- request plumbing ---------------------------------------------------

    def _bucket(self, tenant: str) -> TokenBucket:
        with self._buckets_lock:
            b = self._buckets.get(tenant)
            if b is None:
                b = self._buckets[tenant] = TokenBucket(
                    self.cfg.tenant_rate, self.cfg.tenant_burst
                )
            return b

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    req = await self._read_request(reader)
                except _HttpError as e:
                    # parse errors poison the stream: answer, then close
                    status, out_headers, payload = self._error_response(e)
                    await self._write_response(
                        writer, status, out_headers, payload, keep_alive=False
                    )
                    return
                if req is None:
                    return
                method, path, headers, body = req
                keep_alive = headers.get("connection", "").lower() != "close"
                try:
                    status, out_headers, payload = await self._route(
                        method, path, headers, body
                    )
                except _HttpError as e:
                    status, out_headers, payload = self._error_response(e)
                except asyncio.CancelledError:
                    raise
                except BaseException as e:  # noqa: BLE001 - taxonomy boundary
                    status, out_headers, payload = self._error_response(
                        self._classify_exception(e)
                    )
                await self._write_response(
                    writer, status, out_headers, payload, keep_alive
                )
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            pass  # client went away mid-request
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        try:
            line = await reader.readline()
        except (ConnectionError, ValueError):
            return None
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise _HttpError(400, "client", f"malformed request line {line!r}")
        method, path, _version = parts
        headers: Dict[str, str] = {}
        hdr_bytes = 0
        while True:
            line = await reader.readline()
            hdr_bytes += len(line)
            if hdr_bytes > _MAX_HEADER_BYTES:
                raise _HttpError(400, "client", "header section too large")
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = headers.get("content-length", "0")
        try:
            nbody = int(length)
        except ValueError:
            raise _HttpError(400, "client", f"bad Content-Length {length!r}") from None
        if nbody < 0 or nbody > self.cfg.max_body_bytes:
            raise _HttpError(
                413 if nbody > 0 else 400, "client",
                f"body of {nbody} bytes exceeds limit {self.cfg.max_body_bytes}",
            )
        body = await reader.readexactly(nbody) if nbody else b""
        return method, path, headers, body

    async def _write_response(self, writer, status, headers, payload,
                              keep_alive) -> None:
        reason = {
            200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            429: "Too Many Requests", 500: "Internal Server Error",
            503: "Service Unavailable",
        }.get(status, "Unknown")
        head = [f"HTTP/1.1 {status} {reason}"]
        headers = dict(headers)
        headers.setdefault("content-length", str(len(payload)))
        headers.setdefault("connection", "keep-alive" if keep_alive else "close")
        head += [f"{k}: {v}" for k, v in headers.items()]
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(payload)
        await writer.drain()

    # -- error taxonomy -----------------------------------------------------

    def _classify_exception(self, exc: BaseException) -> _HttpError:
        label = classify_error(exc)
        if isinstance(exc, (DeadlineExceeded, WorkerTimeout)):
            return _HttpError(503, label, str(exc), self.cfg.retry_after_s)
        if isinstance(exc, QueueFull):
            return _HttpError(503, "backpressure", str(exc), self.cfg.retry_after_s)
        if isinstance(exc, StreamFormatError):
            # the stream came in the request body: the client's fault
            return _HttpError(400, "client", str(exc))
        if label == "client":
            return _HttpError(400, "client", str(exc))
        return _HttpError(500, label, str(exc))

    def _error_response(self, e: _HttpError):
        self.stats.counter(f"http.errors.{e.code}").inc()
        self.stats.counter(f"http.status.{e.status}").inc()
        headers = {"content-type": "application/json"}
        if e.retry_after is not None:
            headers["retry-after"] = f"{max(e.retry_after, 0.001):.3f}"
        body = json.dumps({"error": e.code, "detail": e.detail}).encode()
        return e.status, headers, body

    # -- routing ------------------------------------------------------------

    async def _route(self, method: str, path: str, headers, body: bytes):
        path, _, query = path.partition("?")
        self.stats.counter("http.requests").inc()
        if path == "/healthz":
            return 200, {"content-type": "text/plain"}, b"ok\n"
        if path == "/v1/stats":
            if method != "GET":
                raise _HttpError(405, "client", f"{method} not allowed on {path}")
            snap = self.service.stats_snapshot()
            return (200, {"content-type": "application/json"},
                    json.dumps(snap, default=str).encode())
        if path not in ("/v1/compress", "/v1/decompress"):
            raise _HttpError(404, "client", f"no route {path}")
        if method != "POST":
            raise _HttpError(405, "client", f"{method} not allowed on {path}")

        # admission control: reject before any work is queued
        if self._inflight >= self.cfg.max_inflight:
            self.stats.counter("http.admission_rejects").inc()
            raise _HttpError(
                503, "backpressure",
                f"{self._inflight} requests in flight (cap {self.cfg.max_inflight})",
                self.cfg.retry_after_s,
            )
        # per-tenant quota
        tenant = headers.get("x-tenant", "default")
        bucket = self._bucket(tenant)
        if not bucket.try_acquire():
            self.stats.counter("http.quota_rejects").inc()
            raise _HttpError(
                429, "quota", f"tenant {tenant!r} out of quota",
                bucket.retry_after(),
            )
        # SLO: an already-expired deadline is shed immediately
        timeout_s = self._deadline_s(headers)
        if timeout_s is not None and timeout_s <= 0:
            self.stats.counter("http.deadline_sheds").inc()
            raise _HttpError(
                503, "deadline", "deadline expired before processing",
                self.cfg.retry_after_s,
            )

        self._inflight += 1
        self.stats.gauge("http.inflight").set(self._inflight)
        try:
            if path == "/v1/compress":
                resp = await self._compress(headers, query, body, timeout_s)
            else:
                resp = await self._decompress(headers, body, timeout_s)
            self.stats.counter("http.status.200").inc()
            return resp
        finally:
            self._inflight -= 1
            self.stats.gauge("http.inflight").set(self._inflight)

    def _deadline_s(self, headers) -> Optional[float]:
        raw = headers.get("x-deadline-ms")
        if raw is None:
            ms = self.cfg.default_deadline_ms
            return ms / 1000.0 if ms is not None else None
        try:
            return float(raw) / 1000.0
        except ValueError:
            raise _HttpError(400, "client", f"bad X-Deadline-Ms {raw!r}") from None

    # -- endpoints ----------------------------------------------------------

    def _parse_array(self, headers, body: bytes) -> np.ndarray:
        dtype = headers.get("x-dtype", "float32")
        shape_hdr = headers.get("x-shape")
        try:
            dt = np.dtype(dtype)
        except TypeError:
            raise _HttpError(400, "client", f"bad X-Dtype {dtype!r}") from None
        if shape_hdr:
            try:
                shape = tuple(int(s) for s in shape_hdr.split(",") if s.strip())
            except ValueError:
                raise _HttpError(
                    400, "client", f"bad X-Shape {shape_hdr!r}"
                ) from None
        else:
            if len(body) % dt.itemsize:
                raise _HttpError(
                    400, "client",
                    f"body of {len(body)} bytes is not a whole number of "
                    f"{dt.name} elements",
                )
            shape = (len(body) // dt.itemsize,)
        try:
            return np.frombuffer(body, dtype=dt).reshape(shape)
        except ValueError as e:
            raise _HttpError(400, "client", str(e)) from None

    @staticmethod
    def _parse_bound(query: str):
        params = {}
        for pair in query.split("&"):
            if not pair:
                continue
            k, _, v = pair.partition("=")
            params[k] = v
        rel = params.get("rel")
        ab = params.get("abs")
        if (rel is None) == (ab is None):
            raise _HttpError(
                400, "client", "specify exactly one of ?rel= or ?abs="
            )
        try:
            return (float(rel) if rel is not None else None,
                    float(ab) if ab is not None else None,
                    params.get("mode"))
        except ValueError:
            raise _HttpError(
                400, "client", f"bad error bound in query {query!r}"
            ) from None

    async def _compress(self, headers, query: str, body: bytes,
                        timeout_s: Optional[float]):
        rel, ab, mode = self._parse_bound(query)
        data = self._parse_array(headers, body)
        fut = self.service.compress(
            data, rel=rel, abs=ab, mode=mode, timeout_s=timeout_s
        )
        stream = await _await_pool_future(fut)
        payload = np.asarray(stream, dtype=np.uint8).tobytes()
        return 200, {
            "content-type": "application/octet-stream",
            "x-uncompressed-bytes": str(data.nbytes),
        }, payload

    async def _decompress(self, headers, body: bytes,
                          timeout_s: Optional[float]):
        if not body:
            raise _HttpError(400, "client", "empty body")
        fut = self.service.decompress(body, timeout_s=timeout_s)
        arr = await _await_pool_future(fut)
        return 200, {
            "content-type": "application/octet-stream",
            "x-dtype": str(arr.dtype),
            "x-shape": ",".join(str(s) for s in arr.shape),
        }, np.ascontiguousarray(arr).tobytes()
