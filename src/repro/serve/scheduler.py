"""Admission control in front of the worker pool.

The pool executes whatever it is given; the scheduler decides *what* and
*when*:

* **bounded submission queue** -- at capacity, :meth:`Scheduler.submit`
  raises :class:`QueueFull` immediately.  Backpressure is explicit: the
  caller slows down or sheds load, the service never grows an unbounded
  queue (the failure mode that turns an overloaded service into a dead
  one).
* **priority lanes** -- ``"interactive"`` requests (a reader blocked on a
  decode) are dispatched before ``"bulk"`` requests (a background
  checkpoint sweep), and the scheduler only keeps ``max_inflight`` tasks
  inside the pool, so a late-arriving interactive request overtakes queued
  bulk work instead of sitting behind it.
* **micro-batching** -- small same-kind requests are coalesced into one
  worker dispatch (one queue round-trip, one task setup, amortized over
  the batch), flushed when the batch fills or the oldest member has waited
  ``batch_wait_s``.
* **loss-free crashes** -- worker crash recovery lives in the pool; the
  scheduler adds completion accounting so every request's latency (queue
  wait included) lands in the metrics registry.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Dict, Optional

from repro.obs import trace as obs_trace
from repro.obs.trace import TraceContext

from .deadline import Deadline, DeadlineExceeded, earliest
from .pool import PoolClosed, PoolFuture, WorkerPool
from .stats import MetricsRegistry

PRIORITIES = ("interactive", "bulk")


class QueueFull(RuntimeError):
    """The bounded submission queue is at capacity; retry later or shed."""


class _Request:
    __slots__ = ("name", "arg", "nbytes", "priority", "future", "t_enqueue",
                 "batchable", "trace", "deadline")

    def __init__(self, name, arg, nbytes, priority, future, batchable, trace=None,
                 deadline=None):
        self.name = name
        self.arg = arg
        self.nbytes = nbytes
        self.priority = priority
        self.future = future
        self.t_enqueue = time.perf_counter()
        self.batchable = batchable
        self.trace: Optional[TraceContext] = trace
        self.deadline: Optional[Deadline] = deadline


class Scheduler:
    """Bounded, priority-aware, micro-batching dispatcher over a pool.

    Parameters
    ----------
    pool:
        The :class:`~repro.serve.pool.WorkerPool` to dispatch into.
    max_pending:
        Queue capacity across both lanes; beyond it :class:`QueueFull`.
    max_inflight:
        Tasks handed to the pool at once (default: one per worker).
        Keeping this small is what makes priorities effective.
    batch_max / batch_bytes / batch_wait_s:
        A request at most ``batch_bytes`` big is batchable; up to
        ``batch_max`` same-name batchable requests from one lane coalesce
        into a single dispatch, flushed when full or when the oldest has
        waited ``batch_wait_s`` seconds.
    """

    def __init__(
        self,
        pool: WorkerPool,
        max_pending: int = 128,
        max_inflight: Optional[int] = None,
        batch_max: int = 8,
        batch_bytes: int = 1 << 20,
        batch_wait_s: float = 0.01,
        stats: Optional[MetricsRegistry] = None,
        poll_s: float = 0.02,
    ):
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        self.pool = pool
        self.stats = stats if stats is not None else pool.stats
        self.max_pending = max_pending
        self.max_inflight = max_inflight if max_inflight is not None else pool.nworkers
        self.batch_max = batch_max
        self.batch_bytes = batch_bytes
        self.batch_wait_s = batch_wait_s
        self._poll_s = poll_s
        self._cv = threading.Condition()
        self._lanes: Dict[str, "deque[_Request]"] = {p: deque() for p in PRIORITIES}
        self._inflight = 0
        self._closing = False
        self._dispatcher = threading.Thread(
            target=self._run, name="serve-scheduler", daemon=True
        )
        self._dispatcher.start()

    # -- submission ---------------------------------------------------------

    def submit(
        self,
        name: str,
        arg: Any,
        priority: str = "bulk",
        nbytes: int = 0,
        batchable: bool = True,
        future: Optional[PoolFuture] = None,
        trace: Optional[TraceContext] = None,
        deadline: Optional[Deadline] = None,
    ) -> PoolFuture:
        if priority not in PRIORITIES:
            raise ValueError(
                f"priority must be one of {PRIORITIES}, got {priority!r}"
            )
        future = future if future is not None else PoolFuture()
        if trace is None:
            tr = obs_trace.current_tracer()
            if tr is not None:
                trace = TraceContext(tr, tr.current())
        req = _Request(
            name, arg, nbytes, priority, future,
            batchable and nbytes <= self.batch_bytes,
            trace,
            deadline,
        )
        with self._cv:
            if self._closing:
                raise PoolClosed("scheduler is shut down")
            depth = sum(len(lane) for lane in self._lanes.values())
            if depth >= self.max_pending:
                self.stats.counter("scheduler.rejected").inc()
                raise QueueFull(
                    f"submission queue at capacity ({self.max_pending}); "
                    "apply backpressure"
                )
            self._lanes[priority].append(req)
            self.stats.counter("scheduler.submitted").inc()
            self.stats.gauge("scheduler.queue_depth").set(depth + 1)
            self._cv.notify_all()
        return future

    @property
    def queue_depth(self) -> int:
        with self._cv:
            return sum(len(lane) for lane in self._lanes.values())

    # -- shutdown -----------------------------------------------------------

    def shutdown(
        self,
        wait: bool = True,
        cancel_pending: bool = False,
        timeout: float = 30.0,
    ) -> None:
        """Stop dispatching.  ``cancel_pending=True`` fails queued requests
        with ``CancelledError``; otherwise they are drained first.  In
        either case in-flight pool tasks run to completion and the call
        returns (never deadlocks) within ``timeout``."""
        with self._cv:
            self._closing = True
            cancelled = []
            if cancel_pending:
                for lane in self._lanes.values():
                    cancelled += list(lane)
                    lane.clear()
            self._cv.notify_all()
        for req in cancelled:
            req.future.cancel()
        self._dispatcher.join(timeout)
        if wait:
            deadline = time.perf_counter() + timeout
            with self._cv:
                self._cv.wait_for(
                    lambda: self._inflight == 0,
                    max(deadline - time.perf_counter(), 0.0),
                )

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.shutdown(cancel_pending=any(exc))

    # -- dispatcher ---------------------------------------------------------

    def _next_lane(self) -> Optional[str]:
        for p in PRIORITIES:  # interactive drains strictly first
            if self._lanes[p]:
                return p
        return None

    def _run(self) -> None:
        while True:
            batch = None
            shed: list = []
            with self._cv:
                lane = self._next_lane()
                while not (
                    (lane is not None and self._inflight < self.max_inflight)
                    or self._closing
                ):
                    self._cv.wait(self._poll_s)
                    lane = self._next_lane()
                if lane is None:
                    if self._closing:
                        return
                    continue
                if self._inflight >= self.max_inflight and not self._closing:
                    continue
                head = self._lanes[lane].popleft()
                if head.future.cancelled():
                    self._publish_depth()
                    continue
                if head.deadline is not None and head.deadline.expired:
                    shed.append(head)
                    self._publish_depth()
                else:
                    batch = [head]
                    if head.batchable:
                        self._fill_batch(batch, lane, shed)
                    self._publish_depth()
                    self._inflight += 1
            # fail shed requests outside _cv: their done-callbacks (retry
            # machinery) may re-enter submit(), which takes the same lock
            for req in shed:
                self._shed(req)
            if batch is not None:
                self._dispatch(batch)

    def _shed(self, req: _Request) -> None:
        self.stats.counter("scheduler.deadline_sheds").inc()
        req.future.set_exception(
            DeadlineExceeded(
                f"request {req.name!r} shed: deadline expired after "
                f"{time.perf_counter() - req.t_enqueue:.3f}s in queue"
            )
        )

    def _fill_batch(self, batch, lane, shed) -> None:
        """Gather same-name batchable peers (must be called under _cv);
        expired peers are moved to ``shed`` instead of batched."""
        first = batch[0]
        deadline = first.t_enqueue + self.batch_wait_s
        while len(batch) < self.batch_max:
            queue = self._lanes[lane]
            while queue and len(batch) < self.batch_max:
                peer = queue[0]
                if peer.future.cancelled():
                    queue.popleft()
                    continue
                if peer.deadline is not None and peer.deadline.expired:
                    shed.append(queue.popleft())
                    continue
                if not (peer.batchable and peer.name == first.name):
                    return  # preserve FIFO order within the lane
                batch.append(queue.popleft())
            remaining = deadline - time.perf_counter()
            if remaining <= 0 or self._closing or len(batch) >= self.batch_max:
                return
            self._cv.wait(min(remaining, self._poll_s))

    def _publish_depth(self) -> None:
        self.stats.gauge("scheduler.queue_depth").set(
            sum(len(lane) for lane in self._lanes.values())
        )

    def _record_waits(self, batch) -> None:
        """One finished ``scheduler.wait`` span per traced request: the
        time between submission and hand-off to the pool (queue wait plus
        any micro-batching delay), parented under the request's span."""
        now = time.perf_counter()
        for req in batch:
            if req.trace is not None:
                req.trace.tracer.record(
                    "scheduler.wait", req.t_enqueue, now, parent=req.trace.span,
                    priority=req.priority, batched=len(batch) > 1,
                )

    def _dispatch(self, batch) -> None:
        self.stats.counter("scheduler.dispatches").inc()
        self._record_waits(batch)
        try:
            if len(batch) == 1:
                req = batch[0]
                inner = self.pool.submit(
                    req.name, req.arg, trace=req.trace, deadline=req.deadline
                )
                inner.add_done_callback(lambda f, r=req: self._complete_one(f, r))
            else:
                self.stats.counter("scheduler.batches").inc()
                self.stats.counter("scheduler.batched_requests").inc(len(batch))
                # a micro-batch is one worker dispatch; its span tree
                # lands under the first traced member's request span
                trace = next((r.trace for r in batch if r.trace is not None), None)
                inner = self.pool.submit(
                    "pool.batch", (batch[0].name, [r.arg for r in batch]),
                    trace=trace,
                    # watchdog arms on the tightest member; a kill delivers
                    # WorkerTimeout, which later members may retry
                    deadline=earliest(*(r.deadline for r in batch)),
                )
                inner.add_done_callback(lambda f, b=tuple(batch): self._complete_batch(f, b))
        except PoolClosed as e:
            with self._cv:
                self._inflight -= 1
                self._cv.notify_all()
            for req in batch:
                req.future.set_exception(e)

    def _finish(self, req: _Request) -> None:
        self.stats.observe_latency(
            f"scheduler.latency.{req.priority}_s", req.t_enqueue
        )
        self.stats.counter("scheduler.completed").inc()

    def _complete_one(self, inner: PoolFuture, req: _Request) -> None:
        with self._cv:
            self._inflight -= 1
            self._cv.notify_all()
        exc = inner.exception()
        if exc is not None:
            req.future.set_exception(exc)
        else:
            req.future.set_result(inner.result())
        self._finish(req)

    def _complete_batch(self, inner: PoolFuture, batch) -> None:
        with self._cv:
            self._inflight -= 1
            self._cv.notify_all()
        exc = inner.exception()
        if exc is not None:
            for req in batch:
                req.future.set_exception(exc)
                self._finish(req)
            return
        outcomes = inner.result()
        for req, (ok, value) in zip(batch, outcomes):
            if ok:
                req.future.set_result(value)
            else:
                req.future.set_exception(value)
            self._finish(req)
