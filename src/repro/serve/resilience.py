"""Resilient request routing: retries, circuit breakers, degradation.

This module is the serving layer's answer to a sick fleet.  The contract
it enforces (and that ``repro chaoscheck`` verifies behaviorally) is:

    every request either **succeeds within its deadline**, **degrades to
    a bit-correct lower tier**, or **fails with a classified error** --
    it never hangs and never returns wrong bytes.

Four mechanisms compose into that guarantee:

* **deadline propagation** (:mod:`repro.serve.deadline`) -- one absolute
  deadline threads through scheduler, pool, and this router; expired work
  is shed before dispatch and the pool watchdog reclaims workers that
  overrun it;
* **retry with exponential backoff + jitter** (:class:`RetryPolicy`) --
  transient failures (worker crash, watchdog kill, ``QueueFull``
  backpressure, corrupt results detected by CRC) are retried while the
  deadline still has budget;
* **per-tier circuit breakers** (:class:`CircuitBreaker`) -- a tier
  failing at a high rate is opened and routed around instead of burning
  the retry budget (and the pool's restart budget) on a sick backend;
  after ``reset_timeout_s`` a half-open probe tests recovery;
* **graceful degradation** (:class:`ResilientRouter`) -- the tier chain
  ``process pool -> thread pool -> inline codec -> raw passthrough``
  keeps answers flowing under total backend failure.  Every compressed
  tier runs the identical codec, so degradation never changes bytes;
  the raw floor stores the input uncompressed (lossless, flagged in the
  container, detected by its own CRC).

The router is codec-agnostic: it routes named pool tasks, so the same
machinery serves compression, decompression, and future task types.
"""

from __future__ import annotations

import queue
import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.core.errors import (
    CuSZp2Error,
    ErrorBoundError,
    InvalidInputError,
)

from .deadline import Deadline, DeadlineExceeded, WorkerTimeout
from .pool import (
    CancelledError,
    PoolClosed,
    PoolFuture,
    TaskError,
    UnknownTask,
    WaitTimeout,
    WorkerCrash,
    WorkerPool,
    _run_task,
)
from .stats import MetricsRegistry

__all__ = [
    "BreakerConfig",
    "CircuitBreaker",
    "CircuitOpen",
    "CorruptResult",
    "ResilienceError",
    "ResilientRouter",
    "RetryPolicy",
    "TaskFailure",
    "classify_error",
    "is_classified",
]


# ---------------------------------------------------------------------------
# Error taxonomy
# ---------------------------------------------------------------------------

class ResilienceError(RuntimeError):
    """Base class for errors minted by the resilience layer itself."""


class CircuitOpen(ResilienceError):
    """Every tier's circuit breaker refused the request."""


class CorruptResult(ResilienceError):
    """A worker shipped back a result that failed validation (CRC /
    integrity check) -- treated like a transport fault and retried."""


class TaskFailure(ResilienceError):
    """Terminal wrapper for an exception outside the known taxonomy, so
    callers always receive a classified error type."""


#: Exception types a caller can receive from the router.  Anything else
#: is wrapped in :class:`TaskFailure` before reaching a future, closing
#: the taxonomy (the chaos harness asserts this).
CLASSIFIED_ERRORS = (
    ResilienceError,
    DeadlineExceeded,
    WorkerTimeout,
    WorkerCrash,
    TaskError,
    PoolClosed,
    CancelledError,
    WaitTimeout,
    CuSZp2Error,
)

#: Failures worth retrying on the *same* tier: transient by nature
#: (crashed/killed worker, backpressure, transport corruption).  Note
#: ``IntegrityError``/``StreamFormatError`` are subclasses of
#: ``CuSZp2Error`` -- retryable because a corrupt *task payload* (not a
#: corrupt user input) decodes cleanly on a retry.
RETRYABLE_ERRORS = (
    WorkerCrash,
    WorkerTimeout,
    DeadlineExceeded,  # from a lower layer; terminal only if *our* deadline expired
    CorruptResult,
    TaskError,
)

#: Deterministic client errors: never retried, never charged against a
#: breaker, passed through verbatim.
CLIENT_ERRORS = (InvalidInputError, ErrorBoundError, ValueError, TypeError)


def is_classified(exc: BaseException) -> bool:
    """Is ``exc`` part of the documented serving-error taxonomy?"""
    return isinstance(exc, CLASSIFIED_ERRORS)


def classify_error(exc: BaseException) -> str:
    """Short classification label for metrics/event logs."""
    if isinstance(exc, CLIENT_ERRORS):
        return "client"
    if isinstance(exc, DeadlineExceeded):
        return "deadline"
    if isinstance(exc, (WorkerTimeout, WaitTimeout)):
        return "timeout"
    if isinstance(exc, CircuitOpen):
        return "circuit_open"
    if isinstance(exc, CorruptResult):
        return "corrupt_result"
    if isinstance(exc, WorkerCrash):
        return "worker_crash"
    if isinstance(exc, PoolClosed):
        return "pool_closed"
    if isinstance(exc, CancelledError):
        return "cancelled"
    if isinstance(exc, CuSZp2Error):
        return "codec"
    if isinstance(exc, ResilienceError):
        return "resilience"
    if isinstance(exc, UnknownTask):
        return "unknown_task"
    if isinstance(exc, TaskError):
        return "task_error"
    return "unclassified"


# ---------------------------------------------------------------------------
# Retry policy
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter, bounded by the request deadline.

    ``max_attempts`` counts the first try, per tier: 3 means up to two
    retries before the router degrades to the next tier.  Jitter spreads
    synchronized retry storms: the delay for attempt ``k`` is
    ``min(base * multiplier**(k-1), max_backoff) * (1 +/- jitter)``.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.01
    backoff_multiplier: float = 2.0
    backoff_max_s: float = 0.25
    jitter: float = 0.5

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def backoff_s(self, attempt: int, rng: random.Random) -> float:
        """Delay before retry number ``attempt`` (1 = first retry)."""
        base = min(
            self.backoff_base_s * self.backoff_multiplier ** max(attempt - 1, 0),
            self.backoff_max_s,
        )
        if self.jitter:
            base *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(base, 0.0)


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BreakerConfig:
    """Trip/recovery knobs of a :class:`CircuitBreaker`."""

    window: int = 16  # sliding outcome window
    min_volume: int = 4  # outcomes required before the breaker may trip
    failure_threshold: float = 0.5  # failure rate in the window that trips
    reset_timeout_s: float = 0.5  # open -> half-open delay
    half_open_probes: int = 1  # trial requests admitted while half-open
    latency_threshold_s: Optional[float] = None  # slower success counts as failure


class CircuitBreaker:
    """Closed / open / half-open breaker over a sliding outcome window.

    *Closed* admits everything and tracks outcomes; once at least
    ``min_volume`` outcomes are in the window and the failure rate
    reaches ``failure_threshold`` it *opens*.  Open rejects until
    ``reset_timeout_s`` elapses, then *half-open* admits
    ``half_open_probes`` trial requests: one success closes the breaker
    (window cleared), one failure re-opens it.  Thread-safe; state
    transitions are published to the stats registry as
    ``resilience.breaker.<name>.state`` (0=closed, 1=open, 2=half-open)
    plus per-transition counters.
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"
    _STATE_CODE = {CLOSED: 0, OPEN: 1, HALF_OPEN: 2}

    def __init__(
        self,
        name: str,
        config: Optional[BreakerConfig] = None,
        stats: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self.name = name
        self.config = config if config is not None else BreakerConfig()
        self.stats = stats
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._outcomes: List[bool] = []  # True = failure
        self._opened_at = 0.0
        self._probes_left = 0
        self._publish_state()

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May a request pass?  (Open -> half-open happens here.)"""
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._state == self.OPEN:
                if self._clock() - self._opened_at < self.config.reset_timeout_s:
                    return False
                self._transition(self.HALF_OPEN)
                self._probes_left = self.config.half_open_probes
            # half-open: admit the configured number of probes
            if self._probes_left > 0:
                self._probes_left -= 1
                return True
            return False

    def record_success(self, duration_s: Optional[float] = None) -> None:
        cfg = self.config
        if (
            cfg.latency_threshold_s is not None
            and duration_s is not None
            and duration_s > cfg.latency_threshold_s
        ):
            self.record_failure()
            return
        with self._lock:
            if self._state == self.HALF_OPEN:
                self._outcomes.clear()
                self._transition(self.CLOSED)
                return
            self._push(False)

    def record_failure(self) -> None:
        with self._lock:
            if self._state == self.HALF_OPEN:
                self._opened_at = self._clock()
                self._transition(self.OPEN)
                return
            if self._state == self.OPEN:
                return  # late failure from an admitted-before-trip request
            self._push(True)
            cfg = self.config
            if len(self._outcomes) >= cfg.min_volume:
                rate = sum(self._outcomes) / len(self._outcomes)
                if rate >= cfg.failure_threshold:
                    self._opened_at = self._clock()
                    self._transition(self.OPEN)

    # -- internals (call under _lock) ---------------------------------------

    def _push(self, failed: bool) -> None:
        self._outcomes.append(failed)
        if len(self._outcomes) > self.config.window:
            del self._outcomes[: len(self._outcomes) - self.config.window]

    def _transition(self, to: str) -> None:
        self._state = to
        if self.stats is not None:
            self.stats.counter("resilience.breaker.transitions").inc()
            self.stats.counter(f"resilience.breaker.{self.name}.{to}").inc()
        self._publish_state()

    def _publish_state(self) -> None:
        if self.stats is not None:
            self.stats.gauge(f"resilience.breaker.{self.name}.state").set(
                self._STATE_CODE[self._state]
            )


# ---------------------------------------------------------------------------
# Inline runner (tier 3)
# ---------------------------------------------------------------------------

class _InlineRunner:
    """Last-resort same-process executor: one daemon thread, FIFO.

    When every pool tier is down the service still answers -- more
    slowly, but with the identical codec and therefore identical bytes.
    Jobs whose deadline expires while queued are shed like everywhere
    else.
    """

    def __init__(self, stats: MetricsRegistry):
        self.stats = stats
        self._q: "queue.Queue" = queue.Queue()
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    def submit(
        self, fn: Callable[[], Any], deadline: Optional[Deadline] = None
    ) -> PoolFuture:
        future = PoolFuture()
        with self._lock:
            if self._closed:
                future.set_exception(PoolClosed("inline runner is shut down"))
                return future
            self._q.put((fn, deadline, future))
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._loop, name="serve-inline-runner", daemon=True
                )
                self._thread.start()
        return future

    def _loop(self) -> None:
        while True:
            item = self._q.get()
            if item is None:
                return
            fn, deadline, future = item
            if future.cancelled():
                continue
            if deadline is not None and deadline.expired:
                self.stats.counter("resilience.inline_sheds").inc()
                future.set_exception(
                    DeadlineExceeded("inline task shed: deadline expired while queued")
                )
                continue
            self.stats.counter("resilience.inline_tasks").inc()
            try:
                future.set_result(fn())
            except BaseException as e:  # noqa: BLE001 - delivered via the future
                future.set_exception(e)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._q.put(None)


# ---------------------------------------------------------------------------
# The router
# ---------------------------------------------------------------------------

class _Tier:
    __slots__ = ("name", "submit")

    def __init__(self, name: str, submit: Callable[["_Flight"], PoolFuture]):
        self.name = name
        self.submit = submit


class _Flight:
    """Mutable per-request routing state (one in-flight attempt at a time)."""

    __slots__ = (
        "name", "arg", "deadline", "priority", "batchable", "nbytes", "trace",
        "validator", "raw_fallback", "future", "tier_idx", "attempt",
    )

    def __init__(self, name, arg, deadline, priority, batchable, nbytes, trace,
                 validator, raw_fallback, future):
        self.name = name
        self.arg = arg
        self.deadline: Optional[Deadline] = deadline
        self.priority = priority
        self.batchable = batchable
        self.nbytes = nbytes
        self.trace = trace
        self.validator = validator
        self.raw_fallback = raw_fallback
        self.future: PoolFuture = future
        self.tier_idx = 0
        self.attempt = 1  # attempts on the current tier, 1-based


class ResilientRouter:
    """Routes pool tasks through the degradation chain with retries.

    Parameters
    ----------
    scheduler:
        The primary tier: the admission-controlled scheduler over the
        service's main pool.
    stats:
        Metrics registry all resilience counters land in.
    retry:
        Per-tier :class:`RetryPolicy`.
    breaker:
        :class:`BreakerConfig` shared by every tier's breaker.
    fallback_workers:
        Size of the lazily created thread-backend fallback pool (tier 2).
        0 disables the tier -- the right choice when the primary backend
        is already ``"thread"``.
    inline:
        Enable the inline-codec tier (tier 3).
    seed:
        Seed for deterministic backoff jitter.
    """

    def __init__(
        self,
        scheduler,
        stats: Optional[MetricsRegistry] = None,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[BreakerConfig] = None,
        fallback_workers: int = 0,
        inline: bool = True,
        seed: int = 0,
    ):
        self.scheduler = scheduler
        self.stats = stats if stats is not None else scheduler.stats
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker_config = breaker if breaker is not None else BreakerConfig()
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._closed = False
        self._timers: set = set()
        self._fallback_workers = fallback_workers
        self._fallback_pool: Optional[WorkerPool] = None
        # the runner always exists: it also executes raw_fallback work
        # even when the inline *tier* is disabled
        self._inline = _InlineRunner(self.stats)

        self.tiers: List[_Tier] = [_Tier("pool", self._submit_scheduler)]
        if fallback_workers > 0:
            self.tiers.append(_Tier("threads", self._submit_fallback))
        if inline:
            self.tiers.append(_Tier("inline", self._submit_inline))
        self.breakers: Dict[str, CircuitBreaker] = {
            t.name: CircuitBreaker(t.name, self.breaker_config, self.stats)
            for t in self.tiers
        }

    # -- public --------------------------------------------------------------

    def submit(
        self,
        name: str,
        arg: Any,
        deadline: Optional[Deadline] = None,
        priority: str = "bulk",
        batchable: bool = True,
        nbytes: int = 0,
        trace=None,
        validator: Optional[Callable[[Any], None]] = None,
        raw_fallback: Optional[Callable[[], Any]] = None,
    ) -> PoolFuture:
        """Route ``name(arg)`` with deadline/retry/degradation semantics.

        ``validator`` (called with a successful result) turns a corrupted
        ship-back into a retryable :class:`CorruptResult`.
        ``raw_fallback`` (compress only) produces the raw-passthrough
        answer when every tier fails.
        """
        flight = _Flight(
            name, arg, deadline, priority, batchable, nbytes, trace,
            validator, raw_fallback, PoolFuture(),
        )
        self._launch(flight)
        return flight.future

    def close(self) -> None:
        """Cancel pending retry timers and stop the fallback tiers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            timers, self._timers = set(self._timers), set()
        for t in timers:
            t.cancel()
        self._inline.close()
        if self._fallback_pool is not None:
            self._fallback_pool.shutdown(wait=False, timeout=5.0)

    # -- tier submitters -----------------------------------------------------

    def _submit_scheduler(self, fl: _Flight) -> PoolFuture:
        return self.scheduler.submit(
            fl.name, fl.arg, priority=fl.priority, nbytes=fl.nbytes,
            batchable=fl.batchable, trace=fl.trace, deadline=fl.deadline,
        )

    def _submit_fallback(self, fl: _Flight) -> PoolFuture:
        pool = self._ensure_fallback_pool()
        return pool.submit(fl.name, fl.arg, trace=fl.trace, deadline=fl.deadline)

    def _submit_inline(self, fl: _Flight) -> PoolFuture:
        name, arg = fl.name, fl.arg
        return self._inline.submit(lambda: _run_task(name, arg), fl.deadline)

    def _ensure_fallback_pool(self) -> WorkerPool:
        with self._lock:
            if self._fallback_pool is None:
                self._fallback_pool = WorkerPool(
                    nworkers=self._fallback_workers,
                    backend="thread",
                    warmup=False,
                    stats=self.stats,
                )
            return self._fallback_pool

    # -- routing state machine ----------------------------------------------

    def _finish(self, fl: _Flight, exc: BaseException) -> None:
        """Fail the request with a *classified* error, always."""
        if not is_classified(exc):
            exc = TaskFailure(f"task {fl.name!r} failed: {exc!r}")
        fl.future.set_exception(exc)

    def _degrade(self, fl: _Flight, reason: str) -> bool:
        """Advance to the next tier; False when the chain is exhausted."""
        if fl.tier_idx + 1 >= len(self.tiers):
            return False
        fl.tier_idx += 1
        fl.attempt = 1
        tier = self.tiers[fl.tier_idx]
        self.stats.counter(f"resilience.degraded.{tier.name}").inc()
        return True

    def _launch(self, fl: _Flight) -> None:
        while True:
            if self._closed:
                self._finish(fl, PoolClosed("resilient router is shut down"))
                return
            if fl.deadline is not None and fl.deadline.expired:
                self.stats.counter("resilience.deadline_sheds").inc()
                self._finish(
                    fl,
                    DeadlineExceeded(
                        f"request {fl.name!r} shed by router: deadline expired"
                    ),
                )
                return
            if fl.tier_idx >= len(self.tiers):  # pragma: no cover - defensive
                self._raw_or_fail(fl, CircuitOpen("no tier available"))
                return
            tier = self.tiers[fl.tier_idx]
            if self.breakers[tier.name].allow():
                break
            if not self._degrade(fl, f"{tier.name} breaker open"):
                self._raw_or_fail(
                    fl, CircuitOpen(f"all tiers unavailable (last: {tier.name})")
                )
                return
        t0 = time.perf_counter()
        try:
            inner = tier.submit(fl)
        except Exception as e:  # noqa: BLE001 - sync rejection (QueueFull, ...)
            self._on_failure(fl, tier, e)
            return
        inner.add_done_callback(
            lambda f, fl=fl, tier=tier, t0=t0: self._on_done(fl, tier, f, t0)
        )

    def _on_done(self, fl: _Flight, tier: _Tier, inner: PoolFuture, t0: float) -> None:
        duration = time.perf_counter() - t0
        exc = inner.exception()
        if exc is None:
            value = inner.result()
            if fl.validator is not None:
                tv0 = time.perf_counter()
                try:
                    fl.validator(value)
                except Exception as e:  # noqa: BLE001 - validation verdict
                    self.stats.counter("resilience.corrupt_results").inc()
                    exc = CorruptResult(
                        f"result of {fl.name!r} failed validation on tier "
                        f"{tier.name!r}: {e}"
                    )
                if fl.trace is not None:
                    try:
                        fl.trace.tracer.record(
                            "resilience.validate", tv0, time.perf_counter(),
                            parent=fl.trace.span, ok=exc is None, tier=tier.name,
                        )
                    except Exception:  # pragma: no cover - best-effort tracing
                        pass
            if exc is None:
                self.breakers[tier.name].record_success(duration)
                fl.future.set_result(value)
                return
        self._on_failure(fl, tier, exc)

    def _on_failure(self, fl: _Flight, tier: _Tier, exc: BaseException) -> None:
        if isinstance(exc, CLIENT_ERRORS):
            # deterministic caller mistake: no breaker charge, no retry,
            # delivered verbatim (ValueError et al. stay recognizable)
            fl.future.set_exception(exc)
            return
        self.breakers[tier.name].record_failure()
        if isinstance(exc, CancelledError):
            self._finish(fl, exc)
            return
        own_expired = fl.deadline is not None and fl.deadline.expired
        if isinstance(exc, (DeadlineExceeded, WorkerTimeout)) and own_expired:
            self._finish(
                fl,
                exc if isinstance(exc, DeadlineExceeded)
                else DeadlineExceeded(str(exc)),
            )
            return
        retryable = (
            isinstance(exc, RETRYABLE_ERRORS)
            # deterministic: no tier can run a task that was never
            # registered, so retries would only burn the budget
            and not isinstance(exc, UnknownTask)
            or _is_backpressure(exc)
            or _is_transport_corruption(exc)
        )
        if retryable and fl.attempt < self.retry.max_attempts:
            with self._lock:
                delay = self.retry.backoff_s(fl.attempt, self._rng)
            remaining = fl.deadline.remaining() if fl.deadline is not None else None
            if remaining is None or delay < remaining:
                fl.attempt += 1
                self._schedule_retry(fl, tier, delay)
                return
        # same-tier budget exhausted (or pointless): degrade
        if self._degrade(fl, classify_error(exc)):
            self._launch(fl)
            return
        self._raw_or_fail(fl, exc)

    def _schedule_retry(self, fl: _Flight, tier: _Tier, delay: float) -> None:
        self.stats.counter("resilience.retries").inc()
        self.stats.counter(f"resilience.retries.{tier.name}").inc()
        t_wait0 = time.perf_counter()

        def fire(fl=fl, tier=tier, t_wait0=t_wait0):
            with self._lock:
                self._timers.discard(timer)
                closed = self._closed
            if fl.trace is not None:
                # a finished span per retry wait: lands as a
                # `resilience.retry_wait` stage row in `repro trace`
                try:
                    fl.trace.tracer.record(
                        "resilience.retry_wait", t_wait0, time.perf_counter(),
                        parent=fl.trace.span, attempt=fl.attempt, tier=tier.name,
                    )
                except Exception:  # pragma: no cover - tracing is best-effort
                    pass
            if closed:
                self._finish(fl, PoolClosed("resilient router is shut down"))
                return
            self._launch(fl)

        timer = threading.Timer(delay, fire)
        timer.daemon = True
        with self._lock:
            if self._closed:
                self._finish(fl, PoolClosed("resilient router is shut down"))
                return
            self._timers.add(timer)
        timer.start()

    def _raw_or_fail(self, fl: _Flight, exc: BaseException) -> None:
        if fl.raw_fallback is None:
            self._finish(fl, exc)
            return
        if fl.deadline is not None and fl.deadline.expired:
            self.stats.counter("resilience.deadline_sheds").inc()
            self._finish(
                fl, DeadlineExceeded(f"request {fl.name!r}: no budget left for raw tier")
            )
            return
        self.stats.counter("resilience.raw_fallbacks").inc()
        raw = fl.raw_fallback
        inner = self._inline.submit(raw, fl.deadline)

        def on_raw(f: PoolFuture, fl=fl) -> None:
            e = f.exception()
            if e is None:
                fl.future.set_result(f.result())
            else:
                self._finish(fl, e)

        inner.add_done_callback(on_raw)


def _is_backpressure(exc: BaseException) -> bool:
    # imported lazily to avoid a scheduler<->resilience import cycle.
    # PoolClosed is deliberately NOT here: retrying into a closed pool is
    # futile, so it degrades to the next tier instead.
    from .scheduler import QueueFull

    return isinstance(exc, QueueFull)


def _is_transport_corruption(exc: BaseException) -> bool:
    """Integrity/format errors are retryable at the router: an intact
    request payload that decoded as corrupt means the bytes were damaged
    in transit (or by a chaotic worker), and a retry runs clean.  A
    genuinely corrupt *user input* fails every attempt and is delivered
    after the bounded retry budget."""
    from repro.core.errors import StreamFormatError

    return isinstance(exc, StreamFormatError)
