"""Roofline analysis of kernel costs.

The roofline model places a kernel by its *arithmetic intensity* (ops per
DRAM byte) against the device's two ceilings -- peak compute and peak
bandwidth x intensity -- and tells you which bound you are under and how
close you sit to it.  For this reproduction it makes the paper's Section
IV-B argument quantitative: existing compressors run far below the memory
roof (low achieved bandwidth), cuSZp2's vectorized kernels climb to it, and
compression's extra encode arithmetic pushes it just past the ridge into
the compute-bound region (which is why its e2e throughput tops out near
335 GB/s rather than at copy speed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .device import DeviceSpec
from .kernelmodel import KernelCost


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel placed on the roofline."""

    name: str
    intensity: float  # ops per DRAM byte
    achieved_gops: float  # ops per second actually sustained / 1e9
    roof_gops: float  # min(compute roof, bandwidth * intensity) / 1e9
    bound: str  # 'memory' or 'compute'

    @property
    def efficiency(self) -> float:
        """Fraction of the applicable roof the kernel reaches."""
        return self.achieved_gops / self.roof_gops if self.roof_gops else 0.0


def ridge_intensity(device: DeviceSpec) -> float:
    """Ops/byte at which the two roofs meet."""
    return device.op_rate / device.dram_bw


def place(kernel: KernelCost, device: DeviceSpec) -> RooflinePoint:
    """Place a kernel cost on the device's roofline."""
    dram = kernel.dram_bytes()
    ops = kernel.compute_ops
    intensity = ops / dram if dram else float("inf")
    time_s = kernel.time(device)
    achieved = ops / time_s / 1e9 if time_s > 0 else 0.0
    roof = min(device.op_rate, device.dram_bw * intensity)
    bound = "compute" if intensity >= ridge_intensity(device) else "memory"
    return RooflinePoint(kernel.name, intensity, achieved, roof, bound)


def render(points: List[RooflinePoint], device: DeviceSpec, width: int = 40) -> str:
    """Text rendering of kernels against the device roofline."""
    lines = [
        f"== roofline on {device.name} "
        f"(compute roof {device.op_rate:.0f} Gop/s, "
        f"bandwidth roof {device.dram_bw:.0f} GB/s, "
        f"ridge at {ridge_intensity(device):.2f} ops/B) ==",
        f"{'kernel':<26} {'ops/B':>8} {'achieved':>10} {'roof':>10} {'eff':>6}  bound",
    ]
    for p in sorted(points, key=lambda p: p.intensity):
        bar = "#" * max(1, int(width * min(p.efficiency, 1.0)))
        lines.append(
            f"{p.name:<26} {p.intensity:>8.2f} {p.achieved_gops:>9.0f}G {p.roof_gops:>9.0f}G "
            f"{100 * p.efficiency:>5.1f}%  {p.bound:<8} {bar}"
        )
    return "\n".join(lines)
