"""Pipeline cost builders: functional codec results -> simulated timings.

This is where the two halves of the reproduction meet.  The functional
codecs (:mod:`repro.core`, :mod:`repro.baselines`) produce *measured*
artifacts -- real compressed sizes, zero-block fractions, block counts --
and the builders here convert them into :class:`PipelineCost` objects whose
evaluation on a :class:`DeviceSpec` yields simulated end-to-end throughput,
kernel throughput, and Nsight-style memory throughput.

Because traffic and payload-proportional work come from actual compression
results, dataset-dependent effects in the paper emerge rather than being
scripted: Outlier mode outrunning Plain mode on HACC (fewer bytes to emit,
Fig. 15), JetIn's zero blocks flushing at memset speed (Fig. 14), and
double precision doubling throughput (per-element ops over twice the bytes,
Fig. 19).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from . import calibration as cal
from .access import Pattern
from .device import DeviceSpec
from .kernelmodel import KernelCost, PipelineCost


@dataclass(frozen=True)
class Artifacts:
    """Measured facts about one (dataset, compressor, bound) run that the
    performance model consumes."""

    nelems: int
    elem_size: int  # 4 or 8
    compressed_bytes: int
    #: cuSZp2-format streams: payload and offset-section sizes; zero-block
    #: fraction drives the memset fast path.  Baselines leave these None/0.
    payload_bytes: Optional[int] = None
    offsets_bytes: Optional[int] = None
    zero_block_fraction: float = 0.0
    mode: str = "plain"

    @property
    def input_bytes(self) -> int:
        return self.nelems * self.elem_size

    @property
    def ratio(self) -> float:
        return self.input_bytes / self.compressed_bytes

    @property
    def n_thread_blocks(self) -> int:
        return -(-self.nelems // cal.ELEMS_PER_TB)

    @classmethod
    def from_cuszp2_stream(cls, data: np.ndarray, buf: np.ndarray) -> "Artifacts":
        """Derive artifacts from a real compressed stream."""
        from ..core import fle, stream

        header, offsets, payload = stream.split(buf)
        sizes = fle.block_payload_sizes(offsets, header.block)
        return cls(
            nelems=header.nelems,
            elem_size=header.dtype.itemsize,
            compressed_bytes=int(buf.size),
            payload_bytes=int(payload.size),
            offsets_bytes=int(offsets.size),
            zero_block_fraction=float(np.mean(sizes == 0)),
            mode="outlier" if header.mode else "plain",
        )


# ---------------------------------------------------------------------------
# Synchronization latencies (shared by the cuSZp2/cuSZp builders)
# ---------------------------------------------------------------------------

from functools import lru_cache

#: Discrete-event scans above this many thread blocks are simulated at the
#: cap and scaled linearly.  Both timelines are asymptotically linear in
#: block count -- the chained scan is a chain of identical links, and the
#: lookback pipeline advances wave by wave -- so only O(1) warm-up effects
#: are lost; validated against full runs in tests/gpusim/test_pipelines.py.
TIMELINE_CAP = 16384


def _run_timeline(work_per_tb_s: float, n_tb: int, device: DeviceSpec, kind: str):
    from ..scan.chained import chained_timeline
    from ..scan.lookback import lookback_timeline

    sim_n = min(n_tb, TIMELINE_CAP)
    work = np.full(sim_n, work_per_tb_s)
    fn = lookback_timeline if kind == "lookback" else chained_timeline
    tl = fn(work, cal.T_FLAG_S, device.resident_blocks)
    if sim_n == n_tb:
        return tl
    factor = n_tb / sim_n
    return type(tl)(
        local_finish_s=tl.local_finish_s * factor,
        scan_finish_s=tl.scan_finish_s * factor,
        nblocks=n_tb,
        **(
            {"mean_lookback_depth": tl.mean_lookback_depth}
            if hasattr(tl, "mean_lookback_depth")
            else {}
        ),
    )


@lru_cache(maxsize=1024)
def inkernel_sync_s(n_thread_blocks: int, device: DeviceSpec, kind: str) -> float:
    """Latency of the in-kernel Global Prefix-sum stage (step 3)."""
    if kind not in ("lookback", "chained"):
        raise ValueError(f"unknown sync kind {kind!r}")
    return _run_timeline(cal.T_SYNC_LOCAL_S, n_thread_blocks, device, kind).scan_finish_s


@lru_cache(maxsize=256)
def standalone_scan_timeline(nelems: int, elem_size: int, device: DeviceSpec, kind: str):
    """The Fig.-17 experiment: a device-wide scan stage where every thread
    block streams its tile (local reduce over real data) before the global
    step.  Per-block work is the tile's share of DRAM at the scan stage's
    sustainable utilization."""
    n_tb = -(-nelems // cal.ELEMS_PER_TB)
    tb_bytes = cal.ELEMS_PER_TB * elem_size
    per_tb_bw = device.dram_bw * cal.SCAN_LOCAL_UTIL / device.resident_blocks  # GB/s
    return _run_timeline(tb_bytes / (per_tb_bw * 1e9), n_tb, device, kind)


# ---------------------------------------------------------------------------
# cuSZp2 (ours)
# ---------------------------------------------------------------------------

def cuszp2_compression(
    art: Artifacts,
    device: DeviceSpec,
    vectorized: bool = True,
    sync: str = "lookback",
) -> PipelineCost:
    """CUSZP2-P/-O single-kernel compression."""
    n = art.input_bytes
    k = KernelCost("cuszp2-compress")
    # Two passes over the input: sizing pass + emission pass (Section V-B).
    k.read(n, Pattern.VECTORIZED, "input pass 1")
    k.read(n, Pattern.VECTORIZED, "input pass 2")
    k.write(art.payload_bytes, Pattern.BLOCK_SCATTER, "compressed payload")
    k.write(art.offsets_bytes, Pattern.COALESCED, "offset bytes")
    k.write(8 * art.n_thread_blocks, Pattern.COALESCED, "scan descriptors")
    ops = cal.QUANT_OPS_PER_ELEM * art.nelems
    ops += cal.PACK_OPS_PER_PAYLOAD_BYTE * art.payload_bytes
    if art.mode == "outlier":
        ops += cal.SELECT_OPS_PER_ELEM * art.nelems
    k.compute(ops)
    k.sync(inkernel_sync_s(art.n_thread_blocks, device, sync))
    if not vectorized:
        from .kernelmodel import ablate_vectorization

        k = ablate_vectorization(k)
    return PipelineCost("cuszp2-compress", [k])


def cuszp2_decompression(
    art: Artifacts,
    device: DeviceSpec,
    vectorized: bool = True,
    sync: str = "lookback",
) -> PipelineCost:
    """Single-kernel decompression; zero blocks are flushed with a
    cudaMemset-speed fill and skip dequantization entirely (Section V-B's
    explanation of JetIn's 1 TB/s decompression)."""
    n = art.input_bytes
    z = art.zero_block_fraction
    k = KernelCost("cuszp2-decompress")
    k.read(art.payload_bytes, Pattern.VECTORIZED, "compressed payload")
    k.read(art.offsets_bytes, Pattern.COALESCED, "offset bytes")
    k.write(n * (1.0 - z), Pattern.VECTORIZED, "reconstructed data")
    if z > 0:
        k.write(n * z, Pattern.MEMSET, "zero-block flush")
    ops = cal.DEQUANT_OPS_PER_ELEM * art.nelems * (1.0 - z)
    ops += cal.UNPACK_OPS_PER_PAYLOAD_BYTE * art.payload_bytes
    k.compute(ops)
    k.sync(inkernel_sync_s(art.n_thread_blocks, device, sync))
    if not vectorized:
        from .kernelmodel import ablate_vectorization

        k = ablate_vectorization(k)
    return PipelineCost("cuszp2-decompress", [k])


def cuszp2_random_access(art: Artifacts, device: DeviceSpec, blocks_accessed: int = 1) -> PipelineCost:
    """Random access (Section VI-B): read all offset bytes, run the global
    prefix sum, decode only the requested block(s)."""
    k = KernelCost("cuszp2-random-access")
    k.read(art.offsets_bytes, Pattern.COALESCED, "offset bytes")
    mean_block_payload = art.payload_bytes / max(art.offsets_bytes, 1)
    k.read(mean_block_payload * blocks_accessed, Pattern.COALESCED, "target blocks")
    k.write(32 * art.elem_size * blocks_accessed, Pattern.COALESCED, "decoded block")
    # Offset decode is byte-serial per thread; zero blocks short-circuit.
    ops = cal.RA_OPS_PER_OFFSET_BYTE * art.offsets_bytes * (1.0 - art.zero_block_fraction)
    k.compute(ops + cal.UNPACK_OPS_PER_PAYLOAD_BYTE * mean_block_payload * blocks_accessed)
    n_tb = -(-(art.offsets_bytes or 1) // cal.ELEMS_PER_TB)
    k.sync(inkernel_sync_s(max(n_tb, 1), device, "lookback"))
    return PipelineCost("cuszp2-random-access", [k])


# ---------------------------------------------------------------------------
# cuSZp (the predecessor: same format, scalar access, chained scan)
# ---------------------------------------------------------------------------

def cuszp_compression(art: Artifacts, device: DeviceSpec) -> PipelineCost:
    k = KernelCost("cuszp-compress")
    # Paper Fig. 16: "strided and scalar-manner memory access patterns".
    k.read(art.input_bytes, Pattern.STRIDED, "input pass 1")
    k.read(art.input_bytes, Pattern.COALESCED, "input pass 2")
    k.write(art.payload_bytes, Pattern.BLOCK_SCATTER, "compressed payload")
    k.write(art.offsets_bytes, Pattern.COALESCED, "offset bytes")
    k.compute(
        cal.QUANT_OPS_PER_ELEM * art.nelems
        + cal.PACK_OPS_PER_PAYLOAD_BYTE * art.payload_bytes
    )
    k.sync(inkernel_sync_s(art.n_thread_blocks, device, "chained"))
    return PipelineCost("cuszp-compress", [k])


def cuszp_decompression(art: Artifacts, device: DeviceSpec) -> PipelineCost:
    z = art.zero_block_fraction
    k = KernelCost("cuszp-decompress")
    k.read(art.payload_bytes, Pattern.COALESCED, "compressed payload")
    k.read(art.offsets_bytes, Pattern.COALESCED, "offset bytes")
    k.write(art.input_bytes * (1 - z), Pattern.STRIDED, "reconstructed data")
    if z > 0:
        k.write(art.input_bytes * z, Pattern.MEMSET, "zero-block flush")
    k.compute(
        cal.DEQUANT_OPS_PER_ELEM * art.nelems * (1 - z)
        + cal.UNPACK_OPS_PER_PAYLOAD_BYTE * art.payload_bytes
    )
    k.sync(inkernel_sync_s(art.n_thread_blocks, device, "chained"))
    return PipelineCost("cuszp-decompress", [k])


# ---------------------------------------------------------------------------
# FZ-GPU (multi-kernel: quant+Lorenzo, bitshuffle, atomic compaction)
# ---------------------------------------------------------------------------

def fzgpu_compression(art: Artifacts, device: DeviceSpec) -> PipelineCost:
    n = art.input_bytes
    k1 = KernelCost("fzgpu-quant-lorenzo")
    k1.read(n, Pattern.COALESCED).write(n, Pattern.COALESCED)
    k1.compute(cal.FZGPU_OPS_PER_ELEM * art.nelems)
    k2 = KernelCost("fzgpu-bitshuffle")
    k2.read(n, Pattern.COALESCED).write(n, Pattern.COALESCED)
    k2.compute(cal.FZGPU_SHUFFLE_OPS_PER_ELEM * art.nelems)
    k3 = KernelCost("fzgpu-compaction")
    k3.read(n, Pattern.COALESCED, "shuffled planes")
    k3.write(art.compressed_bytes, Pattern.ATOMIC, "compacted output")
    k3.compute(8.0 * art.nelems)
    return PipelineCost("fzgpu-compress", [k1, k2, k3])


def fzgpu_decompression(art: Artifacts, device: DeviceSpec) -> PipelineCost:
    n = art.input_bytes
    k1 = KernelCost("fzgpu-expand")
    k1.read(art.compressed_bytes, Pattern.ATOMIC).write(n, Pattern.COALESCED)
    k1.compute(8.0 * art.nelems)
    k2 = KernelCost("fzgpu-unshuffle")
    k2.read(n, Pattern.COALESCED).write(n, Pattern.COALESCED)
    k2.compute(cal.FZGPU_SHUFFLE_OPS_PER_ELEM * art.nelems)
    k3 = KernelCost("fzgpu-dequant")
    k3.read(n, Pattern.COALESCED).write(n, Pattern.COALESCED)
    k3.compute(cal.FZGPU_OPS_PER_ELEM * art.nelems)
    return PipelineCost("fzgpu-decompress", [k1, k2, k3])


# ---------------------------------------------------------------------------
# cuZFP (fixed-rate transform coder; compute-bound)
# ---------------------------------------------------------------------------

def cuzfp_compression(art: Artifacts, device: DeviceSpec) -> PipelineCost:
    k = KernelCost("cuzfp-encode")
    k.read(art.input_bytes, Pattern.STRIDED, "4^d brick gather")
    k.write(art.compressed_bytes, Pattern.COALESCED, "fixed-rate stream")
    k.compute(cal.CUZFP_OPS_PER_ELEM * art.nelems)
    return PipelineCost("cuzfp-compress", [k])


def cuzfp_decompression(art: Artifacts, device: DeviceSpec) -> PipelineCost:
    k = KernelCost("cuzfp-decode")
    k.read(art.compressed_bytes, Pattern.COALESCED)
    k.write(art.input_bytes, Pattern.STRIDED, "4^d brick scatter")
    k.compute(cal.CUZFP_DECODE_OPS_PER_ELEM * art.nelems)
    return PipelineCost("cuzfp-decompress", [k])


# ---------------------------------------------------------------------------
# CPU-GPU hybrids (Fig. 2): cuSZ, cuSZx, MGARD-GPU
# ---------------------------------------------------------------------------

def hybrid_compression(art: Artifacts, device: DeviceSpec, family: str) -> PipelineCost:
    """Hybrid pipelines pay PCIe transfers and host-side stages on top of
    their kernels -- the kernel vs. end-to-end gap of Fig. 2."""
    if family not in cal.HYBRID_HOST_FRACTION:
        raise ValueError(f"unknown hybrid family {family!r}")
    n = art.input_bytes
    k = KernelCost(f"{family}-kernels")
    k.read(n, Pattern.COALESCED).write(n, Pattern.COALESCED)
    k.compute(cal.HYBRID_KERNEL_OPS_PER_ELEM[family] * art.nelems)
    pipe = PipelineCost(f"{family}-compress", [k])
    pipe.pcie_bytes = n + art.compressed_bytes  # codes down, stream back up
    pipe.host_bytes = cal.HYBRID_HOST_FRACTION[family] * n
    pipe.host_fixed_s = cal.HYBRID_HOST_FIXED_S[family]
    return pipe


def hybrid_decompression(art: Artifacts, device: DeviceSpec, family: str) -> PipelineCost:
    n = art.input_bytes
    k = KernelCost(f"{family}-kernels")
    k.read(n, Pattern.COALESCED).write(n, Pattern.COALESCED)
    k.compute(cal.HYBRID_KERNEL_OPS_PER_ELEM[family] * art.nelems * 0.8)
    pipe = PipelineCost(f"{family}-decompress", [k])
    pipe.pcie_bytes = art.compressed_bytes + n
    pipe.host_bytes = cal.HYBRID_HOST_FRACTION[family] * n * 0.7  # decode side
    pipe.host_fixed_s = cal.HYBRID_HOST_FIXED_S[family] * 0.5
    return pipe


#: Map compressor family -> PROFILE multiplier for the Nsight-style view.
def profile_multiplier(family: str) -> float:
    return cal.PROFILE_DRAM_MULT[family]
