"""Nsight-Compute-style profiling view of a pipeline (Figures 9 and 16).

`profile()` evaluates a :class:`PipelineCost` on a device and reports the
numbers the paper reads off Nsight: achieved memory throughput of the
compression kernels, the utilization fraction against the DRAM peak, and a
per-kernel breakdown with each kernel's bound resource.

The reported memory throughput applies the per-family
``PROFILE_DRAM_MULT`` calibration (see :mod:`repro.gpusim.calibration`):
Nsight counts full memory-hierarchy traffic (sector replays, L2 staging),
which is larger than useful DRAM bytes for staged single-kernel designs and
collapses for atomic-serialized ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .calibration import PROFILE_DRAM_MULT
from .device import DeviceSpec
from .kernelmodel import KernelTiming, PipelineCost


@dataclass(frozen=True)
class KernelProfile:
    name: str
    time_s: float
    memory_throughput_gbs: float
    bound: str


@dataclass(frozen=True)
class PipelineProfile:
    """What 'profiling the compression kernels with Nsight Compute' yields."""

    name: str
    device: str
    kernels: List[KernelProfile]
    memory_throughput_gbs: float
    dram_peak_gbs: float

    @property
    def bandwidth_utilization(self) -> float:
        return self.memory_throughput_gbs / self.dram_peak_gbs

    def render(self) -> str:
        lines = [
            f"== {self.name} on {self.device} ==",
            f"memory throughput: {self.memory_throughput_gbs:8.2f} GB/s"
            f"  ({100 * self.bandwidth_utilization:5.1f}% of {self.dram_peak_gbs:.0f} GB/s peak)",
        ]
        for k in self.kernels:
            lines.append(
                f"  {k.name:<28} {1e3 * k.time_s:8.3f} ms  "
                f"{k.memory_throughput_gbs:8.2f} GB/s  [{k.bound}-bound]"
            )
        return "\n".join(lines)


def profile(pipe: PipelineCost, device: DeviceSpec, family: str) -> PipelineProfile:
    """Profile ``pipe`` as Nsight would, for a compressor of ``family``
    (one of the PROFILE_DRAM_MULT keys)."""
    mult = PROFILE_DRAM_MULT[family]
    # Nsight never reports DRAM throughput above the sustainable ceiling.
    cap = 0.93 * device.dram_bw
    kernel_profiles = []
    total_bytes = 0.0
    total_time = 0.0
    for k in pipe.kernels:
        t: KernelTiming = k.timing(device)
        kernel_profiles.append(
            KernelProfile(
                name=t.name,
                time_s=t.total_s,
                memory_throughput_gbs=min(cap, t.memory_throughput_gbs * mult),
                bound=t.bound,
            )
        )
        total_bytes += t.dram_bytes
        total_time += t.total_s
    return PipelineProfile(
        name=pipe.name,
        device=device.name,
        kernels=kernel_profiles,
        memory_throughput_gbs=min(cap, total_bytes * mult / total_time / 1e9),
        dram_peak_gbs=device.dram_bw,
    )
