"""Global-memory access patterns and their DRAM cost model.

The paper's Section IV-B attributes the throughput gap between cuSZp2 and
earlier pure-GPU compressors to memory access behaviour:

* **vectorized + coalesced** (cuSZp2): ``LD.E.128`` transactions, adjacent
  warps touching adjacent blocks -> near-peak DRAM utilization
  (1330 GB/s of 1555 measured for the optimized stage);
* **scalar coalesced** (typical well-written kernels): 4x the instruction
  count, lower L1 sector utilization;
* **strided / scalar-per-thread-block** (cuSZp: "strided and scalar-manner
  memory access patterns", 410 GB/s);
* **atomic-heavy** (FZ-GPU's global synchronization: 134 GB/s).

Each pattern carries two coefficients:

``amplification``
    Raw DRAM bytes moved per useful byte (partial 32-byte sectors count in
    full -- e.g. a 4-byte load with a 128-byte stride still moves a 32-byte
    sector, amplification 8).
``utilization``
    Fraction of peak DRAM bandwidth the pattern can sustain (latency-bound
    and serialization effects: atomics serialize, strided patterns defeat
    prefetching).

Effective useful bandwidth is ``peak * utilization / amplification``.
The coefficients are calibration constants; their provenance is documented
in :mod:`repro.gpusim.calibration`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .device import DeviceSpec


class Pattern(enum.Enum):
    """How a kernel touches a region of global memory."""

    #: 128-bit vector loads/stores, warp-adjacent blocks (cuSZp2, Fig. 10/11).
    VECTORIZED = "vectorized"
    #: 32-bit scalar accesses, still warp-coalesced.
    COALESCED = "coalesced"
    #: Each thread walks a private contiguous chunk -> inter-thread stride.
    STRIDED = "strided"
    #: Serialized atomic read-modify-write traffic.
    ATOMIC = "atomic"
    #: Byte-granular scatter of variable-length compressed blocks (partial
    #: sectors at block boundaries).
    BLOCK_SCATTER = "block_scatter"
    #: cudaMemset-style bulk fill (zero-block flush fast path).
    MEMSET = "memset"


@dataclass(frozen=True)
class PatternCost:
    amplification: float
    utilization: float


#: Calibrated pattern coefficients (see calibration.py for how these were
#: fitted against the paper's Figures 9 and 16).
PATTERN_COSTS = {
    Pattern.VECTORIZED: PatternCost(amplification=1.00, utilization=0.86),
    Pattern.COALESCED: PatternCost(amplification=1.00, utilization=0.62),
    Pattern.STRIDED: PatternCost(amplification=2.00, utilization=0.55),
    Pattern.ATOMIC: PatternCost(amplification=4.00, utilization=0.25),
    Pattern.BLOCK_SCATTER: PatternCost(amplification=1.35, utilization=0.80),
    Pattern.MEMSET: PatternCost(amplification=1.00, utilization=0.90),
}


@dataclass(frozen=True)
class Access:
    """One logical memory stream of a kernel: ``nbytes`` useful bytes moved
    with a given pattern (direction does not change the cost model)."""

    nbytes: float
    pattern: Pattern
    label: str = ""

    @property
    def dram_bytes(self) -> float:
        return self.nbytes * PATTERN_COSTS[self.pattern].amplification

    def time_on(self, device: DeviceSpec) -> float:
        """Seconds this stream alone would need on ``device``."""
        cost = PATTERN_COSTS[self.pattern]
        bw = device.dram_bw * cost.utilization
        if self.pattern is Pattern.MEMSET:
            bw = device.memset_bw * cost.utilization
        return self.dram_bytes / (bw * 1e9)


def effective_bandwidth(pattern: Pattern, device: DeviceSpec) -> float:
    """Useful GB/s this pattern sustains on ``device``."""
    cost = PATTERN_COSTS[pattern]
    peak = device.memset_bw if pattern is Pattern.MEMSET else device.dram_bw
    return peak * cost.utilization / cost.amplification
