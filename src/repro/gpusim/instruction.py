"""SASS-level memory-instruction accounting (paper Fig. 10).

Figure 10 shows that vectorizing a copy loop with ``float4`` turns
``ele_num`` pairs of ``LD.E`` / ``ST.E`` (32-bit) instructions into
``ele_num / 4`` pairs of ``LD.E.128`` / ``ST.E.128``.  This module models
exactly that compilation: given a kernel's element count, element width and
vector width, it produces the instruction mix a SASS dump would show, plus
the derived control-flow (loop iteration) count -- the quantity the paper
says vectorization also reduces ("this loop vectorization design also
reduces control-flow penalties").

It is intentionally tiny and exact so the Fig. 10 benchmark can assert the
4x reduction as an equality rather than a model output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


#: SASS load/store opcodes by access width in bits.
LOAD_OPCODES = {32: "LD.E", 64: "LD.E.64", 128: "LD.E.128"}
STORE_OPCODES = {32: "ST.E", 64: "ST.E.64", 128: "ST.E.128"}


@dataclass
class InstructionMix:
    """Instruction counts of one compiled loop nest."""

    counts: Dict[str, int] = field(default_factory=dict)

    def add(self, opcode: str, n: int) -> None:
        self.counts[opcode] = self.counts.get(opcode, 0) + int(n)

    @property
    def memory_instructions(self) -> int:
        ld_st = tuple(LOAD_OPCODES.values()) + tuple(STORE_OPCODES.values())
        return sum(v for k, v in self.counts.items() if k in ld_st)

    @property
    def control_instructions(self) -> int:
        return self.counts.get("BRA", 0) + self.counts.get("ISETP", 0)

    def __getitem__(self, opcode: str) -> int:
        return self.counts.get(opcode, 0)


def compile_copy_loop(
    ele_num: int,
    elem_bits: int = 32,
    vector_width: int = 1,
    loads_per_iter: int = 1,
    stores_per_iter: int = 1,
) -> InstructionMix:
    """'Compile' the Fig. 10 demo loop.

    ``vector_width`` elements are grouped per memory operation (1 = the
    scalar original, 4 = the ``float4`` version).  Each loop iteration
    contributes one compare (``ISETP``) and one branch (``BRA``).
    """
    if vector_width not in (1, 2, 4):
        raise ValueError(f"vector_width must be 1, 2 or 4, got {vector_width}")
    if ele_num % vector_width:
        raise ValueError(
            f"element count {ele_num} not divisible by vector width {vector_width}"
        )
    access_bits = elem_bits * vector_width
    if access_bits not in LOAD_OPCODES:
        raise ValueError(f"unsupported access width {access_bits} bits")
    iters = ele_num // vector_width
    mix = InstructionMix()
    mix.add(LOAD_OPCODES[access_bits], iters * loads_per_iter)
    mix.add(STORE_OPCODES[access_bits], iters * stores_per_iter)
    mix.add("ISETP", iters)
    mix.add("BRA", iters)
    return mix


def vectorization_reduction(ele_num: int, elem_bits: int = 32) -> float:
    """Memory-instruction reduction factor of ``float4`` vectorization for a
    copy loop (the paper's headline 4x)."""
    scalar = compile_copy_loop(ele_num, elem_bits, vector_width=1)
    vector = compile_copy_loop(ele_num, elem_bits, vector_width=4)
    return scalar.memory_instructions / vector.memory_instructions
