"""Calibration constants of the performance model, with provenance.

Every constant here was fitted once against a number the paper reports for
the NVIDIA A100-40GB, then frozen; devices other than the A100 reuse the
same constants and differ only through their :class:`DeviceSpec` (that is
the claim of Section VI-C -- the design, not per-device tuning, carries the
speedup to the RTX 3090/3080).

Fitting targets (all paper, Section V unless noted):

=====================  ============================================  =======
constant               target                                        value
=====================  ============================================  =======
QUANT_OPS etc.         CUSZP2-P f32 compression ~335 GB/s e2e,
                       decompression ~538 GB/s (Fig. 14 averages);
                       f64 ~613/780 GB/s (Fig. 19) falls out of the
                       same constants because op counts are
                       per-element while traffic is per-byte
ELEMS_PER_TB           cuSZp-style launch geometry: 128 threads x
                       one 32-element data block per thread per tile
T_FLAG_S               chained-scan sync ~351 GB/s on 1 GB-class
                       fields (Fig. 17 baseline): the serial chain
                       costs nblocks x T_FLAG_S ~= 2.9 ms / GB
SCAN_LOCAL_UTIL        decoupled-lookback standalone scan stage
                       ~847 GB/s (Fig. 17, 2.41x chained)
PROFILE_DRAM_MULT      Nsight memory-throughput readings of Fig. 9 /
                       Fig. 16 (1175 GB/s cuSZp2, ~410 cuSZp, ~134
                       FZ-GPU, ~300 cuZFP): ratio of reported
                       hierarchy traffic to useful DRAM traffic
                       (L1/L2 sector replay, shared staging)
=====================  ============================================  =======

The `Pattern` coefficients live in :mod:`repro.gpusim.access`; they encode
the Section IV-B narrative (vectorized+coalesced near peak, scalar lower,
strided/atomic far below).
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Launch geometry
# ---------------------------------------------------------------------------

#: Elements of original data each thread block owns: 128 threads x one
#: 32-element data block each (cuSZp2 processes one data block per thread
#: per iteration, Fig. 11).
ELEMS_PER_TB = 4096

# ---------------------------------------------------------------------------
# Compute coefficients (operations)
# ---------------------------------------------------------------------------

#: Lossy conversion + first-order difference + selection bookkeeping, per
#: element (two passes over registers: one to size the encoding, one to
#: emit -- "compression requires an extra loop to obtain the lossless
#: encoding information", Section V-B).
QUANT_OPS_PER_ELEM = 60.0

#: Bit-plane emission work, per *payload byte* produced.  Making encode
#: cost proportional to compressed output is what reproduces Fig. 15:
#: CUSZP2-O beats CUSZP2-P on HACC because its higher ratio means fewer
#: bytes to produce and store.
PACK_OPS_PER_PAYLOAD_BYTE = 96.0

#: Extra per-element cost of the Outlier mode's selection pass.
SELECT_OPS_PER_ELEM = 6.0

#: Dequantization + prefix reconstruction per element (decompression reads
#: the fixed lengths from the offset bytes instead of recomputing them).
DEQUANT_OPS_PER_ELEM = 40.0

#: Bit-plane extraction per payload byte consumed.
UNPACK_OPS_PER_PAYLOAD_BYTE = 58.0

# ---------------------------------------------------------------------------
# Synchronization timing
# ---------------------------------------------------------------------------

#: One descriptor/flag round trip through L2 (45 ns at ~1.4 GHz is ~65
#: cycles -- an L2 hit).  Used as both the chained-scan link cost and the
#: lookback poll cost; the win comes from protocol structure, not cheaper
#: messages.
T_FLAG_S = 45e-9

#: Per-thread-block local work during the *in-kernel* sync stage (summing
#: 128 compressed lengths already in registers/shared memory).
T_SYNC_LOCAL_S = 0.2e-6

#: Fraction of DRAM bandwidth the *standalone* Fig.-17 scan stage sustains
#: while each thread block streams its tile and reduces lengths.
SCAN_LOCAL_UTIL = 0.58

# ---------------------------------------------------------------------------
# Profiler reporting
# ---------------------------------------------------------------------------

#: Nsight 'memory throughput' divided by useful-DRAM throughput, per
#: compressor family.  Vectorized single-kernel designs stage data through
#: L1/L2 once (multiplier > 1 from sector accounting); atomic-heavy designs
#: stall DRAM while serializing (reported utilization collapses).
PROFILE_DRAM_MULT = {
    "cuszp2": 1.60,
    "cuszp": 0.80,
    "fzgpu": 0.17,
    "cuzfp": 1.15,
    "hybrid": 1.00,
}

# ---------------------------------------------------------------------------
# Baseline compressors
# ---------------------------------------------------------------------------

#: cuZFP's orthogonal transform + embedded coding per element (fixed-rate;
#: compute-bound, Fig. 14's ~107 GB/s).
CUZFP_OPS_PER_ELEM = 320.0
CUZFP_DECODE_OPS_PER_ELEM = 260.0

#: FZ-GPU stage costs (quantize+Lorenzo, bitshuffle, compaction).
FZGPU_OPS_PER_ELEM = 30.0
FZGPU_SHUFFLE_OPS_PER_ELEM = 24.0

#: Hybrid pipelines (Fig. 2): host Huffman processing rate is the
#: DeviceSpec.host_rate; these set how much data crosses PCIe / the host.
HYBRID_HOST_FRACTION = {
    # fraction of original bytes the CPU stage must touch
    "cusz": 1.00,  # full quant-code array is Huffman-coded on host paths
    "cuszx": 0.55,  # CPU performs global sync + packing over block bytes
    "mgard": 3.00,  # multigrid levels re-touch the data
}
HYBRID_KERNEL_OPS_PER_ELEM = {
    "cusz": 250.0,  # Lorenzo + histogram + GPU-Huffman kernels (~160 GB/s kernel)
    "cuszx": 200.0,
    "mgard": 900.0,  # multigrid refactoring is far heavier
}
#: Extra fixed host-side coordination (allocations, tree construction).
HYBRID_HOST_FIXED_S = {
    "cusz": 0.15,
    "cuszx": 0.02,
    "mgard": 0.40,
}

# ---------------------------------------------------------------------------
# Random access (Fig. 20)
# ---------------------------------------------------------------------------

#: Decoding the offset bytes during the random-access pre-pass is
#: byte-granular: each 32-byte sector yields 32 offset bytes but the
#: per-byte decode work serializes within the thread.
RA_OPS_PER_OFFSET_BYTE = 400.0

# ---------------------------------------------------------------------------
# Ablation (Section VI-E)
# ---------------------------------------------------------------------------

#: Instruction-issue inflation when vectorization is disabled: 4x the
#: memory instructions and 4x the loop-control instructions (Fig. 10)
#: competing with arithmetic on the same issue pipelines.  Calibrated so
#: the Sec. VI-E gain attribution lands near the paper's 56.23% (memory
#: optimization) / 41.29% (latency hiding) split.
VECTORIZATION_ISSUE_FACTOR = 2.4

#: Per-data-block bookkeeping operations (offset-byte handling, scatter
#: setup, selection epilogue) -- warp-divergent work of a few hundred
#: cycles per block.  At the default L=32 this term is absorbed into
#: QUANT_OPS_PER_ELEM; the block-size ablation applies it explicitly to
#: show why smaller blocks lose throughput (Section V-A's trade-off).
BLOCK_OVERHEAD_OPS = 500.0
