"""The cuSZp2 single-kernel pipeline, executed on the virtual GPU.

The paper's central engineering claim is that *all four stages* -- Lossy
Conversion, Lossless Encoding, Global Prefix-sum, Block Concatenation --
run inside one GPU kernel, with the decoupled-lookback scan providing the
device-level synchronization that lets every thread block scatter its
compressed bytes to the right slot without a second launch (Sections III
and IV-C).

This module reproduces that structure literally: each virtual-GPU thread
block quantizes and encodes its share of data blocks (stages 1-2), takes
part in the decoupled-lookback scan over compressed lengths (stage 3), and
scatters its payload into the unified output array (stage 4).  Under any
random schedule the resulting stream is **byte-identical** to the
vectorized reference implementation in :mod:`repro.core` -- the
property the integration tests assert.

The same is done for decompression (offset-byte scan -> per-block decode).
These kernels are correctness artifacts, not fast paths: they exist to
validate the concurrent design the performance model assumes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core import fle, predictor, stream
from ..core.compressor import MODES
from ..core.quantize import ErrorBound, dequantize, quantize, validate_input
from ..scan.lookback import FLAG_AGGREGATE, FLAG_INVALID, FLAG_PREFIX
from .vm import GlobalMemory, VirtualGPU

#: Worst-case payload bytes per data block (signs + 31 planes + offset
#: byte's outlier bytes); used to size the scatter buffer.
def _max_block_payload(block: int) -> int:
    return block // 8 + 4 + 31 * (block // 8)


def _lookback_exclusive(tb, mem: GlobalMemory, aggregate: int):
    """Shared decoupled-lookback participation: publish ``aggregate`` for
    block ``tb``, walk predecessors, return the exclusive prefix.

    Generator: ``yield`` marks fences / re-polls, exactly like
    :func:`repro.scan.lookback.lookback_scan_kernel`."""
    mem["aggregate"][tb] = aggregate
    yield  # __threadfence() before flipping the flag
    if tb == 0:
        mem["inclusive"][0] = aggregate
        yield
        mem["flag"][0] = FLAG_PREFIX
        return 0
    mem["flag"][tb] = FLAG_AGGREGATE

    running = 0
    j = tb - 1
    while True:
        flag = int(mem["flag"][j])
        if flag == FLAG_PREFIX:
            running += int(mem["inclusive"][j])
            break
        if flag == FLAG_AGGREGATE:
            running += int(mem["aggregate"][j])
            j -= 1
            continue
        yield  # predecessor still Waiting (Fig. 13)

    mem["inclusive"][tb] = running + aggregate
    yield  # __threadfence()
    mem["flag"][tb] = FLAG_PREFIX
    return running


def _compression_kernel(tb: int, mem: GlobalMemory, ctx: dict):
    """One thread block of the single-kernel compressor."""
    block = ctx["block"]
    per_tb = ctx["blocks_per_tb"]
    lo = tb * per_tb
    hi = min(lo + per_tb, ctx["nblocks"])

    # Stage 1+2: lossy conversion + lossless encoding of our data blocks.
    qblocks = ctx["qblocks"][lo:hi]
    deltas = predictor.diff_1d(qblocks)
    yield  # the encode loop body (registers/shared memory only)
    offsets, payload = fle.encode_blocks(deltas, ctx["use_outlier"])

    # Offset bytes have fixed locations: write immediately (Fig. 5).
    mem["offsets"][lo:hi] = offsets
    yield

    # Stage 3: decoupled lookback over compressed payload lengths.
    start = yield from _lookback_exclusive(tb, mem, int(payload.size))

    # Stage 4: scatter the payload into the unified array.
    mem["payload"][start : start + payload.size] = payload
    mem["lengths"][tb] = payload.size
    yield


def compress_on_vm(
    data: np.ndarray,
    error_bound,
    mode: str = "outlier",
    block: int = 32,
    blocks_per_tb: int = 4,
    resident: int = 8,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Compress ``data`` by launching the single-kernel pipeline on the
    virtual GPU; returns a stream byte-identical to
    :func:`repro.core.compress`."""
    if isinstance(error_bound, (int, float)):
        error_bound = ErrorBound.relative(float(error_bound))
    flat = validate_input(np.asarray(data))
    eb_abs = error_bound.resolve(flat)
    q = quantize(flat, eb_abs)
    qblocks = predictor.blockize_1d(q, block)
    nblocks = qblocks.shape[0]
    n_tb = -(-nblocks // blocks_per_tb)

    mem = GlobalMemory()
    mem.alloc("offsets", nblocks, np.uint8)
    mem.alloc("payload", nblocks * _max_block_payload(block), np.uint8)
    mem.alloc("lengths", n_tb, np.int64)
    mem.alloc("aggregate", n_tb, np.int64)
    mem.alloc("inclusive", n_tb, np.int64)
    mem.alloc("flag", n_tb, np.int64, fill=FLAG_INVALID)

    ctx = {
        "block": block,
        "blocks_per_tb": blocks_per_tb,
        "nblocks": nblocks,
        "qblocks": qblocks,
        "use_outlier": mode == "outlier",
    }
    VirtualGPU(resident=resident, seed=seed).launch(
        _compression_kernel, grid=n_tb, mem=mem, args=(ctx,)
    )

    total = int(mem["inclusive"][n_tb - 1])
    header = stream.StreamHeader(
        mode=MODES[mode],
        dtype=np.dtype(data.dtype),
        predictor_ndim=1,
        block=block,
        nelems=flat.size,
        eb_abs=eb_abs,
        dims=tuple(np.asarray(data).shape) if np.asarray(data).ndim <= 3 else (flat.size,),
    )
    buf = stream.assemble(header, mem["offsets"], mem["payload"][:total])
    # Stamp the original-ndim tag like the reference compressor, then
    # recompute the v2 checksums the stamp invalidated.
    orig_ndim = np.asarray(data).ndim if np.asarray(data).ndim <= 3 else 0
    buf[10:12] = np.frombuffer(np.uint16(orig_ndim).tobytes(), dtype=np.uint8)
    return stream.reseal(buf)


def _decompression_kernel(tb: int, mem: GlobalMemory, ctx: dict):
    """One thread block of the single-kernel decompressor."""
    block = ctx["block"]
    per_tb = ctx["blocks_per_tb"]
    lo = tb * per_tb
    hi = min(lo + per_tb, ctx["nblocks"])

    # Read our offset bytes; derive local payload sizes (stage 3 input).
    offsets = np.asarray(mem["offsets"][lo:hi], dtype=np.uint8)
    sizes = fle.block_payload_sizes(offsets, block)
    yield

    start = yield from _lookback_exclusive(tb, mem, int(sizes.sum()))

    # Stages 4 -> 2 -> 1 in reverse: gather payload, decode, reconstruct.
    payload = np.asarray(mem["payload"][start : start + int(sizes.sum())], dtype=np.uint8)
    deltas = fle.decode_blocks(offsets, payload, block)
    q = predictor.undiff_1d(deltas).reshape(-1)
    yield
    out_lo = lo * block
    out_hi = min(hi * block, ctx["nelems"])
    mem["quant"][out_lo:out_hi] = q[: out_hi - out_lo]
    yield


def decompress_on_vm(
    buf,
    blocks_per_tb: int = 4,
    resident: int = 8,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Decompress a cuSZp2 stream with the single-kernel pipeline on the
    virtual GPU; matches :func:`repro.core.decompress` exactly."""
    if not isinstance(buf, np.ndarray):
        buf = np.frombuffer(bytes(buf), dtype=np.uint8)
    header, offsets, payload = stream.split(buf)
    if header.predictor_ndim != 1:
        raise ValueError("the VM kernel implements the 1-D (default) pipeline")
    nblocks = offsets.shape[0]
    n_tb = -(-nblocks // blocks_per_tb)

    mem = GlobalMemory()
    mem.bind("offsets", np.asarray(offsets, dtype=np.uint8))
    mem.bind("payload", np.asarray(payload, dtype=np.uint8))
    mem.alloc("quant", nblocks * header.block, np.int64)
    mem.alloc("aggregate", n_tb, np.int64)
    mem.alloc("inclusive", n_tb, np.int64)
    mem.alloc("flag", n_tb, np.int64, fill=FLAG_INVALID)

    ctx = {
        "block": header.block,
        "blocks_per_tb": blocks_per_tb,
        "nblocks": nblocks,
        "nelems": header.nelems,
    }
    VirtualGPU(resident=resident, seed=seed).launch(
        _decompression_kernel, grid=n_tb, mem=mem, args=(ctx,)
    )
    q = np.asarray(mem["quant"][: header.nelems])
    out = dequantize(q, header.eb_abs, header.dtype)
    orig_ndim = int(np.frombuffer(buf[10:12].tobytes(), dtype=np.uint16)[0])
    if orig_ndim == 0:
        return out
    return out.reshape(header.dims[:orig_ndim] if orig_ndim <= len(header.dims) else header.dims)
