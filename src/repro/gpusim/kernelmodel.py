"""Analytic kernel cost model: traffic + compute + synchronization -> time.

A GPU kernel in this model is a bag of memory streams (:class:`Access`),
a compute budget (operations across the grid), and an optional device-level
synchronization latency (produced by the :mod:`repro.scan` timing models).
Kernel time is::

    T = launch + max(T_mem, T_compute) + T_sync

``max`` reflects that a well-pipelined kernel overlaps arithmetic with
outstanding memory transactions (the GPU latency-hiding model of Volkov
cited by the paper [24]); the synchronization term is additive because the
device-level prefix sum is a dependency chain that by construction cannot
overlap with the work that produces its inputs.

The same object also yields the Nsight-style *memory throughput* number
(DRAM bytes / kernel time) used by Figures 9 and 16, so the e2e-throughput
and profiler views are two readings of one model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .access import Access
from .device import DeviceSpec


@dataclass
class KernelCost:
    """Cost description of one kernel launch."""

    name: str
    accesses: List[Access] = field(default_factory=list)
    #: Total arithmetic/logic operations executed across the grid.
    compute_ops: float = 0.0
    #: Device-level synchronization latency in seconds (from the scan
    #: timing models); 0 for kernels without cross-block dependencies.
    sync_s: float = 0.0

    def read(self, nbytes: float, pattern, label: str = "") -> "KernelCost":
        self.accesses.append(Access(nbytes, pattern, label or "read"))
        return self

    def write(self, nbytes: float, pattern, label: str = "") -> "KernelCost":
        self.accesses.append(Access(nbytes, pattern, label or "write"))
        return self

    def compute(self, ops: float) -> "KernelCost":
        self.compute_ops += ops
        return self

    def sync(self, seconds: float) -> "KernelCost":
        self.sync_s += seconds
        return self

    # -- evaluation ---------------------------------------------------------

    def useful_bytes(self) -> float:
        return sum(a.nbytes for a in self.accesses)

    def dram_bytes(self) -> float:
        return sum(a.dram_bytes for a in self.accesses)

    def memory_time(self, device: DeviceSpec) -> float:
        return sum(a.time_on(device) for a in self.accesses)

    def compute_time(self, device: DeviceSpec) -> float:
        return self.compute_ops / (device.op_rate * 1e9)

    def time(self, device: DeviceSpec) -> float:
        body = max(self.memory_time(device), self.compute_time(device))
        return device.kernel_launch_s + body + self.sync_s

    def timing(self, device: DeviceSpec) -> "KernelTiming":
        return KernelTiming(
            name=self.name,
            launch_s=device.kernel_launch_s,
            memory_s=self.memory_time(device),
            compute_s=self.compute_time(device),
            sync_s=self.sync_s,
            dram_bytes=self.dram_bytes(),
            useful_bytes=self.useful_bytes(),
        )


@dataclass(frozen=True)
class KernelTiming:
    """Evaluated timing breakdown of one kernel on one device."""

    name: str
    launch_s: float
    memory_s: float
    compute_s: float
    sync_s: float
    dram_bytes: float
    useful_bytes: float

    @property
    def total_s(self) -> float:
        return self.launch_s + max(self.memory_s, self.compute_s) + self.sync_s

    @property
    def memory_throughput_gbs(self) -> float:
        """Nsight-style achieved DRAM throughput of this kernel."""
        return self.dram_bytes / self.total_s / 1e9

    @property
    def bound(self) -> str:
        """Which resource dominates the kernel body."""
        if self.sync_s > max(self.memory_s, self.compute_s):
            return "sync"
        return "memory" if self.memory_s >= self.compute_s else "compute"


@dataclass
class PipelineCost:
    """A sequence of kernels plus host-side stages and PCIe transfers --
    enough to express both pure-GPU compressors (one kernel, no transfers)
    and CPU-GPU hybrids (Fig. 1/2)."""

    name: str
    kernels: List[KernelCost] = field(default_factory=list)
    #: Bytes crossing PCIe (sum over both directions).
    pcie_bytes: float = 0.0
    #: Bytes processed by host-side sequential stages (e.g. Huffman build).
    host_bytes: float = 0.0
    #: Fixed host-side overhead (allocations, kernel coordination), seconds.
    host_fixed_s: float = 0.0

    def add(self, kernel: KernelCost) -> "PipelineCost":
        self.kernels.append(kernel)
        return self

    def kernel_time(self, device: DeviceSpec) -> float:
        """GPU-only time: what 'kernel throughput' measurements report."""
        return sum(k.time(device) for k in self.kernels)

    def end_to_end_time(self, device: DeviceSpec) -> float:
        """Everything between input-on-GPU and output-on-GPU (the paper's
        Definition in Section II)."""
        t = self.kernel_time(device) + self.host_fixed_s
        t += self.pcie_bytes / (device.pcie_bw * 1e9)
        t += self.host_bytes / (device.host_rate * 1e9)
        return t

    def kernel_throughput(self, device: DeviceSpec, data_bytes: float) -> float:
        return data_bytes / self.kernel_time(device) / 1e9

    def end_to_end_throughput(self, device: DeviceSpec, data_bytes: float) -> float:
        return data_bytes / self.end_to_end_time(device) / 1e9

    def memory_throughput(self, device: DeviceSpec) -> float:
        """Achieved DRAM throughput across the pipeline's kernels, weighted
        by kernel time (what profiling the compression kernels in Nsight
        reports for multi-kernel designs)."""
        total_t = self.kernel_time(device)
        total_bytes = sum(k.dram_bytes() for k in self.kernels)
        return total_bytes / total_t / 1e9


def merge(name: str, *costs: KernelCost) -> KernelCost:
    """Fuse several stage costs into one single-kernel cost (cuSZp2's
    single-kernel design: stage traffic adds up, launch is paid once)."""
    fused = KernelCost(name)
    for c in costs:
        fused.accesses.extend(c.accesses)
        fused.compute_ops += c.compute_ops
        fused.sync_s += c.sync_s
    return fused


def ablate_vectorization(cost: KernelCost) -> KernelCost:
    """Sec. VI-E ablation: demote every vectorized stream to scalar
    coalesced access *and* inflate the instruction-issue cost.

    Vectorization helps twice (Fig. 10): coalesced 128-bit transactions
    keep DRAM busy, and 4x fewer LD/ST + loop-control instructions free the
    issue pipeline for arithmetic.  Undoing it therefore both lowers the
    achievable bandwidth and raises the compute time by
    ``VECTORIZATION_ISSUE_FACTOR`` (calibrated in calibration.py so the
    Sec. VI-E attribution lands near the paper's 56%/41% split).
    """
    from .access import Pattern
    from .calibration import VECTORIZATION_ISSUE_FACTOR

    out = KernelCost(
        cost.name + "+no-vec",
        compute_ops=cost.compute_ops * VECTORIZATION_ISSUE_FACTOR,
        sync_s=cost.sync_s,
    )
    for a in cost.accesses:
        p = Pattern.COALESCED if a.pattern is Pattern.VECTORIZED else a.pattern
        out.accesses.append(Access(a.nbytes, p, a.label))
    return out


def replace_sync(cost: KernelCost, sync_s: float, suffix: str) -> Optional[KernelCost]:
    """Sec. VI-E ablation: swap the synchronization latency (e.g. decoupled
    lookback -> plain chained-scan)."""
    out = KernelCost(cost.name + suffix, compute_ops=cost.compute_ops, sync_s=sync_s)
    out.accesses = list(cost.accesses)
    return out
