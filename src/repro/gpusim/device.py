"""GPU device specifications used by the performance model.

The paper evaluates on an NVIDIA A100 (40 GB, 108 SMs, 1555 GB/s DRAM
bandwidth -- the figure quoted in Sections IV-B and V-B), and checks
compatibility on RTX 3090 and RTX 3080 (Section VI-C).  Hybrid compressors
additionally cross PCIe and run CPU stages, so the spec also carries host
link and host compute parameters (Section I: PCIe "has only a limited
throughput of around 10~20 GB/s").

All bandwidth values are in **GB/s (1e9 bytes per second)** and times in
seconds, consistently across :mod:`repro.gpusim`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one GPU (plus its host link)."""

    name: str
    num_sms: int
    #: Peak DRAM bandwidth, GB/s.
    dram_bw: float
    #: Sustained integer/logic operation throughput, Gop/s, across the
    #: device (per-SM ALUs x SM count x clock, derated for issue limits).
    op_rate: float
    #: SM boost clock in GHz (used by the discrete-event scan models to
    #: convert cycle counts to time).
    clock_ghz: float
    #: Kernel launch overhead in seconds (CUDA ~3-10 us per launch).
    kernel_launch_s: float
    #: Host<->device PCIe bandwidth, GB/s (one direction).
    pcie_bw: float
    #: Host-side sequential processing rate for CPU stages of hybrid
    #: compressors (e.g. Huffman tree construction), GB/s.
    host_rate: float
    #: cudaMemset device fill bandwidth, GB/s (used by the zero-block flush
    #: fast path, Section V-B).
    memset_bw: float
    #: Resident thread blocks the device can keep in flight at once
    #: (occupancy proxy for the scan timing models).
    resident_blocks: int

    def scaled(self, **overrides) -> "DeviceSpec":
        """Return a copy with selected fields replaced (used by ablations)."""
        return replace(self, **overrides)


#: NVIDIA A100-SXM4-40GB -- the paper's primary platform (Section V-A).
A100_40GB = DeviceSpec(
    name="A100-40GB",
    num_sms=108,
    dram_bw=1555.0,
    op_rate=9_700.0,  # 108 SMs x 64 INT32 lanes x 1.41 GHz
    clock_ghz=1.41,
    kernel_launch_s=5e-6,
    pcie_bw=12.0,  # PCIe gen3/4 effective, the paper's "10~20 GB/s"
    host_rate=1.2,
    memset_bw=1400.0,
    resident_blocks=216,  # 2 blocks per SM at cuSZp2's occupancy
)

#: NVIDIA GeForce RTX 3090 (Section VI-C).
RTX_3090 = DeviceSpec(
    name="RTX-3090",
    num_sms=82,
    dram_bw=936.0,
    op_rate=7_200.0,
    clock_ghz=1.70,
    kernel_launch_s=5e-6,
    pcie_bw=12.0,
    host_rate=1.2,
    memset_bw=850.0,
    resident_blocks=164,
)

#: NVIDIA GeForce RTX 3080 10GB (Section VI-C).
RTX_3080 = DeviceSpec(
    name="RTX-3080",
    num_sms=68,
    dram_bw=760.0,
    op_rate=6_000.0,
    clock_ghz=1.71,
    kernel_launch_s=5e-6,
    pcie_bw=12.0,
    host_rate=1.2,
    memset_bw=700.0,
    resident_blocks=136,
)

DEVICES = {d.name: d for d in (A100_40GB, RTX_3090, RTX_3080)}


def get_device(name: str) -> DeviceSpec:
    try:
        return DEVICES[name]
    except KeyError:
        raise KeyError(f"unknown device {name!r}; available: {sorted(DEVICES)}") from None
