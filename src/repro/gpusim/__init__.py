"""GPU execution-model substrate.

Because this reproduction has no CUDA device, GPU behaviour is split into
(a) a *protocol* layer -- :mod:`repro.gpusim.vm`'s cooperative virtual GPU,
on which concurrent kernel algorithms run and are property-tested -- and
(b) a *performance* layer -- device specs, access-pattern costs, kernel
cost models, and a calibrated mapping from real byte traffic to simulated
throughput (see DESIGN.md Section 2 for the substitution argument).
"""

from .access import Access, Pattern, effective_bandwidth
from .device import A100_40GB, DEVICES, RTX_3080, RTX_3090, DeviceSpec, get_device
from .instruction import InstructionMix, compile_copy_loop, vectorization_reduction
from .kernelmodel import (
    KernelCost,
    KernelTiming,
    PipelineCost,
    ablate_vectorization,
    merge,
    replace_sync,
)
from .pipelines import Artifacts
from .profiler import PipelineProfile, profile
from .roofline import RooflinePoint, place as roofline_place, render as roofline_render, ridge_intensity
from .vm import DeadlockError, GlobalMemory, RunReport, VirtualGPU

__all__ = [
    "Access",
    "Pattern",
    "effective_bandwidth",
    "DeviceSpec",
    "A100_40GB",
    "RTX_3090",
    "RTX_3080",
    "DEVICES",
    "get_device",
    "InstructionMix",
    "compile_copy_loop",
    "vectorization_reduction",
    "KernelCost",
    "KernelTiming",
    "PipelineCost",
    "merge",
    "ablate_vectorization",
    "replace_sync",
    "Artifacts",
    "profile",
    "PipelineProfile",
    "RooflinePoint",
    "roofline_place",
    "roofline_render",
    "ridge_intensity",
    "GlobalMemory",
    "VirtualGPU",
    "RunReport",
    "DeadlockError",
]
