"""A cooperative virtual GPU for concurrent kernel *protocols*.

The decoupled-lookback scan is a lock-free concurrent algorithm whose
correctness depends on the order in which thread blocks publish and observe
status flags.  To verify our implementation the way one would verify the
CUDA original, this module provides a tiny virtual GPU:

* **thread blocks are Python generators** -- every ``yield`` is a
  preemption point (the analogue of an arbitrary warp scheduler decision);
* **global memory** is a set of named NumPy arrays with sequentially
  consistent loads/stores and atomics (single-threaded execution gives us
  the memory model for free; what we randomize is the *interleaving*);
* the **scheduler** keeps at most ``resident`` blocks in flight, admits
  blocks in launch order (real GPUs dispatch CTAs in roughly increasing id,
  the forward-progress assumption decoupled lookback relies on), and picks
  the next block to advance uniformly at random from a seeded RNG.

Property tests drive thousands of random schedules through the scan
protocols and require exact results under every interleaving.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

import numpy as np


class DeadlockError(RuntimeError):
    """All resident blocks spun for too long without any retiring -- the
    protocol under test lost its forward-progress guarantee."""


class GlobalMemory:
    """Named arrays with atomics.

    All operations complete immediately and are visible to every block (the
    VM is single-threaded); ``yield`` points in kernels determine what a
    block may have observed *before* another block's update.
    """

    def __init__(self):
        self._arrays: Dict[str, np.ndarray] = {}

    def alloc(self, name: str, shape, dtype=np.int64, fill=0) -> np.ndarray:
        arr = np.full(shape, fill, dtype=dtype)
        self._arrays[name] = arr
        return arr

    def bind(self, name: str, arr: np.ndarray) -> np.ndarray:
        self._arrays[name] = arr
        return arr

    def __getitem__(self, name: str) -> np.ndarray:
        return self._arrays[name]

    def atomic_add(self, name: str, idx: int, value) -> int:
        arr = self._arrays[name]
        old = arr[idx]
        arr[idx] = old + value
        return int(old)

    def atomic_cas(self, name: str, idx: int, expected, desired) -> int:
        arr = self._arrays[name]
        old = int(arr[idx])
        if old == int(expected):
            arr[idx] = desired
        return old

    def atomic_max(self, name: str, idx: int, value) -> int:
        arr = self._arrays[name]
        old = int(arr[idx])
        arr[idx] = max(old, int(value))
        return old


@dataclass
class BlockStats:
    """Per-block execution counters collected by the scheduler."""

    steps: int = 0
    retired_at_step: int = -1


@dataclass
class RunReport:
    """What a :meth:`VirtualGPU.launch` returns."""

    total_steps: int
    block_stats: List[BlockStats] = field(default_factory=list)

    @property
    def max_block_steps(self) -> int:
        return max((s.steps for s in self.block_stats), default=0)


class VirtualGPU:
    """Cooperative scheduler over generator thread blocks."""

    def __init__(self, resident: int = 8, seed: Optional[int] = None):
        if resident < 1:
            raise ValueError("resident must be >= 1")
        self.resident = resident
        self._rng = random.Random(seed)

    def launch(
        self,
        kernel: Callable[..., Iterable],
        grid: int,
        mem: GlobalMemory,
        args: tuple = (),
        max_steps: int = 5_000_000,
        spin_limit: int = 200_000,
    ) -> RunReport:
        """Run ``grid`` instances of ``kernel(block_id, mem, *args)``.

        ``kernel`` must be a generator function; it is advanced one segment
        (up to its next ``yield``) per scheduling step.  Raises
        :class:`DeadlockError` if ``spin_limit`` consecutive steps pass with
        no block retiring while every resident block keeps yielding.
        """
        stats = [BlockStats() for _ in range(grid)]
        next_block = 0
        active: Dict[int, Iterable] = {}
        total_steps = 0
        steps_since_retire = 0

        def admit():
            nonlocal next_block
            while len(active) < self.resident and next_block < grid:
                active[next_block] = kernel(next_block, mem, *args)
                next_block += 1

        admit()
        while active:
            if total_steps >= max_steps:
                raise DeadlockError(
                    f"exceeded {max_steps} scheduling steps with "
                    f"{len(active)} blocks still active"
                )
            bid = self._rng.choice(list(active))
            gen = active[bid]
            total_steps += 1
            stats[bid].steps += 1
            steps_since_retire += 1
            try:
                next(gen)
            except StopIteration:
                del active[bid]
                stats[bid].retired_at_step = total_steps
                steps_since_retire = 0
                admit()
                continue
            if steps_since_retire > spin_limit:
                raise DeadlockError(
                    f"no block retired in {spin_limit} steps; "
                    f"active blocks: {sorted(active)}"
                )
        return RunReport(total_steps=total_steps, block_stats=stats)
