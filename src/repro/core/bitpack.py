"""Vectorized bit-plane packing primitives shared by Plain- and Outlier-FLE.

Fixed-length encoding stores, for every block, the sign of each integer
(1 bit, aggregated into ``L/8`` bytes) followed by ``fl`` bit-planes of the
magnitudes, LSB plane first.  Within a plane, byte ``j`` holds the plane
bits of elements ``8j .. 8j+7``; element ``8j + k`` contributes bit ``k``
(LSB-first).  This layout makes both directions expressible as pure NumPy
tensor ops -- the software analogue of the paper's claim that FLE's
regularity is what makes full vectorization possible (Section IV-B).

All functions operate on whole groups of blocks at once: shape
``(g, L)`` magnitudes -> shape ``(g, fl * L // 8)`` payload bytes.
"""

from __future__ import annotations

import numpy as np

_BIT_WEIGHTS = (np.uint8(1) << np.arange(8, dtype=np.uint8)).astype(np.uint8)


def bit_length(mag: np.ndarray) -> np.ndarray:
    """Per-element bit length of non-negative int64 magnitudes, exactly.

    Uses ``frexp`` on the float64 image, which is exact for integers below
    2**53 (our magnitudes are capped at 2**31 - 1 well before this point).
    """
    _, exp = np.frexp(mag.astype(np.float64))
    return exp.astype(np.uint8)  # frexp exponent of integer m equals bit_length(m); 0 -> 0


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a ``(..., 8k)`` array of 0/1 values into ``(..., k)`` bytes,
    LSB-first within each byte."""
    # explicit byte count: reshape(-1) cannot be inferred on size-0 arrays
    b = bits.reshape(bits.shape[:-1] + (bits.shape[-1] // 8, 8)).astype(np.uint8)
    return (b * _BIT_WEIGHTS).sum(axis=-1, dtype=np.uint16).astype(np.uint8)


def unpack_bits(packed: np.ndarray, nbits: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: ``(..., k)`` bytes -> ``(..., nbits)``
    0/1 uint8 values (``nbits`` must be ``8k``)."""
    bits = (packed[..., :, None] >> np.arange(8, dtype=np.uint8)) & np.uint8(1)
    return bits.reshape(packed.shape[:-1] + (packed.shape[-1] * 8,))[..., :nbits]


def pack_signs(deltas: np.ndarray) -> np.ndarray:
    """Aggregate sign bits of ``(g, L)`` signed deltas into ``(g, L//8)``
    bytes.  Bit value 1 marks a negative integer (paper's convention is one
    bit per integer; the polarity is internal to the stream format)."""
    return pack_bits((deltas < 0).astype(np.uint8))


def unpack_signs(sign_bytes: np.ndarray, length: int) -> np.ndarray:
    """Recover the ``(g, L)`` boolean negativity mask."""
    return unpack_bits(sign_bytes, length).astype(bool)


def pack_planes(mag: np.ndarray, fl: int) -> np.ndarray:
    """Encode ``(g, L)`` magnitudes (all < 2**fl) as ``(g, fl * L // 8)``
    bit-plane bytes, LSB plane first."""
    g, length = mag.shape
    if fl == 0:
        return np.empty((g, 0), dtype=np.uint8)
    planes = np.arange(fl, dtype=np.uint64)
    bits = (mag.astype(np.uint64)[:, None, :] >> planes[None, :, None]) & np.uint64(1)
    return pack_bits(bits.astype(np.uint8)).reshape(g, fl * length // 8)


def unpack_planes(payload: np.ndarray, fl: int, length: int) -> np.ndarray:
    """Decode ``(g, fl * L // 8)`` bit-plane bytes back to ``(g, L)`` int64
    magnitudes."""
    g = payload.shape[0]
    if fl == 0:
        return np.zeros((g, length), dtype=np.int64)
    bits = unpack_bits(payload.reshape(g, fl, length // 8), length)
    weights = (np.int64(1) << np.arange(fl, dtype=np.int64))
    return np.tensordot(bits.astype(np.int64), weights, axes=([1], [0]))


def apply_signs(mag: np.ndarray, negative: np.ndarray) -> np.ndarray:
    """Combine magnitudes and negativity mask into signed int64 deltas."""
    return np.where(negative, -mag, mag)
