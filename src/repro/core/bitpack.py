"""Vectorized bit-plane packing primitives shared by Plain- and Outlier-FLE.

Fixed-length encoding stores, for every block, the sign of each integer
(1 bit, aggregated into ``L/8`` bytes) followed by ``fl`` bit-planes of the
magnitudes, LSB plane first.  Within a plane, byte ``j`` holds the plane
bits of elements ``8j .. 8j+7``; element ``8j + k`` contributes bit ``k``
(LSB-first).  This layout makes both directions expressible as pure NumPy
tensor ops -- the software analogue of the paper's claim that FLE's
regularity is what makes full vectorization possible (Section IV-B).

Two observations make the conversions fast:

* The LSB-first byte layout is exactly :func:`np.packbits` /
  :func:`np.unpackbits` with ``bitorder="little"``, which handle the 0/1
  aggregations (sign bits) directly.
* Plane packing is, per little-endian magnitude byte ``b`` and per group
  of 8 elements, an 8x8 *bit-matrix transpose*: byte ``b`` of elements
  ``8j..8j+7`` in, planes ``8b..8b+7`` of group ``j`` out.  Viewing each
  8-byte group as one uint64 turns that into the classic shift/mask
  transpose (Hacker's Delight 7-3) -- a handful of whole-array uint64
  ops, with no ``(g, fl, L)`` per-bit intermediate in any dtype wider
  than the uint8 plane slabs themselves.  Fixed lengths that are
  multiples of 8 are fully byte-aligned and skip the partial-top-byte
  trimming.

All functions operate on whole groups of blocks at once: shape
``(g, L)`` magnitudes -> shape ``(g, fl * L // 8)`` payload bytes.
"""

from __future__ import annotations

import numpy as np

_T8_M1 = np.uint64(0x00AA00AA00AA00AA)
_T8_M2 = np.uint64(0x0000CCCC0000CCCC)
_T8_M3 = np.uint64(0x00000000F0F0F0F0)
_T8_S1 = np.uint64(7)
_T8_S2 = np.uint64(14)
_T8_S3 = np.uint64(28)


def bit_length(mag: np.ndarray) -> np.ndarray:
    """Per-element bit length of non-negative integer magnitudes, exactly.

    Uses ``frexp`` on the float64 image, which is exact for integers below
    2**53 (our magnitudes are capped at 2**31 - 1 well before this point).
    """
    _, exp = np.frexp(mag.astype(np.float64))
    return exp.astype(np.uint8)  # frexp exponent of integer m equals bit_length(m); 0 -> 0


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a ``(..., 8k)`` array of 0/1 values into ``(..., k)`` bytes,
    LSB-first within each byte."""
    if bits.dtype != np.uint8 and bits.dtype != np.bool_:
        bits = bits.astype(np.uint8)
    return np.packbits(bits, axis=-1, bitorder="little")


def unpack_bits(packed: np.ndarray, nbits: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: ``(..., k)`` bytes -> ``(..., nbits)``
    0/1 uint8 values (``nbits`` must be at most ``8k``)."""
    if packed.dtype != np.uint8:
        packed = packed.astype(np.uint8)
    return np.unpackbits(packed, axis=-1, count=nbits, bitorder="little")


def pack_signs(deltas: np.ndarray) -> np.ndarray:
    """Aggregate sign bits of ``(g, L)`` signed deltas into ``(g, L//8)``
    bytes.  Bit value 1 marks a negative integer (paper's convention is one
    bit per integer; the polarity is internal to the stream format)."""
    return pack_bits(deltas < 0)


def unpack_signs(sign_bytes: np.ndarray, length: int) -> np.ndarray:
    """Recover the ``(g, L)`` boolean negativity mask."""
    # unpackbits yields 0/1 uint8, which reinterprets as bool for free
    return unpack_bits(sign_bytes, length).view(np.bool_)


def _transpose8(tiles: np.ndarray) -> np.ndarray:
    """Transpose each uint64 as an 8x8 bit matrix (byte i, bit j) ->
    (byte j, bit i).  Self-inverse; ~18 whole-array uint64 ops."""
    x = tiles
    t = (x ^ (x >> _T8_S1)) & _T8_M1
    x = x ^ t ^ (t << _T8_S1)
    t = (x ^ (x >> _T8_S2)) & _T8_M2
    x = x ^ t ^ (t << _T8_S2)
    t = (x ^ (x >> _T8_S3)) & _T8_M3
    return x ^ t ^ (t << _T8_S3)


def _byte_image(mag: np.ndarray) -> np.ndarray:
    """``(g, L)`` magnitudes as their ``(g, L, 4)`` little-endian byte
    image.  int32/uint32 input reinterprets in place (magnitudes are
    non-negative, so the int32 bit pattern is the uint32 one); wider
    integers are narrowed (all magnitudes fit 31 bits)."""
    g, length = mag.shape
    if mag.dtype in (np.int32, np.uint32) and mag.flags.c_contiguous:
        u4 = mag
    else:
        u4 = mag.astype("<u4")
    return u4.view(np.uint8).reshape(g, length, 4)


def pack_planes(mag: np.ndarray, fl: int) -> np.ndarray:
    """Encode ``(g, L)`` magnitudes (all < 2**fl) as ``(g, fl * L // 8)``
    bit-plane bytes, LSB plane first."""
    g, length = mag.shape
    if fl == 0:
        return np.empty((g, 0), dtype=np.uint8)
    nb = (fl + 7) // 8
    image = _byte_image(mag)
    out = np.empty((g, fl, length // 8), dtype=np.uint8)
    for b in range(nb):
        slab = np.ascontiguousarray(image[:, :, b])  # byte b of every element
        tiles = slab.reshape(g, length // 8, 8).view("<u8")[..., 0]
        planes = _transpose8(tiles).view(np.uint8).reshape(g, length // 8, 8)
        hi = min(8, fl - 8 * b)  # byte-aligned fl keeps all 8 planes
        out[:, 8 * b : 8 * b + hi, :] = planes[:, :, :hi].transpose(0, 2, 1)
    return out.reshape(g, fl * length // 8)


def unpack_planes(
    payload: np.ndarray, fl: int, length: int, dtype=np.int64
) -> np.ndarray:
    """Decode ``(g, fl * L // 8)`` bit-plane bytes back to ``(g, L)``
    integer magnitudes (``dtype`` int64 by default; decoders that know the
    magnitudes are narrow pass int32 to halve downstream traffic)."""
    g = payload.shape[0]
    if fl == 0:
        return np.zeros((g, length), dtype=dtype)
    nb = (fl + 7) // 8
    planes = payload.reshape(g, fl, length // 8)
    image = np.zeros((g, length, 4), dtype=np.uint8)
    for b in range(nb):
        hi = min(8, fl - 8 * b)
        if hi == 8:  # byte-aligned: every plane of this slab is present
            tilebytes = np.ascontiguousarray(
                planes[:, 8 * b : 8 * b + 8, :].transpose(0, 2, 1)
            )
        else:
            tilebytes = np.zeros((g, length // 8, 8), dtype=np.uint8)
            tilebytes[:, :, :hi] = planes[:, 8 * b :, :].transpose(0, 2, 1)
        tiles = tilebytes.reshape(g, length).view("<u8")
        image[:, :, b] = _transpose8(tiles).view(np.uint8).reshape(g, length)
    mag32 = image.reshape(g, 4 * length).view("<i4")
    # magnitudes are < 2**31, so the int32 view is already exact
    return mag32 if dtype == np.int32 else mag32.astype(dtype)


def apply_signs(mag: np.ndarray, negative: np.ndarray) -> np.ndarray:
    """Combine magnitudes and negativity mask into signed deltas, negating
    in place (``mag`` is always a decoder-owned scratch array)."""
    np.negative(mag, out=mag, where=negative)
    return mag
