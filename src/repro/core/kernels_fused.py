"""Fused quantize -> diff -> FLE kernels (single pass per chunk).

The paper's headline throughput comes from fusing the four pipeline stages
into one GPU kernel so each quantization integer is produced, differenced
and encoded while still in registers (Fig. 4).  This module is the CPU
analogue: per-block scalar kernels written in nopython-compatible Python,
compiled with ``numba.njit(parallel=True, cache=True)`` when numba is
installed and executed as plain Python otherwise.  Both forms run the same
function bodies, so the always-available pure-Python variants double as the
reference for the jitted ones on hosts without numba.

Encoding is two passes, matching the kernel structure cuSZp2 uses around
its global prefix-sum (Section III):

* **pass 1** quantizes and differences each block and derives its offset
  byte and payload size (all per-block, embarrassingly parallel, deltas
  parked in a chunk-sized scratch);
* a serial prefix sum over the sizes yields every block's payload start;
* **pass 2** packs sign bits, adaptive outlier bytes and LSB-first
  bit-planes of each block directly at its final payload position --
  writes are disjoint per block, so the parallel loop is deterministic.

Bit-identity with the NumPy reference backend is load-bearing and rests on:

* the quantizer performing the *same float64 op sequence* per element
  (divide by ``2*eb``, add 0.5, floor -- each correctly rounded, so
  elementwise and scalar agree bit-for-bit);
* range/overflow checks and the int32/int64 width decision being made
  outside the kernel by the shared helpers in :mod:`repro.core.quantize`;
* mode selection using the same strict ``cost_outlier < cost_plain``
  comparison and byte-cost formulas as :mod:`repro.core.fle`;
* decode accumulating prefix sums in int64 before the final store --
  exact for every stream :func:`repro.core.fle.delta_dtype` admits as
  int32 (partial sums are bounded by ``outlier + L * (2**fl - 1) <
  2**24 + 2**30``), so the narrow store never wraps.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised only on numba-enabled hosts
    from numba import njit, prange

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - the only path on this CI image
    NUMBA_AVAILABLE = False
    prange = range

    def njit(*args, **kwargs):
        """Identity decorator: the kernel bodies below are plain Python."""
        if args and callable(args[0]):
            return args[0]

        def wrap(fn):
            return fn

        return wrap


#: Largest representable magnitude (mirrors quantize.MAX_QUANT_MAGNITUDE;
#: duplicated as a plain int literal so the jitted kernels close over a
#: compile-time constant instead of a numpy scalar global).
_MAXQ = 2147483647


def _encode_pass1(chunk, step, block, use_outlier, dblocks, offs, sizes):
    """Quantize + diff + per-block FLE decision for one chunk.

    ``chunk`` is the chunk's float data (its final block may be partial:
    indices past the end clamp to the last element, replicating
    ``blockize_1d``'s repeat-last padding, whose deltas are zero).  Writes
    the signed deltas into ``dblocks`` (int64 scratch), the offset byte
    into ``offs`` and the payload byte count into ``sizes``.  A block whose
    delta magnitude exceeds 2**31 - 1 gets ``sizes[b] = -1`` for the
    caller to turn into the exact :class:`QuantizationOverflowError` the
    NumPy path raises (a parallel loop cannot raise deterministically).
    """
    nblocks = offs.shape[0]
    n = chunk.shape[0]
    sign_bytes = block // 8
    for b in prange(nblocks):
        base = b * block
        last = n - 1
        # float() widens float32 input to float64 *before* the divide (an
        # exact conversion), matching the vectorized reference; dividing the
        # raw float32 scalar would round in single precision first.
        q_prev = int(np.floor(float(chunk[base]) / step + 0.5))
        dblocks[b, 0] = q_prev
        m0 = -q_prev if q_prev < 0 else q_prev
        rest_max = 0
        for i in range(1, block):
            idx = base + i
            if idx > last:
                idx = last
            qv = int(np.floor(float(chunk[idx]) / step + 0.5))
            d = qv - q_prev
            q_prev = qv
            dblocks[b, i] = d
            a = -d if d < 0 else d
            if a > rest_max:
                rest_max = a
        full_max = rest_max if rest_max > m0 else m0
        if full_max > _MAXQ:
            offs[b] = 0
            sizes[b] = -1
            continue
        fl_plain = 0
        while (full_max >> fl_plain) != 0:
            fl_plain += 1
        if use_outlier:
            fl_rest = 0
            while (rest_max >> fl_rest) != 0:
                fl_rest += 1
            onb = (
                1
                + (1 if m0 > 0xFF else 0)
                + (1 if m0 > 0xFFFF else 0)
                + (1 if m0 > 0xFFFFFF else 0)
            )
            cost_plain = 0 if fl_plain == 0 else sign_bytes * (1 + fl_plain)
            cost_outlier = sign_bytes + onb + fl_rest * sign_bytes
            if cost_outlier < cost_plain:
                offs[b] = 0x80 | ((onb - 1) << 5) | fl_rest
                sizes[b] = cost_outlier
            else:
                offs[b] = fl_plain
                sizes[b] = cost_plain
        else:
            offs[b] = fl_plain
            sizes[b] = 0 if fl_plain == 0 else sign_bytes * (1 + fl_plain)


def _encode_pass2(dblocks, offs, starts, block, payload):
    """Pack each block's payload bytes at its prefix-summed start.

    Layout per block (identical to the NumPy group encoder): ``L/8`` sign
    bytes (bit 1 = negative, LSB-first within each byte), then -- Outlier
    mode only -- ``onb`` little-endian outlier bytes, then ``fl``
    bit-planes of the magnitudes, LSB plane first, with the outlier
    element's plane bits zeroed (its sign bit is kept).
    """
    nblocks = offs.shape[0]
    sign_bytes = block // 8
    for b in prange(nblocks):
        off = offs[b]
        mode = off >> 7
        fl = off & 0x1F
        if mode == 0 and fl == 0:
            continue  # zero block: one offset byte, no payload
        s = starts[b]
        for j in range(sign_bytes):
            byte = 0
            for k in range(8):
                if dblocks[b, 8 * j + k] < 0:
                    byte |= 1 << k
            payload[s + j] = byte
        p = s + sign_bytes
        if mode == 1:
            onb = ((off >> 5) & 0x3) + 1
            d0 = dblocks[b, 0]
            m0 = -d0 if d0 < 0 else d0
            for i in range(onb):
                payload[p + i] = (m0 >> (8 * i)) & 0xFF
            p += onb
        for pl in range(fl):
            row = p + pl * sign_bytes
            for j in range(sign_bytes):
                byte = 0
                for k in range(8):
                    e = 8 * j + k
                    d = dblocks[b, e]
                    m = -d if d < 0 else d
                    if mode == 1 and e == 0:
                        m = 0  # outlier magnitude lives in its own bytes
                    if (m >> pl) & 1:
                        byte |= 1 << k
                payload[row + j] = byte


def _decode_chunk(offs, payload, starts, block, q_out):
    """Fused FLE-decode + prefix-sum for one chunk.

    Reads each block's payload at ``starts[b]`` and writes the
    reconstructed quantization integers (row prefix sums of the deltas)
    straight into ``q_out``.  Accumulation is int64; the store narrows to
    ``q_out``'s dtype, which :func:`repro.core.fle.delta_dtype` has already
    proven exact for this stream.  The outlier element's magnitude is
    *replaced* by the adaptive bytes (plane bits of element 0 are ignored),
    matching the NumPy decoder on corrupt streams too.
    """
    nblocks = offs.shape[0]
    sign_bytes = block // 8
    for b in prange(nblocks):
        off = offs[b]
        mode = off >> 7
        fl = off & 0x1F
        base = b * block
        if mode == 0 and fl == 0:
            for i in range(block):
                q_out[base + i] = 0
            continue
        s = starts[b]
        onb = (((off >> 5) & 0x3) + 1) if mode == 1 else 0
        planes = s + sign_bytes + onb
        omag = 0
        for i in range(onb):
            omag |= int(payload[s + sign_bytes + i]) << (8 * i)
        acc = 0
        for i in range(block):
            m = 0
            for pl in range(fl):
                if (int(payload[planes + pl * sign_bytes + (i >> 3)]) >> (i & 7)) & 1:
                    m |= 1 << pl
            if mode == 1 and i == 0:
                m = omag
            if (int(payload[s + (i >> 3)]) >> (i & 7)) & 1:
                m = -m
            acc += m
            q_out[base + i] = acc


# Always-available pure-Python aliases (the "fused-python" backend) and the
# jitted entry points (the "numba" backend).  Without numba the decorator is
# the identity, so both names resolve to the same function objects.
encode_pass1_python = _encode_pass1
encode_pass2_python = _encode_pass2
decode_chunk_python = _decode_chunk

encode_pass1 = njit(parallel=True, cache=True)(_encode_pass1)
encode_pass2 = njit(parallel=True, cache=True)(_encode_pass2)
decode_chunk = njit(parallel=True, cache=True)(_decode_chunk)
