"""Random access for 2-D/3-D Lorenzo streams (tile granularity).

The 1-D :class:`~repro.core.random_access.RandomAccessor` addresses
32-element line blocks.  The multi-dimensional variants of Table VI tile
the field into 8x8 / 4x4x4 Lorenzo tiles that are just as independent --
each tile's Lorenzo differences reference only zero-padding outside the
tile -- so any spatial tile can be reconstructed from its own payload after
the same offset-byte prefix sum.  This module provides that spatial access
path (an extension; the paper only claims random access for the 1-D
default).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from . import fle, predictor, stream
from .errors import RandomAccessError
from .quantize import dequantize


class TileAccessor:
    """Decode arbitrary Lorenzo tiles of a 2-D/3-D compressed stream."""

    def __init__(self, buf, verify_integrity: str = "auto"):
        if verify_integrity not in ("auto", "verify", "skip"):
            raise RandomAccessError(
                f"verify_integrity must be 'auto', 'verify' or 'skip', "
                f"got {verify_integrity!r}"
            )
        if not isinstance(buf, np.ndarray):
            buf = np.frombuffer(bytes(buf), dtype=np.uint8)
        self.header, self._offsets, self._payload = stream.split(buf)
        self.report = None
        if verify_integrity != "skip":
            from .errors import IntegrityError
            from .integrity import verify as _verify

            report = _verify(buf)
            self.report = report
            if verify_integrity == "verify" and not report.has_checksums:
                raise IntegrityError(
                    "verify_integrity='verify' but the stream is format v1 "
                    "and carries no checksums",
                    report,
                )
            if not report.ok:
                # Lorenzo tiles have no recover path (see RandomAccessor).
                raise IntegrityError(report.summary(), report)
        ndim = self.header.predictor_ndim
        if ndim == 1:
            raise RandomAccessError(
                "stream uses the 1-D pipeline; use RandomAccessor instead"
            )
        self.ndim = ndim
        self.tile = round(self.header.block ** (1.0 / ndim))
        dims = self.header.dims[:ndim]
        self.dims = tuple(int(d) for d in dims)
        #: tiles per axis (edge tiles are padded during compression)
        self.grid = tuple(-(-d // self.tile) for d in self.dims)
        sizes = fle.block_payload_sizes(self._offsets, self.header.block)
        self._bounds = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)
        if int(self._bounds[-1]) != self._payload.size:
            from .errors import StreamFormatError

            raise StreamFormatError(
                f"offset bytes describe {int(self._bounds[-1])} payload bytes "
                f"but the stream holds {self._payload.size}"
            )

    @property
    def ntiles(self) -> int:
        return int(np.prod(self.grid))

    def tile_index(self, coords: Tuple[int, ...]) -> int:
        """Flat tile id of grid coordinates (row-major over the tile grid,
        matching the compressor's tiling order)."""
        if len(coords) != self.ndim:
            raise RandomAccessError(f"need {self.ndim} tile coordinates, got {len(coords)}")
        idx = 0
        for c, g in zip(coords, self.grid):
            if not 0 <= c < g:
                raise RandomAccessError(f"tile coordinate {coords} outside grid {self.grid}")
            idx = idx * g + c
        return idx

    def tile_for_voxel(self, voxel: Tuple[int, ...]) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Map a spatial index to ``(tile_coords, offset_within_tile)``."""
        if len(voxel) != self.ndim:
            raise RandomAccessError(f"need {self.ndim} indices, got {len(voxel)}")
        for v, d in zip(voxel, self.dims):
            if not 0 <= v < d:
                raise RandomAccessError(f"voxel {voxel} outside field {self.dims}")
        return (
            tuple(v // self.tile for v in voxel),
            tuple(v % self.tile for v in voxel),
        )

    def decode_tile(self, coords: Tuple[int, ...]) -> np.ndarray:
        """Reconstruct one tile as a ``(t,)*ndim`` array (edge tiles include
        the replicated padding the compressor added; slice with
        :meth:`valid_extent` for the in-field part)."""
        idx = self.tile_index(coords)
        lo, hi = int(self._bounds[idx]), int(self._bounds[idx + 1])
        deltas = fle.decode_blocks(
            self._offsets[idx : idx + 1], self._payload[lo:hi], self.header.block
        )
        t = self.tile
        shaped = deltas.reshape((1,) + (t,) * self.ndim)
        if self.ndim == 2:
            q = predictor.lorenzo_undiff_2d(shaped)[0]
        else:
            q = predictor.lorenzo_undiff_3d(shaped)[0]
        return dequantize(q.reshape(-1), self.header.eb_abs, self.header.dtype).reshape(
            (t,) * self.ndim
        )

    def valid_extent(self, coords: Tuple[int, ...]) -> Tuple[slice, ...]:
        """Slices selecting the in-field part of a decoded tile."""
        out = []
        for c, d in zip(coords, self.dims):
            lo = c * self.tile
            out.append(slice(0, min(self.tile, d - lo)))
        return tuple(out)

    def read_voxel(self, voxel: Tuple[int, ...]):
        """Reconstruct a single spatial sample."""
        coords, offset = self.tile_for_voxel(voxel)
        return self.decode_tile(coords)[offset]

    def decode_region(self, lo: Tuple[int, ...], hi: Tuple[int, ...]) -> np.ndarray:
        """Reconstruct the axis-aligned region ``[lo, hi)`` by decoding only
        the tiles it touches."""
        if len(lo) != self.ndim or len(hi) != self.ndim:
            raise RandomAccessError(f"region bounds must have {self.ndim} coordinates")
        for a, b, d in zip(lo, hi, self.dims):
            if not 0 <= a <= b <= d:
                raise RandomAccessError(f"region [{lo}, {hi}) outside field {self.dims}")
        shape = tuple(b - a for a, b in zip(lo, hi))
        out = np.empty(shape, dtype=self.header.dtype)
        t = self.tile
        tile_lo = tuple(a // t for a in lo)
        tile_hi = tuple(-(-b // t) if b > a else a // t for a, b in zip(lo, hi))
        ranges = [range(a, max(b, a)) for a, b in zip(tile_lo, tile_hi)]
        import itertools

        for coords in itertools.product(*ranges):
            tile_data = self.decode_tile(coords)
            src = []
            dst = []
            for axis in range(self.ndim):
                base = coords[axis] * t
                a = max(lo[axis], base)
                b = min(hi[axis], base + t)
                src.append(slice(a - base, b - base))
                dst.append(slice(a - lo[axis], b - lo[axis]))
            out[tuple(dst)] = tile_data[tuple(src)]
        return out
