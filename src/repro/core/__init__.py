"""The cuSZp2 codec: the paper's primary contribution.

Public surface: :func:`compress`, :func:`decompress`, :class:`CuSZp2`,
:class:`ErrorBound`, :class:`RandomAccessor`.
"""

from .backends import (
    KernelBackend,
    available_backends,
    register_backend,
    registered_backends,
    resolve_backend,
)
from .compressor import (
    DEFAULT_BLOCK,
    CompressorConfig,
    CuSZp2,
    compress,
    compression_ratio,
    decompress,
    validate_chunk_blocks,
)
from .errors import (
    CuSZp2Error,
    ErrorBoundError,
    IntegrityError,
    InvalidInputError,
    QuantizationOverflowError,
    RandomAccessError,
    StreamFormatError,
)
from .quantize import ErrorBound
from .archive import DatasetArchive, pack, pack_dataset
from .integrity import CorruptionReport, recover as recover_stream, verify as verify_stream
from .random_access import RandomAccessor
from .tile_access import TileAccessor
from .verify import VerificationReport, verify
from .stream import DEFAULT_GROUP_BLOCKS, HEADER_SIZE, StreamHeader

__all__ = [
    "CuSZp2",
    "CompressorConfig",
    "KernelBackend",
    "available_backends",
    "register_backend",
    "registered_backends",
    "resolve_backend",
    "validate_chunk_blocks",
    "ErrorBound",
    "RandomAccessor",
    "TileAccessor",
    "DatasetArchive",
    "pack",
    "pack_dataset",
    "verify",
    "VerificationReport",
    "StreamHeader",
    "HEADER_SIZE",
    "DEFAULT_BLOCK",
    "DEFAULT_GROUP_BLOCKS",
    "compress",
    "decompress",
    "compression_ratio",
    "CorruptionReport",
    "verify_stream",
    "recover_stream",
    "CuSZp2Error",
    "ErrorBoundError",
    "IntegrityError",
    "InvalidInputError",
    "QuantizationOverflowError",
    "RandomAccessError",
    "StreamFormatError",
]
