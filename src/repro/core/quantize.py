"""Lossy conversion: floating-point data <-> bounded quantization integers.

This is step 1 of the cuSZp2 pipeline (Fig. 4 of the paper) and the *only*
lossy stage.  Each value ``x`` becomes the integer ``q = floor(x / (2*eb) +
0.5)`` and is reconstructed as ``q * 2 * eb``, guaranteeing
``|x - q * 2 * eb| <= eb``.

Both the value-range-based relative bound (REL, the paper's evaluation
setting) and an absolute bound (ABS) are supported.  All arithmetic is done
in float64 regardless of the input precision so that single- and
double-precision inputs share one quantizer, mirroring the paper's
observation that f32/f64 differ only in this conversion step
(Section VI-A).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .errors import ErrorBoundError, InvalidInputError, QuantizationOverflowError

#: Largest magnitude a quantization integer (or block delta) may take: the
#: offset byte dedicates 5 bits to the fixed length, so magnitudes must fit
#: in 31 bits (Section IV-A: "the absolute value of a signed int32 data
#: ranges from 0 to 2^31 - 1").
MAX_QUANT_MAGNITUDE = np.int64(2**31 - 1)


@dataclass(frozen=True)
class ErrorBound:
    """User-facing error-bound specification.

    ``kind`` is ``"rel"`` (value-range relative, as in the paper's REL
    lambda settings) or ``"abs"`` (absolute).  Use the :meth:`relative` /
    :meth:`absolute` constructors rather than instantiating directly.
    """

    kind: str
    value: float

    @classmethod
    def relative(cls, lam: float) -> "ErrorBound":
        """Value-range relative bound: the pointwise error is at most
        ``lam * (max(data) - min(data))``."""
        return cls("rel", float(lam))

    @classmethod
    def absolute(cls, eb: float) -> "ErrorBound":
        """Absolute bound: the pointwise error is at most ``eb``."""
        return cls("abs", float(eb))

    def resolve(self, data: np.ndarray, minmax: tuple = None) -> float:
        """Return the absolute error bound for ``data``.

        For a REL bound on constant data (range zero) any positive bound
        reproduces the data exactly after quantization; we fall back to
        ``lam * max(|c|, 1)`` so the quantizer still has a usable step.
        ``minmax`` lets callers that already know the data bounds (e.g. from
        :func:`validate_input`) skip the reductions.
        """
        if not np.isfinite(self.value) or self.value <= 0.0:
            raise ErrorBoundError(f"error bound must be finite and > 0, got {self.value!r}")
        if self.kind == "abs":
            return self.value
        if self.kind != "rel":
            raise ErrorBoundError(f"unknown error-bound kind {self.kind!r}")
        if minmax is not None:
            lo, hi = float(minmax[0]), float(minmax[1])
        else:
            lo = float(np.min(data))
            hi = float(np.max(data))
        rng = hi - lo
        if rng == 0.0:
            return self.value * max(abs(hi), 1.0)
        return self.value * rng


def validate_input(data: np.ndarray, *, return_minmax: bool = False):
    """Check that ``data`` is a non-empty finite float32/float64 array and
    return it as a flattened C-contiguous view/copy.

    With ``return_minmax=True`` the result is ``(flat, lo, hi)``: the
    finiteness check is performed via min/max reductions (NaN poisons the
    reduction, infinities show up directly), and the bounds are handed back
    so the caller can reuse them for REL-bound resolution and quantizer
    range checks without re-scanning the data.
    """
    if not isinstance(data, np.ndarray):
        raise InvalidInputError(f"expected a numpy array, got {type(data).__name__}")
    if data.dtype not in (np.float32, np.float64):
        raise InvalidInputError(f"dtype must be float32 or float64, got {data.dtype}")
    if data.size == 0:
        raise InvalidInputError("cannot compress an empty array")
    flat = np.ascontiguousarray(data).reshape(-1)
    lo = float(np.min(flat))
    hi = float(np.max(flat))
    if not (np.isfinite(lo) and np.isfinite(hi)):
        raise InvalidInputError("input contains NaN or infinity; cuSZp2 requires finite data")
    if return_minmax:
        return flat, lo, hi
    return flat


#: Chunk size (elements) for the streaming float<->int conversion loops.
#: Sized so the float64 scratch (8 MiB) stays resident in last-level cache
#: while the loop touches each input/output element exactly once.
_CONVERT_CHUNK = 1 << 20


def _quantize_scalar(x: float, eb_abs: float) -> float:
    """The quantizer mapping applied to one float64 scalar with the exact
    same operation sequence as the vectorized path (divide, add, floor --
    each correctly rounded), so scalar and elementwise results agree
    bit-for-bit."""
    v = np.float64(x) / np.float64(2.0 * eb_abs)
    v = v + np.float64(0.5)
    return float(np.floor(v))


def quantized_bounds(minmax: tuple, eb_abs: float) -> tuple:
    """Quantizer image ``(lo_q, hi_q)`` of the data extrema.

    The quantizer map is monotone nondecreasing, so these two scalar
    evaluations bound every quantization integer of the field.  All kernel
    backends derive their range/overflow checks and their integer-width
    decision from this one function so the checks agree bit-for-bit.
    """
    return _quantize_scalar(minmax[0], eb_abs), _quantize_scalar(minmax[1], eb_abs)


def quant_output_dtype(lo_q: float, hi_q: float, int32_terms: int) -> np.dtype:
    """The int32-vs-int64 demotion decision, shared by every kernel backend.

    Given the quantizer image ``[lo_q, hi_q]`` of the *whole field* (never a
    chunk -- a per-chunk decision could demote one chunk and not its
    neighbour, and an int32 delta overflowing on a chunk boundary would
    change stream bytes) and the maximum number of quantization integers a
    downstream predictor sums per delta, return int32 exactly when every
    delta provably fits: ``|q| <= (2**31 - 1) // int32_terms``.  int64
    otherwise, or when ``int32_terms`` is 0 (no downstream guarantee).
    The quantized *values* are identical either way; only representation
    width (and therefore memory traffic) changes.
    """
    if int32_terms > 0:
        safe = float(int(MAX_QUANT_MAGNITUDE) // int32_terms)
        if -safe <= lo_q and hi_q <= safe:
            return np.dtype(np.int32)
    return np.dtype(np.int64)


def quantize(
    data: np.ndarray, eb_abs: float, *, int32_terms: int = 0, minmax: tuple = None
) -> np.ndarray:
    """Convert floats to quantization integers under absolute bound
    ``eb_abs``.  Raises :class:`QuantizationOverflowError` when an integer
    would exceed the signed-32-bit magnitude the stream format supports.

    Returns int64 by default.  A caller whose downstream predictor sums at
    most ``int32_terms`` quantization integers per delta may pass that
    count (2 for 1-D differences, ``2**ndim`` for Lorenzo): when every
    ``|q| <= (2**31 - 1) // int32_terms`` the result is returned as int32
    instead -- the deltas provably fit, and the narrower integers halve
    the memory traffic of every later pipeline stage.  The values are
    identical either way.

    ``minmax`` is the ``(min, max)`` of ``data`` if the caller already knows
    it.  The quantizer map ``x -> floor(x / (2*eb) + 0.5)`` is monotone
    nondecreasing (each step is), so the data extrema map to the quant
    extrema: range/overflow checks collapse to two scalar evaluations and
    the conversion streams straight into the integer output one cache-sized
    chunk at a time instead of materializing a full float64 copy.
    """
    if eb_abs <= 0.0 or not np.isfinite(eb_abs):
        raise ErrorBoundError(f"absolute error bound must be finite and > 0, got {eb_abs!r}")
    bound = float(MAX_QUANT_MAGNITUDE)

    if minmax is not None:
        lo, hi = quantized_bounds(minmax, eb_abs)
    else:
        # One float64 scratch array, transformed in place: copy, scale, round.
        q = data.astype(np.float64)
        q /= 2.0 * eb_abs
        q += 0.5
        np.floor(q, out=q)
        # Check in float space first: float64 can exceed int64 range.  min/max
        # reductions avoid materializing an |q| temporary on the happy path.
        lo, hi = float(q.min()), float(q.max())

    if hi > bound or lo < -bound:
        if minmax is not None:
            q = np.floor(data.astype(np.float64) / (2.0 * eb_abs) + 0.5)
        idx = int(np.argmax(np.abs(q) > bound))
        raise QuantizationOverflowError(
            f"quantization integer {q.flat[idx]:.0f} at element {idx} exceeds "
            f"2**31 - 1; increase the error bound (eb={eb_abs:g})"
        )

    out_dtype = quant_output_dtype(lo, hi, int32_terms)

    if minmax is None:
        return q.astype(out_dtype)

    # Streaming conversion: the bounds are already proven, so each chunk is
    # divided/offset/floored in a float64 scratch that stays hot in cache and
    # cast (truncation of an integral float == its value) into the output.
    n = data.shape[0]
    out = np.empty(n, dtype=out_dtype)
    scratch = np.empty(min(n, _CONVERT_CHUNK), dtype=np.float64)
    step = 2.0 * eb_abs
    for a in range(0, n, _CONVERT_CHUNK):
        b = min(a + _CONVERT_CHUNK, n)
        s = scratch[: b - a]
        np.divide(data[a:b], step, out=s, dtype=np.float64)
        s += 0.5
        np.floor(s, out=s)
        out[a:b] = s
    return out


def dequantize(q: np.ndarray, eb_abs: float, dtype: np.dtype) -> np.ndarray:
    """Reconstruct floats from quantization integers.

    The multiply is performed in float64 (then cast once to the target
    dtype, both correctly rounded) chunk by chunk, so the float64
    intermediate lives in cache instead of being a second full-size array.
    """
    n = q.shape[0] if q.ndim == 1 else q.size
    flat = q.reshape(-1)
    out = np.empty(n, dtype=dtype)
    scratch = np.empty(min(n, _CONVERT_CHUNK), dtype=np.float64)
    step = 2.0 * eb_abs
    for a in range(0, n, _CONVERT_CHUNK):
        b = min(a + _CONVERT_CHUNK, n)
        s = scratch[: b - a]
        np.multiply(flat[a:b], step, out=s, dtype=np.float64)
        out[a:b] = s
    return out.reshape(q.shape)


def max_quantized_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Largest pointwise absolute error between two arrays (the quantity the
    error bound promises to cap)."""
    return float(
        np.max(
            np.abs(
                original.astype(np.float64, copy=False) - reconstructed.astype(np.float64, copy=False)
            )
        )
    )
