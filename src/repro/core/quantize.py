"""Lossy conversion: floating-point data <-> bounded quantization integers.

This is step 1 of the cuSZp2 pipeline (Fig. 4 of the paper) and the *only*
lossy stage.  Each value ``x`` becomes the integer ``q = floor(x / (2*eb) +
0.5)`` and is reconstructed as ``q * 2 * eb``, guaranteeing
``|x - q * 2 * eb| <= eb``.

Both the value-range-based relative bound (REL, the paper's evaluation
setting) and an absolute bound (ABS) are supported.  All arithmetic is done
in float64 regardless of the input precision so that single- and
double-precision inputs share one quantizer, mirroring the paper's
observation that f32/f64 differ only in this conversion step
(Section VI-A).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .errors import ErrorBoundError, InvalidInputError, QuantizationOverflowError

#: Largest magnitude a quantization integer (or block delta) may take: the
#: offset byte dedicates 5 bits to the fixed length, so magnitudes must fit
#: in 31 bits (Section IV-A: "the absolute value of a signed int32 data
#: ranges from 0 to 2^31 - 1").
MAX_QUANT_MAGNITUDE = np.int64(2**31 - 1)


@dataclass(frozen=True)
class ErrorBound:
    """User-facing error-bound specification.

    ``kind`` is ``"rel"`` (value-range relative, as in the paper's REL
    lambda settings) or ``"abs"`` (absolute).  Use the :meth:`relative` /
    :meth:`absolute` constructors rather than instantiating directly.
    """

    kind: str
    value: float

    @classmethod
    def relative(cls, lam: float) -> "ErrorBound":
        """Value-range relative bound: the pointwise error is at most
        ``lam * (max(data) - min(data))``."""
        return cls("rel", float(lam))

    @classmethod
    def absolute(cls, eb: float) -> "ErrorBound":
        """Absolute bound: the pointwise error is at most ``eb``."""
        return cls("abs", float(eb))

    def resolve(self, data: np.ndarray) -> float:
        """Return the absolute error bound for ``data``.

        For a REL bound on constant data (range zero) any positive bound
        reproduces the data exactly after quantization; we fall back to
        ``lam * max(|c|, 1)`` so the quantizer still has a usable step.
        """
        if not np.isfinite(self.value) or self.value <= 0.0:
            raise ErrorBoundError(f"error bound must be finite and > 0, got {self.value!r}")
        if self.kind == "abs":
            return self.value
        if self.kind != "rel":
            raise ErrorBoundError(f"unknown error-bound kind {self.kind!r}")
        lo = float(np.min(data))
        hi = float(np.max(data))
        rng = hi - lo
        if rng == 0.0:
            return self.value * max(abs(hi), 1.0)
        return self.value * rng


def validate_input(data: np.ndarray) -> np.ndarray:
    """Check that ``data`` is a non-empty finite float32/float64 array and
    return it as a flattened C-contiguous view/copy."""
    if not isinstance(data, np.ndarray):
        raise InvalidInputError(f"expected a numpy array, got {type(data).__name__}")
    if data.dtype not in (np.float32, np.float64):
        raise InvalidInputError(f"dtype must be float32 or float64, got {data.dtype}")
    if data.size == 0:
        raise InvalidInputError("cannot compress an empty array")
    flat = np.ascontiguousarray(data).reshape(-1)
    if not np.isfinite(flat).all():
        raise InvalidInputError("input contains NaN or infinity; cuSZp2 requires finite data")
    return flat


def quantize(data: np.ndarray, eb_abs: float) -> np.ndarray:
    """Convert floats to quantization integers (int64) under absolute bound
    ``eb_abs``.  Raises :class:`QuantizationOverflowError` when an integer
    would exceed the signed-32-bit magnitude the stream format supports."""
    if eb_abs <= 0.0 or not np.isfinite(eb_abs):
        raise ErrorBoundError(f"absolute error bound must be finite and > 0, got {eb_abs!r}")
    scaled = data.astype(np.float64, copy=False) / (2.0 * eb_abs)
    q = np.floor(scaled + 0.5)
    # Check in float space first: float64 can exceed int64 range.
    bad = np.abs(q) > float(MAX_QUANT_MAGNITUDE)
    if bad.any():
        idx = int(np.argmax(bad))
        raise QuantizationOverflowError(
            f"quantization integer {q.flat[idx]:.0f} at element {idx} exceeds "
            f"2**31 - 1; increase the error bound (eb={eb_abs:g})"
        )
    return q.astype(np.int64)


def dequantize(q: np.ndarray, eb_abs: float, dtype: np.dtype) -> np.ndarray:
    """Reconstruct floats from quantization integers."""
    return (q.astype(np.float64) * (2.0 * eb_abs)).astype(dtype)


def max_quantized_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Largest pointwise absolute error between two arrays (the quantity the
    error bound promises to cap)."""
    return float(
        np.max(
            np.abs(
                original.astype(np.float64, copy=False) - reconstructed.astype(np.float64, copy=False)
            )
        )
    )
