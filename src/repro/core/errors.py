"""Exception types raised by the cuSZp2 codec.

The real cuSZp2 CUDA kernels exhibit undefined behaviour on inputs the
format cannot represent (non-finite values, quantization integers that
overflow ``int32``).  This reproduction turns every such case into a typed,
documented exception so library users get a diagnosable failure instead of
silent corruption.
"""

from __future__ import annotations


class CuSZp2Error(Exception):
    """Base class for all codec errors."""


class InvalidInputError(CuSZp2Error):
    """The input array cannot be compressed (wrong dtype, non-finite, empty)."""


class ErrorBoundError(CuSZp2Error):
    """The requested error bound is unusable (non-positive, NaN, ...)."""


class QuantizationOverflowError(CuSZp2Error):
    """A quantization integer or block delta exceeds the signed-32-bit
    magnitude range (|value| > 2**31 - 1) that the offset-byte format can
    describe.  Raised instead of producing a corrupt stream; the fix is a
    larger error bound."""


class StreamFormatError(CuSZp2Error):
    """The compressed byte stream is malformed (bad magic, truncated data,
    inconsistent offsets).  Messages include byte offsets and
    expected-vs-actual values so corruption can be triaged from logs."""


class IntegrityError(StreamFormatError):
    """A checksum-carrying (format v2) stream failed integrity verification:
    bit-flips, truncation, or partial-transfer loss were detected.

    Carries the structured :class:`~repro.core.integrity.CorruptionReport`
    describing which block groups are damaged as ``.report`` (``None`` when
    the failure predates group checking, e.g. an archive-level field CRC).
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report


class RandomAccessError(CuSZp2Error):
    """A random-access request referenced a block or element range outside
    the compressed stream."""
