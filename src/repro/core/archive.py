"""Multi-field archives: compressing a whole dataset into one container.

SDRBench datasets ship as directories of raw fields (Table II: CESM-ATM has
33, HACC 6, ...).  Downstream users compress and move them together, so the
library provides a simple archive: a table of contents followed by one
independent cuSZp2 stream per field.  Streams stay byte-identical to
standalone compression -- the archive adds framing only -- and any field
can be extracted (or randomly accessed) without touching the others.

Layout (little-endian).  Version 2 (written by :func:`pack`)::

    [8-byte magic 'CSZ2ARC2']
    [u32 field count]
    per field: [u16 name length][name utf-8][u64 stream length][u32 stream CRC32]
    [u32 TOC CRC32 over everything after the magic]
    concatenated streams

The per-field CRC plus the TOC CRC give the archive *per-field integrity*:
a damaged field is detected by its own checksum, and because the length
table itself is checksummed, one corrupted length can never shift -- and
thereby poison -- the byte ranges of the other fields.  Version 1 archives
(magic ``'CSZ2ARCH'``, no CRCs) still parse and extract unchanged.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from .compressor import CuSZp2
from .errors import IntegrityError, StreamFormatError
from .quantize import ErrorBound
from .random_access import RandomAccessor
from .stream import crc32

MAGIC_V1 = b"CSZ2ARCH"
MAGIC = b"CSZ2ARC2"


@dataclass(frozen=True)
class ArchiveEntry:
    name: str
    offset: int  # byte offset of the stream within the archive
    length: int
    crc: Optional[int] = None  # CRC32 of the stream bytes (v2 archives)


def _need(buf: np.ndarray, pos: int, n: int, what: str) -> None:
    """Bounds-check a TOC read, raising a diagnosable error instead of
    letting a short slice reach ``struct.unpack`` (which would surface as a
    bare ``struct.error``)."""
    if buf.size < pos + n:
        raise StreamFormatError(
            f"archive TOC truncated reading {what}: need bytes "
            f"[{pos}, {pos + n}), archive ends at {buf.size}"
        )


class DatasetArchive:
    """Read view over a packed archive (v1 or v2)."""

    def __init__(self, buf):
        if not isinstance(buf, np.ndarray):
            buf = np.frombuffer(bytes(buf), dtype=np.uint8)
        self._buf = buf
        self.entries: Dict[str, ArchiveEntry] = {}
        self.version = 0
        self._parse()

    def _parse(self) -> None:
        buf = self._buf
        if buf.size < len(MAGIC):
            raise StreamFormatError(
                f"archive is {buf.size} bytes; the magic alone occupies "
                f"bytes [0, {len(MAGIC)})"
            )
        magic = bytes(buf[: len(MAGIC)])
        if magic == MAGIC:
            self.version = 2
        elif magic == MAGIC_V1:
            self.version = 1
        else:
            raise StreamFormatError(
                f"bad archive magic {magic!r} at byte offset 0 "
                f"(expected {MAGIC!r} or {MAGIC_V1!r})"
            )
        pos = len(MAGIC)
        _need(buf, pos, 4, "field count")
        (count,) = struct.unpack("<I", buf[pos : pos + 4].tobytes())
        pos += 4
        # Cheapest possible entry: empty name -> 10 bytes (v1) / 14 (v2).
        min_entry = 10 if self.version == 1 else 14
        if count * min_entry > buf.size - pos:
            raise StreamFormatError(
                f"archive TOC at byte offset {len(MAGIC)} declares {count} "
                f"fields needing >= {count * min_entry} TOC bytes, but only "
                f"{buf.size - pos} bytes remain"
            )
        toc_start = len(MAGIC)
        toc: List[Tuple[str, int, Optional[int]]] = []
        for i in range(count):
            _need(buf, pos, 2, f"name length of field {i}")
            (nlen,) = struct.unpack("<H", buf[pos : pos + 2].tobytes())
            pos += 2
            _need(buf, pos, nlen, f"name of field {i}")
            try:
                name = buf[pos : pos + nlen].tobytes().decode("utf-8")
            except UnicodeDecodeError as e:
                raise StreamFormatError(
                    f"archive TOC corrupt: field {i} name at bytes "
                    f"[{pos}, {pos + nlen}) is not valid UTF-8 ({e})"
                ) from None
            pos += nlen
            _need(buf, pos, 8, f"stream length of field {name!r}")
            (slen,) = struct.unpack("<Q", buf[pos : pos + 8].tobytes())
            pos += 8
            scrc = None
            if self.version == 2:
                _need(buf, pos, 4, f"stream CRC of field {name!r}")
                (scrc,) = struct.unpack("<I", buf[pos : pos + 4].tobytes())
                pos += 4
            toc.append((name, slen, scrc))
        if self.version == 2:
            _need(buf, pos, 4, "TOC CRC")
            (toc_crc,) = struct.unpack("<I", buf[pos : pos + 4].tobytes())
            computed = crc32(buf[toc_start:pos])
            pos += 4
            if toc_crc != computed:
                raise IntegrityError(
                    f"archive TOC CRC mismatch over bytes [{toc_start}, {pos - 4}): "
                    f"stored 0x{toc_crc:08x}, computed 0x{computed:08x}; field "
                    "boundaries cannot be trusted"
                )
        for name, slen, scrc in toc:
            if buf.size < pos + slen:
                raise StreamFormatError(
                    f"archive stream for {name!r} truncated: needs bytes "
                    f"[{pos}, {pos + slen}), archive ends at {buf.size}"
                )
            if name in self.entries:
                raise StreamFormatError(f"duplicate archive entry {name!r}")
            self.entries[name] = ArchiveEntry(name, pos, slen, scrc)
            pos += slen

    @property
    def names(self) -> List[str]:
        return list(self.entries)

    def stream(self, name: str) -> np.ndarray:
        try:
            e = self.entries[name]
        except KeyError:
            raise KeyError(f"archive has no field {name!r}; have {self.names}") from None
        return self._buf[e.offset : e.offset + e.length]

    def verify_field(self, name: str) -> bool:
        """Check one field's archive-level CRC (always ``True`` for v1
        archives, which carry none)."""
        e = self.entries[name] if name in self.entries else None
        if e is None:
            raise KeyError(f"archive has no field {name!r}; have {self.names}")
        if e.crc is None:
            return True
        return crc32(self.stream(name)) == e.crc

    def verify_all(self) -> Dict[str, bool]:
        """Per-field integrity map; damaged fields never block intact ones."""
        return {name: self.verify_field(name) for name in self.names}

    def extract(self, name: str, on_corruption: str = "raise") -> np.ndarray:
        """Decompress one field.

        ``on_corruption="raise"`` (default) raises :class:`IntegrityError`
        when the field's archive CRC or its stream's own checksums fail;
        ``"recover"`` salvages every intact block group of the damaged
        stream (see :func:`repro.core.decompress`).

        Streams produced by other registered codecs (``repro.codecs``,
        e.g. an auto-tuned archive) dispatch through
        :func:`repro.codecs.decode`; ``on_corruption="recover"`` applies
        to core CSZ2 streams only -- the baselines carry no group
        checksums to salvage from.
        """
        from .compressor import decompress
        from .stream import MAGIC as _CSZ2

        s = self.stream(name)
        if on_corruption == "raise" and not self.verify_field(name):
            raise IntegrityError(
                f"archive field {name!r} failed its CRC check "
                f"(bytes [{self.entries[name].offset}, "
                f"{self.entries[name].offset + self.entries[name].length})); "
                "other fields are unaffected"
            )
        if s.size >= len(_CSZ2) and bytes(s[: len(_CSZ2)]) == _CSZ2:
            return decompress(s, on_corruption=on_corruption)
        from ..codecs import decode as _codec_decode  # lazy: codecs imports archive

        return _codec_decode(s)

    def accessor(self, name: str) -> RandomAccessor:
        """Random access into one field without extracting it."""
        return RandomAccessor(self.stream(name))

    def extract_all(self, on_corruption: str = "raise") -> Dict[str, np.ndarray]:
        return {name: self.extract(name, on_corruption) for name in self.names}

    @property
    def nbytes(self) -> int:
        return int(self._buf.size)


def pack(
    fields: Mapping[str, np.ndarray],
    error_bound,
    mode: str = "outlier",
    block: int = 32,
) -> np.ndarray:
    """Compress every field and pack them into one archive byte array."""
    if not fields:
        raise ValueError("cannot pack an empty archive")
    if isinstance(error_bound, (int, float)):
        error_bound = ErrorBound.relative(float(error_bound))
    compressor = CuSZp2(error_bound, mode=mode, block=block)

    streams = {name: compressor.compress(data) for name, data in fields.items()}
    return pack_streams(streams)


def pack_streams(streams: Mapping[str, np.ndarray]) -> np.ndarray:
    """Pack *already-compressed* CSZ2 streams into one archive byte array.

    The archive adds framing only -- each stream is stored byte-identical
    to its standalone form -- which is what the compressed-array tier's
    spill/checkpoint path needs: re-archiving a stream must never
    re-quantize the data it holds.
    """
    if not streams:
        raise ValueError("cannot pack an empty archive")
    streams = {
        name: (s if isinstance(s, np.ndarray) else np.frombuffer(bytes(s), dtype=np.uint8))
        for name, s in streams.items()
    }
    toc = bytearray()
    toc += struct.pack("<I", len(streams))
    for name, s in streams.items():
        encoded = name.encode("utf-8")
        if len(encoded) > 0xFFFF:
            raise ValueError(f"field name too long: {name[:40]!r}...")
        toc += struct.pack("<H", len(encoded)) + encoded
        toc += struct.pack("<QI", int(s.size), crc32(s))
    toc += struct.pack("<I", crc32(bytes(toc)))
    return np.concatenate(
        [np.frombuffer(MAGIC + bytes(toc), dtype=np.uint8)]
        + [streams[n] for n in streams]
    )


def pack_dataset(dataset_name: str, error_bound, mode: str = "outlier", scale: int = 1) -> np.ndarray:
    """Pack every synthetic field of a registry dataset (Table II/IV)."""
    from ..datasets import get_dataset

    ds = get_dataset(dataset_name)
    return pack(ds.generate_all(scale=scale), error_bound, mode=mode)
