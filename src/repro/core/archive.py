"""Multi-field archives: compressing a whole dataset into one container.

SDRBench datasets ship as directories of raw fields (Table II: CESM-ATM has
33, HACC 6, ...).  Downstream users compress and move them together, so the
library provides a simple archive: a table of contents followed by one
independent cuSZp2 stream per field.  Streams stay byte-identical to
standalone compression -- the archive adds framing only -- and any field
can be extracted (or randomly accessed) without touching the others.

Layout (little-endian)::

    [8-byte magic 'CSZ2ARCH']
    [u32 field count]
    per field: [u16 name length][name utf-8][u64 stream length]
    concatenated streams
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Tuple

import numpy as np

from .compressor import CuSZp2
from .errors import StreamFormatError
from .quantize import ErrorBound
from .random_access import RandomAccessor

MAGIC = b"CSZ2ARCH"


@dataclass(frozen=True)
class ArchiveEntry:
    name: str
    offset: int  # byte offset of the stream within the archive
    length: int


class DatasetArchive:
    """Read view over a packed archive."""

    def __init__(self, buf):
        if not isinstance(buf, np.ndarray):
            buf = np.frombuffer(bytes(buf), dtype=np.uint8)
        self._buf = buf
        self.entries: Dict[str, ArchiveEntry] = {}
        self._parse()

    def _parse(self) -> None:
        buf = self._buf
        if buf.size < len(MAGIC) + 4 or bytes(buf[: len(MAGIC)]) != MAGIC:
            raise StreamFormatError("not a cuSZp2 archive")
        pos = len(MAGIC)
        (count,) = struct.unpack("<I", buf[pos : pos + 4].tobytes())
        pos += 4
        toc: List[Tuple[str, int]] = []
        for _ in range(count):
            if buf.size < pos + 2:
                raise StreamFormatError("archive TOC truncated")
            (nlen,) = struct.unpack("<H", buf[pos : pos + 2].tobytes())
            pos += 2
            name = buf[pos : pos + nlen].tobytes().decode("utf-8")
            pos += nlen
            (slen,) = struct.unpack("<Q", buf[pos : pos + 8].tobytes())
            pos += 8
            toc.append((name, slen))
        for name, slen in toc:
            if buf.size < pos + slen:
                raise StreamFormatError(f"archive stream for {name!r} truncated")
            if name in self.entries:
                raise StreamFormatError(f"duplicate archive entry {name!r}")
            self.entries[name] = ArchiveEntry(name, pos, slen)
            pos += slen

    @property
    def names(self) -> List[str]:
        return list(self.entries)

    def stream(self, name: str) -> np.ndarray:
        try:
            e = self.entries[name]
        except KeyError:
            raise KeyError(f"archive has no field {name!r}; have {self.names}") from None
        return self._buf[e.offset : e.offset + e.length]

    def extract(self, name: str) -> np.ndarray:
        """Decompress one field."""
        from .compressor import decompress

        return decompress(self.stream(name))

    def accessor(self, name: str) -> RandomAccessor:
        """Random access into one field without extracting it."""
        return RandomAccessor(self.stream(name))

    def extract_all(self) -> Dict[str, np.ndarray]:
        return {name: self.extract(name) for name in self.names}

    @property
    def nbytes(self) -> int:
        return int(self._buf.size)


def pack(
    fields: Mapping[str, np.ndarray],
    error_bound,
    mode: str = "outlier",
    block: int = 32,
) -> np.ndarray:
    """Compress every field and pack them into one archive byte array."""
    if not fields:
        raise ValueError("cannot pack an empty archive")
    if isinstance(error_bound, (int, float)):
        error_bound = ErrorBound.relative(float(error_bound))
    compressor = CuSZp2(error_bound, mode=mode, block=block)

    streams = {name: compressor.compress(data) for name, data in fields.items()}
    toc = bytearray()
    toc += MAGIC
    toc += struct.pack("<I", len(streams))
    for name, s in streams.items():
        encoded = name.encode("utf-8")
        if len(encoded) > 0xFFFF:
            raise ValueError(f"field name too long: {name[:40]!r}...")
        toc += struct.pack("<H", len(encoded)) + encoded + struct.pack("<Q", int(s.size))
    return np.concatenate(
        [np.frombuffer(bytes(toc), dtype=np.uint8)] + [streams[n] for n in streams]
    )


def pack_dataset(dataset_name: str, error_bound, mode: str = "outlier", scale: int = 1) -> np.ndarray:
    """Pack every synthetic field of a registry dataset (Table II/IV)."""
    from ..datasets import get_dataset

    ds = get_dataset(dataset_name)
    return pack(ds.generate_all(scale=scale), error_bound, mode=mode)
