"""Blockwise first-order difference predictors (Lorenzo family).

cuSZp2 processes data in 1-D, applying a first-order difference within each
block: ``d[0] = q[0]``, ``d[i] = q[i] - q[i-1]`` (Section III).  Blocks are
fully independent -- the first element differences against an implicit zero
-- which is exactly what enables random access and what makes the first
element of a smooth block an *outlier* (Section IV-A, Fig. 6).

For Table VI the paper also evaluates 2-D (8x8) and 3-D (4x4x4) Lorenzo
variants; those are implemented here as tile predictors that share the same
downstream fixed-length encoding.

Every function is fully vectorized over blocks per the repo's HPC style:
the per-block recurrence in decoding is a cumulative sum, not a Python
loop.
"""

from __future__ import annotations

import numpy as np


# ---------------------------------------------------------------------------
# 1-D (the cuSZp2 default)
# ---------------------------------------------------------------------------

def blockize_1d(q: np.ndarray, block: int) -> np.ndarray:
    """Reshape a flat quant array into ``(nblocks, block)``, padding the tail
    by repeating the final value so the padded deltas are zero (keeps the
    last block's fixed length small and reconstructs exactly after
    truncation)."""
    n = q.shape[0]
    nblocks = -(-n // block)
    if nblocks * block != n:
        pad = np.full(nblocks * block - n, q[-1], dtype=q.dtype)
        q = np.concatenate([q, pad])
    return q.reshape(nblocks, block)


def diff_1d(qblocks: np.ndarray) -> np.ndarray:
    """First-order difference within each row; ``d[:, 0]`` keeps the raw
    quant value (difference against an implicit zero).  Written as one
    subtract into a preallocated result -- ``np.diff(..., prepend=...)``
    would concatenate a full padded copy first."""
    d = np.empty_like(qblocks)
    d[:, 0] = qblocks[:, 0]
    np.subtract(qblocks[:, 1:], qblocks[:, :-1], out=d[:, 1:])
    return d


def undiff_1d(dblocks: np.ndarray, out: np.ndarray = None) -> np.ndarray:
    """Invert :func:`diff_1d` (prefix sum along each row).  ``out`` lets
    callers accumulate straight into a preallocated result (accumulation
    happens in ``out``'s dtype, so an int64 ``out`` is overflow-proof even
    for int32 deltas)."""
    return np.cumsum(dblocks, axis=1, out=out)


# ---------------------------------------------------------------------------
# 2-D / 3-D Lorenzo tiles (Table VI)
# ---------------------------------------------------------------------------

def _pad_to_multiple(field: np.ndarray, tile: tuple) -> np.ndarray:
    """Edge-replicate ``field`` so every axis is a multiple of the tile."""
    pads = []
    for size, t in zip(field.shape, tile):
        target = -(-size // t) * t
        pads.append((0, target - size))
    if any(p[1] for p in pads):
        field = np.pad(field, pads, mode="edge")
    return field


def _tile_2d(field: np.ndarray, t: int) -> np.ndarray:
    """(H, W) -> (ntiles, t, t) in row-major tile order."""
    h, w = field.shape
    return (
        field.reshape(h // t, t, w // t, t)
        .transpose(0, 2, 1, 3)
        .reshape(-1, t, t)
    )


def _untile_2d(tiles: np.ndarray, shape: tuple, t: int) -> np.ndarray:
    h, w = shape
    return (
        tiles.reshape(h // t, w // t, t, t)
        .transpose(0, 2, 1, 3)
        .reshape(h, w)
    )


def _tile_3d(field: np.ndarray, t: int) -> np.ndarray:
    d0, d1, d2 = field.shape
    return (
        field.reshape(d0 // t, t, d1 // t, t, d2 // t, t)
        .transpose(0, 2, 4, 1, 3, 5)
        .reshape(-1, t, t, t)
    )


def _untile_3d(tiles: np.ndarray, shape: tuple, t: int) -> np.ndarray:
    d0, d1, d2 = shape
    return (
        tiles.reshape(d0 // t, d1 // t, d2 // t, t, t, t)
        .transpose(0, 3, 1, 4, 2, 5)
        .reshape(d0, d1, d2)
    )


def lorenzo_diff_2d(tiles: np.ndarray) -> np.ndarray:
    """2-D first-order Lorenzo within each (t, t) tile:
    ``d[i,j] = q[i,j] - q[i-1,j] - q[i,j-1] + q[i-1,j-1]`` with zero padding
    outside the tile.  Equivalent to differencing along both axes."""
    zeros_r = np.zeros((tiles.shape[0], 1, tiles.shape[2]), dtype=tiles.dtype)
    d = np.diff(tiles, axis=1, prepend=zeros_r)
    zeros_c = np.zeros((tiles.shape[0], tiles.shape[1], 1), dtype=tiles.dtype)
    return np.diff(d, axis=2, prepend=zeros_c)


def lorenzo_undiff_2d(dtiles: np.ndarray) -> np.ndarray:
    """Inverse 2-D Lorenzo: cumulative sums along both tile axes (the
    'complex partial-sum in decompression' of Section VI-D)."""
    return np.cumsum(np.cumsum(dtiles, axis=1), axis=2)


def lorenzo_diff_3d(tiles: np.ndarray) -> np.ndarray:
    """3-D first-order Lorenzo (7-neighbour stencil) within each tile,
    implemented as successive axis differences."""
    d = tiles
    for axis in (1, 2, 3):
        shape = list(d.shape)
        shape[axis] = 1
        d = np.diff(d, axis=axis, prepend=np.zeros(shape, dtype=d.dtype))
    return d


def lorenzo_undiff_3d(dtiles: np.ndarray) -> np.ndarray:
    q = dtiles
    for axis in (1, 2, 3):
        q = np.cumsum(q, axis=axis)
    return q


# ---------------------------------------------------------------------------
# Unified predictor interface used by the compressor
# ---------------------------------------------------------------------------

#: tile edge per predictor dimensionality used by Table VI (64 elements in
#: every case, "to be fair": 64, 8x8, 4x4x4).
TABLE6_TILES = {1: 64, 2: 8, 3: 4}


def forward(q: np.ndarray, dims: tuple, ndim: int, block: int) -> np.ndarray:
    """Apply the ``ndim``-dimensional predictor; returns ``(nblocks, L)``
    delta blocks where ``L == block`` for 1-D and ``tile**ndim`` otherwise.
    ``dims`` is the logical shape of the field (ignored for 1-D)."""
    if ndim == 1:
        return diff_1d(blockize_1d(q, block))
    t = round(block ** (1.0 / ndim))
    if t**ndim != block:
        raise ValueError(f"block size {block} is not a perfect {ndim}-dim tile")
    field = q.reshape(dims)
    if ndim == 2:
        field = _pad_to_multiple(field, (t, t))
        tiles = _tile_2d(field, t)
        return lorenzo_diff_2d(tiles).reshape(tiles.shape[0], -1)
    if ndim == 3:
        field = _pad_to_multiple(field, (t, t, t))
        tiles = _tile_3d(field, t)
        return lorenzo_diff_3d(tiles).reshape(tiles.shape[0], -1)
    raise ValueError(f"unsupported predictor dimensionality {ndim}")


def inverse(dblocks: np.ndarray, dims: tuple, ndim: int, block: int, nelems: int) -> np.ndarray:
    """Invert :func:`forward`; returns the flat quant array of ``nelems``."""
    if ndim == 1:
        return undiff_1d(dblocks).reshape(-1)[:nelems]
    t = round(block ** (1.0 / ndim))
    if ndim == 2:
        h, w = dims
        ph, pw = -(-h // t) * t, -(-w // t) * t
        tiles = lorenzo_undiff_2d(dblocks.reshape(-1, t, t))
        return _untile_2d(tiles, (ph, pw), t)[:h, :w].reshape(-1)
    if ndim == 3:
        d0, d1, d2 = dims
        p0, p1, p2 = (-(-s // t) * t for s in dims)
        tiles = lorenzo_undiff_3d(dblocks.reshape(-1, t, t, t))
        return _untile_3d(tiles, (p0, p1, p2), t)[:d0, :d1, :d2].reshape(-1)
    raise ValueError(f"unsupported predictor dimensionality {ndim}")
