"""Stream verification: the paper's 'Pass error check!' as a library call.

The AE appendix's binaries end every run with an internal error-bound
check.  :func:`verify` packages that: decompress a stream against its
original data and report whether the stored bound held, along with the
quality numbers a user would log.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import stream as stream_mod
from .compressor import decompress


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of verifying a compressed stream against its original."""

    passed: bool
    eb_abs: float
    max_error: float
    psnr_db: float
    compression_ratio: float
    nelems: int

    def __str__(self) -> str:
        status = "Pass error check!" if self.passed else "ERROR CHECK FAILED"
        return (
            f"{status}\n"
            f"  error bound:  {self.eb_abs:.6e}\n"
            f"  max error:    {self.max_error:.6e}\n"
            f"  PSNR:         {self.psnr_db:.2f} dB\n"
            f"  ratio:        {self.compression_ratio:.4f}"
        )


def verify(original: np.ndarray, stream) -> VerificationReport:
    """Decompress ``stream`` and check it against ``original``.

    The pass criterion is the codec's guarantee: pointwise error at most
    the stored absolute bound plus a half-ULP of the reconstruction (see
    ``repro.core.quantize``).
    """
    from ..metrics import max_abs_error, psnr

    buf = stream if isinstance(stream, np.ndarray) else np.frombuffer(bytes(stream), dtype=np.uint8)
    header, _, _ = stream_mod.split(buf)
    recon = decompress(buf)

    flat_orig = np.asarray(original).reshape(-1)
    flat_recon = np.asarray(recon).reshape(-1)
    if flat_orig.size != flat_recon.size:
        raise ValueError(
            f"original has {flat_orig.size} elements, stream decodes {flat_recon.size}"
        )
    err = max_abs_error(flat_orig, flat_recon)
    slack = 0.5 * float(np.spacing(np.abs(flat_recon).max())) if flat_recon.size else 0.0
    return VerificationReport(
        passed=err <= header.eb_abs + slack,
        eb_abs=header.eb_abs,
        max_error=err,
        psnr_db=psnr(flat_orig, flat_recon),
        compression_ratio=flat_orig.size * flat_orig.dtype.itemsize / buf.size,
        nelems=header.nelems,
    )
