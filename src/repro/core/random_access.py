"""Random access into a compressed cuSZp2 stream (paper Section VI-B).

Because cuSZp2 compresses at block granularity and blocks are mutually
independent (the first element of every block differences against an
implicit zero), any block can be reconstructed by

1. reading the fixed-location offset bytes,
2. prefix-summing the per-block payload sizes they imply (the same global
   synchronization the decompression kernel performs), and
3. decoding just the requested block's payload.

:class:`RandomAccessor` amortizes steps 1-2 across many requests, which is
how the paper reaches TB-level random-access throughput (Fig. 20): the work
per access is tiny compared to the dataset the throughput is normalized by.
Random access is only available for the 1-D predictor (the cuSZp2 default);
Lorenzo tiles of the 2-D/3-D variants are also independent, but their
element indexing is tile-based and out of scope for this API.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from . import fle, predictor, stream
from .errors import RandomAccessError
from .quantize import dequantize


class RandomAccessor:
    """Decode arbitrary blocks or element ranges of a compressed stream."""

    def __init__(self, buf):
        if not isinstance(buf, np.ndarray):
            buf = np.frombuffer(bytes(buf), dtype=np.uint8)
        self._raw = buf
        self.header, self._offsets, self._payload = stream.split(buf)
        if self.header.predictor_ndim != 1:
            raise RandomAccessError(
                "random access requires the 1-D predictor "
                f"(stream uses {self.header.predictor_ndim}-D)"
            )
        sizes = fle.block_payload_sizes(self._offsets, self.header.block)
        # Exclusive prefix sum: block i's payload is payload[bounds[i]:bounds[i+1]].
        self._bounds = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)
        if int(self._bounds[-1]) != self._payload.size:
            from .errors import StreamFormatError

            raise StreamFormatError(
                f"offset bytes describe {int(self._bounds[-1])} payload bytes "
                f"but the stream holds {self._payload.size}"
            )

    @property
    def nblocks(self) -> int:
        return self._offsets.shape[0]

    @property
    def block(self) -> int:
        return self.header.block

    def _check_block(self, idx: int) -> int:
        if not -self.nblocks <= idx < self.nblocks:
            raise RandomAccessError(f"block {idx} out of range [0, {self.nblocks})")
        return idx % self.nblocks

    def decode_block(self, idx: int) -> np.ndarray:
        """Reconstruct the ``idx``-th data block (its valid elements only
        for the final, possibly partial, block)."""
        return self.decode_blocks(np.array([self._check_block(idx)]))[0][
            : self._valid_len(self._check_block(idx))
        ]

    def decode_blocks(self, indices: np.ndarray) -> np.ndarray:
        """Reconstruct several blocks at once; returns ``(k, L)`` floats
        (padding elements of a trailing partial block are reconstructed but
        meaningless)."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.nblocks):
            raise RandomAccessError(
                f"block indices must lie in [0, {self.nblocks}); got "
                f"[{indices.min()}, {indices.max()}]"
            )
        L = self.header.block
        widths = self._bounds[indices + 1] - self._bounds[indices]
        deltas = np.zeros((indices.size, L), dtype=np.int64)
        for w in np.unique(widths):
            sel = widths == w
            idx = indices[sel]
            rows_payload = (
                self._payload[
                    self._bounds[idx][:, None] + np.arange(int(w))[None, :]
                ]
                if w
                else np.empty((idx.size, 0), dtype=np.uint8)
            )
            deltas[sel] = fle.decode_blocks(
                self._offsets[idx], rows_payload.reshape(-1), L
            )
        q = predictor.undiff_1d(deltas)
        return dequantize(q, self.header.eb_abs, self.header.dtype)

    def _valid_len(self, idx: int) -> int:
        L = self.header.block
        return min(L, self.header.nelems - idx * L)

    def block_for_element(self, elem: int) -> Tuple[int, int]:
        """Map a flat element index to ``(block_index, offset_in_block)``."""
        if not 0 <= elem < self.header.nelems:
            raise RandomAccessError(f"element {elem} out of range [0, {self.header.nelems})")
        return divmod(elem, self.header.block)

    def decode_range(self, start: int, stop: int) -> np.ndarray:
        """Reconstruct the flat element range ``[start, stop)``."""
        if not 0 <= start <= stop <= self.header.nelems:
            raise RandomAccessError(
                f"range [{start}, {stop}) outside [0, {self.header.nelems}]"
            )
        if start == stop:
            return np.empty(0, dtype=self.header.dtype)
        L = self.header.block
        b0, b1 = start // L, (stop - 1) // L
        rows = self.decode_blocks(np.arange(b0, b1 + 1))
        flat = rows.reshape(-1)
        return flat[start - b0 * L : stop - b0 * L]

    def payload_bytes_touched(self, indices: np.ndarray) -> int:
        """Payload bytes actually read to decode ``indices`` -- used by the
        performance model to credit random access with its tiny traffic."""
        indices = np.asarray(indices, dtype=np.int64)
        return int((self._bounds[indices + 1] - self._bounds[indices]).sum())

    # -- random-access write (Section VI-B: "random access write have
    # similar results") ----------------------------------------------------

    def rewrite_block(self, idx: int, values: np.ndarray) -> np.ndarray:
        """Replace the contents of block ``idx`` and return the updated
        stream.

        The new values are quantized under the stream's stored error bound
        and re-encoded with its encoding mode.  When the re-encoded payload
        has the same length, the write is a local splice (the offset byte
        plus that block's payload bytes -- the in-place case real
        random-access write exploits); otherwise the surrounding payload is
        shifted, which is still a single pass over the byte array.
        """
        from . import fle as fle_mod
        from .quantize import quantize

        idx = self._check_block(idx)
        L = self.header.block
        valid = self._valid_len(idx)
        values = np.asarray(values)
        if values.shape != (valid,):
            raise RandomAccessError(
                f"block {idx} holds {valid} elements; got shape {values.shape}"
            )
        if values.dtype != self.header.dtype:
            values = values.astype(self.header.dtype)

        q = quantize(values.astype(np.float64), self.header.eb_abs)
        if valid < L:  # trailing partial block pads by repeating the last value
            q = np.concatenate([q, np.full(L - valid, q[-1], dtype=np.int64)])
        deltas = predictor.diff_1d(q.reshape(1, L))
        new_offset, new_payload = fle_mod.encode_blocks(
            deltas, use_outlier=self.header.mode == 1
        )

        lo, hi = int(self._bounds[idx]), int(self._bounds[idx + 1])
        head_end = stream.HEADER_SIZE
        off_section = self._offsets.copy()
        off_section[idx] = new_offset[0]
        new_buf = np.concatenate(
            [
                # header bytes (includes the orig-ndim tag at offset 10)
                np.asarray(self._raw[:head_end]),
                off_section,
                self._payload[:lo],
                new_payload,
                self._payload[hi:],
            ]
        )
        return new_buf

    def updated(self, idx: int, values: np.ndarray) -> "RandomAccessor":
        """Functional update: a new accessor over the rewritten stream."""
        return RandomAccessor(self.rewrite_block(idx, values))
