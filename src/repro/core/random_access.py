"""Random access into a compressed cuSZp2 stream (paper Section VI-B).

Because cuSZp2 compresses at block granularity and blocks are mutually
independent (the first element of every block differences against an
implicit zero), any block can be reconstructed by

1. reading the fixed-location offset bytes,
2. prefix-summing the per-block payload sizes they imply (the same global
   synchronization the decompression kernel performs), and
3. decoding just the requested block's payload.

:class:`RandomAccessor` amortizes steps 1-2 across many requests, which is
how the paper reaches TB-level random-access throughput (Fig. 20): the work
per access is tiny compared to the dataset the throughput is normalized by.
Random access is only available for the 1-D predictor (the cuSZp2 default);
Lorenzo tiles of the 2-D/3-D variants are also independent, but their
element indexing is tile-based and out of scope for this API.

Format v2 streams are verified on construction (``verify_integrity="auto"``).
With ``on_corruption="recover"`` an accessor over a damaged stream still
serves every block of every intact checksum group -- corrupt groups'
blocks come back filled with ``fill_value`` -- because the stored per-group
payload lengths keep intact groups addressable even when a corrupted
offset byte elsewhere would have shifted the global prefix sum.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from . import fle, predictor, stream
from .errors import IntegrityError, RandomAccessError, StreamFormatError
from .quantize import dequantize


class RandomAccessor:
    """Decode arbitrary blocks or element ranges of a compressed stream."""

    def __init__(
        self,
        buf,
        verify_integrity: str = "auto",
        on_corruption: str = "raise",
        fill_value: float = np.nan,
    ):
        if verify_integrity not in ("auto", "verify", "skip"):
            raise RandomAccessError(
                f"verify_integrity must be 'auto', 'verify' or 'skip', "
                f"got {verify_integrity!r}"
            )
        if on_corruption not in ("raise", "recover"):
            raise RandomAccessError(
                f"on_corruption must be 'raise' or 'recover', got {on_corruption!r}"
            )
        if not isinstance(buf, np.ndarray):
            buf = np.frombuffer(bytes(buf), dtype=np.uint8)
        self._raw = buf
        self._fill_value = fill_value
        self.header, self._section, self._offsets, self._payload = stream.split_ex(buf)
        if self.header.predictor_ndim != 1:
            raise RandomAccessError(
                "random access requires the 1-D predictor "
                f"(stream uses {self.header.predictor_ndim}-D)"
            )

        self.report = None
        if verify_integrity != "skip":
            from .integrity import verify as _verify

            report = _verify(buf)
            self.report = report
            if verify_integrity == "verify" and not report.has_checksums:
                raise IntegrityError(
                    "verify_integrity='verify' but the stream is format v1 "
                    "and carries no checksums",
                    report,
                )
            if not report.ok:
                if on_corruption == "raise":
                    raise IntegrityError(report.summary(), report)
                if not report.recoverable:
                    raise IntegrityError(
                        "cannot recover: " + report.summary(), report
                    )
                self._init_recover(report)
                return
        self._init_intact()

    # -- layout ------------------------------------------------------------

    def _init_intact(self) -> None:
        """Trusted stream: global prefix sum over all offset bytes."""
        sizes = fle.block_payload_sizes(self._offsets, self.header.block)
        # Exclusive prefix sum: block i's payload is payload[starts[i]:starts[i]+sizes[i]].
        bounds = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)
        if int(bounds[-1]) != self._payload.size:
            raise StreamFormatError(
                f"offset bytes describe {int(bounds[-1])} payload bytes "
                f"but the stream holds {self._payload.size}"
            )
        self._starts = bounds[:-1]
        self._sizes = sizes.astype(np.int64)
        self._bounds = bounds

    def _init_recover(self, report) -> None:
        """Damaged stream: per-group payload bounds from the checksum TOC.

        Intact groups' offset bytes are CRC-verified and therefore trusted
        within the group; corrupt groups' blocks get start = -1.
        """
        section = self._section
        G = section.group_blocks
        bad = set(report.corrupt_groups)
        gbounds = section.payload_bounds()
        nblocks = self._offsets.shape[0]
        starts = np.full(nblocks, -1, dtype=np.int64)
        sizes = np.zeros(nblocks, dtype=np.int64)
        for g in range(section.ngroups):
            if g in bad:
                continue
            lo, hi = g * G, min((g + 1) * G, nblocks)
            gsizes = fle.block_payload_sizes(
                self._offsets[lo:hi], self.header.block
            ).astype(np.int64)
            gstarts = int(gbounds[g]) + np.concatenate([[0], np.cumsum(gsizes)[:-1]])
            starts[lo:hi] = gstarts
            sizes[lo:hi] = gsizes
        self._starts = starts
        self._sizes = sizes
        self._bounds = None  # global prefix sum is not trustworthy

    @property
    def nblocks(self) -> int:
        return self._offsets.shape[0]

    @property
    def block(self) -> int:
        return self.header.block

    def block_ok(self, idx: int) -> bool:
        """Whether block ``idx`` lies in an intact (or unverified) region."""
        return bool(self._starts[self._check_block(idx)] >= 0)

    def _check_block(self, idx: int) -> int:
        if not -self.nblocks <= idx < self.nblocks:
            raise RandomAccessError(f"block {idx} out of range [0, {self.nblocks})")
        return idx % self.nblocks

    def decode_block(self, idx: int) -> np.ndarray:
        """Reconstruct the ``idx``-th data block (its valid elements only
        for the final, possibly partial, block)."""
        return self.decode_blocks(np.array([self._check_block(idx)]))[0][
            : self._valid_len(self._check_block(idx))
        ]

    def decode_blocks(self, indices: np.ndarray) -> np.ndarray:
        """Reconstruct several blocks at once; returns ``(k, L)`` floats
        (padding elements of a trailing partial block are reconstructed but
        meaningless; blocks of corrupt groups are filled with the accessor's
        ``fill_value`` in recover mode)."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.nblocks):
            raise RandomAccessError(
                f"block indices must lie in [0, {self.nblocks}); got "
                f"[{indices.min()}, {indices.max()}]"
            )
        L = self.header.block
        starts = self._starts[indices]
        good = starts >= 0
        widths = np.where(good, self._sizes[indices], 0)
        deltas = np.zeros((indices.size, L), dtype=np.int64)
        for w in np.unique(widths[good]) if good.any() else []:
            sel = good & (widths == w)
            row_starts = starts[sel]
            rows_payload = (
                self._payload[row_starts[:, None] + np.arange(int(w))[None, :]]
                if w
                else np.empty((int(sel.sum()), 0), dtype=np.uint8)
            )
            deltas[sel] = fle.decode_blocks(
                self._offsets[indices[sel]], rows_payload.reshape(-1), L
            )
        q = predictor.undiff_1d(deltas)
        out = dequantize(q, self.header.eb_abs, self.header.dtype)
        if not good.all():
            out[~good] = self._fill_value
        return out

    def _valid_len(self, idx: int) -> int:
        L = self.header.block
        return min(L, self.header.nelems - idx * L)

    def block_for_element(self, elem: int) -> Tuple[int, int]:
        """Map a flat element index to ``(block_index, offset_in_block)``."""
        if not 0 <= elem < self.header.nelems:
            raise RandomAccessError(f"element {elem} out of range [0, {self.header.nelems})")
        return divmod(elem, self.header.block)

    def decode_range(self, start: int, stop: int) -> np.ndarray:
        """Reconstruct the flat element range ``[start, stop)``."""
        if not 0 <= start <= stop <= self.header.nelems:
            raise RandomAccessError(
                f"range [{start}, {stop}) outside [0, {self.header.nelems}]"
            )
        if start == stop:
            return np.empty(0, dtype=self.header.dtype)
        L = self.header.block
        b0, b1 = start // L, (stop - 1) // L
        rows = self.decode_blocks(np.arange(b0, b1 + 1))
        flat = rows.reshape(-1)
        return flat[start - b0 * L : stop - b0 * L]

    def payload_bytes_touched(self, indices: np.ndarray) -> int:
        """Payload bytes actually read to decode ``indices`` -- used by the
        performance model to credit random access with its tiny traffic."""
        indices = np.asarray(indices, dtype=np.int64)
        return int(self._sizes[indices].sum())

    # -- random-access write (Section VI-B: "random access write have
    # similar results") ----------------------------------------------------

    def rewrite_block(self, idx: int, values: np.ndarray) -> np.ndarray:
        """Replace the contents of block ``idx`` and return the updated
        stream.

        The new values are quantized under the stream's stored error bound
        and re-encoded with its encoding mode.  The surrounding payload is
        spliced around the re-encoded block and the v2 checksums are
        recomputed, so the result verifies clean.
        """
        return self.rewrite_blocks([idx], [values])

    def rewrite_blocks(self, indices, values) -> np.ndarray:
        """Replace several blocks at once and return the updated stream.

        Batched form of :meth:`rewrite_block`: all replacement blocks are
        quantized and re-encoded together, then spliced into the payload in
        one assemble/reseal pass, so rewriting ``k`` dirty blocks costs one
        O(stream) reconstruction instead of ``k`` (the write-back flush path
        of ``repro.store`` depends on this).  The result is byte-identical
        to applying :meth:`rewrite_block` sequentially for the same
        ``(index, values)`` pairs, because each block's quantization and
        encoding depend only on that block's values.
        """
        from . import fle as fle_mod
        from .quantize import quantize

        if self._bounds is None:
            raise IntegrityError(
                "cannot rewrite blocks of a corrupt stream opened in recover "
                "mode; repair or retransmit the damaged groups first",
                self.report,
            )
        indices = [self._check_block(int(i)) for i in np.asarray(indices, dtype=np.int64)]
        if len(indices) != len(values):
            raise RandomAccessError(
                f"{len(indices)} block indices but {len(values)} value arrays"
            )
        if len(set(indices)) != len(indices):
            raise RandomAccessError("duplicate block indices in rewrite_blocks")
        if not indices:
            return np.asarray(self._raw).copy()

        L = self.header.block
        # splice order is ascending block index; quantization order is
        # irrelevant (blocks are independent)
        order = sorted(range(len(indices)), key=lambda k: indices[k])
        qrows = np.empty((len(indices), L), dtype=np.int64)
        for row, k in enumerate(order):
            idx = indices[k]
            valid = self._valid_len(idx)
            vals = np.asarray(values[k])
            if vals.shape != (valid,):
                raise RandomAccessError(
                    f"block {idx} holds {valid} elements; got shape {vals.shape}"
                )
            if vals.dtype != self.header.dtype:
                vals = vals.astype(self.header.dtype)
            q = quantize(vals.astype(np.float64), self.header.eb_abs)
            if valid < L:  # trailing partial block pads by repeating the last value
                q = np.concatenate([q, np.full(L - valid, q[-1], dtype=np.int64)])
            qrows[row] = q
        deltas = predictor.diff_1d(qrows)
        new_offsets, new_payload = fle_mod.encode_blocks(
            deltas, use_outlier=self.header.mode == 1
        )
        new_sizes = fle_mod.block_payload_sizes(new_offsets, L).astype(np.int64)
        new_bounds = np.concatenate([[0], np.cumsum(new_sizes)]).astype(np.int64)

        off_section = self._offsets.copy()
        parts = []
        prev = 0
        for row, k in enumerate(order):
            idx = indices[k]
            off_section[idx] = new_offsets[row]
            lo, hi = int(self._bounds[idx]), int(self._bounds[idx + 1])
            parts.append(self._payload[prev:lo])
            parts.append(new_payload[new_bounds[row] : new_bounds[row + 1]])
            prev = hi
        parts.append(self._payload[prev:])
        payload = np.concatenate(parts)
        group_blocks = (
            self._section.group_blocks
            if self._section is not None
            else stream.DEFAULT_GROUP_BLOCKS
        )
        new_buf = stream.assemble(self.header, off_section, payload, group_blocks)
        # preserve the orig-ndim tag the header's reserved field carries,
        # then recompute the CRCs it participates in
        new_buf[10:12] = np.asarray(self._raw[10:12])
        return stream.reseal(new_buf)

    def updated(self, idx: int, values: np.ndarray) -> "RandomAccessor":
        """Functional update: a new accessor over the rewritten stream."""
        return RandomAccessor(self.rewrite_block(idx, values))
