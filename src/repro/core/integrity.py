"""Stream integrity verification and corrupt-block-group recovery.

Format v2 streams (see :mod:`repro.core.stream`) carry a header CRC plus
one CRC32 per fixed-size *block group*.  This module turns those checksums
into three capabilities:

* :func:`verify` -- check a stream without decoding it, returning a
  structured :class:`CorruptionReport`;
* ``decompress(..., on_corruption="raise")`` -- detection: any damaged
  stream raises :class:`~repro.core.errors.IntegrityError` carrying the
  report;
* ``decompress(..., on_corruption="recover")`` / :func:`recover` --
  graceful degradation: intact block groups decode bit-identically to an
  uncorrupted decode, damaged groups are filled with a sentinel value, and
  the report says exactly which element ranges are affected (the same
  group granularity :mod:`repro.collective` uses for partial
  retransmission).

v1 streams carry no checksums; verifying them is a no-op that reports
``has_checksums=False``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from . import stream as stream_mod
from .errors import IntegrityError

__all__ = ["CorruptionReport", "verify", "recover"]


@dataclass(frozen=True)
class CorruptionReport:
    """Structured result of verifying one stream's checksums."""

    version: int
    nblocks: int
    group_blocks: int  #: blocks per checksum group (0 when no checksums)
    ngroups: int
    has_checksums: bool
    header_ok: bool
    toc_ok: bool
    truncated_bytes: int  #: described bytes missing from the buffer (0 = none)
    corrupt_groups: Tuple[int, ...]
    errors: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        return (
            self.header_ok
            and self.toc_ok
            and self.truncated_bytes == 0
            and not self.corrupt_groups
        )

    @property
    def recoverable(self) -> bool:
        """Partial recovery needs a trusted header and checksum TOC."""
        return self.has_checksums and self.header_ok and self.toc_ok

    def group_of_block(self, block: int) -> int:
        if not self.group_blocks:
            return 0
        return block // self.group_blocks

    def block_ok(self, block: int) -> bool:
        return self.group_of_block(block) not in set(self.corrupt_groups)

    def corrupt_block_ranges(self) -> List[Tuple[int, int]]:
        """Half-open ``[start, stop)`` block ranges covered by corrupt groups."""
        return [
            (g * self.group_blocks, min((g + 1) * self.group_blocks, self.nblocks))
            for g in self.corrupt_groups
        ]

    def summary(self) -> str:
        if not self.has_checksums:
            return f"stream format v{self.version}: no integrity checksums"
        if self.ok:
            return (
                f"stream format v{self.version}: header + {self.ngroups} "
                f"block-group checksums verified"
            )
        parts = []
        if not self.header_ok:
            parts.append("header CRC mismatch")
        if not self.toc_ok:
            parts.append("checksum-TOC CRC mismatch")
        if self.truncated_bytes:
            parts.append(f"truncated by {self.truncated_bytes} bytes")
        if self.corrupt_groups:
            parts.append(
                f"{len(self.corrupt_groups)}/{self.ngroups} block groups corrupt "
                f"(groups {list(self.corrupt_groups)[:8]}"
                + ("...)" if len(self.corrupt_groups) > 8 else ")")
            )
        return f"stream format v{self.version}: " + "; ".join(parts)


def _clean_report(header, section=None) -> CorruptionReport:
    return CorruptionReport(
        version=header.version,
        nblocks=header.nblocks,
        group_blocks=section.group_blocks if section else 0,
        ngroups=section.ngroups if section else 0,
        has_checksums=section is not None,
        header_ok=True,
        toc_ok=True,
        truncated_bytes=0,
        corrupt_groups=(),
    )


def verify(buf) -> CorruptionReport:
    """Verify every checksum of a stream without decoding its payload.

    Raises :class:`StreamFormatError` when the buffer cannot even be laid
    out (bad magic, unknown version, truncation before the offset section);
    otherwise always returns a report, corrupt or not.
    """
    if not isinstance(buf, np.ndarray):
        buf = np.frombuffer(bytes(buf), dtype=np.uint8)
    header = stream_mod.StreamHeader.unpack(buf)
    if header.version == stream_mod.V1:
        return _clean_report(header)

    section = stream_mod.parse_integrity_section(buf, header.nblocks)
    errors: List[str] = []

    header_ok = stream_mod.crc32(buf[: stream_mod.HEADER_SIZE]) == section.header_crc
    if not header_ok:
        errors.append(
            f"header CRC mismatch: stored 0x{section.header_crc:08x}, computed "
            f"0x{stream_mod.crc32(buf[: stream_mod.HEADER_SIZE]):08x}"
        )
    toc_start = stream_mod.HEADER_SIZE
    toc_end = toc_start + section.size - stream_mod.TOC_CRC_SIZE
    toc_ok = stream_mod.crc32(buf[toc_start:toc_end]) == section.toc_crc
    if not toc_ok:
        errors.append(
            f"checksum-TOC CRC mismatch over bytes [{toc_start}, {toc_end}): "
            f"stored 0x{section.toc_crc:08x}"
        )

    off_start = stream_mod.HEADER_SIZE + section.size
    off_end = off_start + header.nblocks
    bounds = section.payload_bounds()
    described_end = off_end + int(bounds[-1])
    truncated = max(described_end - int(buf.size), 0)
    if truncated:
        errors.append(
            f"stream truncated: described payload ends at byte {described_end}, "
            f"buffer holds {buf.size}"
        )

    corrupt: List[int] = []
    G = section.group_blocks
    for g in range(section.ngroups):
        goff_lo = off_start + g * G
        goff_hi = min(off_start + (g + 1) * G, off_end)
        gpay_lo = off_end + int(bounds[g])
        gpay_hi = off_end + int(bounds[g + 1])
        if goff_hi > buf.size or gpay_hi > buf.size:
            corrupt.append(g)  # group extends past the (truncated) buffer
            continue
        gcrc = stream_mod.crc32(buf[goff_lo:goff_hi], buf[gpay_lo:gpay_hi])
        if gcrc != int(section.group_crcs[g]):
            corrupt.append(g)
            errors.append(
                f"block group {g} (blocks [{g * G}, {min((g + 1) * G, header.nblocks)})) "
                f"CRC mismatch: stored 0x{int(section.group_crcs[g]):08x}, "
                f"computed 0x{gcrc:08x}"
            )

    return CorruptionReport(
        version=header.version,
        nblocks=header.nblocks,
        group_blocks=G,
        ngroups=section.ngroups,
        has_checksums=True,
        header_ok=header_ok,
        toc_ok=toc_ok,
        truncated_bytes=truncated,
        corrupt_groups=tuple(corrupt),
        errors=tuple(errors),
    )


def _read_orig_ndim(buf: np.ndarray) -> int:
    return int(np.frombuffer(buf[10:12].tobytes(), dtype=np.uint16)[0])


def recover(
    buf, fill_value: float = np.nan
) -> Tuple[np.ndarray, CorruptionReport]:
    """Decode a (possibly corrupt) v2 stream, salvaging every intact group.

    Intact block groups decode bit-identically to an uncorrupted decode;
    elements of corrupt groups are set to ``fill_value``.  Raises
    :class:`IntegrityError` when recovery is impossible (damaged header or
    checksum TOC -- the geometry itself cannot be trusted) and
    :class:`StreamFormatError` for non-v2 streams with no checksums to
    recover by.
    """
    if not isinstance(buf, np.ndarray):
        buf = np.frombuffer(bytes(buf), dtype=np.uint8)
    report = verify(buf)
    if not report.has_checksums:
        # v1: nothing to verify against; decode as-is.
        from .compressor import decompress as _decompress

        return _decompress(buf, integrity="skip"), report
    if not report.recoverable:
        raise IntegrityError(
            "cannot recover: " + report.summary(), report
        )
    if report.ok:
        from .compressor import decompress as _decompress

        return _decompress(buf, integrity="skip"), report

    header = stream_mod.StreamHeader.unpack(buf)
    if header.predictor_ndim != 1:
        raise IntegrityError(
            "partial recovery is only available for the 1-D predictor "
            f"(stream uses {header.predictor_ndim}-D); intact-group decode "
            "of Lorenzo tiles is not supported",
            report,
        )

    from . import fle, predictor
    from .quantize import dequantize

    section = stream_mod.parse_integrity_section(buf, header.nblocks)
    off_start = stream_mod.HEADER_SIZE + section.size
    off_end = off_start + header.nblocks
    bounds = section.payload_bounds()
    G = section.group_blocks
    L = header.block
    bad = set(report.corrupt_groups)

    out = np.full(header.nblocks * L, fill_value, dtype=header.dtype)
    for g in range(section.ngroups):
        if g in bad:
            continue
        blk_lo = g * G
        blk_hi = min((g + 1) * G, header.nblocks)
        offsets_g = buf[off_start + blk_lo : off_start + blk_hi]
        payload_g = buf[off_end + int(bounds[g]) : off_end + int(bounds[g + 1])]
        deltas = fle.decode_blocks(offsets_g, payload_g, L)
        q = predictor.undiff_1d(deltas).reshape(-1)
        out[blk_lo * L : blk_hi * L] = dequantize(q, header.eb_abs, header.dtype)

    out = out[: header.nelems]
    orig_ndim = _read_orig_ndim(buf)
    if orig_ndim:
        shape = (
            header.dims[:orig_ndim] if orig_ndim <= len(header.dims) else header.dims
        )
        out = out.reshape(shape)
    return out, report
