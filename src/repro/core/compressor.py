"""End-to-end cuSZp2 compression / decompression (public API).

Mirrors the paper's four-stage single-kernel pipeline (Fig. 4):

1. **Lossy Conversion** -- :mod:`repro.core.quantize`
2. **Lossless Encoding** -- :mod:`repro.core.fle` (Plain- or Outlier-FLE)
3. **Global Prefix-sum** -- a cumulative sum over per-block payload sizes
   (the device-level decoupled-lookback realization of this step is modeled
   and verified in :mod:`repro.scan`)
4. **Block Concatenation** -- :mod:`repro.core.stream`

The two public entry points, :func:`compress` and :func:`decompress`,
operate GPU-buffer-to-GPU-buffer in the paper; here they are NumPy-array to
NumPy-uint8-array.  ``mode="plain"`` is CUSZP2-P, ``mode="outlier"`` is
CUSZP2-O.

Example
-------
>>> import numpy as np
>>> from repro import compress, decompress
>>> data = np.cumsum(np.random.default_rng(0).normal(size=4096)).astype(np.float32)
>>> stream = compress(data, rel=1e-3)
>>> recon = decompress(stream)
>>> float(np.abs(recon - data).max()) <= 1e-3 * (data.max() - data.min())
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.obs import trace as obs_trace

from . import backends as kernel_backends
from . import fle, stream
from .errors import InvalidInputError
from .quantize import ErrorBound, validate_input

MODES = {"plain": 0, "outlier": 1}
MODE_NAMES = {v: k for k, v in MODES.items()}

#: The paper's default block size ("the overall best choice in balancing
#: high throughput and high compression ratio", Section V-A).
DEFAULT_BLOCK = 32

#: Blocks per processing chunk; bounds temporary bit-plane memory while
#: keeping every NumPy op long enough to amortize dispatch (the software
#: analogue of a grid-stride loop).
DEFAULT_CHUNK_BLOCKS = 1 << 16


def validate_chunk_blocks(chunk_blocks) -> int:
    """The one ``chunk_blocks`` validator shared by every codec entry point
    (:class:`CompressorConfig` and module-level :func:`decompress` used to
    disagree: ``<= 0`` without a type check on one side, ``< 1`` with one on
    the other, so ``0.5`` passed config validation and failed later with an
    unrelated error).  A value must be an integer (bool excluded) and
    ``>= 1``; returns it as a plain int."""
    if (
        isinstance(chunk_blocks, bool)
        or not isinstance(chunk_blocks, (int, np.integer))
        or chunk_blocks < 1
    ):
        raise InvalidInputError(
            f"chunk_blocks must be a positive integer, got {chunk_blocks!r}"
        )
    return int(chunk_blocks)


@dataclass(frozen=True)
class CompressorConfig:
    """Static configuration of a cuSZp2 instance."""

    mode: str = "outlier"
    block: int = DEFAULT_BLOCK
    predictor_ndim: int = 1
    chunk_blocks: int = DEFAULT_CHUNK_BLOCKS
    group_blocks: int = stream.DEFAULT_GROUP_BLOCKS
    kernel_backend: str = "auto"

    def __post_init__(self):
        if self.mode not in MODES:
            raise InvalidInputError(f"mode must be 'plain' or 'outlier', got {self.mode!r}")
        if self.block <= 0 or self.block % 8:
            raise InvalidInputError(f"block size must be a positive multiple of 8, got {self.block}")
        if self.predictor_ndim not in (1, 2, 3):
            raise InvalidInputError(f"predictor_ndim must be 1, 2 or 3, got {self.predictor_ndim}")
        if self.predictor_ndim > 1:
            t = round(self.block ** (1.0 / self.predictor_ndim))
            if t**self.predictor_ndim != self.block:
                raise InvalidInputError(
                    f"block={self.block} is not a perfect {self.predictor_ndim}-D tile"
                )
        validate_chunk_blocks(self.chunk_blocks)
        kernel_backends.validate_backend_name(self.kernel_backend)
        if not 1 <= self.group_blocks <= 0xFFFF:
            raise InvalidInputError(
                f"group_blocks (blocks per checksum group) must be in [1, 65535], "
                f"got {self.group_blocks}"
            )


def _resolve_dims(data: np.ndarray, cfg: CompressorConfig) -> Tuple[Tuple[int, ...], int]:
    """Logical dims stored in the header plus the original ndim tag."""
    if cfg.predictor_ndim > 1:
        if data.ndim != cfg.predictor_ndim:
            raise InvalidInputError(
                f"{cfg.predictor_ndim}-D predictor requires a {cfg.predictor_ndim}-D array, "
                f"got shape {data.shape}"
            )
        return tuple(data.shape), data.ndim
    if 1 <= data.ndim <= 3:
        return tuple(data.shape), data.ndim
    return (data.size,), 0  # >3-D inputs are flattened; shape not preserved


class CuSZp2:
    """A configured cuSZp2 compressor instance.

    Parameters
    ----------
    error_bound:
        An :class:`~repro.core.quantize.ErrorBound` (or a float, interpreted
        as a REL bound, matching the paper's CLI ``./gsz_p vx.f32 1e-3``).
    mode:
        ``"plain"`` (CUSZP2-P) or ``"outlier"`` (CUSZP2-O).
    block:
        Elements per block; the paper uses 32 (and 64 / 8x8 / 4x4x4 for the
        Table VI dimensionality study).
    predictor_ndim:
        1 (default, the cuSZp2 design), or 2/3 for the Lorenzo variants.
    kernel_backend:
        Name of a registered kernel backend (``"numpy"``, ``"numba"``,
        ...) or ``"auto"`` (default) to consult ``REPRO_KERNEL_BACKEND``
        and fall back to ``"numpy"``.  Every backend produces
        byte-identical streams; this is a throughput knob only.
    """

    def __init__(
        self,
        error_bound,
        mode: str = "outlier",
        block: int = DEFAULT_BLOCK,
        predictor_ndim: int = 1,
        chunk_blocks: int = DEFAULT_CHUNK_BLOCKS,
        group_blocks: int = stream.DEFAULT_GROUP_BLOCKS,
        kernel_backend: str = "auto",
    ):
        if isinstance(error_bound, (int, float)):
            error_bound = ErrorBound.relative(float(error_bound))
        self.error_bound = error_bound
        self.config = CompressorConfig(
            mode, block, predictor_ndim, chunk_blocks, group_blocks, kernel_backend
        )

    # -- compression --------------------------------------------------------

    def compress(self, data: np.ndarray) -> np.ndarray:
        cfg = self.config
        data = np.asarray(data)
        with obs_trace.maybe_span(
            "codec.compress", bytes_in=int(data.nbytes), mode=cfg.mode,
        ) as sp:
            dims, orig_ndim = _resolve_dims(data, cfg)
            backend = kernel_backends.resolve_backend(cfg.kernel_backend)
            with obs_trace.maybe_span("codec.quantize"):
                flat, lo, hi = validate_input(data, return_minmax=True)
                eb_abs = self.error_bound.resolve(flat, minmax=(lo, hi))

            use_outlier = cfg.mode == "outlier"
            if cfg.predictor_ndim == 1:
                # quantization happens inside the backend's chunk loop so
                # each quant chunk is still cache-hot when the predictor and
                # encoder consume it (the fused backends collapse all three
                # stages into one pass)
                offsets, payload = backend.encode_1d_chunked(
                    flat, eb_abs, (lo, hi), cfg.block, cfg.chunk_blocks, use_outlier
                )
            else:
                with obs_trace.maybe_span("codec.quantize"):
                    # the ndim-D predictor sums at most 2**ndim integers per
                    # delta, so quantize can safely emit narrow int32 codes;
                    # the field extrema feed its monotone range check
                    q = backend.quantize(
                        flat, eb_abs, int32_terms=2**cfg.predictor_ndim, minmax=(lo, hi)
                    )
                with obs_trace.maybe_span("codec.predict"):
                    dblocks = backend.predict_forward(
                        q, dims, cfg.predictor_ndim, cfg.block
                    )
                with obs_trace.maybe_span("codec.fle"):
                    offsets, payload = backend.fle_encode(dblocks, use_outlier)

            header = stream.StreamHeader(
                mode=MODES[cfg.mode],
                dtype=np.dtype(data.dtype),
                predictor_ndim=cfg.predictor_ndim,
                block=cfg.block,
                nelems=flat.size,
                eb_abs=eb_abs,
                dims=dims,
            )
            buf = stream.assemble(header, offsets, payload, group_blocks=cfg.group_blocks)
            buf = self._stamp_orig_ndim(buf, orig_ndim)
            if sp is not None:
                sp.set(bytes_out=int(buf.size))
            return buf

    @staticmethod
    def _stamp_orig_ndim(buf: np.ndarray, orig_ndim: int) -> np.ndarray:
        # The reserved u16 at header offset 10 records the original ndim so
        # decompress() can restore the caller's shape (0 = flattened).
        buf[10:12] = np.frombuffer(np.uint16(orig_ndim).tobytes(), dtype=np.uint8)
        # The stamp changes header bytes, so the v2 header/TOC CRCs must be
        # recomputed over the final bytes.
        return stream.reseal(buf)

    @staticmethod
    def _read_orig_ndim(buf: np.ndarray) -> int:
        return int(np.frombuffer(buf[10:12].tobytes(), dtype=np.uint16)[0])

    # -- decompression -------------------------------------------------------

    def decompress(self, buf, **kwargs) -> np.ndarray:
        kwargs.setdefault("chunk_blocks", self.config.chunk_blocks)
        kwargs.setdefault("kernel_backend", self.config.kernel_backend)
        return decompress(buf, **kwargs)


# ---------------------------------------------------------------------------
# Functional API
# ---------------------------------------------------------------------------

def compress(
    data: np.ndarray,
    rel: Optional[float] = None,
    abs: Optional[float] = None,  # noqa: A002 - mirrors compressor CLIs
    mode: str = "outlier",
    block: int = DEFAULT_BLOCK,
    predictor_ndim: int = 1,
    group_blocks: int = stream.DEFAULT_GROUP_BLOCKS,
    kernel_backend: str = "auto",
) -> np.ndarray:
    """Compress ``data`` under a REL (``rel=``) or ABS (``abs=``) error
    bound; returns the unified compressed byte array (uint8, format v2:
    one CRC32 per ``group_blocks`` blocks plus a header CRC)."""
    if (rel is None) == (abs is None):
        raise InvalidInputError("specify exactly one of rel= or abs=")
    eb = ErrorBound.relative(rel) if rel is not None else ErrorBound.absolute(abs)
    return CuSZp2(
        eb,
        mode=mode,
        block=block,
        predictor_ndim=predictor_ndim,
        group_blocks=group_blocks,
        kernel_backend=kernel_backend,
    ).compress(data)


def decompress(
    buf,
    chunk_blocks: int = DEFAULT_CHUNK_BLOCKS,
    integrity: str = "auto",
    on_corruption: str = "raise",
    fill_value: float = np.nan,
    kernel_backend: str = "auto",
) -> np.ndarray:
    """Decompress a cuSZp2 stream back to a float array (original shape
    restored when it had at most 3 axes).

    Parameters
    ----------
    integrity:
        ``"auto"`` (default) verifies checksums when the stream carries
        them (format v2) and skips verification for v1 streams;
        ``"verify"`` demands checksums (v1 streams raise
        :class:`IntegrityError`); ``"skip"`` decodes without checking.
    on_corruption:
        ``"raise"`` (default) raises :class:`IntegrityError` carrying a
        :class:`~repro.core.integrity.CorruptionReport` when verification
        fails; ``"recover"`` decodes every intact block group normally and
        fills damaged groups with ``fill_value`` (1-D predictor only).
    kernel_backend:
        Registered kernel backend name or ``"auto"`` (environment /
        ``"numpy"`` default); the output is byte-identical either way.
    """
    if integrity not in ("auto", "verify", "skip"):
        raise InvalidInputError(
            f"integrity must be 'auto', 'verify' or 'skip', got {integrity!r}"
        )
    if on_corruption not in ("raise", "recover"):
        raise InvalidInputError(
            f"on_corruption must be 'raise' or 'recover', got {on_corruption!r}"
        )
    chunk_blocks = validate_chunk_blocks(chunk_blocks)
    backend = kernel_backends.resolve_backend(kernel_backend)
    if not isinstance(buf, np.ndarray):
        buf = np.frombuffer(bytes(buf), dtype=np.uint8)
    with obs_trace.maybe_span("codec.decompress", bytes_in=int(buf.size)) as root:
        if integrity != "skip":
            from .errors import IntegrityError
            from .integrity import recover as _recover
            from .integrity import verify as _verify

            with obs_trace.maybe_span("codec.verify"):
                report = _verify(buf)
            if integrity == "verify" and not report.has_checksums:
                raise IntegrityError(
                    "integrity='verify' but the stream is format v1 and carries "
                    "no checksums",
                    report,
                )
            if not report.ok:
                if on_corruption == "recover":
                    out, _ = _recover(buf, fill_value=fill_value)
                    if root is not None:
                        # the early return bypasses the normal epilogue, so
                        # traces of recovered requests must be completed here
                        root.set(bytes_out=int(out.nbytes), recovered=True)
                    return out
                raise IntegrityError(report.summary(), report)
        with obs_trace.maybe_span("codec.split"):
            header, offsets, payload = stream.split(buf)
            orig_ndim = CuSZp2._read_orig_ndim(buf)

        with obs_trace.maybe_span("codec.scan"):
            sizes = fle.block_payload_sizes(offsets, header.block)
            bounds = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)

        if header.predictor_ndim == 1:
            q = backend.decode_1d_chunked(
                offsets, payload, bounds, header.block, chunk_blocks
            )
            q = q[: header.nelems]
        else:
            with obs_trace.maybe_span("codec.fle_decode"):
                dblocks = backend.fle_decode(
                    offsets, payload[: bounds[-1]], header.block
                )
            with obs_trace.maybe_span("codec.undiff"):
                q = backend.predict_inverse(
                    dblocks, header.dims, header.predictor_ndim, header.block,
                    header.nelems,
                )

        with obs_trace.maybe_span("codec.dequantize"):
            out = backend.dequantize(q, header.eb_abs, header.dtype)
        if root is not None:
            root.set(bytes_out=int(out.nbytes))
        if orig_ndim == 0:
            return out
        shape = header.dims[:orig_ndim] if orig_ndim <= len(header.dims) else header.dims
        return out.reshape(shape)


def compression_ratio(data: np.ndarray, compressed: np.ndarray) -> float:
    """Original bytes / compressed bytes."""
    return data.size * data.dtype.itemsize / compressed.size
