"""The per-block offset byte (Fig. 8) and payload-size arithmetic.

Every block contributes exactly one offset byte to the fixed-size offset
section of the stream:

===  =========================================================
bit  meaning
===  =========================================================
7    mode flag: 1 -> Outlier-FLE, 0 -> Plain-FLE
6-5  outlier size - 1 in bytes (00=1 ... 11=4); Outlier mode only
4-0  fixed length ``fl`` in bits, 0..31
===  =========================================================

Because the offset byte alone determines a block's payload length,
decompression (and random access) can locate every block with a single
prefix sum over these bytes -- the property cuSZp2's single-kernel design
relies on (Section III).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

MODE_PLAIN = 0
MODE_OUTLIER = 1

_FL_MASK = np.uint8(0x1F)
_OUTLIER_SHIFT = np.uint8(5)
_MODE_BIT = np.uint8(0x80)


def encode_offset_bytes(mode: np.ndarray, outlier_nbytes: np.ndarray, fl: np.ndarray) -> np.ndarray:
    """Build offset bytes from per-block fields.

    ``mode`` is 0/1, ``outlier_nbytes`` in 1..4 (ignored for plain blocks),
    ``fl`` in 0..31.
    """
    fl = fl.astype(np.uint8)
    if (fl > 31).any():
        raise ValueError("fixed length exceeds 31 bits")
    out = fl & _FL_MASK
    is_outlier = mode.astype(bool)
    onb = np.where(is_outlier, outlier_nbytes.astype(np.uint8) - 1, 0).astype(np.uint8)
    out = out | (onb << _OUTLIER_SHIFT)
    out = out | np.where(is_outlier, _MODE_BIT, np.uint8(0))
    return out.astype(np.uint8)


def decode_offset_bytes(offsets: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split offset bytes into ``(mode, outlier_nbytes, fl)`` arrays.
    ``outlier_nbytes`` is 0 for plain blocks."""
    offsets = offsets.astype(np.uint8, copy=False)
    mode = (offsets >> 7).astype(np.uint8)
    fl = (offsets & _FL_MASK).astype(np.uint8)
    onb = (((offsets >> _OUTLIER_SHIFT) & np.uint8(0x3)) + 1).astype(np.uint8)
    onb = np.where(mode == MODE_OUTLIER, onb, 0).astype(np.uint8)
    return mode, onb, fl


def payload_sizes(mode: np.ndarray, outlier_nbytes: np.ndarray, fl: np.ndarray, block: int) -> np.ndarray:
    """Per-block payload length in bytes (excluding the offset byte itself).

    Plain: 0 when ``fl == 0`` (the zero-block fast path -- one total byte
    per all-zero block, Section V-C), else ``L/8 + fl * L/8``.
    Outlier: ``L/8 + outlier_nbytes + fl * L/8`` always (sign bits are
    needed even when the residual planes are empty, to sign the outlier).
    """
    sign_bytes = block // 8
    fl64 = fl.astype(np.int64)
    plain = np.where(fl64 == 0, 0, sign_bytes + fl64 * sign_bytes)
    outlier = sign_bytes + outlier_nbytes.astype(np.int64) + fl64 * sign_bytes
    return np.where(mode.astype(bool), outlier, plain)


def outlier_byte_count(mag: np.ndarray) -> np.ndarray:
    """Adaptive outlier size in bytes (1..4) for int64 magnitudes
    ``<= 2**31 - 1``: the smallest little-endian width that holds the
    magnitude, with zero still occupying one byte."""
    m = mag.astype(np.int64)
    return (
        1
        + (m > 0xFF).astype(np.int64)
        + (m > 0xFFFF).astype(np.int64)
        + (m > 0xFFFFFF).astype(np.int64)
    )
