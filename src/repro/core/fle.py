"""Plain and Outlier fixed-length encoding (the paper's Section IV-A).

Given the ``(nblocks, L)`` signed delta blocks produced by the predictor,
this module performs the Lossless Encoding step of the cuSZp2 pipeline:

* **Plain-FLE** stores, per block, one sign bit per element plus ``fl``
  bit-planes where ``fl`` is the bit length of the largest magnitude in the
  block.  An all-zero block costs zero payload bytes.
* **Outlier-FLE** additionally extracts the block's first delta -- the
  value that differences against an implicit zero and therefore tends to
  dwarf its neighbours on smooth data (Fig. 6) -- storing it exactly in
  1..4 adaptive bytes so the plane width can shrink to the bit length of
  the *remaining* magnitudes.
* The **selection strategy** ("for each data block, selecting Outlier-FLE
  only when it offers a higher compression ratio") is a pure byte-count
  comparison; no re-encoding is needed, matching the paper's single
  magnitude pass.

Everything is vectorized by grouping blocks with identical
``(mode, fixed-length, outlier-width)`` signatures and encoding or decoding
each group as one tensor operation.  Group payload rows move through
*contiguous run copies*: blocks of one signature overwhelmingly appear in
runs on real fields (smooth regions share a fixed length), and a run of
adjacent blocks occupies one contiguous byte range of the payload, so most
scatter/gather traffic is plain ``memcpy``-style slice assignment rather
than fancy indexing.  Fragmented groups fall back to a single flat-index
copy -- no ``(n, w)`` index matrix and no ``np.add.at`` anywhere.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from . import bitpack, blockfmt
from .errors import QuantizationOverflowError, StreamFormatError
from .quantize import MAX_QUANT_MAGNITUDE

#: Above this many runs per row (as a fraction of rows) the run loop would
#: degrade to Python-loop speed, so scatter/gather switch to one flat copy.
_RUN_FALLBACK_DIVISOR = 4


def _check_row_max(row_max: np.ndarray) -> None:
    if row_max.size and int(row_max.max()) > int(MAX_QUANT_MAGNITUDE):
        raise QuantizationOverflowError(
            "a block delta exceeds 2**31 - 1 and cannot be represented by the "
            "5-bit fixed-length field; increase the error bound"
        )


def _contiguous_runs(starts: np.ndarray, width: int) -> Tuple[np.ndarray, np.ndarray]:
    """Maximal runs of rows whose payload segments are byte-adjacent.

    ``starts`` is ascending; rows ``i`` and ``i+1`` are adjacent exactly
    when ``starts[i+1] - starts[i] == width``.  Returns ``(lo, hi)`` row
    index bounds per run.
    """
    breaks = np.flatnonzero(np.diff(starts) != width)
    lo = np.concatenate(([0], breaks + 1))
    hi = np.concatenate((breaks + 1, [starts.size]))
    return lo, hi


def _flat_indices(starts: np.ndarray, width: int) -> np.ndarray:
    """Flat payload index of every byte of every row (fragmented fallback).
    One broadcast add materializes the whole index in a single pass."""
    return (starts[:, None] + np.arange(width, dtype=np.int64)).reshape(-1)


def _scatter_rows(out: np.ndarray, starts: np.ndarray, rows: np.ndarray) -> None:
    """Write each payload row ``rows[i]`` at ``out[starts[i]: starts[i]+w]``."""
    n, w = rows.shape
    if n == 0 or w == 0:
        return
    flat = np.ascontiguousarray(rows).reshape(-1)
    lo, hi = _contiguous_runs(starts, w)
    if lo.size > max(8, n // _RUN_FALLBACK_DIVISOR):
        out[_flat_indices(starts, w)] = flat
        return
    for a, b in zip(lo.tolist(), hi.tolist()):
        s = int(starts[a])
        out[s : s + (b - a) * w] = flat[a * w : b * w]


def _gather_rows(buf: np.ndarray, starts: np.ndarray, width: int) -> np.ndarray:
    if starts.size == 0 or width == 0:
        return np.empty((starts.size, width), dtype=np.uint8)
    if int(starts.max()) + width > buf.size:
        raise StreamFormatError("payload truncated: block data extends past end of stream")
    n = starts.size
    out = np.empty(n * width, dtype=np.uint8)
    lo, hi = _contiguous_runs(starts, width)
    if lo.size > max(8, n // _RUN_FALLBACK_DIVISOR):
        out[:] = buf[_flat_indices(starts, width)]
    else:
        for a, b in zip(lo.tolist(), hi.tolist()):
            s = int(starts[a])
            out[a * width : b * width] = buf[s : s + (b - a) * width]
    return out.reshape(n, width)


def encode_blocks(dblocks: np.ndarray, use_outlier: bool) -> Tuple[np.ndarray, np.ndarray]:
    """Encode delta blocks; returns ``(offset_bytes, payload)``.

    ``use_outlier`` selects the compressor mode: ``False`` is CUSZP2-P
    (strict Plain-FLE, the extreme-throughput mode), ``True`` is CUSZP2-O
    (per-block best of Plain/Outlier).
    """
    nblocks, L = dblocks.shape
    mag = np.abs(dblocks)

    if use_outlier:
        # one pass over the magnitudes yields every reduction we need: the
        # residual row max (excluding the outlier column), the plain row
        # max (its elementwise max with column 0) and the global check
        rest_max = mag[:, 1:].max(axis=1)
        row_max = np.maximum(rest_max, mag[:, 0])
        _check_row_max(row_max)
        fl_plain = bitpack.bit_length(row_max).astype(np.int64)
        fl_rest = bitpack.bit_length(rest_max).astype(np.int64)
        omag = mag[:, 0].astype(np.int64)
        onb = blockfmt.outlier_byte_count(omag)
        sign_bytes = L // 8
        cost_plain = np.where(fl_plain == 0, 0, sign_bytes * (1 + fl_plain))
        cost_outlier = sign_bytes + onb + fl_rest * sign_bytes
        mode = (cost_outlier < cost_plain).astype(np.uint8)
    else:
        row_max = mag.max(axis=1)
        _check_row_max(row_max)
        fl_plain = bitpack.bit_length(row_max).astype(np.int64)
        omag = np.zeros(nblocks, dtype=np.int64)
        onb = np.zeros(nblocks, dtype=np.int64)
        fl_rest = fl_plain  # unused
        mode = np.zeros(nblocks, dtype=np.uint8)

    fl = np.where(mode == blockfmt.MODE_OUTLIER, fl_rest, fl_plain)
    offsets = blockfmt.encode_offset_bytes(mode, np.maximum(onb, 1), fl)
    sizes = blockfmt.payload_sizes(mode, np.where(mode == 1, onb, 0), fl, L)
    starts = np.concatenate([[0], np.cumsum(sizes)[:-1]]).astype(np.int64)
    # every payload byte belongs to exactly one block row (sizes are exact),
    # so the buffer needs no zero fill
    payload = np.empty(int(sizes.sum()), dtype=np.uint8)

    signs_all = bitpack.pack_signs(dblocks)

    # --- plain groups, keyed by fixed length ------------------------------
    plain_sel = mode == blockfmt.MODE_PLAIN
    plain_fls = np.unique(fl[plain_sel])
    for f in plain_fls:
        f = int(f)
        if f == 0:
            continue  # zero blocks carry no payload
        idx = np.flatnonzero(plain_sel & (fl == f))
        rows = np.concatenate([signs_all[idx], bitpack.pack_planes(mag[idx], f)], axis=1)
        _scatter_rows(payload, starts[idx], rows)

    # --- outlier groups, keyed by (fixed length, outlier width) -----------
    if use_outlier:
        out_sel = mode == blockfmt.MODE_OUTLIER
        if out_sel.any():
            keys = fl[out_sel] * 8 + onb[out_sel]
            for key in np.unique(keys):
                f, k = int(key) // 8, int(key) % 8
                idx = np.flatnonzero(out_sel & (fl == f) & (onb == k))
                obytes = (
                    (omag[idx, None] >> (8 * np.arange(k, dtype=np.int64))) & 0xFF
                ).astype(np.uint8)
                # fancy indexing already copied the group's rows, so the
                # outlier column can be zeroed in place
                mag_rest = mag[idx]
                mag_rest[:, 0] = 0
                rows = np.concatenate(
                    [signs_all[idx], obytes, bitpack.pack_planes(mag_rest, f)], axis=1
                )
                _scatter_rows(payload, starts[idx], rows)

    return offsets, payload


def delta_dtype(offsets: np.ndarray, block: int) -> np.dtype:
    """Narrowest integer dtype whose per-block prefix sums provably cannot
    overflow for this stream: every cumsum partial over a block is bounded
    by ``outlier + L * (2**fl_max - 1)``, so int32 is safe whenever that
    bound fits -- which is every realistic stream.  The bound is taken over
    the *stream's* offset bytes, not the data, so even corrupt (or
    adversarial) payloads stay exact in the chosen dtype."""
    if offsets.size == 0:
        return np.dtype(np.int32)
    _, onb, fl = blockfmt.decode_offset_bytes(offsets)
    if int(onb.max()) <= 3 and block << int(fl.max()) < 1 << 30:
        return np.dtype(np.int32)
    return np.dtype(np.int64)


def decode_blocks(offsets: np.ndarray, payload: np.ndarray, block: int) -> np.ndarray:
    """Invert :func:`encode_blocks` back to ``(nblocks, L)`` signed deltas
    (int32 when :func:`delta_dtype` proves it exact, else int64)."""
    nblocks = offsets.shape[0]
    L = block
    sign_bytes = L // 8
    mode, onb, fl = blockfmt.decode_offset_bytes(offsets)
    sizes = blockfmt.payload_sizes(mode, onb, fl, L)
    total = int(sizes.sum())
    if total != payload.size:
        raise StreamFormatError(
            f"offset bytes describe {total} payload bytes but stream holds {payload.size}"
        )
    starts = np.concatenate([[0], np.cumsum(sizes)[:-1]]).astype(np.int64)
    dtype = delta_dtype(offsets, block)
    deltas = np.zeros((nblocks, L), dtype=dtype)

    fl64 = fl.astype(np.int64)
    keys = mode.astype(np.int64) * 512 + fl64 * 8 + onb.astype(np.int64)
    for key in np.unique(keys):
        m, rem = divmod(int(key), 512)
        f, k = divmod(rem, 8)
        idx = np.flatnonzero(keys == key)
        if m == blockfmt.MODE_PLAIN and f == 0:
            continue  # zero blocks decode to all-zero deltas
        width = int(sizes[idx[0]])
        rows = _gather_rows(payload, starts[idx], width)
        negative = bitpack.unpack_signs(rows[:, :sign_bytes], L)
        if m == blockfmt.MODE_PLAIN:
            mag = bitpack.unpack_planes(rows[:, sign_bytes:], f, L, dtype)
        else:
            obytes = rows[:, sign_bytes : sign_bytes + k].astype(np.int64)
            omag = (obytes << (8 * np.arange(k, dtype=np.int64))[None, :]).sum(axis=1)
            mag = bitpack.unpack_planes(rows[:, sign_bytes + k :], f, L, dtype)
            mag[:, 0] = omag
        deltas[idx] = bitpack.apply_signs(mag, negative)
    return deltas


def block_payload_sizes(offsets: np.ndarray, block: int) -> np.ndarray:
    """Payload size per block from offset bytes alone (used by the global
    prefix-sum step and by random access)."""
    mode, onb, fl = blockfmt.decode_offset_bytes(offsets)
    return blockfmt.payload_sizes(mode, onb, fl, block)
