"""Kernel-backend registry: pluggable implementations of the codec hot path.

The compressor resolves its quantize, predict/diff, FLE and bitpack kernels
through this registry instead of importing the NumPy modules directly.  The
existing vectorized NumPy implementations are the registered ``"numpy"``
reference backend; ``"numba"`` fuses the per-chunk quantize -> diff ->
FLE-encode pipeline (and the decode mirror) into single
``njit(parallel=True)`` passes (see :mod:`repro.core.kernels_fused`); and
``"fused-python"`` runs the same fused kernel bodies un-jitted, which keeps
the fused algorithm under test on hosts without numba.

Every backend must produce **byte-identical** CSZ2 streams -- the kernel
oracle and the qa ``backends`` differential oracle enforce this -- so the
backend choice is purely a throughput knob:

* explicit name (``CompressorConfig.kernel_backend``, ``--kernel-backend``)
  wins;
* ``"auto"`` consults the ``REPRO_KERNEL_BACKEND`` environment variable and
  falls back to ``"numpy"``;
* a registered-but-unavailable backend (numba not installed) degrades to
  ``"numpy"`` with a :class:`RuntimeWarning` rather than failing.
"""

from __future__ import annotations

import os
import warnings
from typing import Dict, List, Tuple, Type

import numpy as np

from repro.obs import trace as obs_trace

from . import bitpack, fle, kernels_fused, predictor
from .errors import InvalidInputError, QuantizationOverflowError, StreamFormatError
from .quantize import (
    MAX_QUANT_MAGNITUDE,
    dequantize,
    quant_output_dtype,
    quantize,
    quantized_bounds,
)

#: Environment variable consulted by ``"auto"`` resolution.
ENV_VAR = "REPRO_KERNEL_BACKEND"

#: The reference backend every resolution path can fall back to.
DEFAULT_BACKEND = "numpy"


class KernelBackend:
    """Base class: the kernel seams the compressor resolves per call.

    The base methods delegate to the vectorized NumPy modules; a subclass
    overrides whichever seams it accelerates (the fused backends replace
    only the two 1-D chunked entry points -- the Lorenzo paths and all
    bitpack primitives stay on the NumPy kernels).
    """

    #: Registry key; subclasses must override.
    name = "abstract"
    #: False when the backend's runtime (e.g. numba) is not importable.
    available = True

    # -- elementwise / blockwise seams (NumPy reference implementations) ---

    def quantize(self, data, eb_abs, *, int32_terms=0, minmax=None):
        return quantize(data, eb_abs, int32_terms=int32_terms, minmax=minmax)

    def dequantize(self, q, eb_abs, dtype):
        return dequantize(q, eb_abs, dtype)

    def predict_forward(self, q, dims, ndim, block):
        return predictor.forward(q, dims, ndim, block)

    def predict_inverse(self, dblocks, dims, ndim, block, nelems):
        return predictor.inverse(dblocks, dims, ndim, block, nelems)

    def fle_encode(self, dblocks, use_outlier):
        return fle.encode_blocks(dblocks, use_outlier)

    def fle_decode(self, offsets, payload, block):
        return fle.decode_blocks(offsets, payload, block)

    def pack_signs(self, deltas):
        return bitpack.pack_signs(deltas)

    def pack_planes(self, mag, fl):
        return bitpack.pack_planes(mag, fl)

    # -- the 1-D hot path (what the fused backends replace) ----------------

    def encode_1d_chunked(self, flat, eb_abs, minmax, block, chunk_blocks, use_outlier):
        """Encode a flat float array into ``(offset_bytes, payload)``."""
        raise NotImplementedError

    def decode_1d_chunked(self, offsets, payload, bounds, block, chunk_blocks):
        """Decode to the flat quant array of ``offsets.size * block``
        elements (tail padding still attached; dtype per
        :func:`repro.core.fle.delta_dtype`).  ``bounds`` is the global
        payload prefix sum (``nblocks + 1`` entries)."""
        raise NotImplementedError


class NumpyBackend(KernelBackend):
    """The vectorized NumPy pipeline (PR-5 hot path), unchanged: it is the
    bit-identity reference every other backend is fuzzed against."""

    name = "numpy"

    def encode_1d_chunked(self, flat, eb_abs, minmax, block, chunk_blocks, use_outlier):
        n = flat.shape[0]
        nblocks = -(-n // block)
        offsets = np.empty(nblocks, dtype=np.uint8)
        # Preallocated payload buffer with amortized doubling: one byte per
        # element (compression ratio 4 on float32) covers typical fields,
        # and growth recopies at most O(log) times.
        payload = np.empty(max(1024, nblocks * block), dtype=np.uint8)
        pos = 0
        for lo in range(0, nblocks, chunk_blocks):
            hi = min(lo + chunk_blocks, nblocks)
            with obs_trace.maybe_span("codec.quantize"):
                # global minmax keeps the int32/int64 decision and overflow
                # check identical across chunks (1-D differences sum 2 terms)
                qchunk = self.quantize(
                    flat[lo * block : min(hi * block, n)],
                    eb_abs,
                    int32_terms=2,
                    minmax=minmax,
                )
            with obs_trace.maybe_span("codec.predict"):
                dblocks = predictor.diff_1d(predictor.blockize_1d(qchunk, block))
            with obs_trace.maybe_span("codec.fle"):
                offs, pay = self.fle_encode(dblocks, use_outlier)
            offsets[lo : lo + offs.size] = offs
            end = pos + pay.size
            if end > payload.size:
                grown = np.empty(max(end, 2 * payload.size), dtype=np.uint8)
                grown[:pos] = payload[:pos]
                payload = grown
            payload[pos:end] = pay
            pos = end
        return offsets, payload[:pos]

    def decode_1d_chunked(self, offsets, payload, bounds, block, chunk_blocks):
        nblocks = offsets.shape[0]
        # preallocated output; prefix sums accumulate directly into it
        # (dtype chosen once over the whole stream, so every chunk's
        # delta dtype is at most as wide)
        q = np.empty(nblocks * block, dtype=fle.delta_dtype(offsets, block))
        for lo in range(0, nblocks, chunk_blocks):
            hi = min(lo + chunk_blocks, nblocks)
            with obs_trace.maybe_span("codec.fle_decode"):
                dblocks = self.fle_decode(
                    offsets[lo:hi], payload[bounds[lo] : bounds[hi]], block
                )
            with obs_trace.maybe_span("codec.undiff"):
                predictor.undiff_1d(
                    dblocks, out=q[lo * block : hi * block].reshape(-1, block)
                )
        return q


class _FusedBackend(KernelBackend):
    """Shared chunk-loop driver for the fused kernels; subclasses pick the
    jitted or pure-Python kernel triple."""

    def _kernels(self) -> Tuple:
        raise NotImplementedError

    def encode_1d_chunked(self, flat, eb_abs, minmax, block, chunk_blocks, use_outlier):
        # Range/overflow check and error parity with the NumPy path: the
        # quantizer map is monotone, so the field extrema bound every
        # integer.  On overflow, re-run the reference quantizer, which
        # raises the exact QuantizationOverflowError (with element index).
        lo_q, hi_q = quantized_bounds(minmax, eb_abs)
        bound = float(MAX_QUANT_MAGNITUDE)
        if hi_q > bound or lo_q < -bound:
            quantize(flat, eb_abs, minmax=minmax)
            raise AssertionError("quantize() must raise on out-of-range bounds")
        pass1, pass2, _ = self._kernels()
        n = flat.shape[0]
        nblocks = -(-n // block)
        step = 2.0 * eb_abs
        offsets = np.empty(nblocks, dtype=np.uint8)
        payload = np.empty(max(1024, nblocks * block), dtype=np.uint8)
        cnb_max = min(chunk_blocks, nblocks)
        dblocks = np.empty((cnb_max, block), dtype=np.int64)
        sizes = np.empty(cnb_max, dtype=np.int64)
        pos = 0
        for lo in range(0, nblocks, chunk_blocks):
            hi = min(lo + chunk_blocks, nblocks)
            cnb = hi - lo
            chunk = flat[lo * block : min(hi * block, n)]
            with obs_trace.maybe_span("codec.fused_encode", blocks=cnb):
                pass1(
                    chunk, step, block, use_outlier,
                    dblocks[:cnb], offsets[lo:hi], sizes[:cnb],
                )
                if int(sizes[:cnb].min()) < 0:
                    # same condition and message as fle._check_row_max
                    raise QuantizationOverflowError(
                        "a block delta exceeds 2**31 - 1 and cannot be "
                        "represented by the 5-bit fixed-length field; "
                        "increase the error bound"
                    )
                csum = np.cumsum(sizes[:cnb])
                starts = csum - sizes[:cnb]
                end = pos + int(csum[-1])
                if end > payload.size:
                    grown = np.empty(max(end, 2 * payload.size), dtype=np.uint8)
                    grown[:pos] = payload[:pos]
                    payload = grown
                pass2(dblocks[:cnb], offsets[lo:hi], starts, block, payload[pos:end])
                pos = end
        return offsets, payload[:pos]

    def decode_1d_chunked(self, offsets, payload, bounds, block, chunk_blocks):
        _, _, decode = self._kernels()
        nblocks = offsets.shape[0]
        q = np.empty(nblocks * block, dtype=fle.delta_dtype(offsets, block))
        for lo in range(0, nblocks, chunk_blocks):
            hi = min(lo + chunk_blocks, nblocks)
            pay = payload[bounds[lo] : bounds[hi]]
            expect = int(bounds[hi] - bounds[lo])
            if expect != pay.size:
                # truncated stream: same message as fle.decode_blocks
                raise StreamFormatError(
                    f"offset bytes describe {expect} payload bytes but "
                    f"stream holds {pay.size}"
                )
            starts = bounds[lo:hi] - bounds[lo]
            with obs_trace.maybe_span("codec.fused_decode", blocks=hi - lo):
                decode(offsets[lo:hi], pay, starts, block, q[lo * block : hi * block])
        return q


class NumbaBackend(_FusedBackend):
    """Fused ``njit(parallel=True, cache=True)`` kernels; unavailable (and
    resolved to ``"numpy"`` with a warning) when numba is not installed."""

    name = "numba"
    available = kernels_fused.NUMBA_AVAILABLE

    def _kernels(self):
        return (
            kernels_fused.encode_pass1,
            kernels_fused.encode_pass2,
            kernels_fused.decode_chunk,
        )


class FusedPythonBackend(_FusedBackend):
    """The fused kernel bodies executed as plain Python: far too slow for
    real fields, but always available, which keeps the fused algorithm under
    byte-identity test on hosts without numba (like this CI image)."""

    name = "fused-python"

    def _kernels(self):
        return (
            kernels_fused.encode_pass1_python,
            kernels_fused.encode_pass2_python,
            kernels_fused.decode_chunk_python,
        )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, Type[KernelBackend]] = {}
_instances: Dict[str, KernelBackend] = {}


def register_backend(cls: Type[KernelBackend]) -> Type[KernelBackend]:
    """Register a backend class under ``cls.name`` (usable as a decorator)."""
    if not cls.name or cls.name == "abstract":
        raise InvalidInputError("kernel backend classes must define a name")
    _REGISTRY[cls.name] = cls
    _instances.pop(cls.name, None)
    return cls


def registered_backends() -> List[str]:
    """All registered backend names, available or not."""
    return sorted(_REGISTRY)


def available_backends() -> List[str]:
    """Backend names whose runtime is importable on this host."""
    return [n for n in sorted(_REGISTRY) if _REGISTRY[n].available]


def validate_backend_name(name: str) -> str:
    """Check ``name`` is ``"auto"`` or a registered backend; returns it."""
    if name != "auto" and name not in _REGISTRY:
        raise InvalidInputError(
            f"unknown kernel backend {name!r}; registered backends: "
            f"{', '.join(['auto'] + registered_backends())}"
        )
    return name


def resolve_backend(name: str = "auto") -> KernelBackend:
    """Resolve a backend name to a (cached) instance.

    ``"auto"`` (or ``None``) consults the ``REPRO_KERNEL_BACKEND``
    environment variable, defaulting to ``"numpy"``.  Unknown names raise
    :class:`InvalidInputError`; a known-but-unavailable backend warns and
    falls back to the reference backend so a config written on a
    numba-enabled host still runs everywhere.
    """
    if name is None or name == "auto":
        name = os.environ.get(ENV_VAR, "").strip() or DEFAULT_BACKEND
    validate_backend_name(name)
    cls = _REGISTRY[name]
    if not cls.available:
        warnings.warn(
            f"kernel backend {name!r} is not available on this host "
            f"(numba is not installed); falling back to {DEFAULT_BACKEND!r}",
            RuntimeWarning,
            stacklevel=2,
        )
        name = DEFAULT_BACKEND
        cls = _REGISTRY[name]
    inst = _instances.get(name)
    if inst is None:
        inst = _instances[name] = cls()
    return inst


register_backend(NumpyBackend)
register_backend(NumbaBackend)
register_backend(FusedPythonBackend)
