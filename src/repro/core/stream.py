"""Compressed-stream container: header framing + section views.

Layout (all little-endian; see DESIGN.md Section 6)::

    v1: [52-byte header][nblocks offset bytes][payload bytes]
    v2: [52-byte header][integrity section][nblocks offset bytes][payload bytes]

The offset section has a *predictable* location and size -- one byte per
block -- which is what lets decompression and random access find any block
with a prefix sum over offset bytes only (paper, Fig. 5: "We store offset
information because each data block's offset requires only 1 byte,
ensuring predictable locations").

Format v2 adds an integrity section between the header and the offset
bytes so that bit-flips, truncation, and partial-transfer loss become
*detectable* (and, at block-group granularity, recoverable)::

    offset 52        u32  header_crc   CRC32 of bytes [0, 52)
    offset 56        u16  group_blocks blocks per checksum group (G)
    offset 58        u16  reserved (0)
    offset 60        u32  ngroups      == ceil(nblocks / G)
    offset 64        ngroups x { u32 group_crc, u64 group_payload_len }
    offset 64+12n    u32  toc_crc      CRC32 of bytes [52, 64+12n)

``group_crc`` covers group *g*'s offset bytes followed by its payload
bytes; ``group_payload_len`` pins the group's payload extent so that a
corrupted offset byte inside one group cannot shift the byte boundaries
of any *other* group -- the property partial recovery and partial
retransmission rely on.  Amortized over the default 4096-block group the
section costs 12 bytes per >=4096 offset bytes (<0.3% of the offset
section alone, far below 0.1% of a typical stream).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.obs import trace as obs_trace

from .errors import StreamFormatError

MAGIC = b"CSZ2"
#: Stream format version written by :func:`assemble` (and ``compress``).
VERSION = 2
#: The checksum-free legacy version; still fully readable.
V1 = 1
SUPPORTED_VERSIONS = (V1, VERSION)

HEADER_FMT = "<4sBBBBHHQd3Q"
HEADER_SIZE = struct.calcsize(HEADER_FMT)

#: Blocks per checksum group (G).  One CRC32 + one u64 length per group.
DEFAULT_GROUP_BLOCKS = 4096

INTEGRITY_FIXED_FMT = "<IHHI"  # header_crc, group_blocks, reserved, ngroups
INTEGRITY_FIXED_SIZE = struct.calcsize(INTEGRITY_FIXED_FMT)
GROUP_RECORD_FMT = "<IQ"  # group_crc, group_payload_len
GROUP_RECORD_SIZE = struct.calcsize(GROUP_RECORD_FMT)
TOC_CRC_SIZE = 4

DTYPE_CODES = {np.dtype(np.float32): 0, np.dtype(np.float64): 1}
CODE_DTYPES = {0: np.dtype(np.float32), 1: np.dtype(np.float64)}


def crc32(*parts) -> int:
    """CRC32 chained over byte-like parts (uint8 arrays or bytes)."""
    c = 0
    for p in parts:
        if isinstance(p, np.ndarray):
            p = np.ascontiguousarray(p, dtype=np.uint8)
        c = zlib.crc32(p, c)
    return c & 0xFFFFFFFF


def integrity_section_size(ngroups: int) -> int:
    """Total v2 integrity-section bytes for ``ngroups`` block groups."""
    return INTEGRITY_FIXED_SIZE + ngroups * GROUP_RECORD_SIZE + TOC_CRC_SIZE


@dataclass(frozen=True)
class IntegritySection:
    """Decoded v2 integrity section (checksum TOC)."""

    header_crc: int
    group_blocks: int
    ngroups: int
    group_crcs: np.ndarray  # uint32, shape (ngroups,)
    group_lengths: np.ndarray  # int64 payload bytes per group
    toc_crc: int
    size: int  # total section bytes, including the trailing toc_crc

    def payload_bounds(self) -> np.ndarray:
        """Exclusive prefix sum of group payload lengths (ngroups+1)."""
        return np.concatenate([[0], np.cumsum(self.group_lengths)]).astype(np.int64)


@dataclass(frozen=True)
class StreamHeader:
    """Decoded header fields of a cuSZp2 stream."""

    mode: int  # 0 = Plain-FLE (CUSZP2-P), 1 = Outlier-FLE (CUSZP2-O)
    dtype: np.dtype
    predictor_ndim: int  # 1, 2 or 3
    block: int  # elements per block (L)
    nelems: int
    eb_abs: float  # resolved absolute error bound
    dims: Tuple[int, ...]  # logical field shape (padded with 1s to 3 axes)
    version: int = VERSION  # container version this header was read from / packs as

    @property
    def nblocks(self) -> int:
        if self.predictor_ndim == 1:
            return -(-self.nelems // self.block)
        t = round(self.block ** (1.0 / self.predictor_ndim))
        n = 1
        for s in self.dims[: self.predictor_ndim]:
            n *= -(-s // t)
        return n

    def pack(self) -> bytes:
        dims3 = tuple(self.dims) + (1,) * (3 - len(self.dims))
        return struct.pack(
            HEADER_FMT,
            MAGIC,
            self.version,
            self.mode,
            DTYPE_CODES[np.dtype(self.dtype)],
            self.predictor_ndim,
            self.block,
            0,  # reserved
            self.nelems,
            self.eb_abs,
            *dims3,
        )

    @classmethod
    def unpack(cls, buf: np.ndarray) -> "StreamHeader":
        if buf.size < HEADER_SIZE:
            raise StreamFormatError(
                f"stream is {buf.size} bytes but the header occupies bytes "
                f"[0, {HEADER_SIZE})"
            )
        fields = struct.unpack(HEADER_FMT, buf[:HEADER_SIZE].tobytes())
        magic, version, mode, dtype_code, ndim, block, _res, nelems, eb, d0, d1, d2 = fields
        if magic != MAGIC:
            raise StreamFormatError(
                f"bad magic {magic!r} at byte offset 0 (expected {MAGIC!r}); "
                "not a cuSZp2 stream"
            )
        if version not in SUPPORTED_VERSIONS:
            raise StreamFormatError(
                f"unsupported stream version {version} at byte offset 4 "
                f"(supported: {', '.join(str(v) for v in SUPPORTED_VERSIONS)})"
            )
        if dtype_code not in CODE_DTYPES:
            raise StreamFormatError(
                f"unknown dtype code {dtype_code} at byte offset 6 (expected 0 or 1)"
            )
        if mode not in (0, 1):
            raise StreamFormatError(
                f"unknown mode {mode} at byte offset 5 (expected 0 or 1)"
            )
        if ndim not in (1, 2, 3):
            raise StreamFormatError(
                f"unsupported predictor dimensionality {ndim} at byte offset 7 "
                "(expected 1, 2 or 3)"
            )
        if block == 0 or block % 8:
            raise StreamFormatError(
                f"block size {block} at byte offset 8 must be a positive multiple of 8"
            )
        if eb <= 0 or not np.isfinite(eb):
            raise StreamFormatError(
                f"stored error bound {eb!r} at byte offset 20 is not positive/finite"
            )
        # Keep the full logical shape (the caller's array shape), trimming
        # only trailing padding 1s beyond the predictor's dimensionality.
        dims = [int(d) for d in (d0, d1, d2)]
        while len(dims) > max(ndim, 1) and dims[-1] == 1:
            dims.pop()
        prod = 1
        for d in dims:
            prod *= d
        if prod != nelems:
            raise StreamFormatError(
                f"header inconsistency: dims {tuple(dims)} (byte offset 28) describe "
                f"{prod} elements but the element count (byte offset 12) says {nelems}"
            )
        return cls(mode, CODE_DTYPES[dtype_code], ndim, block, nelems, eb, tuple(dims), version)


# ---------------------------------------------------------------------------
# Integrity section pack/parse
# ---------------------------------------------------------------------------

def _group_geometry(nblocks: int, group_blocks: int) -> int:
    if group_blocks <= 0 or group_blocks > 0xFFFF:
        raise StreamFormatError(
            f"blocks-per-group {group_blocks} must be in [1, 65535]"
        )
    return -(-nblocks // group_blocks) if nblocks else 0


def group_payload_lengths(
    offsets: np.ndarray, block: int, group_blocks: int
) -> np.ndarray:
    """Payload bytes per checksum group, derived from the offset bytes."""
    from . import fle  # local import: fle does not import stream

    sizes = fle.block_payload_sizes(offsets, block).astype(np.int64)
    ngroups = _group_geometry(offsets.size, group_blocks)
    out = np.zeros(ngroups, dtype=np.int64)
    for g in range(ngroups):
        out[g] = int(sizes[g * group_blocks : (g + 1) * group_blocks].sum())
    return out


def build_integrity_section(
    header_bytes: np.ndarray,
    offsets: np.ndarray,
    payload: np.ndarray,
    group_blocks: int = DEFAULT_GROUP_BLOCKS,
    block: Optional[int] = None,
) -> bytes:
    """Compute the v2 integrity section for ``header + offsets + payload``."""
    if block is None:
        block = int(struct.unpack("<H", bytes(header_bytes[8:10]))[0])
    lens = group_payload_lengths(offsets, block, group_blocks)
    ngroups = lens.size
    bounds = np.concatenate([[0], np.cumsum(lens)]).astype(np.int64)
    if int(bounds[-1]) != payload.size:
        raise StreamFormatError(
            f"offset bytes describe {int(bounds[-1])} payload bytes but the "
            f"payload holds {payload.size}"
        )
    toc = bytearray()
    toc += struct.pack(
        INTEGRITY_FIXED_FMT, crc32(header_bytes), group_blocks, 0, ngroups
    )
    for g in range(ngroups):
        gcrc = crc32(
            offsets[g * group_blocks : (g + 1) * group_blocks],
            payload[bounds[g] : bounds[g + 1]],
        )
        toc += struct.pack(GROUP_RECORD_FMT, gcrc, int(lens[g]))
    toc += struct.pack("<I", crc32(bytes(toc)))
    return bytes(toc)


def parse_integrity_section(buf: np.ndarray, nblocks: int) -> IntegritySection:
    """Parse (without verifying) the integrity section of a v2 stream."""
    fixed_end = HEADER_SIZE + INTEGRITY_FIXED_SIZE
    if buf.size < fixed_end:
        raise StreamFormatError(
            f"stream truncated inside the integrity section: bytes "
            f"[{HEADER_SIZE}, {fixed_end}) needed, stream ends at {buf.size}"
        )
    header_crc, group_blocks, _res, ngroups = struct.unpack(
        INTEGRITY_FIXED_FMT, buf[HEADER_SIZE:fixed_end].tobytes()
    )
    if group_blocks == 0:
        raise StreamFormatError(
            f"blocks-per-group is 0 at byte offset {HEADER_SIZE + 4}"
        )
    expected_groups = _group_geometry(nblocks, group_blocks)
    if ngroups != expected_groups:
        raise StreamFormatError(
            f"integrity section at byte offset {HEADER_SIZE + 8} declares "
            f"{ngroups} checksum groups but {nblocks} blocks at {group_blocks} "
            f"blocks/group need {expected_groups}"
        )
    size = integrity_section_size(ngroups)
    end = HEADER_SIZE + size
    if buf.size < end:
        raise StreamFormatError(
            f"stream truncated inside the integrity section: need bytes "
            f"[{HEADER_SIZE}, {end}) for {ngroups} group records, stream ends "
            f"at {buf.size}"
        )
    records = (
        buf[fixed_end : end - TOC_CRC_SIZE]
        .reshape(ngroups, GROUP_RECORD_SIZE)
        .copy()
    )
    group_crcs = records[:, :4].copy().view("<u4").reshape(-1)
    group_lengths = records[:, 4:].copy().view("<u8").reshape(-1).astype(np.int64)
    (toc_crc,) = struct.unpack("<I", buf[end - TOC_CRC_SIZE : end].tobytes())
    return IntegritySection(
        header_crc=int(header_crc),
        group_blocks=int(group_blocks),
        ngroups=int(ngroups),
        group_crcs=group_crcs,
        group_lengths=group_lengths,
        toc_crc=int(toc_crc),
        size=size,
    )


def reseal(buf: np.ndarray) -> np.ndarray:
    """Recompute the header CRC and TOC CRC of a v2 stream in place.

    Must be called after any in-place header mutation (e.g. the orig-ndim
    stamp ``compress`` writes into the reserved field).  No-op for v1.
    """
    if buf.size < HEADER_SIZE or buf[4] != VERSION:
        return buf
    buf[HEADER_SIZE : HEADER_SIZE + 4] = np.frombuffer(
        struct.pack("<I", crc32(buf[:HEADER_SIZE])), dtype=np.uint8
    )
    header = StreamHeader.unpack(buf)
    section = parse_integrity_section(buf, header.nblocks)
    toc_end = HEADER_SIZE + section.size
    buf[toc_end - TOC_CRC_SIZE : toc_end] = np.frombuffer(
        struct.pack("<I", crc32(buf[HEADER_SIZE : toc_end - TOC_CRC_SIZE])),
        dtype=np.uint8,
    )
    return buf


# ---------------------------------------------------------------------------
# Assemble / split
# ---------------------------------------------------------------------------

def assemble(
    header: StreamHeader,
    offsets: np.ndarray,
    payload: np.ndarray,
    group_blocks: int = DEFAULT_GROUP_BLOCKS,
) -> np.ndarray:
    """Concatenate header + (v2: integrity section) + offset bytes + payload
    into one uint8 array (the 'single, unified byte array' the paper's Block
    Concatenation step produces)."""
    head = np.frombuffer(header.pack(), dtype=np.uint8)
    offsets = offsets.astype(np.uint8)
    payload = payload.astype(np.uint8)
    if header.version == V1:
        with obs_trace.maybe_span("codec.pack"):
            return np.concatenate([head, offsets, payload])
    with obs_trace.maybe_span("codec.scan"):
        toc = np.frombuffer(
            build_integrity_section(head, offsets, payload, group_blocks, header.block),
            dtype=np.uint8,
        )
    with obs_trace.maybe_span("codec.pack"):
        return np.concatenate([head, toc, offsets, payload])


def split_ex(
    buf,
) -> Tuple[StreamHeader, Optional[IntegritySection], np.ndarray, np.ndarray]:
    """Parse a stream into ``(header, integrity_section, offsets, payload)``.

    ``integrity_section`` is ``None`` for v1 streams.  This performs layout
    parsing only; checksum *verification* lives in
    :mod:`repro.core.integrity`.
    """
    if isinstance(buf, (bytes, bytearray, memoryview)):
        buf = np.frombuffer(buf, dtype=np.uint8)
    if buf.dtype != np.uint8:
        raise StreamFormatError(f"stream must be uint8 bytes, got dtype {buf.dtype}")
    header = StreamHeader.unpack(buf)
    nblocks = header.nblocks
    section = None
    off_start = HEADER_SIZE
    if header.version >= VERSION:
        section = parse_integrity_section(buf, nblocks)
        off_start += section.size
    off_end = off_start + nblocks
    if buf.size < off_end:
        raise StreamFormatError(
            f"stream truncated in the offset section at bytes "
            f"[{off_start}, {off_end}): need {nblocks} offset bytes, have "
            f"{max(buf.size - off_start, 0)}"
        )
    return header, section, buf[off_start:off_end], buf[off_end:]


def split(buf) -> Tuple[StreamHeader, np.ndarray, np.ndarray]:
    """Parse a stream into ``(header, offset_bytes, payload)`` views."""
    header, _section, offsets, payload = split_ex(buf)
    return header, offsets, payload


def offsets_start(header: StreamHeader, section: Optional[IntegritySection]) -> int:
    """Byte offset where the offset section begins for this stream."""
    return HEADER_SIZE + (section.size if section is not None else 0)


# ---------------------------------------------------------------------------
# Group-aligned chunk boundaries (for the chunked streaming engine)
# ---------------------------------------------------------------------------
#
# A stream can be split into independently decodable sub-streams as long as
# every cut lands on a block boundary: the 1-D predictor differences within
# each block only (the first element of a block is stored raw), so a block's
# bytes never depend on its neighbours.  Aligning cuts further, to a whole
# checksum *group* (block * group_blocks elements), keeps each sub-stream's
# integrity section congruent with the groups the monolithic stream would
# have had -- which is what lets chunk-level retransmission and recovery
# compose with the v2 machinery.

def chunk_granule(block: int, group_blocks: int = DEFAULT_GROUP_BLOCKS) -> int:
    """Elements per checksum group: the atomic unit of chunk alignment."""
    if block <= 0 or block % 8:
        raise StreamFormatError(
            f"block size {block} must be a positive multiple of 8"
        )
    _group_geometry(0, group_blocks)  # validates group_blocks range
    return block * group_blocks


def aligned_chunk_elems(
    requested_elems: int,
    block: int,
    group_blocks: int = DEFAULT_GROUP_BLOCKS,
) -> int:
    """Largest group-aligned chunk size not exceeding ``requested_elems``
    (but never smaller than one group, the minimum self-contained unit)."""
    granule = chunk_granule(block, group_blocks)
    return max(requested_elems // granule, 1) * granule


def chunk_spans(
    nelems: int,
    chunk_elems: int,
    block: int,
    group_blocks: int = DEFAULT_GROUP_BLOCKS,
) -> list:
    """Half-open ``(lo, hi)`` element spans covering ``[0, nelems)``.

    Every span except the last holds exactly ``chunk_elems`` elements
    (rounded to group alignment); each span compresses into a
    self-contained v2 stream that decodes to exactly the same bytes the
    monolithic stream would produce for those elements.
    """
    if nelems < 0:
        raise StreamFormatError(f"element count must be >= 0, got {nelems}")
    step = aligned_chunk_elems(chunk_elems, block, group_blocks)
    return [(lo, min(lo + step, nelems)) for lo in range(0, nelems, step)]
