"""Compressed-stream container: header framing + section views.

Layout (all little-endian; see DESIGN.md Section 6)::

    [52-byte header][nblocks offset bytes][payload bytes]

The offset section has a *predictable* location and size -- one byte per
block -- which is what lets decompression and random access find any block
with a prefix sum over offset bytes only (paper, Fig. 5: "We store offset
information because each data block's offset requires only 1 byte,
ensuring predictable locations").
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .errors import StreamFormatError

MAGIC = b"CSZ2"
VERSION = 1
HEADER_FMT = "<4sBBBBHHQd3Q"
HEADER_SIZE = struct.calcsize(HEADER_FMT)

DTYPE_CODES = {np.dtype(np.float32): 0, np.dtype(np.float64): 1}
CODE_DTYPES = {0: np.dtype(np.float32), 1: np.dtype(np.float64)}


@dataclass(frozen=True)
class StreamHeader:
    """Decoded header fields of a cuSZp2 stream."""

    mode: int  # 0 = Plain-FLE (CUSZP2-P), 1 = Outlier-FLE (CUSZP2-O)
    dtype: np.dtype
    predictor_ndim: int  # 1, 2 or 3
    block: int  # elements per block (L)
    nelems: int
    eb_abs: float  # resolved absolute error bound
    dims: Tuple[int, ...]  # logical field shape (padded with 1s to 3 axes)

    @property
    def nblocks(self) -> int:
        if self.predictor_ndim == 1:
            return -(-self.nelems // self.block)
        t = round(self.block ** (1.0 / self.predictor_ndim))
        n = 1
        for s in self.dims[: self.predictor_ndim]:
            n *= -(-s // t)
        return n

    def pack(self) -> bytes:
        dims3 = tuple(self.dims) + (1,) * (3 - len(self.dims))
        return struct.pack(
            HEADER_FMT,
            MAGIC,
            VERSION,
            self.mode,
            DTYPE_CODES[np.dtype(self.dtype)],
            self.predictor_ndim,
            self.block,
            0,  # reserved
            self.nelems,
            self.eb_abs,
            *dims3,
        )

    @classmethod
    def unpack(cls, buf: np.ndarray) -> "StreamHeader":
        if buf.size < HEADER_SIZE:
            raise StreamFormatError(f"stream shorter than the {HEADER_SIZE}-byte header")
        fields = struct.unpack(HEADER_FMT, buf[:HEADER_SIZE].tobytes())
        magic, version, mode, dtype_code, ndim, block, _res, nelems, eb, d0, d1, d2 = fields
        if magic != MAGIC:
            raise StreamFormatError(f"bad magic {magic!r}; not a cuSZp2 stream")
        if version != VERSION:
            raise StreamFormatError(f"unsupported stream version {version}")
        if dtype_code not in CODE_DTYPES:
            raise StreamFormatError(f"unknown dtype code {dtype_code}")
        if mode not in (0, 1):
            raise StreamFormatError(f"unknown mode {mode}")
        if ndim not in (1, 2, 3):
            raise StreamFormatError(f"unsupported predictor dimensionality {ndim}")
        if block == 0 or block % 8:
            raise StreamFormatError(f"block size {block} must be a positive multiple of 8")
        if eb <= 0 or not np.isfinite(eb):
            raise StreamFormatError(f"stored error bound {eb!r} is not positive/finite")
        # Keep the full logical shape (the caller's array shape), trimming
        # only trailing padding 1s beyond the predictor's dimensionality.
        dims = [int(d) for d in (d0, d1, d2)]
        while len(dims) > max(ndim, 1) and dims[-1] == 1:
            dims.pop()
        prod = 1
        for d in dims:
            prod *= d
        if prod != nelems:
            raise StreamFormatError(
                f"header inconsistency: dims {tuple(dims)} describe {prod} elements "
                f"but the element count says {nelems}"
            )
        return cls(mode, CODE_DTYPES[dtype_code], ndim, block, nelems, eb, tuple(dims))


def assemble(header: StreamHeader, offsets: np.ndarray, payload: np.ndarray) -> np.ndarray:
    """Concatenate header + offset bytes + payload into one uint8 array (the
    'single, unified byte array' the paper's Block Concatenation step
    produces)."""
    head = np.frombuffer(header.pack(), dtype=np.uint8)
    return np.concatenate([head, offsets.astype(np.uint8), payload.astype(np.uint8)])


def split(buf: np.ndarray) -> Tuple[StreamHeader, np.ndarray, np.ndarray]:
    """Parse a stream into ``(header, offset_bytes, payload)`` views."""
    if isinstance(buf, (bytes, bytearray, memoryview)):
        buf = np.frombuffer(buf, dtype=np.uint8)
    if buf.dtype != np.uint8:
        raise StreamFormatError(f"stream must be uint8 bytes, got dtype {buf.dtype}")
    header = StreamHeader.unpack(buf)
    nblocks = header.nblocks
    off_end = HEADER_SIZE + nblocks
    if buf.size < off_end:
        raise StreamFormatError(
            f"stream truncated: need {nblocks} offset bytes, have {buf.size - HEADER_SIZE}"
        )
    return header, buf[HEADER_SIZE:off_end], buf[off_end:]
