"""Per-field auto-tuning: pick the codec/config with the best ratio under
the bound.

This generalizes the paper's per-block Plain-vs-Outlier selection to
whole-pipeline selection: for each field the tuner resolves the error
bound once (on the full field, so a REL bound means the same absolute
step for every trial), trial-compresses a few sampled block groups with
every candidate codec/mode/block-size configuration, and commits to the
configuration with the best sampled ratio.  Candidates are bounded codecs
only -- a fixed-rate codec (cuzfp) cannot promise the bound, so it never
competes.  Fields small enough that sampling would cover most of the data
are trialed whole, which makes the choice exact rather than estimated.

Every decision is recorded: as a :class:`TuneRecord` (per-trial ratios
included) and as attributes on a ``codecs.autotune`` trace span when a
tracer is active.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..core.archive import pack_streams
from ..core.errors import CuSZp2Error, InvalidInputError
from ..core.quantize import ErrorBound, validate_input
from ..obs import trace as obs_trace
from . import plugin as _plugin


@dataclass(frozen=True)
class Candidate:
    """One codec/configuration the tuner may pick."""

    codec: str
    opts: Tuple[Tuple[str, Any], ...] = ()

    @property
    def label(self) -> str:
        if not self.opts:
            return self.codec
        return self.codec + "[" + ",".join(f"{k}={v}" for k, v in self.opts) + "]"

    def options(self) -> Dict[str, Any]:
        return dict(self.opts)


#: The default candidate set: the core codec in both selection modes and a
#: smaller block size, plus every bounded baseline.
DEFAULT_CANDIDATES: Tuple[Candidate, ...] = (
    Candidate("cuszp2", (("mode", "outlier"),)),
    Candidate("cuszp2", (("mode", "plain"),)),
    Candidate("cuszp2", (("mode", "outlier"), ("block", 64))),
    Candidate("fzgpu"),
    Candidate("cusz"),
    Candidate("cuszx"),
    Candidate("mgard"),
)


@dataclass(frozen=True)
class Trial:
    """One candidate's sampled result (``ratio`` is None when it refused)."""

    label: str
    codec: str
    opts: Tuple[Tuple[str, Any], ...]
    ratio: Optional[float]
    error: Optional[str] = None


@dataclass
class TuneRecord:
    """The tuner's decision for one field, with the evidence."""

    codec: str
    opts: Dict[str, Any]
    eb_abs: float
    sample_elems: int
    total_elems: int
    sampled_whole: bool
    trials: List[Trial] = field(default_factory=list)
    #: Ratio of the final full-field stream (set by :func:`autotune_compress`).
    full_ratio: Optional[float] = None

    @property
    def sample_ratio(self) -> Optional[float]:
        for t in self.trials:
            if t.codec == self.codec and dict(t.opts) == self.opts:
                return t.ratio
        return None  # pragma: no cover - trials always include the winner

    def describe(self) -> str:
        lines = [
            f"auto-tuner: {self.total_elems} elems, eb_abs={self.eb_abs:g}, "
            f"sampled {self.sample_elems} elems"
            + (" (whole field)" if self.sampled_whole else "")
        ]
        for t in sorted(self.trials, key=lambda t: -(t.ratio or 0.0)):
            if t.ratio is None:
                lines.append(f"  {t.label:<28} refused: {t.error}")
            else:
                mark = " <== chosen" if (t.codec == self.codec and dict(t.opts) == self.opts) else ""
                lines.append(f"  {t.label:<28} ratio {t.ratio:.3f}{mark}")
        return "\n".join(lines)


def _sample(flat: np.ndarray, groups: int, group_elems: int) -> Tuple[np.ndarray, bool]:
    """Evenly spaced sample spans of ``flat`` (or the whole field when the
    spans would cover at least half of it)."""
    n = flat.size
    if groups * group_elems * 2 >= n:
        return flat, True
    step = n // groups
    spans = [flat[i * step : i * step + group_elems] for i in range(groups)]
    return np.concatenate(spans), False


def autotune(
    data: np.ndarray,
    rel: Optional[float] = None,
    abs: Optional[float] = None,  # noqa: A002 - mirrors repro.compress
    candidates: Optional[Tuple[Candidate, ...]] = None,
    sample_groups: int = 4,
    group_elems: int = 2048,
) -> TuneRecord:
    """Pick the best codec/config for ``data`` under the bound.

    Returns a :class:`TuneRecord`; compress with
    ``repro.codecs.encode(data, rec.codec, abs=rec.eb_abs, **rec.opts)``
    (or just call :func:`autotune_compress`).
    """
    if (rel is None) == (abs is None):
        raise InvalidInputError("specify exactly one of rel= or abs=")
    flat, lo, hi = validate_input(data, return_minmax=True)
    eb = ErrorBound.relative(rel) if rel is not None else ErrorBound.absolute(abs)
    eb_abs = eb.resolve(flat, minmax=(lo, hi))
    candidates = candidates if candidates is not None else DEFAULT_CANDIDATES

    sample, whole = _sample(flat, sample_groups, group_elems)
    itemsize = sample.dtype.itemsize
    trials: List[Trial] = []
    best: Optional[Trial] = None
    with obs_trace.maybe_span(
        "codecs.autotune", elems=int(flat.size), sample_elems=int(sample.size)
    ) as sp:
        for cand in candidates:
            plugin = _plugin.resolve(cand.codec)
            if not plugin.bounded:
                trials.append(Trial(cand.label, cand.codec, cand.opts, None,
                                    "fixed-rate codec cannot promise the bound"))
                continue
            trial_data = sample[:512] if plugin.heavy else sample
            try:
                stream = plugin.compress(trial_data, abs=eb_abs, **cand.options())
            except CuSZp2Error as e:
                trials.append(Trial(cand.label, cand.codec, cand.opts, None,
                                    f"{type(e).__name__}: {e}"))
                continue
            ratio = trial_data.size * itemsize / int(stream.size)
            t = Trial(cand.label, cand.codec, cand.opts, float(ratio))
            trials.append(t)
            if best is None or t.ratio > best.ratio:
                best = t
        if best is None:
            # every candidate refused (e.g. quantization overflow across the
            # board); fall back to the default codec and let its compress
            # surface the classified error to the caller
            best = Trial(_plugin.DEFAULT_CODEC, _plugin.DEFAULT_CODEC, (), None)
        if sp is not None:
            sp.set(codec=best.codec, opts=dict(best.opts),
                   ratio=best.ratio, eb_abs=float(eb_abs))
    return TuneRecord(
        codec=best.codec,
        opts=dict(best.opts),
        eb_abs=float(eb_abs),
        sample_elems=int(sample.size),
        total_elems=int(flat.size),
        sampled_whole=whole,
        trials=trials,
    )


def autotune_compress(
    data: np.ndarray,
    rel: Optional[float] = None,
    abs: Optional[float] = None,  # noqa: A002 - mirrors repro.compress
    **tuner_kwargs,
) -> Tuple[np.ndarray, TuneRecord]:
    """Tune, then compress the full field with the winning configuration.

    The final stream uses the bound already resolved on the full field, so
    the reconstruction honors exactly the bound the trials competed under.
    """
    rec = autotune(data, rel=rel, abs=abs, **tuner_kwargs)
    stream = _plugin.encode(data, rec.codec, abs=rec.eb_abs, **rec.opts)
    rec.full_ratio = float(data.nbytes / int(stream.size))
    return stream, rec


def autotune_pack(
    fields: Mapping[str, np.ndarray],
    rel: Optional[float] = None,
    abs: Optional[float] = None,  # noqa: A002 - mirrors repro.compress
    **tuner_kwargs,
) -> Tuple[np.ndarray, Dict[str, TuneRecord]]:
    """Tune each field independently and pack the winning streams into one
    archive (the mixed multi-field scenario the tuner exists for).

    Streams of any registered codec extract transparently:
    :meth:`repro.core.archive.DatasetArchive.extract` dispatches non-CSZ2
    streams through :func:`repro.codecs.decode`.
    """
    if not fields:
        raise InvalidInputError("cannot auto-tune an empty field mapping")
    streams: Dict[str, np.ndarray] = {}
    records: Dict[str, TuneRecord] = {}
    for name, data in fields.items():
        streams[name], records[name] = autotune_compress(
            data, rel=rel, abs=abs, **tuner_kwargs
        )
    return pack_streams(streams), records
