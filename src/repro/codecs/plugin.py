"""The CompressorPlugin registry: one contract over every codec.

libpressio wraps the cuSZ-family codecs behind a uniform
options/compress/decompress plugin API (SNIPPETS.md snippet 3); this module
is the Python equivalent.  Every plugin -- the core cuSZp2 codec and all
six ``repro.baselines`` -- answers the same contract:

* ``compress(ndarray, **opts) -> uint8 stream``: accepts a float32/float64
  array of any dimensionality up to ``max_ndim``, validates its options
  against a declared :class:`OptionSpec` schema, and raises only classified
  :class:`~repro.core.errors.CuSZp2Error` subclasses.
* ``decompress(stream) -> ndarray``: restores the original dtype *and*
  shape, again answering only classified errors.

Codecs whose own container does not record the caller's shape (the hybrid
baselines store a flat element count) are wrapped in a small shape
envelope, so the uniform contract holds without touching their stream
formats.  :func:`decode` sniffs the envelope and each plugin's raw magic,
so a stream can be decoded without knowing which codec produced it --
which is what lets the CLI, the serve workers, and the archive extractor
speak one dispatch path.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from ..core.errors import CuSZp2Error, InvalidInputError, StreamFormatError
from ..obs import trace as obs_trace

#: Default codec: the paper's own compressor.
DEFAULT_CODEC = "cuszp2"

#: Shape-envelope magic (6 bytes, disjoint from every codec's own magic).
ENVELOPE_MAGIC = b"CPLG1\x00"


def as_stream(buf) -> np.ndarray:
    """Normalize bytes-like input to a uint8 ndarray (zero-copy when
    already one)."""
    if isinstance(buf, np.ndarray):
        if buf.dtype != np.uint8:
            return buf.view(np.uint8) if buf.ndim == 1 else np.frombuffer(
                buf.tobytes(), dtype=np.uint8
            )
        return buf
    return np.frombuffer(bytes(buf), dtype=np.uint8)


# ---------------------------------------------------------------------------
# Option schema
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class OptionSpec:
    """One declared plugin option: type, default, and legal range.

    ``type`` is ``float``, ``int`` or ``str``.  String values are coerced
    (the CLI's ``--codec-opt k=v`` arrives as text); booleans are rejected
    for numeric options so ``True`` never silently means ``1``.
    """

    name: str
    type: type
    doc: str = ""
    default: Any = None
    choices: Optional[Tuple] = None
    minimum: Optional[float] = None

    def coerce(self, value):
        if isinstance(value, bool) and self.type is not str:
            raise InvalidInputError(
                f"option {self.name!r} expects {self.type.__name__}, got bool"
            )
        try:
            if self.type is int and isinstance(value, float) and value != int(value):
                raise ValueError(f"{value!r} is not an integer")
            value = self.type(value)
        except (TypeError, ValueError) as e:
            raise InvalidInputError(
                f"option {self.name!r} expects {self.type.__name__}, "
                f"got {value!r} ({e})"
            ) from None
        if self.choices is not None and value not in self.choices:
            raise InvalidInputError(
                f"option {self.name!r} must be one of {list(self.choices)}, got {value!r}"
            )
        if self.minimum is not None and value < self.minimum:
            raise InvalidInputError(
                f"option {self.name!r} must be >= {self.minimum}, got {value!r}"
            )
        return value


# ---------------------------------------------------------------------------
# Shape envelope
# ---------------------------------------------------------------------------

def _wrap_envelope(name: str, shape: Tuple[int, ...], payload: np.ndarray) -> np.ndarray:
    nb = name.encode("ascii")
    head = (
        ENVELOPE_MAGIC
        + struct.pack("<B", len(nb))
        + nb
        + struct.pack("<B", len(shape))
        + b"".join(struct.pack("<Q", int(d)) for d in shape)
        + struct.pack("<Q", int(payload.size))
    )
    return np.concatenate([np.frombuffer(head, dtype=np.uint8), payload])


def is_envelope(buf) -> bool:
    buf = as_stream(buf)
    return buf.size >= len(ENVELOPE_MAGIC) and bytes(buf[: len(ENVELOPE_MAGIC)]) == ENVELOPE_MAGIC


def _need(buf: np.ndarray, pos: int, n: int, what: str) -> None:
    if buf.size < pos + n:
        raise StreamFormatError(
            f"codec envelope truncated reading {what}: need bytes "
            f"[{pos}, {pos + n}), stream ends at {buf.size}"
        )


def _unwrap_envelope(buf: np.ndarray) -> Tuple[str, Tuple[int, ...], np.ndarray]:
    """``(codec name, original shape, payload view)`` of an enveloped stream."""
    pos = len(ENVELOPE_MAGIC)
    _need(buf, pos, 1, "codec name length")
    nlen = int(buf[pos])
    pos += 1
    _need(buf, pos, nlen, "codec name")
    try:
        name = bytes(buf[pos : pos + nlen]).decode("ascii")
    except UnicodeDecodeError:
        raise StreamFormatError("codec envelope name is not ASCII") from None
    pos += nlen
    _need(buf, pos, 1, "ndim")
    ndim = int(buf[pos])
    pos += 1
    _need(buf, pos, 8 * ndim, "shape dims")
    shape = tuple(
        struct.unpack("<Q", buf[pos + 8 * i : pos + 8 * (i + 1)].tobytes())[0]
        for i in range(ndim)
    )
    pos += 8 * ndim
    _need(buf, pos, 8, "payload length")
    (plen,) = struct.unpack("<Q", buf[pos : pos + 8].tobytes())
    pos += 8
    _need(buf, pos, plen, f"{name!r} payload")
    return name, shape, buf[pos : pos + plen]


# ---------------------------------------------------------------------------
# Plugin base class
# ---------------------------------------------------------------------------

class CompressorPlugin:
    """Base class every codec plugin derives from.

    Subclasses set the class attributes and implement ``_compress(arr,
    opts) -> uint8 stream`` / ``_decompress(payload) -> ndarray``.  The
    template methods below own the shared contract: input and option
    validation, classified-error conversion, tracing, and (for codecs
    whose stream does not record the caller's shape) the shape envelope.
    """

    #: Registry name (also the CLI ``--codec`` value).
    name: str = ""
    description: str = ""
    #: First bytes of the codec's raw stream, for :func:`sniff` dispatch.
    magic: Optional[bytes] = None
    #: True when ``_decompress`` restores the caller's shape itself; False
    #: wraps streams in the shape envelope.
    preserves_shape: bool = False
    #: True when the codec honors a rel/abs error bound (cuzfp is
    #: fixed-rate: the ratio is set by ``rate``, not a bound).
    bounded: bool = True
    #: Python-loop-heavy codec: fuzzers and the auto-tuner trial it on
    #: smaller samples.
    heavy: bool = False
    max_ndim: int = 3
    #: name -> :class:`OptionSpec`.
    options: Dict[str, OptionSpec] = {}

    # -- schema --------------------------------------------------------------

    def validate_options(self, opts: Mapping[str, Any]) -> Dict[str, Any]:
        """Coerce ``opts`` against the schema; unknown names, type
        mismatches, and a missing/double error bound all raise
        :class:`InvalidInputError`."""
        out: Dict[str, Any] = {}
        for key, value in opts.items():
            spec = self.options.get(key)
            if spec is None:
                raise InvalidInputError(
                    f"codec {self.name!r} has no option {key!r}; "
                    f"available: {sorted(self.options)}"
                )
            out[key] = spec.coerce(value)
        if self.bounded and ("rel" in out) == ("abs" in out):
            raise InvalidInputError(
                f"codec {self.name!r}: specify exactly one of rel= or abs="
            )
        for key, spec in self.options.items():
            if key not in out and spec.default is not None:
                out[key] = spec.default
        return out

    # -- template methods ----------------------------------------------------

    def _validate_input(self, data) -> np.ndarray:
        if not isinstance(data, np.ndarray):
            raise InvalidInputError(
                f"codec {self.name!r} expected a numpy array, got {type(data).__name__}"
            )
        if data.dtype not in (np.float32, np.float64):
            raise InvalidInputError(
                f"codec {self.name!r}: dtype must be float32 or float64, got {data.dtype}"
            )
        if data.size == 0:
            raise InvalidInputError(f"codec {self.name!r} cannot compress an empty array")
        if data.ndim > self.max_ndim:
            raise InvalidInputError(
                f"codec {self.name!r} supports up to {self.max_ndim} dimensions, "
                f"got {data.ndim}"
            )
        arr = np.ascontiguousarray(data)
        lo = float(np.min(arr))
        hi = float(np.max(arr))
        if not (np.isfinite(lo) and np.isfinite(hi)):
            raise InvalidInputError(
                f"codec {self.name!r}: input contains NaN or infinity; "
                "only finite data is compressible"
            )
        return arr

    def compress(self, data: np.ndarray, **opts) -> np.ndarray:
        """Validate input + options, run the codec, classify any escape."""
        opts = self.validate_options(opts)
        arr = self._validate_input(data)
        with obs_trace.maybe_span(
            f"codec.{self.name}.compress", bytes_in=int(arr.nbytes)
        ) as sp:
            try:
                payload = self._compress(arr, opts)
            except CuSZp2Error:
                raise
            except Exception as e:
                raise InvalidInputError(
                    f"codec {self.name!r} cannot compress this input: "
                    f"{type(e).__name__}: {e}"
                ) from e
            if not self.preserves_shape:
                payload = _wrap_envelope(self.name, tuple(arr.shape), payload)
            if sp is not None:
                sp.set(bytes_out=int(payload.size))
        return payload

    def decompress(self, buf) -> np.ndarray:
        """Decode a stream this plugin produced, restoring dtype + shape."""
        buf = as_stream(buf)
        shape: Optional[Tuple[int, ...]] = None
        if is_envelope(buf):
            name, shape, payload = _unwrap_envelope(buf)
            if name != self.name:
                raise StreamFormatError(
                    f"stream was produced by codec {name!r}, not {self.name!r}; "
                    "use repro.codecs.decode() to dispatch automatically"
                )
        else:
            if self.magic is not None and (
                buf.size < len(self.magic) or bytes(buf[: len(self.magic)]) != self.magic
            ):
                raise StreamFormatError(
                    f"stream does not start with codec {self.name!r}'s magic "
                    f"{self.magic!r} (got {bytes(buf[: len(self.magic)])!r})"
                )
            payload = buf
        with obs_trace.maybe_span(
            f"codec.{self.name}.decompress", bytes_in=int(buf.size)
        ) as sp:
            try:
                out = self._decompress(payload)
            except CuSZp2Error:
                raise
            except Exception as e:
                raise StreamFormatError(
                    f"codec {self.name!r} stream is malformed: {type(e).__name__}: {e}"
                ) from e
            if shape is not None:
                expected = 1
                for d in shape:
                    expected *= d
                if out.size != expected:
                    raise StreamFormatError(
                        f"codec {self.name!r} decoded {out.size} elements, envelope "
                        f"declares shape {shape} ({expected} elements)"
                    )
                out = out.reshape(shape)
            if sp is not None:
                sp.set(bytes_out=int(out.nbytes))
        return out

    # -- impl hooks ----------------------------------------------------------

    def _compress(self, arr: np.ndarray, opts: Dict[str, Any]) -> np.ndarray:
        raise NotImplementedError

    def _decompress(self, payload: np.ndarray) -> np.ndarray:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, CompressorPlugin] = {}


def register(plugin: CompressorPlugin, *, replace: bool = False) -> CompressorPlugin:
    """Register ``plugin`` under its ``name`` (registration order is the
    sniffing order).  Re-registering an existing name without
    ``replace=True`` is a programming error, not a codec error."""
    name = plugin.name
    if not name or not name.isascii():
        raise ValueError(f"plugin name must be non-empty ASCII, got {name!r}")
    if name in _REGISTRY and not replace:
        raise ValueError(f"codec {name!r} is already registered (pass replace=True)")
    _REGISTRY[name] = plugin
    return plugin


def unregister(name: str) -> None:
    _REGISTRY.pop(name, None)


def codec_names() -> List[str]:
    """Registered codec names in registration order."""
    return list(_REGISTRY)


def list_plugins() -> Dict[str, CompressorPlugin]:
    return dict(_REGISTRY)


def resolve(codec: Union[str, CompressorPlugin]) -> CompressorPlugin:
    if isinstance(codec, CompressorPlugin):
        return codec
    try:
        return _REGISTRY[codec]
    except KeyError:
        raise InvalidInputError(
            f"unknown codec {codec!r}; registered: {codec_names()}"
        ) from None


def encode(data: np.ndarray, codec: Union[str, CompressorPlugin] = DEFAULT_CODEC, **opts) -> np.ndarray:
    """Compress ``data`` with the named plugin."""
    return resolve(codec).compress(data, **opts)


def sniff(buf) -> Optional[str]:
    """The codec name a stream belongs to, or ``None`` when unrecognized.

    Enveloped streams carry their producer's name; raw streams are matched
    against each registered plugin's magic in registration order (the core
    codec first, so CSZ2 streams always resolve to ``"cuszp2"``).
    """
    buf = as_stream(buf)
    if is_envelope(buf):
        name, _shape, _payload = _unwrap_envelope(buf)
        return name
    for name, plugin in _REGISTRY.items():
        m = plugin.magic
        if m is not None and buf.size >= len(m) and bytes(buf[: len(m)]) == m:
            return name
    return None


def decode(buf, codec: Union[None, str, CompressorPlugin] = None) -> np.ndarray:
    """Decompress ``buf``, dispatching on its magic unless ``codec`` is
    forced.  Unrecognized streams raise :class:`StreamFormatError`."""
    buf = as_stream(buf)
    if codec is not None:
        return resolve(codec).decompress(buf)
    name = sniff(buf)
    if name is None:
        head = bytes(buf[: min(8, buf.size)])
        raise StreamFormatError(
            f"unrecognized compressed stream (first bytes {head!r}); "
            f"registered codecs: {codec_names()}"
        )
    return resolve(name).decompress(buf)
