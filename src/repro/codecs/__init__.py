"""repro.codecs: the CompressorPlugin registry and per-field auto-tuner.

One contract over every codec (libpressio-style; see docs/CODECS.md):

>>> from repro import codecs
>>> stream = codecs.encode(field, "fzgpu", rel=1e-3)
>>> recon = codecs.decode(stream)          # sniffs the producer
>>> codecs.codec_names()
['cuszp2', 'cuszp', 'fzgpu', 'cuzfp', 'cusz', 'cuszx', 'mgard']

Importing this package registers the seven builtin plugins.
"""

from .builtin import register_builtin_plugins
from .plugin import (
    DEFAULT_CODEC,
    CompressorPlugin,
    OptionSpec,
    codec_names,
    decode,
    encode,
    is_envelope,
    list_plugins,
    register,
    resolve,
    sniff,
    unregister,
)
from .tuner import (
    DEFAULT_CANDIDATES,
    Candidate,
    TuneRecord,
    autotune,
    autotune_compress,
    autotune_pack,
)

register_builtin_plugins()

__all__ = [
    "DEFAULT_CODEC",
    "CompressorPlugin",
    "OptionSpec",
    "register",
    "unregister",
    "resolve",
    "codec_names",
    "list_plugins",
    "encode",
    "decode",
    "sniff",
    "is_envelope",
    "Candidate",
    "DEFAULT_CANDIDATES",
    "TuneRecord",
    "autotune",
    "autotune_compress",
    "autotune_pack",
]
