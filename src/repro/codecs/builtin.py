"""The builtin plugins: core cuSZp2 plus all six paper baselines.

Each class is a thin adapter from the uniform plugin contract onto the
codec's native API.  The core codec and the pure-GPU baselines (cuSZp,
FZ-GPU, cuZFP) ship self-describing streams and restore shape natively;
the hybrid baselines (cuSZ, cuSZx, MGARD-like) store a flat element count
only, so the plugin layer wraps their streams in the shape envelope.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..baselines import fzgpu as _fzgpu
from ..baselines.cuszp import CuSZp as _CuSZp
from ..baselines.hybrid import CuSZ as _CuSZ
from ..baselines.hybrid import CuSZx as _CuSZx
from ..baselines.hybrid import MGARDLike as _MGARDLike
from ..baselines.zfp import codec as _zfp
from ..core import compressor as _core
from ..core import stream as _stream
from ..core.quantize import ErrorBound
from .plugin import CompressorPlugin, OptionSpec, register

_REL = OptionSpec("rel", float, "value-range-relative error bound (e.g. 1e-3)")
_ABS = OptionSpec("abs", float, "absolute error bound")


def _bound(opts: Dict[str, Any]) -> ErrorBound:
    if "rel" in opts:
        return ErrorBound.relative(opts["rel"])
    return ErrorBound.absolute(opts["abs"])


class CuSZp2Plugin(CompressorPlugin):
    """The paper's compressor (default plugin): quantize + blockwise
    Lorenzo + Plain/Outlier-FLE in a checksummed CSZ2 v2 stream."""

    name = "cuszp2"
    description = "core cuSZp2 codec (Plain/Outlier-FLE, CSZ2 v2 stream)"
    magic = _stream.MAGIC
    preserves_shape = True
    options = {
        "rel": _REL,
        "abs": _ABS,
        "mode": OptionSpec(
            "mode", str, "per-block encoding selection", default="outlier",
            choices=("plain", "outlier"),
        ),
        "block": OptionSpec("block", int, "elements per block", default=_core.DEFAULT_BLOCK, minimum=1),
        "predictor_ndim": OptionSpec(
            "predictor_ndim", int, "Lorenzo dimensionality", default=1, choices=(1, 2, 3),
        ),
        "group_blocks": OptionSpec(
            "group_blocks", int, "blocks per checksum group",
            default=_stream.DEFAULT_GROUP_BLOCKS, minimum=1,
        ),
        "kernel_backend": OptionSpec(
            "kernel_backend", str, "kernel registry name", default="auto",
        ),
    }

    def _compress(self, arr, opts):
        return _core.CuSZp2(
            _bound(opts),
            mode=opts["mode"],
            block=opts["block"],
            predictor_ndim=opts["predictor_ndim"],
            group_blocks=opts["group_blocks"],
            kernel_backend=opts["kernel_backend"],
        ).compress(arr)

    def _decompress(self, payload):
        return _core.decompress(payload)


class CuSZpPlugin(CompressorPlugin):
    """cuSZp (the predecessor): byte-identical to cuSZp2 Plain mode."""

    name = "cuszp"
    description = "cuSZp baseline (Plain-FLE; emits core CSZ2 streams)"
    magic = _stream.MAGIC
    preserves_shape = True
    options = {"rel": _REL, "abs": _ABS}

    def _compress(self, arr, opts):
        return _CuSZp(_bound(opts)).compress(arr)

    def _decompress(self, payload):
        return _core.decompress(payload)


class FZGPUPlugin(CompressorPlugin):
    """FZ-GPU: same lossy step, bitshuffle + zero-word-removal encoding."""

    name = "fzgpu"
    description = "FZ-GPU baseline (Lorenzo + bitshuffle + zero-word removal)"
    magic = _fzgpu.MAGIC
    preserves_shape = True
    options = {
        "rel": _REL,
        "abs": _ABS,
        "predictor_ndim": OptionSpec(
            "predictor_ndim", int, "1-D blockwise or true 3-D Lorenzo",
            default=1, choices=(1, 3),
        ),
    }

    def _compress(self, arr, opts):
        return _fzgpu.FZGPU(_bound(opts), predictor_ndim=opts["predictor_ndim"]).compress(arr)

    def _decompress(self, payload):
        return _fzgpu.FZGPU(ErrorBound.relative(1e-3)).decompress(payload)


class CuZFPPlugin(CompressorPlugin):
    """cuZFP: fixed-rate transform coding -- no error bound; the ratio is
    set by ``rate`` (bits per value).  Python per-block loops make this
    the slow plugin, flagged ``heavy`` so samplers cap its input."""

    name = "cuzfp"
    description = "cuZFP baseline (fixed-rate ZFP; rate picks the ratio, no bound)"
    magic = _zfp.MAGIC
    preserves_shape = True
    bounded = False
    heavy = True
    options = {
        "rate": OptionSpec(
            "rate", float, "bits per value (paper sweeps 4/8/16)",
            default=8.0, minimum=1.0,
        ),
    }

    def _compress(self, arr, opts):
        return _zfp.CuZFP(rate=opts["rate"]).compress(arr)

    def _decompress(self, payload):
        return _zfp.CuZFP(rate=8).decompress(payload)


class _HybridPlugin(CompressorPlugin):
    """Shared adapter for the CPU-GPU hybrid baselines: native streams
    decode flat, so the envelope restores the caller's shape."""

    preserves_shape = False
    options = {"rel": _REL, "abs": _ABS}
    _impl = None  # codec class taking (error_bound)

    def _compress(self, arr, opts):
        return self._impl(_bound(opts)).compress(arr)

    def _decompress(self, payload):
        return self._impl(ErrorBound.relative(1e-3)).decompress(payload)


class CuSZPlugin(_HybridPlugin):
    name = "cusz"
    description = "cuSZ baseline (global Lorenzo + canonical Huffman)"
    magic = b"CSZ1"
    _impl = _CuSZ


class CuSZxPlugin(_HybridPlugin):
    name = "cuszx"
    description = "cuSZx baseline (constant-block detection + Plain-FLE)"
    magic = b"CSZX"
    _impl = _CuSZx


class MGARDPlugin(_HybridPlugin):
    name = "mgard"
    description = "MGARD-like baseline (multilevel interpolation + Huffman)"
    magic = b"MGD1"
    _impl = _MGARDLike
    options = {
        "rel": _REL,
        "abs": _ABS,
        "min_coarse": OptionSpec(
            "min_coarse", int, "coarsest-grid size floor", default=4, minimum=2,
        ),
    }

    def _compress(self, arr, opts):
        return _MGARDLike(_bound(opts), min_coarse=opts["min_coarse"]).compress(arr)


def register_builtin_plugins() -> None:
    """Idempotently register the seven builtin plugins (cuszp2 first, so
    raw CSZ2 streams sniff to the core codec)."""
    from .plugin import codec_names

    if "cuszp2" in codec_names():
        return
    for cls in (
        CuSZp2Plugin, CuSZpPlugin, FZGPUPlugin, CuZFPPlugin,
        CuSZPlugin, CuSZxPlugin, MGARDPlugin,
    ):
        register(cls())
