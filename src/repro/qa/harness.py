"""The fuzzing campaign loop behind ``repro fuzz`` and CI's fuzz-smoke.

A campaign is ``(seed, iters, paths)``: iteration ``i`` draws case
``draw_case(seed, i)`` and runs every applicable selected oracle on it.
Failures are shrunk (:mod:`repro.qa.shrink`), persisted
(:mod:`repro.qa.corpus`) and collected into the report; the campaign
stops early after ``max_failures`` distinct failures or when the time
budget runs out, and the report records exactly how far it got so a rerun
with the same seed retraces the identical trajectory.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .corpus import save_failure
from .generators import draw_case
from .oracles import ORACLES, OracleContext, OracleFailure, applicable_oracles
from .shrink import shrink_case


@dataclass(frozen=True)
class FuzzConfig:
    """Everything that determines a campaign (and its replay)."""

    seed: int = 0
    iters: int = 200
    paths: Tuple[str, ...] = tuple(ORACLES)
    time_budget: Optional[float] = None  # seconds; None = unbounded
    corpus_dir: Optional[str] = None  # where shrunk failures are written
    shrink: bool = True
    max_failures: int = 5
    workers: int = 0  # >0: differential worker-pool checks on the chunked path

    def __post_init__(self):
        for p in self.paths:
            if p not in ORACLES:
                raise ValueError(
                    f"unknown path {p!r}; choose from {sorted(ORACLES)}"
                )


@dataclass
class FuzzFailure:
    """One confirmed invariant violation (post-shrink)."""

    oracle: str
    family: str
    index: int
    detail: str
    original_size: int
    shrunk_size: int
    corpus_path: Optional[str] = None


@dataclass
class FuzzReport:
    """Campaign outcome: counts per family/oracle plus every failure."""

    config: FuzzConfig
    iterations: int = 0
    checks: int = 0
    by_family: Dict[str, int] = field(default_factory=dict)
    by_oracle: Dict[str, int] = field(default_factory=dict)
    failures: List[FuzzFailure] = field(default_factory=list)
    elapsed: float = 0.0
    stopped_early: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"fuzz campaign: seed={self.config.seed} "
            f"iterations={self.iterations}/{self.config.iters} "
            f"oracle-checks={self.checks} elapsed={self.elapsed:.1f}s"
        ]
        fams = ", ".join(f"{k}:{v}" for k, v in sorted(self.by_family.items()))
        orcs = ", ".join(f"{k}:{v}" for k, v in sorted(self.by_oracle.items()))
        lines.append(f"  families: {fams}")
        lines.append(f"  oracles:  {orcs}")
        if self.stopped_early:
            lines.append(f"  stopped early: {self.stopped_early}")
        for f in self.failures:
            lines.append(
                f"  FAIL [{f.oracle}] {f.family} i={f.index}: {f.detail.splitlines()[0]}"
            )
            lines.append(
                f"       shrunk {f.original_size} -> {f.shrunk_size} elements"
                + (f"; saved to {f.corpus_path}" if f.corpus_path else "")
            )
        lines.append("FUZZ " + ("PASSED" if self.ok else "FAILED"))
        return "\n".join(lines)


def run_fuzz(cfg: FuzzConfig) -> FuzzReport:
    """Run a campaign; deterministic given ``cfg`` (wall-clock budget aside)."""
    report = FuzzReport(config=cfg)
    t0 = time.monotonic()
    deadline = t0 + cfg.time_budget if cfg.time_budget else None

    pool = None
    shm_pool = None
    ctx = OracleContext()
    try:
        if cfg.workers > 0 and "chunked" in cfg.paths:
            from ..serve.pool import WorkerPool

            pool = WorkerPool(nworkers=cfg.workers, backend="thread")
            pool.wait_ready()
            ctx.pool = pool
        if "serve_shm" in cfg.paths:
            from ..serve.pool import WorkerPool

            shm_pool = WorkerPool(
                nworkers=max(cfg.workers, 2), backend="thread",
                transport="shm", warmup=False,
                shm_min_bytes=1,  # even tiny fuzz payloads ride descriptors
            )
            shm_pool.wait_ready()
            ctx.shm_pool = shm_pool

        for i in range(cfg.iters):
            if deadline is not None and time.monotonic() > deadline:
                report.stopped_early = f"time budget ({cfg.time_budget:g}s) exhausted"
                break
            if len(report.failures) >= cfg.max_failures:
                report.stopped_early = f"max_failures ({cfg.max_failures}) reached"
                break
            case = draw_case(cfg.seed, i)
            report.iterations += 1
            report.by_family[case.family] = report.by_family.get(case.family, 0) + 1
            for oname in applicable_oracles(case, cfg.paths):
                report.by_oracle[oname] = report.by_oracle.get(oname, 0) + 1
                report.checks += 1
                try:
                    ORACLES[oname](case, ctx)
                except OracleFailure as failure:
                    report.failures.append(
                        _handle_failure(case, oname, failure, cfg)
                    )
                    break  # later oracles on the same case would re-report it
    finally:
        if pool is not None:
            pool.shutdown()
        if shm_pool is not None:
            shm_pool.shutdown()
    report.elapsed = time.monotonic() - t0
    return report


def _handle_failure(
    case, oracle_name: str, failure: OracleFailure, cfg: FuzzConfig
) -> FuzzFailure:
    original_size = int(case.data.size)
    corpus_path = None
    if cfg.shrink:
        shrunk = shrink_case(case, ORACLES[oracle_name], failure)
        case, failure = shrunk.case, shrunk.failure
        shrunk_size = shrunk.shrunk_size
    else:
        shrunk_size = original_size
    if cfg.corpus_dir:
        corpus_path = str(save_failure(case, failure, cfg.corpus_dir))
    return FuzzFailure(
        oracle=oracle_name,
        family=case.family,
        index=case.index,
        detail=failure.detail,
        original_size=original_size,
        shrunk_size=shrunk_size,
        corpus_path=corpus_path,
    )


def smoke_campaign(
    seed: int = 0,
    iters: int = 30,
    paths: Optional[Sequence[str]] = None,
) -> FuzzReport:
    """The small fixed campaign CI runs under the ``qa`` marker."""
    return run_fuzz(
        FuzzConfig(seed=seed, iters=iters, paths=tuple(paths or ORACLES))
    )
