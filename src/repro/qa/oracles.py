"""Differential oracles: the invariants every codec path must satisfy.

Each oracle is a function ``oracle(case, ctx)`` that either returns
normally or raises :class:`OracleFailure` with enough detail to triage.
Any exception that is *not* a typed :class:`~repro.core.errors.CuSZp2Error`
escaping a codec entry point is itself a failure -- the decoder contract
says hostile input produces typed errors, never tracebacks from deep
inside NumPy.

The oracles mirror the shipped entry points:

``roundtrip``
    compress -> decompress respects the error bound pointwise, preserves
    shape/dtype, and is deterministic (same input -> same bytes).
``chunked``
    monolithic, serial-chunked, worker-pool-chunked and
    container-round-tripped decodes are all bit-identical; per-chunk
    decodes equal the matching slices of the monolithic decode.
``random_access``
    :class:`RandomAccessor` slices equal full-decode slices bit-for-bit.
``corruption``
    every injected fault is detected or harmless, and recover mode
    reconstructs intact groups bit-identically (never silently wrong).
``store``
    the compressed-array tier (``repro.store``) agrees with a plain
    ndarray mirror under random interleaved reads/writes; flushed streams
    verify clean and round-trip bit-identically through the monolithic
    codec; batched ``rewrite_blocks`` == sequential ``rewrite_block``.
``backends``
    every registered-and-available kernel backend produces CSZ2 streams
    and decodes byte-identical to the NumPy reference backend.
``serve_shm``
    chunked requests routed through a worker pool on the zero-copy
    shared-memory transport produce byte-identical chunk streams and
    containers vs the inline codec (descriptors never corrupt payloads).
``codecs``
    every plugin in the :mod:`repro.codecs` registry honors the uniform
    contract: deterministic bytes, dtype+shape-preserving roundtrip within
    the bound (bounded plugins), sniffed ``decode`` agrees with direct
    decompression, and hostile input answers with classified errors.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..core import compress, decompress
from ..core.errors import CuSZp2Error
from ..core.random_access import RandomAccessor
from ..faults import make_injector
from ..faults.check import check_recovery, classify_decode
from ..serve.chunked import ChunkedStream, compress_chunked, decompress_chunked
from .generators import FuzzCase, case_rng


class OracleFailure(AssertionError):
    """A differential invariant was violated for a concrete case."""

    def __init__(self, oracle: str, case: FuzzCase, detail: str):
        self.oracle = oracle
        self.case = case
        self.detail = detail
        super().__init__(f"[{oracle}] {case.describe()}: {detail}")


@dataclass
class OracleContext:
    """Shared per-campaign resources (an optional worker pool) plus a
    one-entry compression cache so the oracles of one case compress once."""

    pool: Optional[object] = None  # repro.serve.pool.WorkerPool
    shm_pool: Optional[object] = None  # WorkerPool(transport="shm")
    _key: Optional[Tuple] = field(default=None, repr=False)
    _stream: Optional[np.ndarray] = field(default=None, repr=False)

    def stream_for(self, case: FuzzCase) -> np.ndarray:
        # id(case.data) distinguishes shrinker variants of the same case
        key = (case.seed, case.index, id(case.data))
        if self._key != key:
            self._stream = compress(case.data, **case.codec_kwargs)
            self._key = key
        return self._stream


def _fail(oracle: str, case: FuzzCase, detail: str) -> OracleFailure:
    return OracleFailure(oracle, case, detail)


def _guard(oracle: str, case: FuzzCase, fn: Callable, what: str):
    """Run ``fn``; untyped exceptions become failures, typed errors re-raise."""
    try:
        return fn()
    except CuSZp2Error:
        raise
    except OracleFailure:
        raise
    except Exception:
        raise _fail(
            oracle, case, f"{what} escaped with an untyped exception:\n"
            + traceback.format_exc(limit=6)
        ) from None


def _max_error_ok(original: np.ndarray, recon: np.ndarray, eb_abs: float) -> Optional[str]:
    """None when the pointwise error respects the bound, else a diagnosis.

    Like the CUDA original (which reconstructs with a floating multiply),
    the guarantee is ``eb`` plus half an ULP of the reconstructed value.
    """
    a = original.astype(np.float64, copy=False).reshape(-1)
    b = recon.astype(np.float64, copy=False).reshape(-1)
    err = np.abs(a - b)
    # half an ULP in the reconstruction's NATIVE dtype: the final cast of
    # q * 2eb to float32/float64 may round that far beyond the bound
    native = np.abs(recon.reshape(-1))
    half_ulp = 0.5 * float(np.spacing(native.max() if native.size else recon.dtype.type(0)))
    limit = eb_abs * (1 + 1e-12) + half_ulp
    worst = int(np.argmax(err)) if err.size else 0
    if err.size and float(err[worst]) > limit:
        return (
            f"error bound violated: |x-x'|={float(err[worst]):g} > {limit:g} "
            f"at element {worst} (x={a[worst]!r}, x'={b[worst]!r}, eb={eb_abs:g})"
        )
    return None


# ---------------------------------------------------------------------------
# Oracles
# ---------------------------------------------------------------------------

def oracle_roundtrip(case: FuzzCase, ctx: OracleContext) -> None:
    name = "roundtrip"
    if case.expect_error is not None:
        try:
            compress(case.data, **case.codec_kwargs)
        except case.expect_error:
            return
        except Exception as e:
            raise _fail(
                name, case,
                f"expected {case.expect_error.__name__}, got {type(e).__name__}: {e}",
            ) from None
        raise _fail(
            name, case, f"expected {case.expect_error.__name__}, but compress succeeded"
        )

    def _do():
        stream = ctx.stream_for(case)
        again = compress(case.data, **case.codec_kwargs)
        if not np.array_equal(stream, again):
            raise _fail(name, case, "compression is nondeterministic: two runs differ")
        recon = decompress(stream)
        if recon.dtype != case.data.dtype:
            raise _fail(name, case, f"dtype {case.data.dtype} decoded as {recon.dtype}")
        if case.data.ndim <= 3 and recon.shape != case.data.shape:
            raise _fail(name, case, f"shape {case.data.shape} decoded as {recon.shape}")
        diag = _max_error_ok(case.data, recon, case.resolved_eb())
        if diag:
            raise _fail(name, case, diag)

    try:
        _guard(name, case, _do, "compress/decompress")
    except CuSZp2Error as e:
        raise _fail(
            name, case, f"codec rejected a finite input: {type(e).__name__}: {e}"
        ) from None


def oracle_chunked(case: FuzzCase, ctx: OracleContext) -> None:
    name = "chunked"
    if case.expect_error is not None:
        return  # compress refuses; nothing differential to check

    def _do():
        mono = ctx.stream_for(case)
        recon_mono = decompress(mono)
        n = case.data.size
        # 3+ chunks whenever the input allows it (group-aligned by planner).
        chunk_elems = max(1, n // 3)
        chunked = compress_chunked(
            case.data, chunk_elems=chunk_elems, **case.codec_kwargs
        )
        recon_chunk = decompress_chunked(chunked)
        if recon_chunk.shape != recon_mono.shape or recon_chunk.dtype != recon_mono.dtype:
            raise _fail(
                name, case,
                f"chunked decode shape/dtype {recon_chunk.shape}/{recon_chunk.dtype} "
                f"!= monolithic {recon_mono.shape}/{recon_mono.dtype}",
            )
        if recon_chunk.tobytes() != recon_mono.tobytes():
            bad = int(
                np.flatnonzero(recon_chunk.reshape(-1) != recon_mono.reshape(-1))[0]
            )
            raise _fail(
                name, case,
                f"chunked decode differs from monolithic at flat element {bad} "
                f"({chunked.nchunks} chunks)",
            )
        # per-chunk decodes must equal the matching monolithic slices
        flat_mono = recon_mono.reshape(-1)
        for i, (lo, hi) in enumerate(chunked.element_spans()):
            part = chunked.decode_chunk(i).reshape(-1)
            if part.tobytes() != flat_mono[lo:hi].tobytes():
                raise _fail(
                    name, case,
                    f"chunk {i} decodes differently from monolithic slice [{lo}:{hi})",
                )
        # container serialization round-trips and self-verifies
        container = chunked.to_bytes()
        reread = ChunkedStream.from_bytes(container)
        bad_chunks = reread.verify()
        if bad_chunks:
            raise _fail(name, case, f"container chunks fail CRC after round trip: {bad_chunks}")
        if decompress_chunked(reread).tobytes() != recon_mono.tobytes():
            raise _fail(name, case, "container round trip changed the decode")
        # worker-pool fan-out must produce the very same chunk streams
        if ctx.pool is not None:
            pooled = compress_chunked(
                case.data, chunk_elems=chunk_elems, pool=ctx.pool, **case.codec_kwargs
            )
            for i, (a, b) in enumerate(zip(chunked.chunks, pooled.chunks)):
                if a.tobytes() != b.tobytes():
                    raise _fail(
                        name, case, f"worker-pool chunk {i} bytes differ from serial"
                    )
            if decompress_chunked(pooled, pool=ctx.pool).tobytes() != recon_mono.tobytes():
                raise _fail(name, case, "worker-pool decode differs from monolithic")

    try:
        _guard(name, case, _do, "chunked engine")
    except CuSZp2Error as e:
        raise _fail(
            name, case, f"chunked path rejected a finite input: {type(e).__name__}: {e}"
        ) from None


def oracle_random_access(case: FuzzCase, ctx: OracleContext) -> None:
    name = "random_access"
    if case.expect_error is not None or case.params["predictor_ndim"] != 1:
        return

    def _do():
        stream = ctx.stream_for(case)
        full = decompress(stream).reshape(-1)
        ra = RandomAccessor(stream)
        rng = case_rng(case.seed ^ 0x5A5A5A, case.index)
        n = full.size
        L = ra.block
        # boundary blocks plus random interior slices
        slices = [(0, min(L, n)), (max(0, n - L), n), (0, n)]
        for _ in range(6):
            a = int(rng.integers(0, n))
            b = int(rng.integers(a, min(n, a + 4 * L) + 1))
            slices.append((a, b))
        for lo, hi in slices:
            got = ra.decode_range(lo, hi)
            want = full[lo:hi]
            if got.tobytes() != want.tobytes():
                bad = int(np.flatnonzero(got != want)[0]) if got.size == want.size else -1
                raise _fail(
                    name, case,
                    f"decode_range({lo}, {hi}) differs from full decode "
                    f"(first mismatch at offset {bad})",
                )
        # block-granular API agrees too
        for idx in {0, ra.nblocks - 1, int(rng.integers(0, ra.nblocks))}:
            blk = ra.decode_block(idx)
            lo = idx * L
            want = full[lo : lo + blk.size]
            if blk.tobytes() != want.tobytes():
                raise _fail(name, case, f"decode_block({idx}) differs from full decode")

    try:
        _guard(name, case, _do, "random access")
    except CuSZp2Error as e:
        raise _fail(
            name, case,
            f"random access rejected an intact stream: {type(e).__name__}: {e}",
        ) from None


_INJECTOR_PLAN = ("bitflip", "truncate", "burst", "header")


def oracle_corruption(case: FuzzCase, ctx: OracleContext) -> None:
    name = "corruption"
    if case.expect_error is not None:
        return

    def _do():
        stream = ctx.stream_for(case)
        clean = decompress(stream)
        rng = case_rng(case.seed ^ 0xC0FFEE, case.index)
        for iname in _INJECTOR_PLAN:
            inj_seed = int(rng.integers(0, 2**31))
            corrupt = make_injector(iname, seed=inj_seed).apply(stream)
            outcome, detail = classify_decode(stream, corrupt, clean)
            if outcome == "MISSED":
                raise _fail(
                    name, case,
                    f"{iname}(seed={inj_seed}) produced silent garbage: {detail}",
                )
            mismatch = check_recovery(corrupt, clean, block=case.params["block"])
            if mismatch is not None:
                raise _fail(
                    name, case, f"{iname}(seed={inj_seed}) recover mode: {mismatch}"
                )
            if case.params["predictor_ndim"] == 1:
                # accessor construction over damaged bytes: typed error or service
                try:
                    ra = RandomAccessor(corrupt, on_corruption="recover")
                    ra.decode_blocks(np.arange(min(4, ra.nblocks)))
                except CuSZp2Error:
                    pass

    _guard(name, case, _do, "corruption handling")


def _random_basic_index(rng, shape):
    """A random numpy basic index over ``shape`` (scalars and stepped
    slices; the exotic forms are pinned by unit tests)."""
    idx = []
    for dim in shape:
        kind = int(rng.integers(0, 3))
        if kind == 0:
            idx.append(int(rng.integers(0, dim)))
        else:
            a = int(rng.integers(0, dim + 1))
            b = int(rng.integers(0, dim + 1))
            idx.append(slice(min(a, b), max(a, b), int(rng.integers(1, 4))))
    return tuple(idx)


def oracle_store(case: FuzzCase, ctx: OracleContext) -> None:
    """The compressed-array tier against a plain-ndarray mirror.

    Random interleaved reads and writes must agree with the mirror within
    the error bound; ``flush()`` output must verify clean and round-trip
    bit-identically through the monolithic codec; and the batched
    ``rewrite_blocks`` must be byte-identical to applying ``rewrite_block``
    sequentially.
    """
    name = "store"
    if case.expect_error is not None or case.params["predictor_ndim"] != 1:
        return

    def _do():
        from ..core.integrity import verify as verify_stream
        from ..store import CompressedArray

        eb = case.resolved_eb()
        kw = dict(case.bound_kwargs)
        arr = CompressedArray.from_array(
            case.data,
            mode=case.params["mode"],
            block=case.params["block"],
            group_blocks=case.params["group_blocks"],
            **kw,
        )
        # the mirror tracks the last written value per element; unwritten
        # elements hold the original data, so both kinds sit within eb
        mirror = case.data.astype(np.float64).copy()
        rng = case_rng(case.seed ^ 0x570E, case.index)
        flat_pool = case.data.reshape(-1).astype(np.float64)
        for op in range(12):
            key = _random_basic_index(rng, arr.shape)
            if rng.random() < 0.5:
                got = np.asarray(arr[key], dtype=np.float64)
                want = np.asarray(mirror[key])
                if got.shape != want.shape:
                    raise _fail(
                        name, case,
                        f"read {key!r} shape {got.shape} != mirror {want.shape}",
                    )
                diag = _max_error_ok(want, got.astype(case.data.dtype), eb)
                if diag:
                    raise _fail(name, case, f"read {key!r}: {diag}")
            else:
                sel_shape = np.asarray(mirror[key]).shape
                # values drawn from the field itself (plus small eb-steps)
                # stay inside the stream's quantization range
                vals = rng.choice(flat_pool, size=sel_shape or ()) + eb * float(
                    rng.integers(-2, 3)
                )
                vals = vals.astype(case.data.dtype)
                arr[key] = vals
                mirror[key] = vals.astype(np.float64)
        # flush: clean verify + bit-identical monolithic round trip
        flushed = arr.flush()
        if arr.dirty_blocks:
            raise _fail(name, case, "dirty blocks survived flush()")
        report = verify_stream(flushed)
        if not report.ok:
            raise _fail(name, case, f"flushed stream fails verify: {report.summary()}")
        full = decompress(flushed)
        if full.shape != arr.shape or full.dtype != arr.dtype:
            raise _fail(
                name, case,
                f"flushed decode shape/dtype {full.shape}/{full.dtype} != "
                f"array {arr.shape}/{arr.dtype}",
            )
        via_array = np.asarray(arr[(slice(None),) * arr.ndim])
        if full.tobytes() != via_array.tobytes():
            raise _fail(
                name, case, "monolithic decode of flush() differs from array reads"
            )
        if full.tobytes() != arr.to_numpy().tobytes():
            raise _fail(name, case, "to_numpy() differs from monolithic decode")
        diag = _max_error_ok(mirror, full, eb)
        if diag:
            raise _fail(name, case, f"flushed state vs mirror: {diag}")
        # batched rewrite == sequential rewrite, byte for byte
        base = ctx.stream_for(case)
        ra = RandomAccessor(base)
        k = min(ra.nblocks, 3)
        idxs = sorted(rng.choice(ra.nblocks, size=k, replace=False).tolist())
        vals = [ra.decode_block(i)[::-1].copy() for i in idxs]
        batched = ra.rewrite_blocks(idxs, vals)
        seq = base
        for i, v in zip(idxs, vals):
            seq = RandomAccessor(seq).rewrite_block(i, v)
        if batched.tobytes() != seq.tobytes():
            raise _fail(
                name, case,
                f"rewrite_blocks({idxs}) differs from sequential rewrite_block",
            )

    try:
        _guard(name, case, _do, "compressed-array tier")
    except CuSZp2Error as e:
        raise _fail(
            name, case,
            f"store path rejected a finite input: {type(e).__name__}: {e}",
        ) from None


#: The per-backend differential check recompresses with pure-Python fused
#: kernels when numba is absent, so it runs on a bounded prefix of big cases
#: (block/group structure is fully exercised well below this).
_BACKEND_MAX_ELEMS = 4096


def oracle_backends(case: FuzzCase, ctx: OracleContext) -> None:
    """Every available kernel backend against the NumPy reference.

    Compressing with each registered-and-available backend must yield the
    very same CSZ2 bytes as the ``"numpy"`` reference, and each backend's
    decode of the reference stream must match the reference decode
    byte-for-byte.  The fused backends short-circuit only the 1-D chunked
    path, so multi-dimensional cases are skipped (they share the NumPy
    kernels by construction).
    """
    name = "backends"
    if case.expect_error is not None or case.params["predictor_ndim"] != 1:
        return

    def _do():
        from ..core.backends import available_backends

        others = [b for b in available_backends() if b != "numpy"]
        if not others:
            return
        sub = case
        flat = case.data.reshape(-1)
        if flat.size > _BACKEND_MAX_ELEMS:
            sub = case.with_data(flat[:_BACKEND_MAX_ELEMS].copy())
        ref = compress(sub.data, kernel_backend="numpy", **sub.codec_kwargs)
        ref_dec = decompress(ref, kernel_backend="numpy")
        for backend in others:
            got = compress(sub.data, kernel_backend=backend, **sub.codec_kwargs)
            if got.tobytes() != ref.tobytes():
                if got.size == ref.size:
                    bad = int(np.flatnonzero(got != ref)[0])
                    where = f"first differing byte at offset {bad}"
                else:
                    where = f"sizes differ: {got.size} vs {ref.size}"
                raise _fail(
                    name, sub,
                    f"backend {backend!r} stream differs from numpy ({where})",
                )
            dec = decompress(ref, kernel_backend=backend)
            if dec.tobytes() != ref_dec.tobytes():
                bad = int(
                    np.flatnonzero(dec.reshape(-1) != ref_dec.reshape(-1))[0]
                ) if dec.size == ref_dec.size else -1
                raise _fail(
                    name, sub,
                    f"backend {backend!r} decode differs from numpy "
                    f"(first mismatch at flat element {bad})",
                )

    try:
        _guard(name, case, _do, "kernel backends")
    except CuSZp2Error as e:
        raise _fail(
            name, case,
            f"a kernel backend rejected a finite input: {type(e).__name__}: {e}",
        ) from None


def oracle_serve_shm(case: FuzzCase, ctx: OracleContext) -> None:
    """The zero-copy shm transport against the inline codec.

    Every chunk stream produced by a worker pool running on
    ``transport="shm"`` must be byte-identical to the serial in-process
    compression, the assembled ``CSZ2CHNK`` container must match too, and
    the pool-side decode must equal the monolithic decode -- descriptors,
    arena reuse, and slot reclamation may never alter a payload.
    """
    name = "serve_shm"
    if case.expect_error is not None or ctx.shm_pool is None:
        return

    def _do():
        mono = ctx.stream_for(case)
        recon_mono = decompress(mono)
        n = case.data.size
        chunk_elems = max(1, n // 3)
        serial = compress_chunked(
            case.data, chunk_elems=chunk_elems, **case.codec_kwargs
        )
        pooled = compress_chunked(
            case.data, chunk_elems=chunk_elems, pool=ctx.shm_pool,
            **case.codec_kwargs,
        )
        if serial.nchunks != pooled.nchunks:
            raise _fail(
                name, case,
                f"shm pool planned {pooled.nchunks} chunks, inline {serial.nchunks}",
            )
        for i, (a, b) in enumerate(zip(serial.chunks, pooled.chunks)):
            if a.tobytes() != b.tobytes():
                raise _fail(
                    name, case, f"shm-pool chunk {i} bytes differ from inline"
                )
        if np.asarray(serial.to_bytes()).tobytes() != np.asarray(
            pooled.to_bytes()
        ).tobytes():
            raise _fail(name, case, "shm-pool container bytes differ from inline")
        if decompress_chunked(pooled, pool=ctx.shm_pool).tobytes() != recon_mono.tobytes():
            raise _fail(name, case, "shm-pool decode differs from monolithic")

    try:
        _guard(name, case, _do, "shm transport")
    except CuSZp2Error as e:
        raise _fail(
            name, case,
            f"shm path rejected a finite input: {type(e).__name__}: {e}",
        ) from None


#: The plugin-conformance sweep recompresses the case through every
#: registered codec, so it runs on a bounded prefix of big cases (the
#: hybrids, which drag a real Huffman pass along, get a tighter cap).
_CODEC_MAX_ELEMS = 2048
_CODEC_HEAVY_MAX_ELEMS = 256


def oracle_codecs(case: FuzzCase, ctx: OracleContext) -> None:
    """Every registered compressor plugin against the uniform contract.

    For hostile cases every plugin must answer with the case's expected
    classified error.  For finite cases every plugin must compress
    deterministically, decompress back to the exact dtype+shape, agree
    with the sniffing :func:`repro.codecs.decode`, and (bounded plugins)
    respect the error bound pointwise.  Baseline plugins may refuse a
    particular finite input with a classified error (e.g. FZ-GPU's 32-bit
    zigzag overflow); the default plugin may not.
    """
    name = "codecs"
    from .. import codecs as _codecs
    from ..core.quantize import ErrorBound, validate_input

    if case.expect_error is not None:
        for plugin in _codecs.list_plugins().values():
            opts = dict(case.bound_kwargs) if plugin.bounded else {}
            try:
                plugin.compress(case.data, **opts)
            except case.expect_error:
                continue
            except Exception as e:
                raise _fail(
                    name, case,
                    f"plugin {plugin.name!r}: expected "
                    f"{case.expect_error.__name__}, got {type(e).__name__}: {e}",
                ) from None
            raise _fail(
                name, case,
                f"plugin {plugin.name!r}: expected {case.expect_error.__name__}, "
                "but compress succeeded",
            )
        return

    flat = case.data.reshape(-1)

    def _do():
        for plugin in _codecs.list_plugins().values():
            cap = _CODEC_HEAVY_MAX_ELEMS if plugin.heavy else _CODEC_MAX_ELEMS
            sub = case.data
            if sub.size > cap or sub.ndim > plugin.max_ndim:
                sub = flat[: min(cap, flat.size)].copy()
            opts = dict(case.bound_kwargs) if plugin.bounded else {}
            try:
                stream = plugin.compress(sub, **opts)
            except CuSZp2Error as e:
                if plugin.name in ("cuszp2", "cuszp"):
                    raise _fail(
                        name, case,
                        f"plugin {plugin.name!r} rejected a finite input: "
                        f"{type(e).__name__}: {e}",
                    ) from None
                continue  # a classified refusal is a legal baseline answer
            again = plugin.compress(sub, **opts)
            if not np.array_equal(np.asarray(stream), np.asarray(again)):
                raise _fail(
                    name, case,
                    f"plugin {plugin.name!r} is nondeterministic: two runs differ",
                )
            recon = plugin.decompress(stream)
            if recon.dtype != sub.dtype:
                raise _fail(
                    name, case,
                    f"plugin {plugin.name!r}: dtype {sub.dtype} decoded as {recon.dtype}",
                )
            if recon.shape != sub.shape:
                raise _fail(
                    name, case,
                    f"plugin {plugin.name!r}: shape {sub.shape} decoded as {recon.shape}",
                )
            sniffed = _codecs.decode(stream)
            if sniffed.tobytes() != recon.tobytes():
                raise _fail(
                    name, case,
                    f"plugin {plugin.name!r}: sniffing decode() differs from "
                    "direct decompression",
                )
            if plugin.bounded:
                if "abs" in case.bound_kwargs:
                    eb_abs = float(case.bound_kwargs["abs"])
                else:
                    eb_abs = ErrorBound.relative(
                        float(case.bound_kwargs["rel"])
                    ).resolve(validate_input(sub))
                diag = _max_error_ok(sub, recon, eb_abs)
                if diag:
                    raise _fail(name, case, f"plugin {plugin.name!r}: {diag}")

    try:
        _guard(name, case, _do, "compressor plugins")
    except CuSZp2Error as e:
        raise _fail(
            name, case,
            f"plugin path raised on valid data: {type(e).__name__}: {e}",
        ) from None


#: name -> oracle; drives --paths selection and corpus replay.
ORACLES: Dict[str, Callable[[FuzzCase, OracleContext], None]] = {
    "roundtrip": oracle_roundtrip,
    "chunked": oracle_chunked,
    "random_access": oracle_random_access,
    "corruption": oracle_corruption,
    "store": oracle_store,
    "backends": oracle_backends,
    "serve_shm": oracle_serve_shm,
    "codecs": oracle_codecs,
}


def applicable_oracles(case: FuzzCase, paths=None):
    """The subset of ``paths`` (default: all) that applies to ``case``."""
    names = list(paths) if paths else list(ORACLES)
    out = []
    for nm in names:
        if nm not in ORACLES:
            raise ValueError(f"unknown oracle {nm!r}; choose from {sorted(ORACLES)}")
        if nm in ("random_access", "store", "backends") and case.params["predictor_ndim"] != 1:
            continue
        if nm not in ("roundtrip", "codecs") and case.expect_error is not None:
            continue
        out.append(nm)
    return out
