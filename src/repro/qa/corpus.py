"""Counterexample corpus: persisted, replayable shrunk failures.

Every failure the harness finds is minimized and written as one ``.npz``
under the corpus directory (``tests/data/qa_corpus/`` in this repo): the
exact array bytes plus a JSON metadata record naming the oracle, the codec
parameters and the campaign coordinates that produced it.  A corpus entry
is therefore self-contained -- :func:`replay` re-runs the saved oracle on
the saved bytes with no generator involved -- and once the underlying bug
is fixed, the committed entry becomes a permanent regression test
(``tests/qa/test_corpus_replay.py`` replays the whole directory).
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core import errors as _errors
from .generators import FuzzCase
from .oracles import ORACLES, OracleContext, OracleFailure

_META_VERSION = 1


def _digest(case: FuzzCase) -> str:
    h = zlib.crc32(np.ascontiguousarray(case.data).tobytes())
    h = zlib.crc32(json.dumps(case.params, sort_keys=True).encode(), h)
    return f"{h & 0xFFFFFFFF:08x}"


def save_failure(
    case: FuzzCase,
    failure: OracleFailure,
    corpus_dir,
    extra: Optional[Dict] = None,
) -> Path:
    """Persist a (shrunk) failing case; returns the written path."""
    corpus_dir = Path(corpus_dir)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    meta = {
        "meta_version": _META_VERSION,
        "oracle": failure.oracle,
        "detail": failure.detail,
        "family": case.family,
        "seed": case.seed,
        "index": case.index,
        "params": case.params,
        "expect_error": case.expect_error.__name__ if case.expect_error else None,
        "dtype": np.dtype(case.data.dtype).name,
        "shape": list(case.data.shape),
        "repro": (
            f"repro fuzz --replay <this file>   # or: repro fuzz "
            f"--seed {case.seed} --iters {case.index + 1} --paths {failure.oracle}"
        ),
    }
    if extra:
        meta.update(extra)
    name = f"{failure.oracle}-{case.family}-s{case.seed}-i{case.index}-{_digest(case)}.npz"
    path = corpus_dir / name
    with open(path, "wb") as fh:
        np.savez_compressed(fh, data=case.data, meta=json.dumps(meta, sort_keys=True))
    return path


def load_case(path) -> Tuple[FuzzCase, Dict]:
    """Reconstruct the saved case and its metadata record."""
    with np.load(Path(path), allow_pickle=False) as npz:
        data = npz["data"]
        meta = json.loads(str(npz["meta"]))
    expect = meta.get("expect_error")
    case = FuzzCase(
        family=meta["family"],
        seed=int(meta["seed"]),
        index=int(meta["index"]),
        data=data,
        params=dict(meta["params"]),
        expect_error=getattr(_errors, expect) if expect else None,
    )
    return case, meta


def replay(path, pool=None) -> Optional[OracleFailure]:
    """Re-run a corpus entry's oracle on its saved bytes.

    Returns the :class:`OracleFailure` when the entry still fails (the bug
    is back, or was never fixed) and None when it passes.
    """
    case, meta = load_case(path)
    oracle = ORACLES[meta["oracle"]]
    try:
        oracle(case, OracleContext(pool=pool))
    except OracleFailure as f:
        return f
    return None


def corpus_entries(corpus_dir) -> List[Path]:
    """All corpus files under ``corpus_dir`` (sorted; [] when absent)."""
    d = Path(corpus_dir)
    if not d.is_dir():
        return []
    return sorted(p for p in d.iterdir() if p.suffix == ".npz")
