"""Counterexample minimization (a small, deterministic ddmin variant).

Given a failing :class:`~repro.qa.generators.FuzzCase` and the oracle that
rejected it, the shrinker searches for the smallest, simplest array that
still fails the *same* oracle: first structurally (delete contiguous
chunks, coarse to fine), then value-wise (zero out regions, then round
survivors to short decimals).  Every candidate is re-run through the
oracle, so a shrunk case is failing by construction and replays from its
saved bytes alone -- no campaign state needed.

Multi-dimensional cases shrink along axis 0 only, in tile multiples, so
the array stays a valid Lorenzo field throughout.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from .generators import FuzzCase
from .oracles import OracleContext, OracleFailure


@dataclass
class ShrinkResult:
    """The minimized case plus bookkeeping for the report."""

    case: FuzzCase
    failure: OracleFailure
    original_size: int
    attempts: int

    @property
    def shrunk_size(self) -> int:
        return int(self.case.data.size)


def _still_fails(
    case: FuzzCase,
    data: np.ndarray,
    oracle: Callable,
    oracle_name: str,
) -> Optional[OracleFailure]:
    """Run the oracle on a candidate; the failure must be the same oracle."""
    try:
        oracle(case.with_data(data), OracleContext())
    except OracleFailure as f:
        return f if f.oracle == oracle_name else None
    except Exception:
        return None  # a *different* breakage; don't chase it while shrinking
    return None


def _axis0_unit(case: FuzzCase) -> int:
    """Smallest deletable axis-0 extent that keeps the array codec-valid."""
    if case.data.ndim <= 1:
        return 1
    t = round(case.params["block"] ** (1.0 / case.params["predictor_ndim"]))
    return max(int(t), 1)


def shrink_case(
    case: FuzzCase,
    oracle: Callable,
    failure: OracleFailure,
    max_attempts: int = 400,
    time_budget: float = 20.0,
) -> ShrinkResult:
    """Minimize ``case.data`` while ``oracle`` keeps failing.

    Deterministic and bounded: at most ``max_attempts`` oracle runs or
    ``time_budget`` seconds, whichever comes first.
    """
    oracle_name = failure.oracle
    best = np.array(case.data, copy=True)
    best_failure = failure
    attempts = 0
    deadline = time.monotonic() + time_budget
    unit = _axis0_unit(case)

    def try_candidate(data: np.ndarray) -> bool:
        nonlocal best, best_failure, attempts
        if attempts >= max_attempts or time.monotonic() > deadline:
            return False
        if data.size == 0 or data.shape[0] < unit:
            return False
        attempts += 1
        f = _still_fails(case, data, oracle, oracle_name)
        if f is not None:
            best, best_failure = data, f
            return True
        return False

    # -- phase 1: structural deletion (ddmin over axis 0) -------------------
    ncuts = 2
    while best.shape[0] > unit and attempts < max_attempts:
        n0 = best.shape[0]
        piece = max((n0 // ncuts) // unit * unit, unit)
        progressed = False
        lo = 0
        while lo < best.shape[0] and attempts < max_attempts:
            hi = min(lo + piece, best.shape[0])
            candidate = np.concatenate([best[:lo], best[hi:]], axis=0)
            if try_candidate(candidate):
                progressed = True  # keep lo: the tail shifted into place
            else:
                lo = hi
        if not progressed:
            if piece <= unit:
                break
            ncuts *= 2
        if time.monotonic() > deadline:
            break

    # -- phase 2: zero out surviving regions --------------------------------
    flat = best.reshape(-1)
    span = max(flat.size // 8, 1)
    lo = 0
    while lo < flat.size and attempts < max_attempts and time.monotonic() <= deadline:
        candidate = flat.copy()
        candidate[lo : lo + span] = 0
        if not np.array_equal(candidate, flat) and try_candidate(
            candidate.reshape(best.shape)
        ):
            flat = best.reshape(-1)
        lo += span

    # -- phase 3: round survivors to short decimals -------------------------
    flat = best.reshape(-1)
    for decimals in (0, 2, 6):
        if attempts >= max_attempts or time.monotonic() > deadline:
            break
        with np.errstate(all="ignore"):
            candidate = np.round(flat.astype(np.float64), decimals).astype(best.dtype)
        if not np.array_equal(candidate, flat) and try_candidate(
            candidate.reshape(best.shape)
        ):
            flat = best.reshape(-1)
            break  # coarsest successful rounding is the simplest

    return ShrinkResult(
        case=case.with_data(best),
        failure=best_failure,
        original_size=int(np.asarray(case.data).size),
        attempts=attempts,
    )
