"""Property-based differential fuzzing for every codec path (``repro.qa``).

The codec now ships four independent entry points that must agree
byte-for-byte -- the monolithic :func:`repro.compress` /
:func:`repro.decompress` pair, the ``CSZ2CHNK`` chunked container (serial
and worker-pool), :class:`~repro.core.random_access.RandomAccessor`, and
the verify/recover integrity policies.  Example-based tests pin known
behaviours; this package *generates* adversarial inputs and asserts the
cross-path invariants on each one:

* :mod:`repro.qa.generators` -- a seeded generator of hostile float arrays
  (denormals, NaN/Inf edges, constant blocks, near-error-bound
  oscillations, dtype/shape sweeps, tiny and huge block counts);
* :mod:`repro.qa.oracles` -- the differential invariants, each a function
  that raises :class:`~repro.qa.oracles.OracleFailure` with a diagnosis;
* :mod:`repro.qa.shrink` -- delta-debugging minimizer that reduces a
  failing array while the failure reproduces;
* :mod:`repro.qa.corpus` -- persistence of shrunk counterexamples as
  ``.npz`` files under ``tests/data/qa_corpus/``, each replayable forever;
* :mod:`repro.qa.harness` -- the campaign loop behind the ``repro fuzz``
  CLI and the CI ``fuzz-smoke`` job.

Everything is deterministic: a campaign is fully described by
``(seed, iters, paths)``, and a persisted counterexample replays without
the campaign that found it.
"""

from .corpus import load_case, replay, save_failure
from .generators import FAMILIES, FuzzCase, draw_case
from .harness import FuzzConfig, FuzzReport, run_fuzz
from .oracles import ORACLES, OracleFailure, applicable_oracles
from .shrink import shrink_case

__all__ = [
    "FAMILIES",
    "FuzzCase",
    "draw_case",
    "ORACLES",
    "OracleFailure",
    "applicable_oracles",
    "shrink_case",
    "save_failure",
    "load_case",
    "replay",
    "FuzzConfig",
    "FuzzReport",
    "run_fuzz",
]
