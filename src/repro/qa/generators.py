"""Seeded adversarial input generation for the fuzzing harness.

A case is drawn deterministically from ``(campaign seed, iteration)``:
the same pair always yields the same array, the same codec parameters and
the same expected outcome, on every platform and in every process.  The
family cycles with the iteration index so a short campaign still covers
every generator at least once.

The families target the codec's decision points rather than uniform
noise: block-constant regions flip the zero-block fast path, spikes flip
the Plain/Outlier selection, near-bound oscillations sit on quantizer
rounding ties, denormals stress the float64 quantization arithmetic, and
tiny/huge sizes hit partial trailing blocks and multi-group checksum
layouts.  Non-finite inputs are *expected* to raise
:class:`~repro.core.errors.InvalidInputError`; any other escape is a bug.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple, Type

import numpy as np

from ..core.errors import InvalidInputError
from ..core.quantize import ErrorBound


@dataclass(frozen=True)
class FuzzCase:
    """One generated input plus the codec parameters to exercise it with."""

    family: str
    seed: int
    index: int
    data: np.ndarray
    params: Dict = field(default_factory=dict)
    #: Exception type ``compress`` must raise (None = must succeed).
    expect_error: Optional[Type[BaseException]] = None

    @property
    def bound_kwargs(self) -> Dict[str, float]:
        """The ``rel=`` / ``abs=`` keyword for :func:`repro.compress`."""
        if "rel" in self.params:
            return {"rel": self.params["rel"]}
        return {"abs": self.params["abs"]}

    @property
    def codec_kwargs(self) -> Dict:
        """Full keyword set for :func:`repro.compress`."""
        kw = dict(self.bound_kwargs)
        kw["mode"] = self.params["mode"]
        kw["block"] = self.params["block"]
        kw["predictor_ndim"] = self.params["predictor_ndim"]
        kw["group_blocks"] = self.params["group_blocks"]
        return kw

    def resolved_eb(self) -> float:
        """The absolute error bound the codec will enforce for this case."""
        if "abs" in self.params:
            return float(self.params["abs"])
        eb = ErrorBound.relative(self.params["rel"])
        return eb.resolve(self.data.astype(np.float64, copy=False).reshape(-1))

    def with_data(self, data: np.ndarray) -> "FuzzCase":
        """A copy of this case over different data (used by the shrinker)."""
        return replace(self, data=data)

    def describe(self) -> str:
        p = self.params
        bound = f"rel={p['rel']:g}" if "rel" in p else f"abs={p['abs']:g}"
        return (
            f"{self.family}[seed={self.seed}, i={self.index}] "
            f"shape={tuple(self.data.shape)} {self.data.dtype} "
            f"{p['mode']}/{bound} block={p['block']} "
            f"ndim={p['predictor_ndim']} G={p['group_blocks']}"
        )


def case_rng(seed: int, index: int) -> np.random.Generator:
    """The case's private generator; also used by oracles that need extra
    randomness (slice positions, injector seeds) so everything replays."""
    return np.random.default_rng(np.random.SeedSequence([int(seed), int(index)]))


# ---------------------------------------------------------------------------
# Families
# ---------------------------------------------------------------------------

def _size(rng: np.random.Generator, lo: int = 256, hi: int = 24_000) -> int:
    return int(rng.integers(lo, hi))


def _walk(rng, n, dtype):
    return np.cumsum(rng.normal(size=n)).astype(dtype)


def fam_walk(rng, n, dtype):
    """Smooth random walk: the regime Outlier-FLE was designed for."""
    return _walk(rng, n, dtype)


def fam_noise(rng, n, dtype):
    """White noise at a random scale: Plain/Outlier selection near a tie."""
    return (rng.normal(size=n) * 10.0 ** rng.integers(-6, 7)).astype(dtype)


def fam_constant(rng, n, dtype):
    """A constant field (zero range): REL bounds fall back to |c|-scaled
    steps and every block takes the zero-payload fast path."""
    c = rng.choice([0.0, 1.0, -1.0, 3.5e-5, -7.25, 1.0e12, float(rng.normal())])
    return np.full(n, c, dtype=dtype)


def fam_sparse(rng, n, dtype):
    """Mostly zeros with rare spikes: mixes zero blocks with outlier blocks."""
    data = np.zeros(n, dtype=dtype)
    k = max(1, n // 200)
    idx = rng.choice(n, size=k, replace=False)
    data[idx] = (rng.normal(size=k) * 100).astype(dtype)
    return data


def fam_denormal(rng, n, dtype):
    """Subnormal magnitudes: quantization arithmetic near underflow."""
    tiny = float(np.finfo(dtype).tiny)
    scale = tiny * 10.0 ** rng.integers(-2, 3)
    data = (rng.normal(size=n) * scale).astype(dtype)
    data[:: max(1, n // 7)] = np.array(tiny, dtype=dtype) / 4  # true denormals
    return data


def fam_near_bound(rng, n, dtype):
    """Values sitting exactly on (and a hair off) quantizer rounding ties.

    With an ABS bound of 1, the tie points are the odd integers; exact
    ties, ties minus one ULP and ties plus one ULP all appear.
    """
    k = rng.integers(-500, 500, size=n).astype(np.float64)
    x = 2.0 * k + 1.0  # exact ties
    side = rng.integers(0, 3, size=n)
    x = np.where(side == 1, np.nextafter(x, -np.inf), x)
    x = np.where(side == 2, np.nextafter(x, np.inf), x)
    return x.astype(dtype)


def fam_steps(rng, n, dtype):
    """Piecewise-constant plateaus with large jumps: first-delta outliers at
    block boundaries, zeros inside plateaus."""
    nsteps = int(rng.integers(2, 20))
    edges = np.sort(rng.choice(np.arange(1, n), size=min(nsteps, n - 1), replace=False))
    levels = rng.normal(size=edges.size + 1) * 10.0 ** rng.integers(0, 5)
    return np.repeat(levels, np.diff(np.concatenate([[0], edges, [n]]))).astype(dtype)


def fam_spikes(rng, n, dtype):
    """A smooth walk with huge isolated spikes: forces Outlier-FLE's
    adaptive 1..4-byte widths and the selection comparison both ways."""
    data = _walk(rng, n, dtype).astype(np.float64)
    k = max(1, n // 100)
    idx = rng.choice(n, size=k, replace=False)
    data[idx] += rng.choice([-1.0, 1.0], size=k) * 10.0 ** rng.integers(3, 7, size=k)
    return data.astype(dtype)


def fam_tiny(rng, n, dtype):
    """Sizes around block boundaries: 1-element fields, exact multiples,
    and single-element trailing blocks."""
    return _walk(rng, n, dtype)  # n chosen by the driver, not here


def fam_multigroup(rng, n, dtype):
    """Enough blocks to cross several checksum groups (driver shrinks
    group_blocks so this stays test-sized)."""
    return _walk(rng, n, dtype)


def fam_extreme_range(rng, n, dtype):
    """Dynamic range spanning ~30 decades: REL bound resolution and the
    float64 quantization path at both ends of the exponent scale."""
    exponents = rng.uniform(-25, 25, size=n)
    signs = rng.choice([-1.0, 1.0], size=n)
    return (signs * 10.0 ** exponents).astype(dtype)


def fam_ndim2(rng, n, dtype):
    """2-D Lorenzo tiles (driver sets predictor_ndim=2 and a square block)."""
    t = 8
    rows = int(rng.integers(2, 9)) * t
    cols = int(rng.integers(2, 9)) * t
    base = rng.normal(size=(rows, cols))
    return np.cumsum(np.cumsum(base, axis=0), axis=1).astype(dtype)


def fam_ndim3(rng, n, dtype):
    """3-D Lorenzo tiles (4x4x4 blocks)."""
    t = 4
    dims = tuple(int(rng.integers(2, 6)) * t for _ in range(3))
    base = rng.normal(size=dims)
    return np.cumsum(base, axis=0).astype(dtype)


def fam_int32_boundary(rng, n, dtype):
    """Quantized magnitudes straddling the int32-demotion boundary.

    :func:`repro.core.quantize.quant_output_dtype` keeps quantized deltas
    in int32 only while every magnitude fits ``(2**31 - 1) // int32_terms``
    (terms = 2 for the 1-D differencer).  With an ABS bound of 1 the
    quantizer maps ``x -> round(x / 2)``, so values near ``2 * boundary``
    land just either side of the widest field the int32 path admits --
    some cases demote, some stay int64, some straddle.  Steps between
    neighbors are small, so no delta ever overflows and the codec must
    accept every case.
    """
    boundary = (2**31 - 1) // 2
    side = float(rng.choice([-1.0, 1.0]))
    center = int(rng.integers(-4096, 4097))
    width = int(rng.integers(0, 513))
    qvals = boundary + center + rng.integers(-width, width + 1, size=n)
    return (side * 2.0 * qvals).astype(dtype)


def fam_nonfinite(rng, n, dtype):
    """NaN / +-Inf contamination: the codec must refuse with
    InvalidInputError, never crash or emit a stream."""
    data = _walk(rng, n, dtype).astype(np.float64)
    k = max(1, n // 50)
    idx = rng.choice(n, size=k, replace=False)
    data[idx] = rng.choice([np.nan, np.inf, -np.inf], size=k)
    return data.astype(dtype)


#: name -> generator; order defines the family cycle of a campaign.
FAMILIES = {
    "walk": fam_walk,
    "noise": fam_noise,
    "constant": fam_constant,
    "sparse": fam_sparse,
    "denormal": fam_denormal,
    "near_bound": fam_near_bound,
    "steps": fam_steps,
    "spikes": fam_spikes,
    "tiny": fam_tiny,
    "multigroup": fam_multigroup,
    "extreme_range": fam_extreme_range,
    "ndim2": fam_ndim2,
    "ndim3": fam_ndim3,
    "int32_boundary": fam_int32_boundary,
    "nonfinite": fam_nonfinite,
}

_FAMILY_ORDER: Tuple[str, ...] = tuple(FAMILIES)

_BLOCKS_1D = (8, 16, 32, 64)
_GROUPS = (4, 8, 16, 64, 256)
_RELS = (1e-2, 1e-3, 1e-4)


def draw_case(seed: int, index: int, family: Optional[str] = None) -> FuzzCase:
    """Draw the ``index``-th case of campaign ``seed`` (deterministic)."""
    if family is None:
        family = _FAMILY_ORDER[index % len(_FAMILY_ORDER)]
    if family not in FAMILIES:
        raise ValueError(f"unknown family {family!r}; choose from {sorted(FAMILIES)}")
    rng = case_rng(seed, index)

    dtype = np.float64 if rng.random() < 0.3 else np.float32
    mode = "plain" if rng.random() < 0.35 else "outlier"
    predictor_ndim = 1
    block = int(rng.choice(_BLOCKS_1D))
    group_blocks = int(rng.choice(_GROUPS))

    if family == "ndim2":
        predictor_ndim, block = 2, int(rng.choice([16, 64]))
    elif family == "ndim3":
        predictor_ndim, block = 3, 64
    elif family == "tiny":
        n = int(rng.choice([1, 2, 3, block - 1, block, block + 1, 2 * block + 1]))
        n = max(1, n)
    elif family == "multigroup":
        group_blocks = int(rng.choice([4, 8]))
        n = block * group_blocks * int(rng.integers(3, 7)) + int(rng.integers(0, block))

    if family not in ("tiny", "multigroup"):
        n = _size(rng)
    data = FAMILIES[family](rng, n, dtype)

    params: Dict = {
        "mode": mode,
        "block": block,
        "predictor_ndim": predictor_ndim,
        "group_blocks": group_blocks,
    }
    if family in ("near_bound", "int32_boundary"):
        params["abs"] = 1.0  # these families position values for eb=1
    elif rng.random() < 0.3 and family != "nonfinite":
        finite = data[np.isfinite(data)]
        scale = float(np.abs(finite).max()) if finite.size else 1.0
        params["abs"] = max(scale, 1e-30) * 10.0 ** -int(rng.integers(2, 5))
    else:
        params["rel"] = float(rng.choice(_RELS))

    expect_error = InvalidInputError if family == "nonfinite" else None
    return FuzzCase(
        family=family,
        seed=int(seed),
        index=int(index),
        data=data,
        params=params,
        expect_error=expect_error,
    )
