"""Reference prefix-sum implementations.

These are the ground truth every parallel scan in this package is tested
against, and the "straightforward loop" a CPU compressor like cuSZx uses
for block concatenation (paper Section IV-C).
"""

from __future__ import annotations

import numpy as np


def exclusive_scan(values: np.ndarray) -> np.ndarray:
    """Exclusive prefix sum: ``out[i] = sum(values[:i])``.

    This is exactly the quantity cuSZp2's Global Prefix-sum step computes:
    each compressed block must know the total length of all its
    predecessors to find its slot in the unified byte array.
    """
    values = np.asarray(values)
    out = np.empty(values.shape[0], dtype=np.int64)
    if out.size == 0:
        return out
    out[0] = 0
    np.cumsum(values[:-1], dtype=np.int64, out=out[1:])
    return out


def inclusive_scan(values: np.ndarray) -> np.ndarray:
    """Inclusive prefix sum: ``out[i] = sum(values[:i+1])``."""
    return np.cumsum(np.asarray(values), dtype=np.int64)


def total(values: np.ndarray) -> int:
    return int(np.asarray(values, dtype=np.int64).sum())
