"""Plain chained-scan: the state-of-the-art baseline cuSZp2 improves on.

Chained-scan (StreamScan [52] / cuSZp [23]) serializes the device-level
step: thread block ``b`` spins until block ``b-1`` publishes its inclusive
prefix, adds its own aggregate, and publishes in turn.  "Each thread block
must wait for its predecessors to complete before proceeding.  This design
unavoidably leads to high latency, especially for large HPC datasets"
(Section IV-C, Fig. 12 left).

Three views of the algorithm live here:

* :func:`chained_global_scan` -- functional result (equals the reference);
* :func:`chained_scan_kernel` -- the spin-wait protocol for the virtual GPU;
* :func:`chained_timeline` -- a discrete-event timing model whose total is
  dominated by the ``nblocks * t_pass`` dependency chain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpusim.vm import GlobalMemory
from .sequential import exclusive_scan

FLAG_INVALID = 0
FLAG_PREFIX = 2


def chained_global_scan(sums: np.ndarray) -> np.ndarray:
    """Functionally, a chained scan is an exclusive scan."""
    return exclusive_scan(sums)


# ---------------------------------------------------------------------------
# Virtual-GPU protocol
# ---------------------------------------------------------------------------

def setup_memory(sums: np.ndarray) -> GlobalMemory:
    mem = GlobalMemory()
    mem.bind("sums", np.asarray(sums, dtype=np.int64))
    n = len(sums)
    mem.alloc("inclusive", n, np.int64)
    mem.alloc("exclusive", n, np.int64)
    mem.alloc("flag", n, np.int64, fill=FLAG_INVALID)
    return mem


def chained_scan_kernel(block_id: int, mem: GlobalMemory, local_work: int = 3):
    """One thread block of the chained scan (generator for the VM).

    ``local_work`` yields stand in for the local reduce of real kernels so
    schedules interleave local work with the waiting chain.
    """
    for _ in range(local_work):
        yield  # local reduce of this block's tile

    aggregate = int(mem["sums"][block_id])

    if block_id == 0:
        exclusive = 0
    else:
        # Spin on the predecessor's flag -- the serial chain of Fig. 12 (left).
        while mem["flag"][block_id - 1] != FLAG_PREFIX:
            yield
        exclusive = int(mem["inclusive"][block_id - 1])

    mem["exclusive"][block_id] = exclusive
    mem["inclusive"][block_id] = exclusive + aggregate
    yield  # __threadfence() before publishing
    mem["flag"][block_id] = FLAG_PREFIX


# ---------------------------------------------------------------------------
# Discrete-event timing model
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ScanTimeline:
    """Timing summary of one device-level scan execution."""

    #: When the last thread block finished its local (parallel) work.
    local_finish_s: float
    #: When the last inclusive prefix became available.
    scan_finish_s: float
    nblocks: int

    @property
    def sync_latency_s(self) -> float:
        """Extra latency the device-level step adds beyond local work."""
        return max(0.0, self.scan_finish_s - self.local_finish_s)

    def throughput_gbs(self, data_bytes: float) -> float:
        """The paper's Fig. 17 metric: data volume over the whole
        synchronization stage."""
        return data_bytes / self.scan_finish_s / 1e9


def chained_timeline(
    work_s: np.ndarray,
    t_pass_s: float,
    resident: int,
) -> ScanTimeline:
    """Discrete-event model of the chained scan.

    ``work_s[b]`` is thread block ``b``'s local reduce time.  Blocks are
    admitted in id order with ``resident`` in flight (CTA dispatch model);
    the prefix handoff costs ``t_pass_s`` per link (one L2 round trip to
    poll the flag + publish).
    """
    work_s = np.asarray(work_s, dtype=np.float64)
    n = work_s.size
    start = np.zeros(n)
    local_done = np.zeros(n)
    prefix_done = np.zeros(n)
    for b in range(n):
        if b >= resident:
            # The slot frees when the (b - resident)-th block fully retires;
            # under chained scan a block retires once its prefix is known.
            start[b] = prefix_done[b - resident]
        local_done[b] = start[b] + work_s[b]
        if b == 0:
            prefix_done[b] = local_done[b]
        else:
            # One flag round trip per link, paid after both the local work
            # and the predecessor's prefix are available.
            prefix_done[b] = max(local_done[b], prefix_done[b - 1]) + t_pass_s
    return ScanTimeline(
        local_finish_s=float(local_done.max()),
        scan_finish_s=float(prefix_done.max()),
        nblocks=n,
    )
