"""Decoupled lookback: cuSZp2's Global Prefix-sum (Section IV-C).

Single-pass scan with decoupled look-back (Merrill & Garland [25]), tuned
for compression: instead of waiting on the serial chain, a thread block
whose local scan is done walks backwards over its predecessors' published
descriptors, summing *aggregates* until it meets a block that already knows
its *inclusive prefix* (Fig. 12 right, Fig. 13's Finished / Looking Back /
Waiting states).  The serial chain survives only between blocks that have
not yet published anything, and finished blocks are bypassed ("decouples
the original chain").

Three views again:

* :func:`lookback_global_scan` -- functional result (reference-equal);
* :func:`lookback_scan_kernel` -- the flag-state protocol for the virtual
  GPU, property-tested under random schedules;
* :func:`lookback_timeline` -- a discrete-event timing model with
  warp-batched descriptor polling, which is where the latency win over
  chained scan comes from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpusim.vm import GlobalMemory
from .sequential import exclusive_scan

FLAG_INVALID = 0  # 'X' in CUB terminology: nothing published yet (Waiting)
FLAG_AGGREGATE = 1  # 'A': local aggregate available (Looking Back possible)
FLAG_PREFIX = 2  # 'P': inclusive prefix available (Finished)

#: Descriptors one warp inspects per polling round trip.  CUB-style
#: implementations read a window of predecessor statuses with a full warp,
#: so the walk advances up to 32 blocks per global-memory latency.
WARP_WINDOW = 32


def lookback_global_scan(sums: np.ndarray) -> np.ndarray:
    """Functionally identical to the reference exclusive scan."""
    return exclusive_scan(sums)


# ---------------------------------------------------------------------------
# Virtual-GPU protocol
# ---------------------------------------------------------------------------

def setup_memory(sums: np.ndarray) -> GlobalMemory:
    mem = GlobalMemory()
    mem.bind("sums", np.asarray(sums, dtype=np.int64))
    n = len(sums)
    mem.alloc("aggregate", n, np.int64)
    mem.alloc("inclusive", n, np.int64)
    mem.alloc("exclusive", n, np.int64)
    mem.alloc("flag", n, np.int64, fill=FLAG_INVALID)
    return mem


def lookback_scan_kernel(block_id: int, mem: GlobalMemory, local_work: int = 3):
    """One thread block of the decoupled-lookback scan (VM generator).

    Publishes its aggregate as soon as local work completes, then looks
    back: every observed ``AGGREGATE`` descriptor is folded into a running
    exclusive prefix and the walk continues; a ``PREFIX`` descriptor
    terminates it; an ``INVALID`` one is re-polled (the Fig. 13 case of a
    Looking-Back block waiting on a Waiting block).
    """
    for _ in range(local_work):
        yield  # local reduce/scan of this block's tile

    aggregate = int(mem["sums"][block_id])
    mem["aggregate"][block_id] = aggregate
    yield  # __threadfence() so the value is visible before the flag flips
    if block_id == 0:
        mem["exclusive"][0] = 0
        mem["inclusive"][0] = aggregate
        yield
        mem["flag"][0] = FLAG_PREFIX
        return
    mem["flag"][block_id] = FLAG_AGGREGATE

    running = 0  # sum of aggregates gathered so far, nearest-first
    j = block_id - 1
    while True:
        flag = int(mem["flag"][j])
        if flag == FLAG_PREFIX:
            running += int(mem["inclusive"][j])
            break
        if flag == FLAG_AGGREGATE:
            running += int(mem["aggregate"][j])
            j -= 1
            continue  # keep walking without waiting
        yield  # predecessor still Waiting: re-poll after a reschedule

    mem["exclusive"][block_id] = running
    mem["inclusive"][block_id] = running + aggregate
    yield  # __threadfence()
    mem["flag"][block_id] = FLAG_PREFIX


# ---------------------------------------------------------------------------
# Discrete-event timing model
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class LookbackTimeline:
    local_finish_s: float
    scan_finish_s: float
    nblocks: int
    #: Mean number of descriptors each block inspected before terminating.
    mean_lookback_depth: float

    @property
    def sync_latency_s(self) -> float:
        return max(0.0, self.scan_finish_s - self.local_finish_s)

    def throughput_gbs(self, data_bytes: float) -> float:
        return data_bytes / self.scan_finish_s / 1e9


def lookback_schedule(
    work_s: np.ndarray,
    t_poll_s: float,
    resident: int,
    window: int = WARP_WINDOW,
):
    """Per-block schedule of the decoupled-lookback scan: returns arrays
    ``(start, agg_done, prefix_done, depths)``.

    Each polling round trip costs ``t_poll_s`` and covers up to ``window``
    predecessor descriptors (warp-wide status reads).  A block's walk stalls
    on a predecessor that has not yet published its aggregate -- the
    Waiting state -- and terminates at the first published prefix.
    """
    work_s = np.asarray(work_s, dtype=np.float64)
    n = work_s.size
    start = np.zeros(n)
    agg_done = np.zeros(n)  # aggregate published
    prefix_done = np.zeros(n)  # inclusive prefix published
    depths = np.zeros(n)
    for b in range(n):
        if b >= resident:
            # A slot frees once an earlier block fully retires.
            start[b] = prefix_done[b - resident]
        agg_done[b] = start[b] + work_s[b]
        if b == 0:
            prefix_done[b] = agg_done[b]
            continue
        t = agg_done[b]
        j = b - 1
        depth = 0
        while True:
            t += t_poll_s  # one warp-wide descriptor read
            lo = max(-1, j - window)  # inspect (lo, j] this round
            stop = None
            for k in range(j, lo, -1):
                depth += 1
                if prefix_done[k] <= t:
                    stop = k
                    break
                if agg_done[k] > t:
                    # Waiting predecessor: stall until it publishes, then
                    # re-poll from this position.
                    t = max(t, agg_done[k])
                    stop = None
                    j = k
                    break
            else:
                j = lo  # whole window held aggregates; keep walking
                continue
            if stop is not None:
                break
        depths[b] = depth
        prefix_done[b] = t + t_poll_s  # fold + fence + publish
    return start, agg_done, prefix_done, depths


def lookback_timeline(
    work_s: np.ndarray,
    t_poll_s: float,
    resident: int,
    window: int = WARP_WINDOW,
) -> LookbackTimeline:
    """Discrete-event model of the decoupled-lookback scan (summary view of
    :func:`lookback_schedule`)."""
    n = np.asarray(work_s).size
    _, agg_done, prefix_done, depths = lookback_schedule(work_s, t_poll_s, resident, window)
    return LookbackTimeline(
        local_finish_s=float(agg_done.max()),
        scan_finish_s=float(prefix_done.max()),
        nblocks=n,
        mean_lookback_depth=float(depths[1:].mean()) if n > 1 else 0.0,
    )
