"""Device-level prefix-sum substrate (the paper's Section IV-C).

Functional layer (:func:`exclusive_scan`, :func:`reduce_then_scan`),
protocol layer (virtual-GPU kernels for chained scan and decoupled
lookback), and timing layer (discrete-event models producing the
synchronization latencies the kernel cost model consumes).
"""

from .blocked import local_reduce, local_scan, reduce_then_scan, tile_values
from .chained import ScanTimeline, chained_global_scan, chained_scan_kernel, chained_timeline
from .lookback import (
    FLAG_AGGREGATE,
    FLAG_INVALID,
    FLAG_PREFIX,
    LookbackTimeline,
    lookback_global_scan,
    lookback_scan_kernel,
    lookback_schedule,
    lookback_timeline,
)
from .trace import ScanTrace, trace_lookback
from .sequential import exclusive_scan, inclusive_scan, total

__all__ = [
    "exclusive_scan",
    "inclusive_scan",
    "total",
    "reduce_then_scan",
    "tile_values",
    "local_reduce",
    "local_scan",
    "chained_global_scan",
    "chained_scan_kernel",
    "chained_timeline",
    "ScanTimeline",
    "lookback_global_scan",
    "lookback_scan_kernel",
    "lookback_timeline",
    "lookback_schedule",
    "ScanTrace",
    "trace_lookback",
    "LookbackTimeline",
    "FLAG_INVALID",
    "FLAG_AGGREGATE",
    "FLAG_PREFIX",
]
