"""Reduce-then-scan: the three-step blockwise strategy (Section IV-C).

All device-level scans in GPU compressors follow this skeleton:

1. **Reduce** -- each thread block sums the compressed lengths of the data
   blocks it owns;
2. **Global synchronization** -- an exclusive scan over the per-thread-block
   sums (this is the step chained-scan and decoupled lookback implement
   differently);
3. **Scan** -- each thread block re-scans its own values locally and adds
   its global offset, giving every data block its final byte index.

This module provides the skeleton with a pluggable step 2, plus the
tiling helper shared by the chained and lookback implementations.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from .sequential import exclusive_scan

#: Values each thread block owns in the timing models.  cuSZp2 launches
#: blocks of 128 threads, each thread handling one 32-element data block
#: per iteration; one tile is one iteration's worth of lengths.
DEFAULT_TILE = 128


def tile_values(values: np.ndarray, tile: int = DEFAULT_TILE) -> Tuple[np.ndarray, int]:
    """Pad ``values`` with zeros to a multiple of ``tile`` and reshape to
    ``(ntiles, tile)``; zero padding does not change any prefix."""
    values = np.asarray(values, dtype=np.int64)
    ntiles = max(1, -(-values.size // tile))
    padded = np.zeros(ntiles * tile, dtype=np.int64)
    padded[: values.size] = values
    return padded.reshape(ntiles, tile), ntiles


def local_reduce(tiles: np.ndarray) -> np.ndarray:
    """Step 1: per-thread-block sums."""
    return tiles.sum(axis=1, dtype=np.int64)


def local_scan(tiles: np.ndarray, block_offsets: np.ndarray) -> np.ndarray:
    """Step 3: per-thread-block exclusive scans shifted by global offsets."""
    incl = np.cumsum(tiles, axis=1, dtype=np.int64)
    excl = np.concatenate([np.zeros((tiles.shape[0], 1), np.int64), incl[:, :-1]], axis=1)
    return excl + block_offsets[:, None]


def reduce_then_scan(
    values: np.ndarray,
    global_scan: Callable[[np.ndarray], np.ndarray] = exclusive_scan,
    tile: int = DEFAULT_TILE,
) -> np.ndarray:
    """Full three-step scan; ``global_scan`` is the device-level policy
    (sequential reference, chained, or decoupled lookback)."""
    values = np.asarray(values, dtype=np.int64)
    tiles, _ = tile_values(values, tile)
    sums = local_reduce(tiles)
    offsets = global_scan(sums)
    return local_scan(tiles, offsets).reshape(-1)[: values.size]
