"""Thread-block state traces of the decoupled-lookback scan (Fig. 13).

Figure 13 of the paper "captures a moment" of the scan and labels every
thread block *Finished*, *Looking Back*, or *Waiting*.  This module renders
exactly that view from the discrete-event schedule: per-block state
intervals, a snapshot at any instant, and an ASCII timeline.

States (paper's definitions, Section IV-C):

``WAITING``
    compression / local scan not finished (aggregate unpublished);
``LOOKING_BACK``
    local scan complete, walking predecessors' descriptors;
``FINISHED``
    inclusive prefix known (the block proceeds to store its bytes);
``IDLE``
    not yet admitted to an SM (finite residency) or already retired --
    a VM-level state the paper's figure does not need to distinguish.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from .lookback import WARP_WINDOW, lookback_schedule

WAITING = "Waiting"
LOOKING_BACK = "Looking Back"
FINISHED = "Finished"
IDLE = "Idle"


@dataclass(frozen=True)
class ScanTrace:
    """Per-block state intervals of one lookback-scan execution."""

    start: np.ndarray  # admission times
    agg_done: np.ndarray  # local work complete (aggregate published)
    prefix_done: np.ndarray  # inclusive prefix known

    @property
    def nblocks(self) -> int:
        return self.start.size

    def state_at(self, t: float, block: int) -> str:
        if t < self.start[block]:
            return IDLE
        if t < self.agg_done[block]:
            return WAITING
        if t < self.prefix_done[block]:
            return LOOKING_BACK
        return FINISHED

    def snapshot(self, t: float) -> List[str]:
        """The Fig. 13 moment: every thread block's state at time ``t``."""
        return [self.state_at(t, b) for b in range(self.nblocks)]

    def interesting_moment(self) -> float:
        """A time at which all three paper states coexist (when possible):
        the median of the agg_done times tends to catch blocks in every
        phase."""
        return float(np.median(self.agg_done))

    def counts_at(self, t: float) -> dict:
        snap = self.snapshot(t)
        return {s: snap.count(s) for s in (WAITING, LOOKING_BACK, FINISHED, IDLE)}

    def render_snapshot(self, t: float) -> str:
        """Fig. 13-style rendering of a captured moment."""
        marks = {WAITING: "W", LOOKING_BACK: "L", FINISHED: "F", IDLE: "."}
        snap = self.snapshot(t)
        row = "".join(marks[s] for s in snap)
        counts = self.counts_at(t)
        legend = "  ".join(f"{marks[s]}={s}:{counts[s]}" for s in (FINISHED, LOOKING_BACK, WAITING, IDLE))
        return (
            f"t = {1e6 * t:.2f} us   TB0..TB{self.nblocks - 1}\n"
            f"  [{row}]\n  {legend}"
        )

    def render_timeline(self, samples: int = 12) -> str:
        """State counts over the whole execution."""
        times = np.linspace(0, float(self.prefix_done.max()), samples)
        lines = [f"{'time (us)':>10}  {WAITING:>8} {LOOKING_BACK:>13} {FINISHED:>9}"]
        for t in times:
            c = self.counts_at(float(t))
            lines.append(
                f"{1e6 * t:>10.2f}  {c[WAITING]:>8} {c[LOOKING_BACK]:>13} {c[FINISHED]:>9}"
            )
        return "\n".join(lines)


def trace_lookback(
    work_s: Sequence[float],
    t_poll_s: float,
    resident: int,
    window: int = WARP_WINDOW,
) -> ScanTrace:
    """Run the discrete-event lookback model and keep the full schedule."""
    start, agg, prefix, _ = lookback_schedule(np.asarray(work_s, dtype=np.float64), t_poll_s, resident, window)
    return ScanTrace(start=start, agg_done=agg, prefix_done=prefix)
