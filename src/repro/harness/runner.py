"""Experiment execution engine.

Runs the *functional* codecs over the synthetic dataset registry, caches
the resulting fields/streams (the full evaluation sweeps reuse them many
times), and pairs each run's measured :class:`Artifacts` with the
performance-model pipelines to obtain simulated device throughput.

Scaling: synthetic fields hold a few hundred thousand elements, but the
paper's throughput numbers are for GB-class fields where kernel-launch
overhead vanishes and the scan chain is long.  ``scale_artifacts`` grows an
artifact to its dataset's published per-field size while preserving every
measured ratio (compression ratio, zero-block fraction), which is exactly
the information the cost model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Dict, Optional, Tuple

import numpy as np

from ..baselines import FZGPU, FZGPULaunchError, CuZFP
from ..core import compress as cuszp2_compress
from ..core.quantize import ErrorBound
from ..datasets import get_dataset
from ..gpusim import Artifacts, DeviceSpec
from ..gpusim import pipelines as P
from ..metrics import ratio_for


# ---------------------------------------------------------------------------
# Cached functional runs
# ---------------------------------------------------------------------------

@lru_cache(maxsize=256)
def field_data_cached(dataset: str, field: str, scale: int = 1) -> np.ndarray:
    ds = get_dataset(dataset)
    return ds.field(field).generate(ds.dtype, scale)


@dataclass(frozen=True)
class Run:
    """One (compressor, field, bound) functional result."""

    dataset: str
    field: str
    compressor: str  # cuszp2-p | cuszp2-o | cuszp | fzgpu | cuzfp-<rate>
    bound: float  # REL bound, or bits/value for cuzfp
    ratio: float
    artifacts: Artifacts
    failed: Optional[str] = None  # e.g. FZ-GPU's launch bug

    @property
    def ok(self) -> bool:
        return self.failed is None


@lru_cache(maxsize=4096)
def run_field(dataset: str, field: str, compressor: str, bound: float) -> Run:
    """Compress one field functionally and collect artifacts."""
    data = field_data_cached(dataset, field)
    n, esz = data.size, data.dtype.itemsize

    if compressor in ("cuszp2-p", "cuszp2-o", "cuszp"):
        mode = "outlier" if compressor == "cuszp2-o" else "plain"
        buf = cuszp2_compress(data, rel=bound, mode=mode)
        art = Artifacts.from_cuszp2_stream(data, buf)
        return Run(dataset, field, compressor, bound, ratio_for(data, buf), art)

    if compressor == "fzgpu":
        codec = FZGPU(ErrorBound.relative(bound), strict_paper_bugs=True)
        try:
            buf = codec.compress(data, dataset=dataset)
        except FZGPULaunchError as exc:
            placeholder = Artifacts(n, esz, n * esz)
            return Run(dataset, field, compressor, bound, float("nan"), placeholder, failed=str(exc))
        return Run(
            dataset, field, compressor, bound, ratio_for(data, buf),
            Artifacts(n, esz, int(buf.size)),
        )

    if compressor.startswith("cuzfp-"):
        rate = float(compressor.split("-", 1)[1])
        # Fixed-rate size is analytic: no need to run the (slow) coder to
        # know the stream size the throughput model needs.
        size = cuzfp_stream_size(data.shape, rate)
        return Run(dataset, field, compressor, rate, data.size * esz / size, Artifacts(n, esz, size))

    raise ValueError(f"unknown compressor {compressor!r}")


def cuzfp_stream_size(shape: Tuple[int, ...], rate: float) -> int:
    """Exact stream size of our cuZFP container for a field shape."""
    from ..baselines.zfp import codec as zc

    ndim = len(shape)
    maxbits = CuZFP(rate).maxbits(ndim)
    payload_bytes = -(-(maxbits - 16) // 8)
    nblocks = 1
    for s in shape:
        nblocks *= (s + 3) // 4
    return zc.HEADER_SIZE + nblocks * (2 + payload_bytes)


# ---------------------------------------------------------------------------
# Paper-scale throughput simulation
# ---------------------------------------------------------------------------

def paper_field_bytes(dataset: str) -> float:
    """Published per-field size (Tables II/IV): total size over field count."""
    ds = get_dataset(dataset)
    return ds.paper_size_gb * 1e9 / ds.paper_fields


def scale_artifacts(art: Artifacts, target_bytes: float) -> Artifacts:
    """Grow artifacts to ``target_bytes`` of input, preserving ratios."""
    factor = target_bytes / art.input_bytes
    scaled = replace(
        art,
        nelems=int(art.nelems * factor),
        compressed_bytes=max(1, int(art.compressed_bytes * factor)),
        payload_bytes=None if art.payload_bytes is None else max(0, int(art.payload_bytes * factor)),
        offsets_bytes=None if art.offsets_bytes is None else max(1, int(art.offsets_bytes * factor)),
    )
    return scaled


_PIPELINES = {
    "cuszp2-p": (P.cuszp2_compression, P.cuszp2_decompression),
    "cuszp2-o": (P.cuszp2_compression, P.cuszp2_decompression),
    "cuszp": (P.cuszp_compression, P.cuszp_decompression),
    "fzgpu": (P.fzgpu_compression, P.fzgpu_decompression),
}


def simulate(run: Run, device: DeviceSpec, direction: str, **kw) -> float:
    """Simulated end-to-end throughput (GB/s) of ``run`` at paper scale."""
    if not run.ok:
        return float("nan")
    art = scale_artifacts(run.artifacts, paper_field_bytes(run.dataset))
    if run.compressor.startswith("cuzfp"):
        builder = P.cuzfp_compression if direction == "compress" else P.cuzfp_decompression
    else:
        comp, dec = _PIPELINES[run.compressor]
        builder = comp if direction == "compress" else dec
    pipe = builder(art, device, **kw)
    return pipe.end_to_end_throughput(device, art.input_bytes)


def family_of(compressor: str) -> str:
    """Profiler-family key for a compressor id."""
    if compressor.startswith("cuszp2"):
        return "cuszp2"
    if compressor.startswith("cuzfp"):
        return "cuzfp"
    return compressor


def dataset_runs(
    dataset: str, compressor: str, bound: float
) -> Dict[str, Run]:
    """Run every field of a dataset; returns field -> Run."""
    ds = get_dataset(dataset)
    return {f.name: run_field(dataset, f.name, compressor, bound) for f in ds.fields}
