"""One entry point per paper figure/table (the per-experiment index of
DESIGN.md).  Each function returns a structured result carrying both the
numbers and a ``text`` rendering of the same rows/series the paper reports;
the ``benchmarks/`` modules call these and assert the paper's shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..baselines import CuZFP
from ..core import compress as c2_compress
from ..core import decompress as c2_decompress
from ..datasets import DOUBLE_PRECISION, SINGLE_PRECISION, get_dataset
from ..datasets.generators import hpc_field
from ..gpusim import A100_40GB, DeviceSpec, RTX_3080, RTX_3090, profile
from ..gpusim import pipelines as P
from ..metrics import isosurface_preservation, psnr, ratio_for, summarize
from . import tables
from .runner import (
    dataset_runs,
    family_of,
    paper_field_bytes,
    run_field,
    scale_artifacts,
    simulate,
)

RELS = (1e-2, 1e-3, 1e-4)
CUZFP_RATES = (4, 8, 16)
SINGLE_NAMES = tuple(d.name for d in SINGLE_PRECISION)
DOUBLE_NAMES = tuple(d.name for d in DOUBLE_PRECISION)


@dataclass
class ExperimentResult:
    name: str
    text: str
    data: dict = dc_field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


# ---------------------------------------------------------------------------
# Table I -- design-feature matrix
# ---------------------------------------------------------------------------

TABLE1_COLUMNS = ("Pure GPU Design?", "Single Kernel?", "High MB Utilization?", "Latency Control?")

#: None renders as '-' (the paper's em-dash for 'not applicable').
TABLE1_FEATURES = {
    "cuSZ": {"Pure GPU Design?": False, "Single Kernel?": False, "High MB Utilization?": False, "Latency Control?": None},
    "MGARD-GPU": {"Pure GPU Design?": False, "Single Kernel?": False, "High MB Utilization?": False, "Latency Control?": None},
    "cuSZx": {"Pure GPU Design?": False, "Single Kernel?": True, "High MB Utilization?": False, "Latency Control?": None},
    "cuZFP": {"Pure GPU Design?": True, "Single Kernel?": True, "High MB Utilization?": False, "Latency Control?": None},
    "FZ-GPU": {"Pure GPU Design?": True, "Single Kernel?": False, "High MB Utilization?": False, "Latency Control?": False},
    "cuSZp": {"Pure GPU Design?": True, "Single Kernel?": True, "High MB Utilization?": False, "Latency Control?": False},
    "CUSZP2": {"Pure GPU Design?": True, "Single Kernel?": True, "High MB Utilization?": True, "Latency Control?": True},
}


def table1_features() -> ExperimentResult:
    text = tables.feature_matrix(
        "Table I: throughput-related designs in GPU lossy compressors",
        TABLE1_FEATURES,
        TABLE1_COLUMNS,
    )
    return ExperimentResult("table1", text, {"features": TABLE1_FEATURES})


# ---------------------------------------------------------------------------
# Fig. 2 -- kernel vs end-to-end throughput of hybrid compressors
# ---------------------------------------------------------------------------

def fig02_hybrid_gap(device: DeviceSpec = A100_40GB) -> ExperimentResult:
    run = run_field("RTM", "P3000", "cuszp2-p", 1e-3)
    art = scale_artifacts(run.artifacts, paper_field_bytes("RTM"))
    rows = []
    data = {}
    for fam in ("cusz", "cuszx", "mgard"):
        comp = P.hybrid_compression(art, device, fam)
        dec = P.hybrid_decompression(art, device, fam)
        kc = comp.kernel_throughput(device, art.input_bytes)
        ec = comp.end_to_end_throughput(device, art.input_bytes)
        kd = dec.kernel_throughput(device, art.input_bytes)
        ed = dec.end_to_end_throughput(device, art.input_bytes)
        rows.append((fam, kc, ec, kd, ed))
        data[fam] = {"kernel_comp": kc, "e2e_comp": ec, "kernel_decomp": kd, "e2e_decomp": ed}
    text = tables.series_table(
        "Fig. 2: kernel vs end-to-end throughput (CPU-GPU hybrids, RTM P3000)",
        rows,
        ("compressor", "kernel comp", "e2e comp", "kernel decomp", "e2e decomp"),
    )
    return ExperimentResult("fig02", text, data)


# ---------------------------------------------------------------------------
# Fig. 9 / Fig. 16 -- memory throughput (Nsight view)
# ---------------------------------------------------------------------------

def _memory_throughput(compressor: str, dataset: str, bound: float, device: DeviceSpec) -> float:
    run = run_field(dataset, get_dataset(dataset).fields[0].name, compressor, bound)
    if not run.ok:
        return float("nan")
    art = scale_artifacts(run.artifacts, paper_field_bytes(dataset))
    builder = {
        "cuszp2-p": P.cuszp2_compression,
        "cuszp2-o": P.cuszp2_compression,
        "cuszp": P.cuszp_compression,
        "fzgpu": P.fzgpu_compression,
    }.get(compressor)
    pipe = builder(art, device) if builder else P.cuzfp_compression(art, device)
    return profile(pipe, device, family_of(compressor)).memory_throughput_gbs


def fig09_memory_motivation(device: DeviceSpec = A100_40GB) -> ExperimentResult:
    """The motivating measurement: memory throughput of existing pure-GPU
    compressors on RTM P3000, far below the A100's 1555 GB/s."""
    series = {
        "cuZFP": _memory_throughput("cuzfp-8", "RTM", 8, device),
        "FZ-GPU": _memory_throughput("fzgpu", "RTM", 1e-3, device),
        "cuSZp": _memory_throughput("cuszp", "RTM", 1e-3, device),
    }
    text = tables.bar_chart(
        f"Fig. 9: memory throughput on RTM P3000 (peak {device.dram_bw:.0f} GB/s)",
        series,
    )
    return ExperimentResult("fig09", text, {"series": series, "peak": device.dram_bw})


def fig16_memory_bandwidth(device: DeviceSpec = A100_40GB) -> ExperimentResult:
    """Memory-bandwidth utilization across all single-precision datasets."""
    per_comp: Dict[str, List[float]] = {}
    for comp in ("cuszp2-p", "cuszp2-o", "cuszp", "fzgpu", "cuzfp-8"):
        vals = []
        for ds in SINGLE_NAMES:
            bound = 8 if comp.startswith("cuzfp") else 1e-3
            vals.append(_memory_throughput(comp, ds, bound, device))
        per_comp[comp] = vals
    series = {c: float(np.nanmean(v)) for c, v in per_comp.items()}
    text = tables.bar_chart(
        f"Fig. 16: mean memory throughput across datasets (peak {device.dram_bw:.0f} GB/s)",
        series,
    )
    return ExperimentResult("fig16", text, {"mean": series, "per_dataset": per_comp})


# ---------------------------------------------------------------------------
# Fig. 10 -- vectorization instruction counts
# ---------------------------------------------------------------------------

def fig10_vectorization(ele_num: int = 4096) -> ExperimentResult:
    from ..gpusim import compile_copy_loop

    scalar = compile_copy_loop(ele_num, vector_width=1)
    vector = compile_copy_loop(ele_num, vector_width=4)
    rows = [
        ("scalar (LD.E/ST.E)", scalar["LD.E"], scalar["ST.E"], scalar.memory_instructions, scalar.control_instructions),
        ("float4 (LD.E.128/ST.E.128)", vector["LD.E.128"], vector["ST.E.128"], vector.memory_instructions, vector.control_instructions),
    ]
    text = tables.series_table(
        f"Fig. 10: SASS instruction counts for a {ele_num}-element copy loop",
        rows,
        ("kernel", "loads", "stores", "mem instr", "control instr"),
    )
    return ExperimentResult(
        "fig10",
        text,
        {"scalar": scalar.memory_instructions, "vector": vector.memory_instructions},
    )


# ---------------------------------------------------------------------------
# Fig. 14 -- main throughput evaluation
# ---------------------------------------------------------------------------

def fig14_throughput(
    device: DeviceSpec = A100_40GB,
    rels: Sequence[float] = RELS,
    datasets: Sequence[str] = SINGLE_NAMES,
) -> ExperimentResult:
    comp_series: Dict[str, Dict[str, float]] = {}
    decomp_series: Dict[str, Dict[str, float]] = {}
    compressors = ["cuszp2-p", "cuszp2-o", "fzgpu", "cuszp"]
    for ds in datasets:
        comp_series[ds] = {}
        decomp_series[ds] = {}
        for comp in compressors:
            cs, dsp = [], []
            for rel in rels:
                for f, run in dataset_runs(ds, comp, rel).items():
                    cs.append(simulate(run, device, "compress"))
                    dsp.append(simulate(run, device, "decompress"))
            comp_series[ds][comp] = float(np.nanmean(cs))
            decomp_series[ds][comp] = float(np.nanmean(dsp))
        zc, zd = [], []
        for rate in CUZFP_RATES:
            for f, run in dataset_runs(ds, f"cuzfp-{rate}", rate).items():
                zc.append(simulate(run, device, "compress"))
                zd.append(simulate(run, device, "decompress"))
        comp_series[ds]["cuzfp"] = float(np.nanmean(zc))
        decomp_series[ds]["cuzfp"] = float(np.nanmean(zd))

    averages = {
        direction: {
            c: float(np.nanmean([series[ds][c] for ds in datasets]))
            for c in compressors + ["cuzfp"]
        }
        for direction, series in (("compress", comp_series), ("decompress", decomp_series))
    }
    text = "\n\n".join(
        [
            tables.grouped_bars("Fig. 14 (compression, averaged over error bounds)", comp_series),
            tables.grouped_bars("Fig. 14 (decompression, averaged over error bounds)", decomp_series),
            tables.bar_chart("Fig. 14 average: compression", averages["compress"]),
            tables.bar_chart("Fig. 14 average: decompression", averages["decompress"]),
        ]
    )
    return ExperimentResult(
        "fig14", text,
        {"compress": comp_series, "decompress": decomp_series, "averages": averages},
    )


# ---------------------------------------------------------------------------
# Fig. 15 -- HACC per-field P vs O
# ---------------------------------------------------------------------------

def fig15_hacc_fields(device: DeviceSpec = A100_40GB, rel: float = 1e-3) -> ExperimentResult:
    rows = []
    data = {}
    for f in get_dataset("HACC").fields:
        rp = run_field("HACC", f.name, "cuszp2-p", rel)
        ro = run_field("HACC", f.name, "cuszp2-o", rel)
        row = (
            f.name,
            simulate(rp, device, "compress"),
            simulate(ro, device, "compress"),
            simulate(rp, device, "decompress"),
            simulate(ro, device, "decompress"),
            rp.ratio,
            ro.ratio,
        )
        rows.append(row)
        data[f.name] = dict(zip(("comp_p", "comp_o", "decomp_p", "decomp_o", "cr_p", "cr_o"), row[1:]))
    text = tables.series_table(
        f"Fig. 15: CUSZP2-P vs CUSZP2-O on HACC fields (REL {rel:g})",
        rows,
        ("field", "comp P", "comp O", "decomp P", "decomp O", "CR P", "CR O"),
    )
    return ExperimentResult("fig15", text, data)


# ---------------------------------------------------------------------------
# Fig. 17 -- synchronization throughput
# ---------------------------------------------------------------------------

def fig17_lookback(device: DeviceSpec = A100_40GB, datasets: Sequence[str] = SINGLE_NAMES) -> ExperimentResult:
    rows = []
    ratios = []
    data = {}
    for ds_name in datasets:
        ds = get_dataset(ds_name)
        nbytes = paper_field_bytes(ds_name)
        nelems = int(nbytes / ds.dtype.itemsize)
        look = P.standalone_scan_timeline(nelems, ds.dtype.itemsize, device, "lookback")
        chain = P.standalone_scan_timeline(nelems, ds.dtype.itemsize, device, "chained")
        lt, ct = look.throughput_gbs(nbytes), chain.throughput_gbs(nbytes)
        rows.append((ds_name, ct, lt, lt / ct))
        ratios.append(lt / ct)
        data[ds_name] = {"chained": ct, "lookback": lt}
    mean_l = float(np.mean([d["lookback"] for d in data.values()]))
    mean_c = float(np.mean([d["chained"] for d in data.values()]))
    rows.append(("AVERAGE", mean_c, mean_l, mean_l / mean_c))
    text = tables.series_table(
        "Fig. 17: device-level synchronization throughput (GB/s)",
        rows,
        ("dataset", "chained-scan", "decoupled lookback", "speedup"),
    )
    return ExperimentResult(
        "fig17", text,
        {"per_dataset": data, "mean_lookback": mean_l, "mean_chained": mean_c},
    )


# ---------------------------------------------------------------------------
# Fig. 18 -- isosurface quality vs cuZFP at matched ratios
# ---------------------------------------------------------------------------

def _rtm_preview(field_name: str, shape=(24, 24, 128), noise: float = 0.0) -> np.ndarray:
    """A smaller RTM-like volume (full registry params, reduced shape) so
    the pure-Python cuZFP coder runs in seconds.  ``noise`` adds the
    per-sample acquisition-noise floor of real seismic wavefields, which no
    spatial predictor can remove -- the effect behind Table VI's vanishing
    multi-dimensional benefit at conservative bounds."""
    spec = get_dataset("RTM").field(field_name)
    import zlib

    seed = zlib.crc32(field_name.encode()) & 0x7FFFFFFF
    params = dict(spec.params)
    if noise:
        params["noise"] = noise
    return hpc_field(shape, seed, **params)


def _cuszp2_at_ratio(data: np.ndarray, target_cr: float) -> Tuple[np.ndarray, float]:
    """Bisect the REL bound until CUSZP2-O lands near a target ratio."""
    lo, hi = -7.0, -0.5  # log10 bounds
    recon, rel = None, None
    for _ in range(30):
        mid = 0.5 * (lo + hi)
        rel = 10.0 ** mid
        buf = c2_compress(data, rel=rel, mode="outlier")
        cr = ratio_for(data, buf)
        if abs(cr - target_cr) / target_cr < 0.05:
            return c2_decompress(buf).reshape(data.shape), cr
        if cr > target_cr:
            hi = mid  # too much compression: shrink the bound
        else:
            lo = mid
        recon = c2_decompress(buf).reshape(data.shape)
    return recon, ratio_for(data, c2_compress(data, rel=rel, mode="outlier"))


def fig18_isosurface_quality(
    targets: Dict[str, float] = None,
) -> ExperimentResult:
    """Reconstruct RTM fields with cuSZp2 and cuZFP at the paper's matched
    ratios (~64, ~30, ~3) and score isosurface preservation + PSNR."""
    targets = targets or {"P1000": 64.0, "P2000": 30.0, "P3000": 3.0}
    rows = []
    data = {}
    for field_name, cr_target in targets.items():
        original = _rtm_preview(field_name)
        ours, our_cr = _cuszp2_at_ratio(original, cr_target)
        zfp = CuZFP(rate=32.0 / cr_target)
        zfp_recon = zfp.decompress(zfp.compress(original))
        iso_ours = isosurface_preservation(original, ours)
        iso_zfp = isosurface_preservation(original, zfp_recon)
        rows.append(
            (field_name, cr_target, iso_ours, iso_zfp, psnr(original, ours), psnr(original, zfp_recon))
        )
        data[field_name] = {
            "target_cr": cr_target,
            "cuszp2_cr": our_cr,
            "iso_cuszp2": iso_ours,
            "iso_cuzfp": iso_zfp,
            "psnr_cuszp2": psnr(original, ours),
            "psnr_cuzfp": psnr(original, zfp_recon),
        }
    text = tables.series_table(
        "Fig. 18: isosurface preservation at matched compression ratios (RTM)",
        rows,
        ("field", "target CR", "iso CUSZP2", "iso cuZFP", "PSNR CUSZP2", "PSNR cuZFP"),
    )
    return ExperimentResult("fig18", text, data)


# ---------------------------------------------------------------------------
# Table III -- compression ratios
# ---------------------------------------------------------------------------

def table3_compression_ratio(
    rels: Sequence[float] = RELS,
    datasets: Sequence[str] = SINGLE_NAMES,
) -> ExperimentResult:
    cells = {}
    data: Dict[str, dict] = {}
    row_labels = []
    for comp, label in (("cuszp2-o", "CUSZP2-O"), ("fzgpu", "FZ-GPU"), ("cuszp", "cuSZp")):
        for rel in rels:
            row = f"{label} {rel:g}"
            row_labels.append(row)
            for ds in datasets:
                runs = dataset_runs(ds, comp, rel)
                ratios = [r.ratio for r in runs.values() if r.ok]
                if not ratios:
                    cells[(row, ds)] = "N.A. (due to bugs)"
                    data[(label, rel, ds)] = None
                else:
                    cells[(row, ds)] = summarize(ratios)
                    data[(label, rel, ds)] = float(np.mean(ratios))
    text = tables.cell_table("Table III: compression ratios (min~max (avg))", row_labels, list(datasets), cells)
    return ExperimentResult("table3", text, {"avg": data})


# ---------------------------------------------------------------------------
# Fig. 19 / Table V -- double precision
# ---------------------------------------------------------------------------

def fig19_double_precision(device: DeviceSpec = A100_40GB, rels: Sequence[float] = RELS) -> ExperimentResult:
    rows = []
    data = {}
    for comp, label in (("cuszp2-p", "CUSZP2-P"), ("cuszp2-o", "CUSZP2-O")):
        for ds in DOUBLE_NAMES:
            cs, dsp = [], []
            for rel in rels:
                for run in dataset_runs(ds, comp, rel).values():
                    cs.append(simulate(run, device, "compress"))
                    dsp.append(simulate(run, device, "decompress"))
            rows.append((label, ds, float(np.mean(cs)), float(np.mean(dsp))))
            data[(label, ds)] = {"compress": float(np.mean(cs)), "decompress": float(np.mean(dsp))}
    avg_c = float(np.mean([v["compress"] for v in data.values()]))
    avg_d = float(np.mean([v["decompress"] for v in data.values()]))
    rows.append(("AVERAGE", "-", avg_c, avg_d))
    text = tables.series_table(
        "Fig. 19: double-precision throughput (GB/s)", rows, ("mode", "dataset", "compress", "decompress")
    )
    return ExperimentResult("fig19", text, {"rows": data, "avg_compress": avg_c, "avg_decompress": avg_d})


def table5_double_cr(rels: Sequence[float] = RELS) -> ExperimentResult:
    cells = {}
    data = {}
    rows = []
    for comp, label in (("cuszp2-p", "CUSZP2-P"), ("cuszp2-o", "CUSZP2-O")):
        for rel in rels:
            row = f"{label} {rel:g}"
            rows.append(row)
            for ds in DOUBLE_NAMES:
                ratios = [r.ratio for r in dataset_runs(ds, comp, rel).values()]
                cells[(row, ds)] = summarize(ratios)
                data[(label, rel, ds)] = float(np.mean(ratios))
    text = tables.cell_table("Table V: double-precision compression ratios", rows, list(DOUBLE_NAMES), cells)
    return ExperimentResult("table5", text, {"avg": data})


# ---------------------------------------------------------------------------
# Fig. 20 -- random access
# ---------------------------------------------------------------------------

def fig20_random_access(device: DeviceSpec = A100_40GB, rel: float = 1e-4) -> ExperimentResult:
    series = {}
    for ds in SINGLE_NAMES:
        run = run_field(ds, get_dataset(ds).fields[0].name, "cuszp2-o", rel)
        art = scale_artifacts(run.artifacts, paper_field_bytes(ds))
        pipe = P.cuszp2_random_access(art, device)
        series[ds] = pipe.end_to_end_throughput(device, art.input_bytes)
    series["AVERAGE"] = float(np.mean(list(series.values())))
    text = tables.bar_chart(
        f"Fig. 20: random access of one block, REL {rel:g} (normalized by dataset size)",
        series,
    )
    return ExperimentResult("fig20", text, {"series": series})


# ---------------------------------------------------------------------------
# Fig. 21 -- other NVIDIA GPUs
# ---------------------------------------------------------------------------

def fig21_other_gpus(rels: Sequence[float] = RELS) -> ExperimentResult:
    rows = []
    data = {}
    for device in (A100_40GB, RTX_3090, RTX_3080):
        per_comp = {}
        for comp in ("cuszp2-o", "cuszp", "fzgpu"):
            cs, dsp = [], []
            for rel in rels:
                run = run_field("RTM", "P3000", comp, rel)
                cs.append(simulate(run, device, "compress"))
                dsp.append(simulate(run, device, "decompress"))
            per_comp[comp] = (float(np.nanmean(cs)), float(np.nanmean(dsp)))
            rows.append((device.name, comp, *per_comp[comp]))
        data[device.name] = per_comp
    text = tables.series_table(
        "Fig. 21: throughput on other NVIDIA GPUs (RTM P3000, avg over bounds)",
        rows,
        ("device", "compressor", "compress", "decompress"),
    )
    return ExperimentResult("fig21", text, data)


# ---------------------------------------------------------------------------
# Table VI -- 1-D vs 2-D vs 3-D processing
# ---------------------------------------------------------------------------

def table6_dimensionality(rels: Sequence[float] = RELS) -> ExperimentResult:
    """Compress RTM fields with 1-D (block 64), 2-D (8x8) and 3-D (4x4x4)
    cuSZp2-O variants, as Table VI does.  The fields carry a per-sample
    noise floor (see :func:`_rtm_preview`): at REL 1e-2 the floor sits
    below the quantization step and multi-dimensional Lorenzo wins, while
    at REL 1e-4 the floor dominates every predictor's residual -- the
    paper's rationale for 1-D processing."""
    fields = {
        name: _rtm_preview(name, shape=(32, 32, 128), noise=0.05)
        for name in ("P1000", "P2000", "P3000")
    }
    cells = {}
    data = {}
    rows = []
    for ndim, label in ((1, "CUSZP2-1D"), (2, "CUSZP2-2D"), (3, "CUSZP2-3D")):
        for rel in rels:
            row = f"{label} {rel:g}"
            rows.append(row)
            for name, vol in fields.items():
                arr = vol if ndim == 3 else (vol.reshape(vol.shape[0] * vol.shape[1], -1) if ndim == 2 else vol)
                buf = c2_compress(arr, rel=rel, mode="outlier", predictor_ndim=ndim, block=64)
                cr = ratio_for(arr, buf)
                cells[(row, name)] = f"{cr:.2f}"
                data[(ndim, rel, name)] = cr
    text = tables.cell_table(
        "Table VI: multi-dimensional cuSZp2 (outlier mode, 64-element tiles)",
        rows,
        list(fields),
        cells,
        col_width=12,
    )
    return ExperimentResult("table6", text, {"cr": data})


# ---------------------------------------------------------------------------
# Section V-A -- block-size choice ("32 is the overall best choice in
# balancing high throughput and high compression ratio")
# ---------------------------------------------------------------------------

def ablation_block_size(
    device: DeviceSpec = A100_40GB,
    rel: float = 1e-3,
    blocks: Sequence[int] = (8, 16, 32, 64, 128),
    fields: Sequence[Tuple[str, str]] = (("CESM-ATM", "TS"), ("Miranda", "density"), ("RTM", "P2000")),
) -> ExperimentResult:
    """Sweep the block size L: small blocks pay one offset byte per few
    elements (ratio overhead) while large blocks mix unrelated values into
    one fixed length (ratio loss) and lengthen the per-thread serial chain
    (throughput loss).  The paper settles on 32."""
    from ..gpusim import Artifacts
    from .runner import field_data_cached

    rows = []
    data_out: Dict[int, Dict[str, float]] = {}
    for block in blocks:
        crs, thr = [], []
        for ds_name, field_name in fields:
            data = field_data_cached(ds_name, field_name)
            buf = c2_compress(data, rel=rel, mode="outlier", block=block)
            crs.append(ratio_for(data, buf))
            art = scale_artifacts(
                Artifacts.from_cuszp2_stream(data, buf), paper_field_bytes(ds_name)
            )
            pipe = P.cuszp2_compression(art, device)
            # Per-block bookkeeping (offset byte, scatter setup, selection
            # epilogue) costs a few hundred cycles regardless of L: smaller
            # blocks multiply it.  Relative to the L=32 baseline already
            # absorbed in the calibrated per-element constants.
            from ..gpusim.calibration import BLOCK_OVERHEAD_OPS

            extra_blocks = art.nelems / block - art.nelems / 32.0
            pipe.kernels[0].compute_ops += BLOCK_OVERHEAD_OPS * max(extra_blocks, 0.0)
            # Larger blocks serialize more elements per thread's encode loop.
            pipe.kernels[0].compute_ops *= max(1.0, block / 32.0) ** 0.25
            thr.append(pipe.end_to_end_throughput(device, art.input_bytes))
        mean_cr, mean_thr = float(np.mean(crs)), float(np.mean(thr))
        rows.append((block, mean_cr, mean_thr, mean_cr * mean_thr))
        data_out[block] = {"ratio": mean_cr, "throughput": mean_thr}
    text = tables.series_table(
        f"Sec. V-A: block-size sweep (REL {rel:g}; balance = ratio x throughput)",
        rows,
        ("block size", "avg ratio", "compress GB/s", "balance"),
    )
    return ExperimentResult("block_size", text, data_out)


# ---------------------------------------------------------------------------
# Section VI-E -- throughput-gain breakdown (ablation)
# ---------------------------------------------------------------------------

def ablation_breakdown(device: DeviceSpec = A100_40GB, rel: float = 1e-3) -> ExperimentResult:
    """Disable each throughput design individually and attribute the gain,
    averaged over single-precision datasets."""
    gains_mem, gains_sync = [], []
    rows = []
    for ds in SINGLE_NAMES:
        run = run_field(ds, get_dataset(ds).fields[0].name, "cuszp2-o", rel)
        art = scale_artifacts(run.artifacts, paper_field_bytes(ds))
        full = P.cuszp2_compression(art, device).end_to_end_time(device)
        no_vec = P.cuszp2_compression(art, device, vectorized=False).end_to_end_time(device)
        no_look = P.cuszp2_compression(art, device, sync="chained").end_to_end_time(device)
        neither = P.cuszp2_compression(art, device, vectorized=False, sync="chained").end_to_end_time(device)
        total_gain = neither - full
        mem_share = (no_vec - full) / total_gain if total_gain > 0 else 0.0
        sync_share = (no_look - full) / total_gain if total_gain > 0 else 0.0
        gains_mem.append(mem_share)
        gains_sync.append(sync_share)
        rows.append((ds, 1e3 * full, 1e3 * no_vec, 1e3 * no_look, 1e3 * neither))
    mem_pct = 100 * float(np.mean(gains_mem))
    sync_pct = 100 * float(np.mean(gains_sync))
    text = tables.series_table(
        "Sec. VI-E ablation: kernel time (ms) with designs disabled",
        rows,
        ("dataset", "full", "no vectorization", "no lookback", "neither"),
    ) + (
        f"\n  contribution to the throughput gain: memory optimization {mem_pct:.1f}%, "
        f"latency hiding {sync_pct:.1f}% (paper: 56.23% / 41.29%)"
    )
    return ExperimentResult(
        "ablation", text, {"memory_pct": mem_pct, "latency_pct": sync_pct}
    )
