"""Experiment harness: runners, table/figure renderers, per-experiment
entry points for every table and figure of the paper's evaluation."""

from . import experiments, tables
from .runner import (
    Run,
    dataset_runs,
    field_data_cached,
    paper_field_bytes,
    run_field,
    scale_artifacts,
    simulate,
)

__all__ = [
    "experiments",
    "tables",
    "Run",
    "run_field",
    "dataset_runs",
    "simulate",
    "scale_artifacts",
    "paper_field_bytes",
    "field_data_cached",
]
