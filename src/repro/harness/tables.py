"""Paper-style text rendering: bar series, cell tables, feature matrices."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np


def bar_chart(title: str, series: Dict[str, float], unit: str = "GB/s", width: int = 46) -> str:
    """Render a labeled horizontal bar chart (one figure panel)."""
    lines = [f"-- {title} --"]
    finite = [v for v in series.values() if np.isfinite(v)]
    peak = max(finite) if finite else 1.0
    for name, value in series.items():
        if not np.isfinite(value):
            lines.append(f"  {name:<22} {'N.A.':>9}")
            continue
        bar = "#" * max(1, int(width * value / peak))
        lines.append(f"  {name:<22} {value:9.2f} {unit}  {bar}")
    return "\n".join(lines)


def grouped_bars(
    title: str,
    groups: Dict[str, Dict[str, float]],
    unit: str = "GB/s",
) -> str:
    """Render grouped bars: one block per group (e.g. per dataset)."""
    out = [f"== {title} =="]
    for group, series in groups.items():
        out.append(bar_chart(group, series, unit=unit))
    return "\n".join(out)


def cell_table(
    title: str,
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    cells: Dict[tuple, str],
    col_width: int = 24,
) -> str:
    """Render a Table-III-style grid of preformatted cells."""
    header = " " * 18 + "".join(f"{c:<{col_width}}" for c in col_labels)
    lines = [f"== {title} ==", header]
    for r in row_labels:
        row = f"{str(r):<18}"
        for c in col_labels:
            row += f"{cells.get((r, c), ''):<{col_width}}"
        lines.append(row)
    return "\n".join(lines)


def feature_matrix(title: str, rows: Dict[str, Dict[str, bool]], columns: Sequence[str]) -> str:
    """Render Table I's check/cross design matrix."""
    header = f"{'Compressor':<14}" + "".join(f"{c:<24}" for c in columns)
    lines = [f"== {title} ==", header]
    for name, feats in rows.items():
        row = f"{name:<14}"
        for c in columns:
            v = feats.get(c)
            mark = "yes" if v else ("-" if v is None else "no")
            row += f"{mark:<24}"
        lines.append(row)
    return "\n".join(lines)


def series_table(title: str, rows: Iterable[tuple], headers: Sequence[str]) -> str:
    """Simple aligned column table."""
    widths = [max(len(h), 12) for h in headers]
    lines = [f"== {title} ==", "  ".join(f"{h:<{w}}" for h, w in zip(headers, widths))]
    for row in rows:
        cells: List[str] = []
        for v, w in zip(row, widths):
            if isinstance(v, float):
                cells.append(f"{v:<{w}.2f}" if np.isfinite(v) else f"{'N.A.':<{w}}")
            else:
                cells.append(f"{str(v):<{w}}")
        lines.append("  ".join(cells))
    return "\n".join(lines)
