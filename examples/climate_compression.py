#!/usr/bin/env python
"""Climate-data compression (CESM-ATM scenario, paper Section V).

Walks the synthetic CESM-ATM dataset: compresses every field in both
cuSZp2 modes across the paper's three REL bounds, reports per-field ratios
(Table III's min~max (avg) cells), quality metrics, and the simulated A100
end-to-end throughput for the best mode.

Run:  python examples/climate_compression.py
"""

import numpy as np

from repro import compress, decompress
from repro.datasets import get_dataset
from repro.gpusim import A100_40GB
from repro.harness import run_field, simulate
from repro.metrics import psnr, ratio_for, ssim, summarize

ds = get_dataset("CESM-ATM")
print(f"Dataset: {ds.name} ({ds.suite}), paper dims {ds.paper_dims}, "
      f"{ds.paper_fields} fields, {ds.paper_size_gb} GB\n")

for rel in (1e-2, 1e-3, 1e-4):
    ratios = {"plain": [], "outlier": []}
    for spec in ds.fields:
        data = spec.generate(ds.dtype)
        for mode in ratios:
            ratios[mode].append(ratio_for(data, compress(data, rel=rel, mode=mode)))
    print(f"REL {rel:g}:")
    print(f"  CUSZP2-P ratio  {summarize(ratios['plain'])}")
    print(f"  CUSZP2-O ratio  {summarize(ratios['outlier'])}  "
          f"(outlier gain {np.mean(ratios['outlier']) / np.mean(ratios['plain']):.2f}x)")

# Quality on one representative field at the middle bound.
spec = ds.field("TS")
data = spec.generate(ds.dtype)
recon = decompress(compress(data, rel=1e-3, mode="outlier"))
print(f"\nField TS at REL 1e-3: PSNR {psnr(data, recon):.2f} dB, "
      f"SSIM {ssim(data, recon):.5f}")

# Simulated A100 end-to-end throughput (paper-scale field sizes).
run = run_field("CESM-ATM", "TS", "cuszp2-o", 1e-3)
print(f"Simulated A100 throughput (CUSZP2-O, TS): "
      f"compress {simulate(run, A100_40GB, 'compress'):.1f} GB/s, "
      f"decompress {simulate(run, A100_40GB, 'decompress'):.1f} GB/s")
