#!/usr/bin/env python
"""In-situ compressed checkpointing of a running simulation.

HPC codes checkpoint their state every N steps; at GB/s-class compressor
speed the checkpoint can be compressed *in situ* instead of stalling on
I/O.  This example runs a toy 2-D heat-diffusion simulation, packs each
checkpoint epoch's fields into a cuSZp2 archive, and then demonstrates a
restart: reconstruct the state from a chosen epoch and continue the run,
verifying the restarted trajectory stays within a few error bounds of the
uninterrupted one.

Run:  python examples/in_situ_checkpointing.py
"""

import numpy as np

from repro.core.archive import DatasetArchive, pack
from repro.metrics import check_error_bound, psnr

REL = 1e-4
SHAPE = (96, 96)
STEPS_PER_EPOCH = 20
EPOCHS = 4


def diffuse(u: np.ndarray, steps: int, kappa: float = 0.2) -> np.ndarray:
    """Explicit 5-point heat diffusion (periodic boundaries)."""
    for _ in range(steps):
        lap = (
            np.roll(u, 1, 0) + np.roll(u, -1, 0) + np.roll(u, 1, 1) + np.roll(u, -1, 1)
            - 4.0 * u
        )
        u = u + kappa * lap
    return u


rng = np.random.default_rng(11)
temperature = np.cumsum(np.cumsum(rng.normal(size=SHAPE), 0), 1).astype(np.float32)
temperature /= np.abs(temperature).max()
velocity = rng.normal(size=SHAPE).astype(np.float32) * 0.1

checkpoints = []
u = temperature
for epoch in range(EPOCHS):
    u = diffuse(u, STEPS_PER_EPOCH)
    fields = {"temperature": u, "velocity": velocity}
    archive_bytes = pack(fields, REL, mode="outlier")
    raw = sum(f.nbytes for f in fields.values())
    checkpoints.append(archive_bytes)
    print(f"epoch {epoch}: checkpoint {raw:,} B -> {archive_bytes.size:,} B "
          f"(ratio {raw / archive_bytes.size:.2f})")

# --- restart from epoch 1 and catch up to epoch 3 ---------------------------
restart_epoch = 1
archive = DatasetArchive(checkpoints[restart_epoch])
restored = archive.extract("temperature")
rng_t = float(restored.max() - restored.min())
assert check_error_bound(
    diffuse(temperature, (restart_epoch + 1) * STEPS_PER_EPOCH), restored, REL * rng_t * 1.5
)

caught_up = diffuse(restored, (EPOCHS - 1 - restart_epoch) * STEPS_PER_EPOCH)
reference = u  # the uninterrupted trajectory

err = float(np.abs(caught_up - reference).max())
print(f"\nrestarted from epoch {restart_epoch}, advanced to epoch {EPOCHS - 1}:")
print(f"  max divergence from the uninterrupted run: {err:.3e} "
      f"(checkpoint bound was {REL * rng_t:.3e})")
print(f"  PSNR vs reference: {psnr(reference, caught_up):.1f} dB")
# Diffusion contracts perturbations, so the restart divergence stays within
# a small multiple of the checkpoint's error bound.
assert err < 20 * REL * rng_t
print("restart verified.")
