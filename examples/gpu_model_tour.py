#!/usr/bin/env python
"""Tour of the GPU execution-model substrate.

Shows the three layers that stand in for CUDA hardware in this
reproduction:

1. the **virtual GPU** running the decoupled-lookback scan protocol under a
   randomized schedule (correctness layer),
2. the **discrete-event timing models** of chained scan vs decoupled
   lookback (latency layer, Fig. 17), and
3. the **kernel cost model** turning real compression artifacts into
   simulated end-to-end throughput on A100 / RTX 3090 / RTX 3080
   (Fig. 14 / Fig. 21 layer).

Run:  python examples/gpu_model_tour.py
"""

import numpy as np

from repro.datasets import get_dataset
from repro.gpusim import A100_40GB, RTX_3080, RTX_3090, VirtualGPU, profile
from repro.gpusim import pipelines as P
from repro.harness import paper_field_bytes, run_field, scale_artifacts
from repro.scan import exclusive_scan, lookback
from repro.scan.lookback import lookback_scan_kernel, setup_memory

# --- 1. protocol layer: the scan runs correctly under any interleaving ------
sums = np.random.default_rng(0).integers(0, 500, size=24)
mem = setup_memory(sums)
report = VirtualGPU(resident=6, seed=123).launch(lookback_scan_kernel, grid=len(sums), mem=mem)
assert np.array_equal(mem["exclusive"], exclusive_scan(sums))
assert np.all(mem["flag"] == lookback.FLAG_PREFIX)
print(f"virtual GPU: decoupled lookback over {len(sums)} thread blocks, "
      f"{report.total_steps} scheduler steps, exact prefix sums under a random schedule")

# --- 2. latency layer: why lookback beats the chained scan ------------------
nbytes = 1e9
look = P.standalone_scan_timeline(int(nbytes / 4), 4, A100_40GB, "lookback")
chain = P.standalone_scan_timeline(int(nbytes / 4), 4, A100_40GB, "chained")
print(f"\n1 GB device-level scan on the A100:")
print(f"  chained scan       {chain.throughput_gbs(nbytes):7.1f} GB/s")
print(f"  decoupled lookback {look.throughput_gbs(nbytes):7.1f} GB/s "
      f"({look.throughput_gbs(nbytes) / chain.throughput_gbs(nbytes):.2f}x; paper: 2.41x)")

# --- 3. throughput layer: real artifacts -> simulated devices ---------------
run = run_field("RTM", "P3000", "cuszp2-o", 1e-3)
art = scale_artifacts(run.artifacts, paper_field_bytes("RTM"))
print(f"\nRTM P3000 (CUSZP2-O, REL 1e-3, ratio {run.ratio:.2f}):")
for dev in (A100_40GB, RTX_3090, RTX_3080):
    pipe = P.cuszp2_compression(art, dev)
    print(f"  {dev.name:<10} compress {pipe.end_to_end_throughput(dev, art.input_bytes):7.1f} GB/s")

prof = profile(P.cuszp2_compression(art, A100_40GB), A100_40GB, "cuszp2")
print(f"\nNsight-style profile on the A100:\n{prof.render()}")
