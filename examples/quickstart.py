#!/usr/bin/env python
"""Quickstart: compress a floating-point field with cuSZp2.

Demonstrates the minimal public API: pick an error bound, compress,
decompress, verify the bound, and inspect the ratio -- the same flow the
paper's CLI exposes (``./gsz_p vx.f32 1e-3``).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import compress, decompress, compression_ratio
from repro.metrics import check_error_bound, max_abs_error, psnr

# Any finite float32/float64 array works; HPC data is typically a field
# from a simulation.  Here: a smooth 3-D volume.
rng = np.random.default_rng(7)
data = np.cumsum(np.cumsum(np.cumsum(rng.normal(size=(64, 64, 64)), 0), 1), 2)
data = (data / np.abs(data).max()).astype(np.float32)

REL = 1e-3  # value-range-relative error bound (the paper's REL 1E-3)
eb_abs = REL * (data.max() - data.min())

for mode in ("plain", "outlier"):
    stream = compress(data, rel=REL, mode=mode)  # -> unified uint8 byte array
    recon = decompress(stream)  # original shape restored

    label = {"plain": "CUSZP2-P", "outlier": "CUSZP2-O"}[mode]
    print(f"{label}:")
    print(f"  compressed {data.nbytes:,} -> {stream.size:,} bytes "
          f"(ratio {compression_ratio(data, stream):.2f})")
    print(f"  max error      {max_abs_error(data, recon):.3e} (bound {eb_abs:.3e})")
    print(f"  error check    {'Pass error check!' if check_error_bound(data, recon, eb_abs) else 'FAILED'}")
    print(f"  PSNR           {psnr(data, recon):.2f} dB")
    print()

# Absolute bounds work too:
stream = compress(data, abs=1e-4, mode="outlier")
recon = decompress(stream)
assert check_error_bound(data, recon, 1e-4)
print(f"ABS 1e-4: ratio {compression_ratio(data, stream):.2f}, bound verified.")
