#!/usr/bin/env python
"""Double-precision compression (NWChem / S3D scenario, paper Section VI-A).

Computational chemistry and combustion codes emit float64 fields.  cuSZp2
handles them through the same pipeline -- the lossy conversion maps either
precision to quantization integers, and everything downstream is unchanged
-- which is also why its double-precision throughput is ~2x the
single-precision figure (same per-element work, twice the bytes).

Run:  python examples/double_precision_chemistry.py
"""

import numpy as np

from repro import compress, decompress
from repro.datasets import get_dataset
from repro.gpusim import A100_40GB
from repro.harness import run_field, simulate
from repro.metrics import check_error_bound, ratio_for, summarize

for name in ("NWChem", "S3D"):
    ds = get_dataset(name)
    print(f"{ds.name} ({ds.paper_dims}, {ds.paper_size_gb} GB, float64)")
    for rel in (1e-2, 1e-3, 1e-4):
        rp, ro = [], []
        for spec in ds.fields:
            data = spec.generate(ds.dtype)
            assert data.dtype == np.float64
            sp = compress(data, rel=rel, mode="plain")
            so = compress(data, rel=rel, mode="outlier")
            recon = decompress(so)
            eb = rel * (data.max() - data.min())
            assert check_error_bound(data, recon, eb)
            rp.append(ratio_for(data, sp))
            ro.append(ratio_for(data, so))
        print(f"  REL {rel:<7g} CUSZP2-P {summarize(rp):<28} CUSZP2-O {summarize(ro)}")
    print()

# Simulated A100 throughput: double precision runs ~2x single precision.
f64 = run_field("S3D", "T", "cuszp2-o", 1e-3)
f32 = run_field("Miranda", "density", "cuszp2-o", 1e-3)
t64 = simulate(f64, A100_40GB, "compress")
t32 = simulate(f32, A100_40GB, "compress")
print(f"simulated A100 compression: S3D (f64) {t64:.1f} GB/s vs "
      f"Miranda (f32) {t32:.1f} GB/s -> {t64 / t32:.2f}x "
      f"(paper: ~2x, Section VI-A)")
