#!/usr/bin/env python
"""Seismic imaging with random access (RTM scenario, paper Section VI-B).

Reverse-time migration keeps many pressure snapshots compressed and
re-reads localized regions during the imaging condition.  This example
compresses an RTM-like wavefield once and then serves region queries
straight from the compressed stream -- no full decompression -- using the
block-granular random access cuSZp2's independent blocks enable.

Run:  python examples/seismic_random_access.py
"""

import time

import numpy as np

from repro import RandomAccessor, compress, decompress
from repro.core import stream as stream_mod
from repro.core.fle import block_payload_sizes
from repro.datasets import get_dataset
from repro.metrics import ratio_for

ds = get_dataset("RTM")
field = ds.field("P2000")
volume = field.generate(ds.dtype)
flat = volume.reshape(-1)

buf = compress(flat, rel=1e-4, mode="outlier")
print(f"RTM {field.name}: {flat.nbytes:,} bytes -> {buf.size:,} "
      f"(ratio {ratio_for(flat, buf):.2f})")

# Zero blocks (inactive wavefield regions) cost one byte each.
header, offsets, _ = stream_mod.split(buf)
sizes = block_payload_sizes(offsets, header.block)
print(f"blocks: {offsets.size:,}, zero blocks: {(sizes == 0).sum():,} "
      f"({100 * float(np.mean(sizes == 0)):.1f}% -> decoded via the memset fast path)")

accessor = RandomAccessor(buf)
full = decompress(buf)

# --- single-block queries ---------------------------------------------------
rng = np.random.default_rng(0)
picks = rng.choice(accessor.nblocks, size=64, replace=False)
t0 = time.perf_counter()
rows = accessor.decode_blocks(picks)
dt = time.perf_counter() - t0
for idx in picks[:3]:
    lo = int(idx) * accessor.block
    assert np.array_equal(rows[list(picks).index(idx)], full[lo : lo + 32])
print(f"\n64 random blocks decoded in {1e3 * dt:.2f} ms "
      f"(touching {accessor.payload_bytes_touched(picks):,} payload bytes "
      f"of {buf.size:,} total)")

# --- arbitrary element ranges (a receiver line through the volume) ----------
start, stop = 123_456, 131_072
t0 = time.perf_counter()
segment = accessor.decode_range(start, stop)
dt = time.perf_counter() - t0
assert np.array_equal(segment, full[start:stop])
print(f"element range [{start}, {stop}) decoded in {1e3 * dt:.2f} ms, "
      f"matches full decompression exactly")

# --- mapping spatial coordinates to blocks ----------------------------------
z, y, x = 20, 17, 100
elem = (z * volume.shape[1] + y) * volume.shape[2] + x
block, offset = accessor.block_for_element(elem)
value = accessor.decode_block(block)[offset]
print(f"voxel ({z},{y},{x}) -> block {block} offset {offset}: "
      f"value {value:.6f} (original {volume[z, y, x]:.6f})")
