#!/usr/bin/env python
"""Distributed-training gradient compression (the paper's Fig. 1 scenario).

In layer-wise model parallelism, gradients travel between GPUs every step;
compressing them shrinks the transfer, but only if the compressor itself is
fast *end-to-end*.  This example compresses a synthetic gradient tensor
functionally (real ratio, bounded error) and then compares the simulated
per-step time of three strategies on an A100 pair linked by 25 GB/s
interconnect:

1. no compression,
2. a CPU-GPU hybrid compressor (cuSZ-style, Fig. 2's pipeline), and
3. cuSZp2 (pure GPU, single kernel).

Run:  python examples/llm_gradient_compression.py
"""

import numpy as np

from repro import compress, decompress
from repro.gpusim import A100_40GB, Artifacts
from repro.gpusim import pipelines as P
from repro.harness import scale_artifacts
from repro.metrics import check_error_bound, ratio_for

LINK_GBS = 25.0  # inter-GPU link bandwidth
GRAD_BYTES = 2e9  # 2 GB of gradients per step (a LLaMA-scale layer group)

# --- functional compression of a gradient-like tensor -----------------------
# Gradients are heavy-tailed and noisy but spatially correlated along the
# parameter ordering; REL 1e-2 is a typical training-tolerant bound.
rng = np.random.default_rng(3)
grad = (np.cumsum(rng.normal(size=1 << 20)) * 1e-4 + rng.normal(size=1 << 20) * 3e-4).astype(np.float32)
stream = compress(grad, rel=1e-2, mode="outlier")
recon = decompress(stream)
eb = 1e-2 * (grad.max() - grad.min())
assert check_error_bound(grad, recon, eb)
cr = ratio_for(grad, stream)
print(f"gradient tensor: ratio {cr:.2f} at REL 1e-2, bound verified "
      f"(max err <= {eb:.2e})\n")

# --- per-step time on simulated hardware -------------------------------------
art = scale_artifacts(Artifacts.from_cuszp2_stream(grad, stream), GRAD_BYTES)
dev = A100_40GB

def report(name, compress_s, decompress_s, payload_bytes):
    transfer_s = payload_bytes / (LINK_GBS * 1e9)
    total = compress_s + transfer_s + decompress_s
    print(f"{name:<26} compress {1e3 * compress_s:8.2f} ms | "
          f"transfer {1e3 * transfer_s:8.2f} ms | "
          f"decompress {1e3 * decompress_s:8.2f} ms | step total {1e3 * total:8.2f} ms")
    return total

raw = report("no compression", 0.0, 0.0, GRAD_BYTES)

hyb_c = P.hybrid_compression(art, dev, "cusz").end_to_end_time(dev)
hyb_d = P.hybrid_decompression(art, dev, "cusz").end_to_end_time(dev)
hybrid = report("cuSZ (CPU-GPU hybrid)", hyb_c, hyb_d, GRAD_BYTES / cr)

ours_c = P.cuszp2_compression(art, dev).end_to_end_time(dev)
ours_d = P.cuszp2_decompression(art, dev).end_to_end_time(dev)
ours = report("cuSZp2 (pure GPU)", ours_c, ours_d, GRAD_BYTES / cr)

print()
print(f"cuSZp2 vs raw transfer:  {raw / ours:.2f}x faster per step")
print(f"cuSZp2 vs hybrid:        {hybrid / ours:.1f}x faster per step "
      f"(the hybrid's CPU stages cost more than the transfer it saves)")
assert ours < raw < hybrid
