"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np

from tests.helpers import seeded_rng
import pytest


@pytest.fixture
def rng():
    return seeded_rng(12345)


@pytest.fixture
def smooth_f32(rng):
    """A smooth 1-D field (random walk), the regime where Outlier-FLE wins."""
    return np.cumsum(rng.normal(size=20_000)).astype(np.float32)


@pytest.fixture
def rough_f32(rng):
    """White noise: no smoothness, Plain- and Outlier-FLE nearly tie."""
    return rng.normal(size=20_000).astype(np.float32)


@pytest.fixture
def sparse_f32(rng):
    """Mostly-zero field (JetIn-like): exercises the zero-block fast path."""
    data = np.zeros(50_000, dtype=np.float32)
    idx = rng.choice(data.size, size=200, replace=False)
    data[idx] = rng.normal(size=200).astype(np.float32)
    return data


@pytest.fixture
def smooth_f64(rng):
    return np.cumsum(rng.normal(size=20_000)).astype(np.float64)


def value_range(data: np.ndarray) -> float:
    return float(data.max() - data.min())


def assert_error_bounded(original: np.ndarray, recon: np.ndarray, eb_abs: float):
    """Max pointwise error must not exceed the bound (tiny slack for the
    final float32 cast of the reconstruction)."""
    err = np.abs(recon.astype(np.float64) - original.astype(np.float64)).max()
    assert err <= eb_abs * (1 + 1e-6), f"error {err} exceeds bound {eb_abs}"
