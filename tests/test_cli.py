"""Tests for the command-line interface (the paper's AE-style workflow)."""

import numpy as np
import pytest

from repro.cli import main
from repro.datasets import read_field, write_field


@pytest.fixture
def raw_field(tmp_path, rng):
    data = np.cumsum(rng.normal(size=20_000)).astype(np.float32)
    path = tmp_path / "field.f32"
    write_field(path, data)
    return path, data


class TestCompressDecompress:
    def test_round_trip(self, raw_field, tmp_path, capsys):
        path, data = raw_field
        out = tmp_path / "field.csz2"
        rc = main(["compress", str(path), "1e-3", "--mode", "o", "-o", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "GSZ finished!" in text
        assert "Pass error check!" in text
        assert "compression ratio" in text
        assert out.exists()

        recon_path = tmp_path / "recon.f32"
        rc = main(["decompress", str(out), "-o", str(recon_path)])
        assert rc == 0
        recon = read_field(recon_path)
        eb = 1e-3 * (data.max() - data.min())
        assert np.abs(recon - data).max() <= eb * (1 + 1e-6)

    def test_absolute_bound(self, raw_field, tmp_path, capsys):
        path, data = raw_field
        rc = main(["compress", str(path), "0.5", "--absolute", "-o", str(tmp_path / "a.csz2")])
        assert rc == 0
        assert "Pass error check!" in capsys.readouterr().out

    def test_mode_shorthands(self, raw_field, tmp_path):
        path, _ = raw_field
        for mode in ("p", "plain", "o", "outlier"):
            assert main(["compress", str(path), "1e-2", "--mode", mode, "-o", str(tmp_path / f"{mode}.csz2")]) == 0

    def test_p_and_o_files_differ_in_size(self, tmp_path, rng):
        data = np.cumsum(rng.normal(size=50_000)).astype(np.float32)
        path = tmp_path / "smooth.f32"
        write_field(path, data)
        main(["compress", str(path), "1e-3", "--mode", "p", "-o", str(tmp_path / "p.csz2")])
        main(["compress", str(path), "1e-3", "--mode", "o", "-o", str(tmp_path / "o.csz2")])
        assert (tmp_path / "o.csz2").stat().st_size < (tmp_path / "p.csz2").stat().st_size

    def test_f64_input(self, tmp_path, rng):
        data = np.cumsum(rng.normal(size=5_000))
        path = tmp_path / "field.f64"
        write_field(path, data)
        out = tmp_path / "field.csz2"
        assert main(["compress", str(path), "1e-3", "-o", str(out)]) == 0
        recon_path = tmp_path / "r.f64"
        assert main(["decompress", str(out), "-o", str(recon_path)]) == 0
        assert read_field(recon_path).dtype == np.float64

    def test_device_flag(self, raw_field, tmp_path, capsys):
        path, _ = raw_field
        rc = main(["compress", str(path), "1e-3", "--device", "RTX-3080", "-o", str(tmp_path / "x.csz2")])
        assert rc == 0
        assert "RTX-3080" in capsys.readouterr().out


class TestOtherCommands:
    def test_datasets_lists_registry(self, capsys):
        assert main(["datasets"]) == 0
        text = capsys.readouterr().out
        for name in ("CESM-ATM", "HACC", "JetIn", "NWChem"):
            assert name in text

    def test_generate(self, tmp_path, capsys):
        out = tmp_path / "p3000.f32"
        assert main(["generate", "RTM", "P3000", "-o", str(out)]) == 0
        data = read_field(out)
        assert data.size == 48 * 48 * 256

    def test_experiment_runs_and_writes(self, tmp_path, capsys):
        out = tmp_path / "fig10.txt"
        assert main(["experiment", "fig10", "-o", str(out)]) == 0
        assert "SASS" in out.read_text()

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "fig99"]) == 2

    def test_evaluate_dataset(self, capsys):
        assert main(["evaluate", "QMCPack", "--rel", "1e-2"]) == 0
        text = capsys.readouterr().out
        assert "GSZ-P" in text and "GSZ-O" in text
        assert "avg compression ratio" in text


class TestArchiveCommands:
    def test_pack_and_extract(self, tmp_path, capsys):
        arch = tmp_path / "qmc.arch"
        assert main(["pack", "QMCPack", "--rel", "1e-2", "-o", str(arch)]) == 0
        assert arch.exists()

        # Listing fields.
        assert main(["extract", str(arch)]) == 0
        assert "einspline" in capsys.readouterr().out

        out = tmp_path / "field.f32"
        assert main(["extract", str(arch), "einspline", "-o", str(out)]) == 0
        data = read_field(out)
        assert data.size == 48 * 48 * 256


class TestChunkedCompress:
    def test_big_input_routes_through_chunked_engine(self, raw_field, tmp_path, capsys):
        path, data = raw_field  # 80 KB: above a 0.05 MiB threshold
        out = tmp_path / "field.csz2"
        rc = main(["compress", str(path), "1e-3", "--chunk-mb", "0.05", "-o", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "chunked into" in text
        assert "Pass error check!" in text
        assert out.exists()

    def test_workers_flag_forces_chunked_path(self, raw_field, tmp_path, capsys):
        path, data = raw_field
        out = tmp_path / "field.csz2"
        rc = main([
            "compress", str(path), "1e-3",
            "--workers", "2", "--backend", "thread", "-o", str(out),
        ])
        assert rc == 0
        text = capsys.readouterr().out
        assert "2 worker(s), thread backend" in text
        assert "Pass error check!" in text

    def test_chunked_container_decompresses(self, raw_field, tmp_path, capsys):
        path, data = raw_field
        out = tmp_path / "field.csz2"
        assert main(["compress", str(path), "1e-3", "--chunk-mb", "0.05", "-o", str(out)]) == 0
        capsys.readouterr()
        recon_path = tmp_path / "recon.f32"
        rc = main(["decompress", str(out), "-o", str(recon_path)])
        assert rc == 0
        assert "chunked container" in capsys.readouterr().out
        recon = read_field(recon_path)
        eb = 1e-3 * (data.max() - data.min())
        assert np.abs(recon - data).max() <= eb * (1 + 1e-6)

    def test_small_input_stays_single_stream(self, raw_field, tmp_path, capsys):
        path, data = raw_field  # 80 KB: far below the default 32 MiB
        out = tmp_path / "field.csz2"
        assert main(["compress", str(path), "1e-3", "-o", str(out)]) == 0
        assert "chunked into" not in capsys.readouterr().out


class TestKernelBackendFlag:
    """``--kernel-backend`` (codec kernels) vs ``--backend`` (worker pool)."""

    @pytest.fixture
    def small_field(self, tmp_path, rng):
        data = np.cumsum(rng.normal(size=4_000)).astype(np.float32)
        path = tmp_path / "small.f32"
        write_field(path, data)
        return path, data

    def test_choices_stay_in_sync_with_registry(self):
        from repro.cli import KERNEL_BACKENDS
        from repro.core import registered_backends

        assert set(KERNEL_BACKENDS) == {"auto"} | set(registered_backends())
        assert KERNEL_BACKENDS[0] == "auto"

    def test_explicit_backend_bitwise_identical_stream(self, small_field, tmp_path, capsys):
        path, _ = small_field
        a, b = tmp_path / "a.csz2", tmp_path / "b.csz2"
        assert main(["compress", str(path), "1e-3", "-o", str(a)]) == 0
        assert main([
            "compress", str(path), "1e-3",
            "--kernel-backend", "fused-python", "-o", str(b),
        ]) == 0
        assert "Pass error check!" in capsys.readouterr().out
        assert a.read_bytes() == b.read_bytes()

    def test_decompress_accepts_kernel_backend(self, small_field, tmp_path, capsys):
        path, data = small_field
        out = tmp_path / "small.csz2"
        assert main(["compress", str(path), "1e-3", "-o", str(out)]) == 0
        capsys.readouterr()
        recon_path = tmp_path / "recon.f32"
        rc = main([
            "decompress", str(out),
            "--kernel-backend", "fused-python", "-o", str(recon_path),
        ])
        assert rc == 0
        recon = read_field(recon_path)
        eb = 1e-3 * (data.max() - data.min())
        assert np.abs(recon - data).max() <= eb * (1 + 1e-6)

    def test_chunked_path_carries_kernel_backend(self, small_field, tmp_path, capsys):
        path, _ = small_field  # 16 KB: above a 0.01 MiB threshold
        a, b = tmp_path / "a.csz2", tmp_path / "b.csz2"
        assert main([
            "compress", str(path), "1e-3", "--chunk-mb", "0.01", "-o", str(a),
        ]) == 0
        rc = main([
            "compress", str(path), "1e-3", "--chunk-mb", "0.01",
            "--kernel-backend", "fused-python", "-o", str(b),
        ])
        assert rc == 0
        text = capsys.readouterr().out
        assert "chunked into" in text
        assert "Pass error check!" in text
        assert a.read_bytes() == b.read_bytes()

    def test_unavailable_backend_falls_back_with_warning(self, small_field, tmp_path):
        from repro.core import available_backends

        if "numba" in available_backends():
            pytest.skip("numba installed: no fallback to observe")
        path, _ = small_field
        a, b = tmp_path / "a.csz2", tmp_path / "b.csz2"
        assert main(["compress", str(path), "1e-3", "-o", str(a)]) == 0
        with pytest.warns(RuntimeWarning, match="falling back to 'numpy'"):
            rc = main([
                "compress", str(path), "1e-3",
                "--kernel-backend", "numba", "-o", str(b),
            ])
        assert rc == 0
        assert a.read_bytes() == b.read_bytes()

    def test_unknown_backend_rejected_by_argparse(self, small_field, capsys):
        path, _ = small_field
        with pytest.raises(SystemExit):
            main(["compress", str(path), "1e-3", "--kernel-backend", "cuda"])
        assert "invalid choice" in capsys.readouterr().err


class TestServeBench:
    def test_serve_bench_runs_and_reports(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        rc = main([
            "serve-bench", "--size-mb", "0.2", "--workers", "1",
            "--requests", "2", "--clients", "1", "--chunk-mb", "0.1",
            "--json", str(report_path),
        ])
        assert rc == 0
        text = capsys.readouterr().out
        assert "serve-bench:" in text
        assert "throughput" in text
        assert report_path.exists()

    def test_serve_bench_kernel_backend_recorded(self, tmp_path, capsys):
        import json

        report_path = tmp_path / "report.json"
        rc = main([
            "serve-bench", "--size-mb", "0.05", "--workers", "1",
            "--requests", "1", "--clients", "1", "--chunk-mb", "0.1",
            "--kernel-backend", "fused-python", "--json", str(report_path),
        ])
        assert rc == 0
        report = json.loads(report_path.read_text())
        assert report["config"]["kernel_backend"] == "fused-python"
        assert not report["errors"]


class TestTrace:
    def test_trace_synthetic_stage_table(self, capsys):
        rc = main(["trace", "--size-mb", "0.5", "--workers", "1"])
        assert rc == 0
        text = capsys.readouterr().out
        for stage in ("service.compress", "codec.quantize", "codec.fle",
                      "service.decompress", "codec.fle_decode",
                      "codec.dequantize", "(untraced)"):
            assert stage in text
        assert "Pass error check!" in text
        # acceptance: span self-times account for >= 95% of traced wall
        cov = float(text.split("trace coverage:")[1].split("%")[0])
        assert cov >= 95.0

    def test_trace_process_backend_ships_worker_spans(self, capsys):
        rc = main([
            "trace", "--size-mb", "0.5", "--workers", "2",
            "--backend", "process",
        ])
        assert rc == 0
        text = capsys.readouterr().out
        # codec stages only exist inside worker processes here, so their
        # presence proves the cross-process ship-back + re-parenting
        assert "pool.task.chunk.compress" in text
        assert "codec.fle" in text
        cov = float(text.split("trace coverage:")[1].split("%")[0])
        assert cov >= 95.0

    def test_trace_exports(self, tmp_path, capsys):
        import json

        spans = tmp_path / "spans.json"
        fold = tmp_path / "stacks.folded"
        prom = tmp_path / "metrics.txt"
        rc = main([
            "trace", "--size-mb", "0.25", "--workers", "1",
            "--json", str(spans), "--folded", str(fold), "--metrics", str(prom),
        ])
        assert rc == 0
        roots = json.loads(spans.read_text())
        assert {r["name"] for r in roots} >= {"service.compress", "service.decompress"}
        assert any(";codec.fle " in line for line in fold.read_text().splitlines())
        assert "repro_pool_tasks_total" in prom.read_text()

    def test_trace_kernel_backend_shows_fused_spans(self, capsys):
        rc = main([
            "trace", "--size-mb", "0.05", "--workers", "1",
            "--kernel-backend", "fused-python",
        ])
        assert rc == 0
        text = capsys.readouterr().out
        # the fused backends replace the stage spans with single fused ones,
        # so their presence proves the flag reached the codec in the workers
        assert "codec.fused_encode" in text
        assert "codec.fused_decode" in text
        assert "codec.predict" not in text  # numpy-backend stage spans
        assert "codec.undiff" not in text
        assert "Pass error check!" in text

    def test_trace_raw_file_input(self, raw_field, capsys):
        path, _data = raw_field
        rc = main(["trace", str(path), "--workers", "1"])
        assert rc == 0
        assert "Pass error check!" in capsys.readouterr().out


class TestCodecFlag:
    """``--codec`` (compressor plugin registry) on compress/decompress/pack."""

    def test_codecs_list_stays_in_sync_with_registry(self):
        from repro import codecs
        from repro.cli import CODECS

        assert set(CODECS) == {"auto"} | set(codecs.codec_names())
        assert CODECS[0] == "auto"

    def test_codecs_subcommand_lists_every_plugin(self, capsys):
        from repro import codecs

        assert main(["codecs"]) == 0
        text = capsys.readouterr().out
        for name in codecs.codec_names():
            assert name in text
        assert "fixed-rate" in text  # cuzfp's flag
        assert "--codec-opt" in text

    @pytest.mark.parametrize("codec", ["cuszp", "fzgpu", "cusz", "cuszx", "mgard"])
    def test_compress_decompress_each_bounded_codec(self, raw_field, tmp_path, codec, capsys):
        path, data = raw_field
        out = tmp_path / f"field.{codec}"
        rc = main(["compress", str(path), "1e-3", "--codec", codec, "-o", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert f"codec: {codec}" in text
        assert "Pass error check!" in text

        recon_path = tmp_path / "recon.f32"
        assert main(["decompress", str(out), "-o", str(recon_path)]) == 0
        assert f"{codec} stream" in capsys.readouterr().out or codec == "cuszp"
        recon = read_field(recon_path)
        eb = 1e-3 * (data.max() - data.min())
        assert np.abs(recon - data).max() <= eb * (1 + 1e-6)

    def test_compress_fixed_rate_codec_with_opt(self, raw_field, tmp_path, capsys):
        path, _ = raw_field
        out = tmp_path / "field.cuzfp"
        rc = main([
            "compress", str(path), "1e-3", "--codec", "cuzfp",
            "--codec-opt", "rate=16", "-o", str(out),
        ])
        assert rc == 0
        assert "no error bound to check" in capsys.readouterr().out
        assert out.exists()

    def test_compress_codec_auto_prints_tuning_report(self, raw_field, tmp_path, capsys):
        path, _ = raw_field
        out = tmp_path / "field.auto"
        rc = main(["compress", str(path), "1e-3", "--codec", "auto", "-o", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "auto-tuner:" in text
        assert "<== chosen" in text
        assert "Pass error check!" in text

    def test_bad_codec_opt_format_exits(self, raw_field):
        path, _ = raw_field
        with pytest.raises(SystemExit):
            main(["compress", str(path), "1e-3", "--codec", "cusz", "--codec-opt", "rate16"])

    def test_decompress_forced_codec(self, raw_field, tmp_path, capsys):
        path, _ = raw_field
        out = tmp_path / "f.fzgpu"
        assert main(["compress", str(path), "1e-3", "--codec", "fzgpu", "-o", str(out)]) == 0
        capsys.readouterr()
        assert main(["decompress", str(out), "--codec", "fzgpu", "-o", str(tmp_path / "r.f32")]) == 0
        # forcing the wrong plugin is a classified failure, not a traceback
        assert main(["decompress", str(out), "--codec", "mgard", "-o", str(tmp_path / "x.f32")]) == 1
        assert "not a stream of any registered codec" in capsys.readouterr().out

    def test_pack_codec_auto_reports_per_field_choices(self, tmp_path, capsys):
        out = tmp_path / "hacc.arch"
        rc = main(["pack", "HACC", "--codec", "auto", "-o", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "codec auto" in text
        assert text.count("sample ratio") == 6  # one line per HACC field

        assert main(["extract", str(out), "xx", "-o", str(tmp_path / "xx.f32")]) == 0

    def test_pack_fixed_codec(self, tmp_path, capsys):
        out = tmp_path / "hacc2.arch"
        assert main(["pack", "HACC", "--codec", "cuszx", "-o", str(out)]) == 0
        assert "codec cuszx" in capsys.readouterr().out
        assert main(["extract", str(out), "vx", "-o", str(tmp_path / "vx.f32")]) == 0
