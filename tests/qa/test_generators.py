"""The generator layer: deterministic draws, full family coverage, and
case parameters that always describe a codec-valid configuration."""

import numpy as np
import pytest

from repro.core.errors import InvalidInputError
from repro.qa import FAMILIES, draw_case
from repro.qa.generators import case_rng


class TestDeterminism:
    def test_same_coordinates_same_case(self):
        for i in (0, 3, 17, 41):
            a = draw_case(123, i)
            b = draw_case(123, i)
            assert a.family == b.family
            assert a.params == b.params
            assert a.data.dtype == b.data.dtype
            assert np.array_equal(a.data, b.data, equal_nan=True)

    def test_different_seeds_differ(self):
        a, b = draw_case(0, 0), draw_case(1, 0)
        assert a.data.shape != b.data.shape or not np.array_equal(a.data, b.data)

    def test_case_rng_streams_are_independent(self):
        x = case_rng(5, 0).normal(size=8)
        y = case_rng(5, 1).normal(size=8)
        assert not np.array_equal(x, y)
        assert np.array_equal(x, case_rng(5, 0).normal(size=8))


class TestFamilyCoverage:
    def test_one_cycle_covers_every_family(self):
        fams = {draw_case(0, i).family for i in range(len(FAMILIES))}
        assert fams == set(FAMILIES)

    def test_explicit_family_override(self):
        case = draw_case(0, 0, family="spikes")
        assert case.family == "spikes"

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown family"):
            draw_case(0, 0, family="nope")

    def test_nonfinite_expects_typed_error(self):
        case = draw_case(0, 0, family="nonfinite")
        assert case.expect_error is InvalidInputError
        assert not np.isfinite(case.data).all()

    def test_all_other_families_expect_success(self):
        for fam in FAMILIES:
            if fam == "nonfinite":
                continue
            case = draw_case(7, 0, family=fam)
            assert case.expect_error is None, fam
            assert np.isfinite(case.data).all(), fam


class TestParameterValidity:
    @pytest.mark.parametrize("index", range(28))
    def test_drawn_params_are_codec_valid(self, index):
        case = draw_case(99, index)
        p = case.params
        assert p["block"] % 8 == 0 and p["block"] > 0
        assert p["mode"] in ("plain", "outlier")
        assert p["group_blocks"] > 0
        if p["predictor_ndim"] == 2:
            assert p["block"] in (16, 64)
            assert all(s % int(p["block"] ** 0.5) == 0 for s in case.data.shape)
        if p["predictor_ndim"] == 3:
            assert p["block"] == 64
            assert all(s % 4 == 0 for s in case.data.shape)
        assert ("rel" in p) != ("abs" in p)  # exactly one bound kind
        if case.expect_error is None:
            assert case.resolved_eb() > 0

    def test_tiny_family_hits_block_boundaries(self):
        sizes = {draw_case(s, 0, family="tiny").data.size for s in range(40)}
        assert 1 in sizes  # the degenerate single-element field shows up
        assert any(n > 1 for n in sizes)

    def test_multigroup_spans_groups(self):
        case = draw_case(3, 0, family="multigroup")
        blocks = -(-case.data.size // case.params["block"])
        assert blocks > case.params["group_blocks"]


class TestFuzzCaseHelpers:
    def test_bound_and_codec_kwargs(self):
        case = draw_case(11, 1)
        kw = case.codec_kwargs
        assert set(kw) == {next(iter(case.bound_kwargs)), "mode", "block",
                           "predictor_ndim", "group_blocks"}

    def test_with_data_keeps_params(self):
        case = draw_case(0, 0)
        small = case.with_data(case.data[:8])
        assert small.params == case.params and small.family == case.family
        assert small.data.size == 8

    def test_describe_names_the_case(self):
        s = draw_case(42, 6).describe()
        assert "seed=42" in s and "i=6" in s
