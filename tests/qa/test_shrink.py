"""The shrinker: minimizes while preserving the failure, never chases a
different oracle, and respects codec-validity units for N-D fields."""

import numpy as np
import pytest

from repro.qa import draw_case, shrink_case
from repro.qa.oracles import OracleFailure
from repro.qa.shrink import _axis0_unit


def poison_oracle(case, ctx):
    """A stand-in defect: fails whenever the array contains a value > 100."""
    if np.any(case.data > 100):
        raise OracleFailure("poison", case, "poison value present")


def make_poisoned_case(n=2000, at=1234):
    case = draw_case(0, 0)  # walk family, 1-D
    data = np.zeros(n, dtype=np.float32)
    data[at] = 500.0
    return case.with_data(data)


class TestShrinkMinimizes:
    def test_single_poison_element_survives(self):
        case = make_poisoned_case()
        failure = None
        try:
            poison_oracle(case, None)
        except OracleFailure as f:
            failure = f
        result = shrink_case(case, poison_oracle, failure)
        assert result.original_size == 2000
        assert result.shrunk_size <= 8  # ddmin isolates the poison region
        assert np.any(result.case.data > 100)  # still failing by construction
        assert result.failure.oracle == "poison"
        assert result.attempts > 0

    def test_shrunk_case_keeps_codec_params(self):
        case = make_poisoned_case()
        try:
            poison_oracle(case, None)
        except OracleFailure as f:
            result = shrink_case(case, poison_oracle, f)
        assert result.case.params == case.params
        assert result.case.family == case.family

    def test_deterministic(self):
        def run():
            case = make_poisoned_case()
            try:
                poison_oracle(case, None)
            except OracleFailure as f:
                return shrink_case(case, poison_oracle, f)

        a, b = run(), run()
        assert np.array_equal(a.case.data, b.case.data)
        assert a.attempts == b.attempts


class TestShrinkSafety:
    def test_different_oracle_not_chased(self):
        # an oracle that fails as "poison" on the original but as "other" on
        # any smaller array: the shrinker must keep the original
        def flaky(case, ctx):
            if case.data.size == 2000:
                raise OracleFailure("poison", case, "original failure")
            raise OracleFailure("other", case, "different failure")

        case = make_poisoned_case()
        try:
            flaky(case, None)
        except OracleFailure as f:
            result = shrink_case(case, flaky, f)
        assert result.shrunk_size == 2000
        assert result.failure.oracle == "poison"

    def test_oracle_crash_treated_as_not_failing(self):
        def crashy(case, ctx):
            if case.data.size == 2000:
                raise OracleFailure("poison", case, "original")
            raise RuntimeError("unrelated crash on candidates")

        case = make_poisoned_case()
        try:
            crashy(case, None)
        except OracleFailure as f:
            result = shrink_case(case, crashy, f)
        assert result.shrunk_size == 2000  # never adopted a crashing candidate

    def test_attempt_budget_respected(self):
        case = make_poisoned_case()
        try:
            poison_oracle(case, None)
        except OracleFailure as f:
            result = shrink_case(case, poison_oracle, f, max_attempts=5)
        assert result.attempts <= 5


class TestAxisUnits:
    @pytest.mark.parametrize(
        "family,expected", [("walk", 1), ("ndim2", None), ("ndim3", 4)]
    )
    def test_nd_units_match_tile_edges(self, family, expected):
        case = draw_case(0, 0, family=family)
        unit = _axis0_unit(case)
        if family == "ndim2":
            expected = round(case.params["block"] ** 0.5)  # 4 or 8
        assert unit == expected

    def test_nd_shrink_keeps_tile_multiple_rows(self):
        case = draw_case(0, 0, family="ndim2")
        t = round(case.params["block"] ** 0.5)
        data = np.zeros_like(case.data)
        data[-1, -1] = 500.0
        case = case.with_data(data)
        try:
            poison_oracle(case, None)
        except OracleFailure as f:
            result = shrink_case(case, poison_oracle, f)
        assert result.case.data.shape[0] % t == 0
        assert result.case.data.shape[0] >= t
        assert np.any(result.case.data > 100)
