"""The oracles themselves: they pass on healthy cases, filter correctly,
and reuse one compression per case via the context cache."""

import numpy as np
import pytest

from repro.qa import ORACLES, applicable_oracles, draw_case
from repro.qa.oracles import OracleContext, OracleFailure


class TestOraclesPassOnHealthyCodec:
    @pytest.mark.parametrize("oname", sorted(ORACLES))
    def test_first_cycle_is_green(self, oname):
        ctx = OracleContext()
        for i in range(14):  # one full family cycle
            case = draw_case(0, i)
            if oname in applicable_oracles(case, (oname,)):
                ORACLES[oname](case, ctx)  # must not raise

    def test_nonfinite_case_roundtrip_checks_refusal(self):
        case = draw_case(0, 0, family="nonfinite")
        ORACLES["roundtrip"](case, OracleContext())  # passes: codec refuses

    def test_roundtrip_fails_when_expected_error_missing(self):
        # healthy finite data wrongly labelled expect_error: the oracle must
        # flag that compress succeeded where a refusal was promised
        from repro.core.errors import InvalidInputError

        case = draw_case(0, 0)  # walk, finite
        bad = type(case)(
            family=case.family, seed=case.seed, index=case.index,
            data=case.data, params=case.params, expect_error=InvalidInputError,
        )
        with pytest.raises(OracleFailure, match="compress succeeded"):
            ORACLES["roundtrip"](bad, OracleContext())


class TestApplicability:
    def test_random_access_skipped_for_nd(self):
        case2 = draw_case(0, 0, family="ndim2")
        assert "random_access" not in applicable_oracles(case2)
        case1 = draw_case(0, 0, family="walk")
        assert "random_access" in applicable_oracles(case1)

    def test_expect_error_keeps_only_refusal_oracles(self):
        # hostile cases still exercise roundtrip (core refusal) and codecs
        # (every plugin must refuse too); the differential paths drop out
        case = draw_case(0, 0, family="nonfinite")
        assert applicable_oracles(case) == ["roundtrip", "codecs"]

    def test_paths_filter_respected(self):
        case = draw_case(0, 0, family="walk")
        assert applicable_oracles(case, ("chunked",)) == ["chunked"]

    def test_unknown_path_rejected(self):
        with pytest.raises(ValueError, match="unknown oracle"):
            applicable_oracles(draw_case(0, 0), ("nope",))


class TestContextCache:
    def test_stream_compressed_once_per_case(self):
        case = draw_case(0, 0)
        ctx = OracleContext()
        first = ctx.stream_for(case)
        assert ctx.stream_for(case) is first  # cached, not recompressed

    def test_cache_distinguishes_shrunk_variants(self):
        case = draw_case(0, 0)
        ctx = OracleContext()
        full = ctx.stream_for(case)
        small = ctx.stream_for(case.with_data(case.data[:64].copy()))
        assert small.size < full.size


class TestFailureObject:
    def test_failure_carries_triage_info(self):
        case = draw_case(5, 2)
        f = OracleFailure("roundtrip", case, "demo detail")
        assert f.oracle == "roundtrip" and f.case is case
        assert "demo detail" in str(f) and "seed=5" in str(f)
        assert isinstance(f, AssertionError)

    def test_error_bound_oracle_uses_native_ulp(self):
        # float32 reconstruction near 1e6: half a float32 ULP (~0.03) dwarfs
        # the float64 spacing; the oracle must grant the native slack or
        # every large-magnitude case would false-positive
        from repro.qa.oracles import _max_error_ok

        x = np.full(16, 1.0e6, dtype=np.float32)
        recon = np.nextafter(x, np.inf)  # off by exactly one f32 ULP
        ulp = float(np.spacing(np.float32(1.0e6)))
        assert _max_error_ok(x, recon, eb_abs=ulp / 2) is None
        diag = _max_error_ok(x, recon, eb_abs=ulp / 8)
        assert diag is not None and "error bound violated" in diag
