"""Corpus persistence round-trips, and the committed corpus replays green.

The second half is the regression mechanism described in
``tests/data/qa_corpus/README.md``: every shrunk counterexample committed
after a bug fix is re-run here forever.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.qa import draw_case, load_case, replay, save_failure
from repro.qa.corpus import corpus_entries
from repro.qa.oracles import OracleFailure

COMMITTED_CORPUS = Path(__file__).resolve().parent.parent / "data" / "qa_corpus"


class TestSaveLoad:
    def test_round_trip_preserves_case(self, tmp_path):
        case = draw_case(9, 4)
        failure = OracleFailure("roundtrip", case, "demo")
        path = save_failure(case, failure, tmp_path)
        assert path.name.startswith("roundtrip-")
        loaded, meta = load_case(path)
        assert np.array_equal(loaded.data, case.data)
        assert loaded.params == case.params
        assert loaded.family == case.family
        assert loaded.expect_error is None
        assert meta["oracle"] == "roundtrip" and meta["detail"] == "demo"
        assert "repro fuzz" in meta["repro"]

    def test_expect_error_survives_round_trip(self, tmp_path):
        from repro.core.errors import InvalidInputError

        case = draw_case(0, 0, family="nonfinite")
        path = save_failure(case, OracleFailure("roundtrip", case, "d"), tmp_path)
        loaded, _ = load_case(path)
        assert loaded.expect_error is InvalidInputError

    def test_filename_digest_tracks_content(self, tmp_path):
        case = draw_case(9, 4)
        f = OracleFailure("roundtrip", case, "demo")
        p1 = save_failure(case, f, tmp_path)
        p2 = save_failure(case.with_data(case.data[:16].copy()), f, tmp_path)
        assert p1.name != p2.name  # different bytes, different entry

    def test_corpus_entries_listing(self, tmp_path):
        assert corpus_entries(tmp_path / "absent") == []
        case = draw_case(1, 1)
        save_failure(case, OracleFailure("chunked", case, "d"), tmp_path)
        (tmp_path / "notes.txt").write_text("ignored")
        assert [p.suffix for p in corpus_entries(tmp_path)] == [".npz"]

    def test_replay_green_case_returns_none(self, tmp_path):
        # a healthy case saved as if it had failed: replay runs the real
        # oracle, which passes on the fixed codec
        case = draw_case(2, 0)
        path = save_failure(case, OracleFailure("roundtrip", case, "d"), tmp_path)
        assert replay(path) is None


class TestCommittedCorpus:
    def test_corpus_directory_is_seeded(self):
        assert corpus_entries(COMMITTED_CORPUS), (
            "tests/data/qa_corpus must hold at least one entry"
        )

    @pytest.mark.parametrize(
        "entry",
        corpus_entries(COMMITTED_CORPUS),
        ids=lambda p: p.name,
    )
    def test_every_committed_entry_replays_green(self, entry):
        failure = replay(entry)
        assert failure is None, f"{entry.name} regressed: {failure}"
