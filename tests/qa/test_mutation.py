"""The acceptance test for the whole harness: a deliberately injected
codec bug must be caught, shrunk, persisted and replayable.

The mutation drops the top magnitude bit-plane in the decode path (for
blocks with fl >= 3) -- a realistic silent-corruption defect: streams
still parse, CRCs still match (the bytes are intact; the *decoder* is
wrong), only the reconstructed values drift out of bound.
"""

import numpy as np
import pytest

from repro.core import bitpack
from repro.qa import FuzzConfig, load_case, replay, run_fuzz
from repro.qa.corpus import corpus_entries

_ORIG_UNPACK = bitpack.unpack_planes


def _drop_top_plane(payload, fl, length, dtype=np.int64):
    mag = _ORIG_UNPACK(payload, fl, length, dtype)
    if fl >= 3:
        mag = (mag & ~(np.int64(1) << np.int64(fl - 1))).astype(dtype)
    return mag


@pytest.fixture
def mutated_codec(monkeypatch):
    monkeypatch.setattr(bitpack, "unpack_planes", _drop_top_plane)
    yield
    # monkeypatch restores on teardown


class TestMutationIsCaught:
    def test_fuzz_catches_shrinks_and_persists(self, mutated_codec, tmp_path):
        corpus = tmp_path / "corpus"
        report = run_fuzz(
            FuzzConfig(
                seed=0,
                iters=5,
                paths=("roundtrip",),
                corpus_dir=str(corpus),
                max_failures=1,
            )
        )
        assert not report.ok
        assert report.stopped_early == "max_failures (1) reached"
        [failure] = report.failures
        assert failure.oracle == "roundtrip"
        assert "error bound violated" in failure.detail

        # shrunk to a replayable counterexample far smaller than the draw
        assert failure.shrunk_size < failure.original_size
        assert failure.shrunk_size <= 64

        # persisted entry is self-contained and still failing
        [entry] = corpus_entries(corpus)
        assert str(entry) == failure.corpus_path
        case, meta = load_case(entry)
        assert meta["oracle"] == "roundtrip"
        assert case.data.size == failure.shrunk_size
        refail = replay(entry)
        assert refail is not None and refail.oracle == "roundtrip"

    def test_replay_passes_once_codec_is_fixed(self, tmp_path):
        # same campaign against the *unmutated* codec: green; and an entry
        # recorded under mutation replays green after the "fix"
        corpus = tmp_path / "corpus"
        import unittest.mock as mock

        with mock.patch.object(bitpack, "unpack_planes", _drop_top_plane):
            report = run_fuzz(
                FuzzConfig(seed=0, iters=5, paths=("roundtrip",),
                           corpus_dir=str(corpus), max_failures=1)
            )
        assert not report.ok
        [entry] = corpus_entries(corpus)
        assert replay(entry) is None  # fixed codec: permanent regression test

    def test_campaign_is_green_without_mutation(self):
        report = run_fuzz(FuzzConfig(seed=0, iters=5, paths=("roundtrip",)))
        assert report.ok, report.summary()
