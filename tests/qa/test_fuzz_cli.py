"""The ``repro fuzz`` entry point: campaign and replay modes, exit codes."""

from pathlib import Path

from repro.cli import main

CORPUS = Path(__file__).resolve().parent.parent / "data" / "qa_corpus"


class TestCampaignMode:
    def test_green_campaign_exits_zero(self, capsys):
        rc = main(["fuzz", "--seed", "0", "--iters", "8", "--paths", "roundtrip"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "FUZZ PASSED" in out
        assert "iterations=8/8" in out

    def test_paths_flag_restricts_oracles(self, capsys):
        main(["fuzz", "--seed", "0", "--iters", "4",
              "--paths", "roundtrip", "--paths", "random_access"])
        out = capsys.readouterr().out
        assert "chunked" not in out.split("oracles:")[1].splitlines()[0]

    def test_backends_path_runs_green(self, capsys):
        rc = main(["fuzz", "--seed", "0", "--iters", "6", "--paths", "backends"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "FUZZ PASSED" in out

    def test_time_budget_flag(self, capsys):
        rc = main(["fuzz", "--seed", "0", "--iters", "100000",
                   "--time-budget", "1"])
        assert rc == 0
        assert "stopped early" in capsys.readouterr().out


class TestReplayMode:
    def test_replay_committed_corpus_green(self, capsys):
        rc = main(["fuzz", "--replay", str(CORPUS)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "PASS" in out and "0 failing entries" in out

    def test_replay_single_file(self, capsys):
        entry = next(CORPUS.glob("*.npz"))
        rc = main(["fuzz", "--replay", str(entry)])
        assert rc == 0
        assert f"PASS {entry}" in capsys.readouterr().out

    def test_replay_empty_or_missing_dir(self, tmp_path, capsys):
        rc = main(["fuzz", "--replay", str(tmp_path / "nothing-here")])
        assert rc == 0
        assert "no corpus entries" in capsys.readouterr().out
