"""The campaign loop: deterministic reports, early-stop bookkeeping and
the CI smoke campaign (marked ``qa``)."""

import pytest

from repro.qa import FuzzConfig, run_fuzz
from repro.qa.harness import smoke_campaign


class TestConfig:
    def test_unknown_path_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown path"):
            FuzzConfig(paths=("roundtrip", "nope"))

    def test_defaults_cover_all_oracles(self):
        assert set(FuzzConfig().paths) == {
            "roundtrip", "chunked", "random_access", "corruption", "store",
            "backends", "serve_shm", "codecs",
        }


class TestCampaign:
    def test_small_campaign_green_and_counted(self):
        report = run_fuzz(FuzzConfig(seed=0, iters=15))  # one family cycle
        assert report.ok, report.summary()
        assert report.iterations == 15
        assert sum(report.by_family.values()) == 15
        assert len(report.by_family) == 15  # every family seen once
        assert report.checks == sum(report.by_oracle.values())
        # nonfinite keeps only roundtrip; ndim2/ndim3 additionally drop
        # random_access, store and backends
        assert report.by_oracle["roundtrip"] == 15
        assert report.by_oracle["chunked"] == 14
        assert report.by_oracle["random_access"] == 12
        assert report.by_oracle["corruption"] == 14
        assert report.by_oracle["backends"] == 12

    def test_reports_are_reproducible(self):
        cfg = FuzzConfig(seed=3, iters=10, paths=("roundtrip",))
        a, b = run_fuzz(cfg), run_fuzz(cfg)
        assert a.by_family == b.by_family
        assert a.checks == b.checks
        assert a.ok and b.ok

    def test_time_budget_stops_early(self):
        report = run_fuzz(FuzzConfig(seed=0, iters=10_000, time_budget=1.0))
        assert report.iterations < 10_000
        assert "time budget" in (report.stopped_early or "")
        assert report.ok

    def test_summary_verdict_line(self):
        report = run_fuzz(FuzzConfig(seed=0, iters=3, paths=("roundtrip",)))
        assert report.summary().endswith("FUZZ PASSED")

    def test_worker_pool_path(self):
        report = run_fuzz(
            FuzzConfig(seed=1, iters=4, paths=("chunked",), workers=2)
        )
        assert report.ok, report.summary()


@pytest.mark.qa
class TestSmoke:
    def test_smoke_campaign_all_paths_green(self):
        report = smoke_campaign()
        assert report.ok, report.summary()
        assert report.iterations == 30
