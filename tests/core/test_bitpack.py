"""Unit tests for the bit-plane packing primitives."""

import numpy as np

from tests.helpers import seeded_rng
import pytest

from repro.core import bitpack


class TestBitLength:
    def test_known_values(self):
        mags = np.array([0, 1, 2, 3, 4, 7, 8, 255, 256, 2**31 - 1], dtype=np.int64)
        expected = np.array([0, 1, 2, 2, 3, 3, 4, 8, 9, 31])
        assert np.array_equal(bitpack.bit_length(mags), expected)

    def test_exact_powers_of_two(self):
        # log2-based implementations go wrong exactly here; frexp does not.
        powers = np.int64(1) << np.arange(31, dtype=np.int64)
        assert np.array_equal(bitpack.bit_length(powers), np.arange(1, 32))

    def test_powers_of_two_minus_one(self):
        vals = (np.int64(1) << np.arange(1, 32, dtype=np.int64)) - 1
        assert np.array_equal(bitpack.bit_length(vals), np.arange(1, 32))


class TestPackBits:
    def test_lsb_first_within_byte(self):
        bits = np.array([1, 0, 0, 0, 0, 0, 0, 1], dtype=np.uint8)
        assert bitpack.pack_bits(bits).tolist() == [0x81]

    def test_round_trip(self):
        rng = seeded_rng(0)
        bits = rng.integers(0, 2, size=(5, 64)).astype(np.uint8)
        packed = bitpack.pack_bits(bits)
        assert packed.shape == (5, 8)
        assert np.array_equal(bitpack.unpack_bits(packed, 64), bits)

    def test_unpack_truncates_to_nbits(self):
        packed = np.array([0xFF], dtype=np.uint8)
        assert bitpack.unpack_bits(packed, 5).tolist() == [1, 1, 1, 1, 1]


class TestSigns:
    def test_negative_marks_bit(self):
        deltas = np.array([[1, -1, 0, -5, 2, 2, -2, 0]], dtype=np.int64)
        sign_bytes = bitpack.pack_signs(deltas)
        assert sign_bytes.shape == (1, 1)
        assert sign_bytes[0, 0] == 0b01001010

    def test_round_trip(self):
        rng = seeded_rng(1)
        deltas = rng.integers(-100, 100, size=(9, 32)).astype(np.int64)
        neg = bitpack.unpack_signs(bitpack.pack_signs(deltas), 32)
        assert np.array_equal(neg, deltas < 0)

    def test_apply_signs(self):
        mag = np.array([[3, 0, 7]], dtype=np.int64)
        neg = np.array([[True, False, True]])
        assert np.array_equal(bitpack.apply_signs(mag, neg), [[-3, 0, -7]])


class TestPlanes:
    def test_zero_fl_is_empty(self):
        mag = np.zeros((4, 32), dtype=np.int64)
        assert bitpack.pack_planes(mag, 0).shape == (4, 0)
        assert np.array_equal(bitpack.unpack_planes(np.empty((4, 0), np.uint8), 0, 32), mag)

    def test_single_plane_paper_example(self):
        # Fig. 7: magnitudes [_,1,1,0,1,1,0,1] with fl=1 occupy 1 byte total.
        mag = np.array([[0, 1, 1, 0, 1, 1, 0, 1]], dtype=np.int64)
        payload = bitpack.pack_planes(mag, 1)
        assert payload.shape == (1, 1)
        assert np.array_equal(bitpack.unpack_planes(payload, 1, 8), mag)

    @pytest.mark.parametrize("fl", [1, 2, 5, 8, 16, 31])
    def test_round_trip_all_widths(self, fl):
        rng = seeded_rng(fl)
        mag = rng.integers(0, 2**fl, size=(7, 32)).astype(np.int64)
        payload = bitpack.pack_planes(mag, fl)
        assert payload.shape == (7, fl * 4)
        assert np.array_equal(bitpack.unpack_planes(payload, fl, 32), mag)

    def test_payload_size_matches_formula(self):
        # fl bit-planes of an L-element block occupy fl * L / 8 bytes.
        for L in (8, 32, 64):
            mag = np.ones((3, L), dtype=np.int64)
            assert bitpack.pack_planes(mag, 4).shape == (3, 4 * L // 8)

    def test_plane_order_lsb_first(self):
        mag = np.array([[2, 0, 0, 0, 0, 0, 0, 0]], dtype=np.int64)  # binary 10
        payload = bitpack.pack_planes(mag, 2)
        assert payload[0, 0] == 0  # LSB plane: all zero
        assert payload[0, 1] == 1  # second plane: element 0 set
