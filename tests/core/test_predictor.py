"""Unit tests for the 1-D/2-D/3-D blockwise difference predictors."""

import numpy as np

from tests.helpers import seeded_rng
import pytest

from repro.core import predictor


class TestBlockize1D:
    def test_exact_multiple(self):
        q = np.arange(64, dtype=np.int64)
        blocks = predictor.blockize_1d(q, 32)
        assert blocks.shape == (2, 32)
        assert np.array_equal(blocks.reshape(-1), q)

    def test_tail_padded_with_last_value(self):
        q = np.array([5, 6, 7], dtype=np.int64)
        blocks = predictor.blockize_1d(q, 8)
        assert blocks.shape == (1, 8)
        assert np.array_equal(blocks[0], [5, 6, 7, 7, 7, 7, 7, 7])

    def test_padding_makes_trailing_deltas_zero(self):
        q = np.array([5, 6, 7], dtype=np.int64)
        d = predictor.diff_1d(predictor.blockize_1d(q, 8))
        assert np.array_equal(d[0], [5, 1, 1, 0, 0, 0, 0, 0])


class TestDiff1D:
    def test_first_element_diffs_against_zero(self):
        blocks = np.array([[10, 12, 11]], dtype=np.int64)
        d = predictor.diff_1d(blocks)
        assert np.array_equal(d, [[10, 2, -1]])

    def test_blocks_are_independent(self):
        blocks = np.array([[1, 2], [100, 101]], dtype=np.int64)
        d = predictor.diff_1d(blocks)
        # second block's first delta must not reference the first block
        assert d[1, 0] == 100

    def test_round_trip(self):
        rng = seeded_rng(0)
        blocks = rng.integers(-1000, 1000, size=(17, 32)).astype(np.int64)
        assert np.array_equal(predictor.undiff_1d(predictor.diff_1d(blocks)), blocks)

    def test_smooth_block_yields_outlier_shape(self):
        # Fig. 6: a smooth block's deltas are tiny except the first.
        blocks = np.array([[1000, 1001, 1002, 1001, 1000, 999, 1000, 1001]], dtype=np.int64)
        d = predictor.diff_1d(blocks)
        assert abs(d[0, 0]) == 1000
        assert np.abs(d[0, 1:]).max() == 1


class TestLorenzo2D:
    def test_matches_explicit_stencil(self):
        rng = seeded_rng(3)
        tiles = rng.integers(-50, 50, size=(4, 8, 8)).astype(np.int64)
        d = predictor.lorenzo_diff_2d(tiles)
        padded = np.pad(tiles, ((0, 0), (1, 0), (1, 0)))
        expected = (
            tiles - padded[:, :-1, 1:] - padded[:, 1:, :-1] + padded[:, :-1, :-1]
        )
        assert np.array_equal(d, expected)

    def test_round_trip(self):
        rng = seeded_rng(4)
        tiles = rng.integers(-9, 9, size=(5, 8, 8)).astype(np.int64)
        assert np.array_equal(
            predictor.lorenzo_undiff_2d(predictor.lorenzo_diff_2d(tiles)), tiles
        )


class TestLorenzo3D:
    def test_matches_explicit_stencil(self):
        rng = seeded_rng(5)
        t = rng.integers(-50, 50, size=(3, 4, 4, 4)).astype(np.int64)
        d = predictor.lorenzo_diff_3d(t)
        p = np.pad(t, ((0, 0), (1, 0), (1, 0), (1, 0)))
        expected = (
            t
            - p[:, :-1, 1:, 1:] - p[:, 1:, :-1, 1:] - p[:, 1:, 1:, :-1]
            + p[:, :-1, :-1, 1:] + p[:, :-1, 1:, :-1] + p[:, 1:, :-1, :-1]
            - p[:, :-1, :-1, :-1]
        )
        assert np.array_equal(d, expected)

    def test_round_trip(self):
        rng = seeded_rng(6)
        t = rng.integers(-9, 9, size=(7, 4, 4, 4)).astype(np.int64)
        assert np.array_equal(
            predictor.lorenzo_undiff_3d(predictor.lorenzo_diff_3d(t)), t
        )


class TestUnifiedInterface:
    @pytest.mark.parametrize(
        "ndim,dims,block",
        [
            (1, (1000,), 32),
            (2, (40, 56), 64),
            (2, (41, 53), 64),  # needs edge padding
            (3, (12, 16, 8), 64),
            (3, (13, 15, 9), 64),  # needs edge padding
        ],
    )
    def test_forward_inverse_round_trip(self, ndim, dims, block):
        rng = seeded_rng(7)
        n = int(np.prod(dims))
        q = rng.integers(-500, 500, size=n).astype(np.int64)
        d = predictor.forward(q, dims, ndim, block)
        back = predictor.inverse(d, dims, ndim, block, n)
        assert np.array_equal(back, q)

    def test_non_perfect_tile_rejected(self):
        with pytest.raises(ValueError):
            predictor.forward(np.zeros(64, dtype=np.int64), (8, 8), 2, 32)

    def test_bad_ndim_rejected(self):
        with pytest.raises(ValueError):
            predictor.forward(np.zeros(64, dtype=np.int64), (64,), 4, 16)

    def test_2d_smoothness_shrinks_deltas(self):
        # A bilinear ramp is exactly predicted by 2-D Lorenzo (zero residual
        # away from tile borders) but not by raw values.
        x = np.arange(16)
        field = (x[:, None] * 3 + x[None, :] * 2).astype(np.int64)
        d = predictor.forward(field.reshape(-1), (16, 16), 2, 64)
        interior = d.reshape(-1, 8, 8)[:, 1:, 1:]
        assert np.abs(interior).max() == 0
