"""End-to-end tests of compress()/decompress() and the CuSZp2 class."""

import numpy as np
import pytest

from repro import CuSZp2, ErrorBound, compress, compression_ratio, decompress
from repro.core.compressor import CompressorConfig
from repro.core.errors import InvalidInputError

from tests.helpers import assert_error_bounded, value_range


class TestRoundTrip:
    @pytest.mark.parametrize("mode", ["plain", "outlier"])
    @pytest.mark.parametrize("rel", [1e-2, 1e-3, 1e-4])
    def test_smooth_f32(self, smooth_f32, mode, rel):
        buf = compress(smooth_f32, rel=rel, mode=mode)
        recon = decompress(buf)
        assert recon.dtype == np.float32
        assert_error_bounded(smooth_f32, recon, rel * value_range(smooth_f32))

    @pytest.mark.parametrize("mode", ["plain", "outlier"])
    def test_smooth_f64(self, smooth_f64, mode):
        buf = compress(smooth_f64, rel=1e-4, mode=mode)
        recon = decompress(buf)
        assert recon.dtype == np.float64
        assert_error_bounded(smooth_f64, recon, 1e-4 * value_range(smooth_f64))

    def test_rough_data(self, rough_f32):
        buf = compress(rough_f32, rel=1e-3)
        assert_error_bounded(rough_f32, decompress(buf), 1e-3 * value_range(rough_f32))

    def test_sparse_data_and_zero_block_ratio(self, sparse_f32):
        buf = compress(sparse_f32, rel=1e-2)
        cr = compression_ratio(sparse_f32, buf)
        # Zero blocks cost one byte each; with 200 touched blocks out of
        # ~1563 the ratio still lands far above any dense encoding.
        assert cr > 30
        assert_error_bounded(sparse_f32, decompress(buf), 1e-2 * value_range(sparse_f32))

    def test_absolute_bound(self, smooth_f32):
        buf = compress(smooth_f32, abs=0.5)
        assert_error_bounded(smooth_f32, decompress(buf), 0.5)

    @pytest.mark.parametrize("n", [1, 7, 31, 32, 33, 63, 64, 65, 1000])
    def test_awkward_lengths(self, rng, n):
        data = rng.normal(size=n).astype(np.float32)
        buf = compress(data, rel=1e-3)
        recon = decompress(buf)
        assert recon.shape == (n,)
        assert_error_bounded(data, recon, 1e-3 * max(value_range(data), 1e-30))

    def test_constant_data(self):
        data = np.full(1000, 3.25, dtype=np.float32)
        buf = compress(data, rel=1e-3)
        recon = decompress(buf)
        assert np.abs(recon - data).max() <= 1e-3 * 3.25 * 1.000001

    def test_constant_zero_data(self):
        data = np.zeros(1000, dtype=np.float32)
        buf = compress(data, rel=1e-3)
        assert np.array_equal(decompress(buf), data)
        assert compression_ratio(data, buf) > 30

    def test_shape_restored_2d_3d(self, rng):
        for shape in [(20, 30), (8, 9, 10)]:
            data = rng.normal(size=shape).astype(np.float32)
            recon = decompress(compress(data, rel=1e-3))
            assert recon.shape == shape

    def test_4d_input_flattened(self, rng):
        data = rng.normal(size=(2, 3, 4, 5)).astype(np.float32)
        recon = decompress(compress(data, rel=1e-3))
        assert recon.shape == (120,)

    def test_negative_only_data(self, rng):
        data = -np.abs(rng.normal(size=5000)).astype(np.float32) - 1.0
        buf = compress(data, rel=1e-3)
        assert_error_bounded(data, decompress(buf), 1e-3 * value_range(data))

    def test_huge_dynamic_range(self):
        data = np.array([1e-10, 1e-5, 1.0, 1e5], dtype=np.float64)
        buf = compress(data, rel=1e-3)
        assert_error_bounded(data, decompress(buf), 1e-3 * value_range(data))


class TestModes:
    def test_outlier_never_larger_than_plain(self, smooth_f32, rough_f32, sparse_f32):
        for data in (smooth_f32, rough_f32, sparse_f32):
            s_p = compress(data, rel=1e-3, mode="plain")
            s_o = compress(data, rel=1e-3, mode="outlier")
            assert s_o.size <= s_p.size

    def test_outlier_wins_clearly_on_smooth_data(self, smooth_f32):
        # Paper Fig. 15 / Table III: ~2x on globally smooth data (HACC, CESM).
        s_p = compress(smooth_f32, rel=1e-3, mode="plain")
        s_o = compress(smooth_f32, rel=1e-3, mode="outlier")
        assert s_p.size / s_o.size > 1.5

    def test_modes_reconstruct_identically(self, smooth_f32):
        # Same lossy step -> identical reconstruction (paper Section V-D).
        r_p = decompress(compress(smooth_f32, rel=1e-3, mode="plain"))
        r_o = decompress(compress(smooth_f32, rel=1e-3, mode="outlier"))
        assert np.array_equal(r_p, r_o)

    def test_near_tie_on_rough_data(self, rough_f32):
        # No smoothness -> the two modes are within a few percent (paper:
        # "Plain and Outlier modes achieve almost identical compression
        # ratios" on HACC VX / QMCPack).
        s_p = compress(rough_f32, rel=1e-3, mode="plain")
        s_o = compress(rough_f32, rel=1e-3, mode="outlier")
        assert s_p.size / s_o.size < 1.35


class TestMultiDimensional:
    @pytest.mark.parametrize("ndim,block", [(2, 64), (3, 64)])
    def test_lorenzo_round_trip(self, rng, ndim, block):
        shape = (24, 40) if ndim == 2 else (12, 16, 20)
        data = rng.normal(size=shape)
        data = np.cumsum(data, axis=0).astype(np.float32)
        buf = compress(data, rel=1e-3, predictor_ndim=ndim, block=block)
        recon = decompress(buf)
        assert recon.shape == shape
        assert_error_bounded(data, recon, 1e-3 * value_range(data))

    def test_lorenzo_requires_matching_ndim(self, rng):
        with pytest.raises(InvalidInputError):
            compress(rng.normal(size=100).astype(np.float32), rel=1e-3, predictor_ndim=2, block=64)


class TestChunking:
    def test_chunked_equals_unchunked(self, rng):
        data = rng.normal(size=10_000).astype(np.float32)
        big = CuSZp2(ErrorBound.relative(1e-3), chunk_blocks=1 << 20).compress(data)
        small = CuSZp2(ErrorBound.relative(1e-3), chunk_blocks=7).compress(data)
        assert np.array_equal(big, small)

    def test_chunked_decompress(self, rng):
        data = rng.normal(size=10_000).astype(np.float32)
        buf = compress(data, rel=1e-3)
        a = decompress(buf, chunk_blocks=11)
        b = decompress(buf)
        assert np.array_equal(a, b)

    def test_nonpositive_chunk_blocks_rejected(self, rng):
        data = rng.normal(size=1000).astype(np.float32)
        buf = compress(data, rel=1e-3)
        for bad in (0, -3, 2.5, "8"):
            with pytest.raises(InvalidInputError, match="chunk_blocks"):
                decompress(buf, chunk_blocks=bad)

    def test_instance_chunk_blocks_reaches_decompress(self, rng, monkeypatch):
        from repro.core import compressor as compressor_mod

        data = rng.normal(size=1000).astype(np.float32)
        codec = CuSZp2(ErrorBound.relative(1e-3), chunk_blocks=17)
        buf = codec.compress(data)
        seen = {}
        real = compressor_mod.decompress

        def spy(b, **kw):
            seen.update(kw)
            return real(b, **kw)

        monkeypatch.setattr(compressor_mod, "decompress", spy)
        out = codec.decompress(buf)
        assert seen["chunk_blocks"] == 17
        assert np.array_equal(out, real(buf))
        # an explicit override still wins over the instance setting
        seen.clear()
        codec.decompress(buf, chunk_blocks=5)
        assert seen["chunk_blocks"] == 5


class TestValidation:
    def test_both_bounds_rejected(self, smooth_f32):
        with pytest.raises(InvalidInputError):
            compress(smooth_f32, rel=1e-3, abs=0.1)

    def test_no_bound_rejected(self, smooth_f32):
        with pytest.raises(InvalidInputError):
            compress(smooth_f32)

    def test_bad_mode_rejected(self):
        with pytest.raises(InvalidInputError):
            CompressorConfig(mode="fancy")

    def test_bad_block_rejected(self):
        with pytest.raises(InvalidInputError):
            CompressorConfig(block=12)

    def test_bad_predictor_tile_rejected(self):
        with pytest.raises(InvalidInputError):
            CompressorConfig(predictor_ndim=3, block=32)

    def test_float_error_bound_shorthand(self, smooth_f32):
        # CuSZp2(1e-3) means REL 1e-3, matching the paper's CLI.
        c = CuSZp2(1e-3)
        assert c.error_bound.kind == "rel"
        buf = c.compress(smooth_f32)
        assert_error_bounded(smooth_f32, decompress(buf), 1e-3 * value_range(smooth_f32))


class TestStreamProperties:
    def test_offset_section_is_one_byte_per_block(self, smooth_f32):
        from repro.core import stream as stream_mod

        buf = compress(smooth_f32, rel=1e-3)
        header, offsets, _ = stream_mod.split(buf)
        assert offsets.size == header.nblocks == -(-smooth_f32.size // 32)

    def test_compression_is_deterministic(self, smooth_f32):
        a = compress(smooth_f32, rel=1e-3)
        b = compress(smooth_f32, rel=1e-3)
        assert np.array_equal(a, b)

    def test_higher_error_bound_compresses_more(self, smooth_f32):
        sizes = [compress(smooth_f32, rel=r).size for r in (1e-4, 1e-3, 1e-2)]
        assert sizes[0] > sizes[1] > sizes[2]
