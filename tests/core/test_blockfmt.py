"""Unit tests for the offset-byte format (Fig. 8) and size arithmetic."""

import numpy as np

from tests.helpers import seeded_rng
import pytest

from repro.core import blockfmt


class TestOffsetByte:
    def test_plain_block_stores_fl_only(self):
        off = blockfmt.encode_offset_bytes(
            np.array([0]), np.array([1]), np.array([13])
        )
        assert off[0] == 13  # high bits clear

    def test_outlier_mode_sets_top_bit(self):
        off = blockfmt.encode_offset_bytes(
            np.array([1]), np.array([1]), np.array([0])
        )
        assert off[0] & 0x80

    @pytest.mark.parametrize("nbytes,bits", [(1, 0b00), (2, 0b01), (3, 0b10), (4, 0b11)])
    def test_outlier_size_encoding(self, nbytes, bits):
        # Fig. 8: "00, 01, 10, or 11 denote outlier sizes of 1, 2, 3, or 4 bytes"
        off = blockfmt.encode_offset_bytes(
            np.array([1]), np.array([nbytes]), np.array([7])
        )
        assert (off[0] >> 5) & 0x3 == bits
        mode, onb, fl = blockfmt.decode_offset_bytes(off)
        assert mode[0] == 1 and onb[0] == nbytes and fl[0] == 7

    def test_round_trip_all_fields(self):
        rng = seeded_rng(0)
        mode = rng.integers(0, 2, size=256).astype(np.uint8)
        onb = rng.integers(1, 5, size=256)
        fl = rng.integers(0, 32, size=256)
        off = blockfmt.encode_offset_bytes(mode, onb, fl)
        m2, o2, f2 = blockfmt.decode_offset_bytes(off)
        assert np.array_equal(m2, mode)
        assert np.array_equal(f2, fl)
        assert np.array_equal(o2[mode == 1], onb[mode == 1])
        assert np.all(o2[mode == 0] == 0)

    def test_fl_over_31_rejected(self):
        with pytest.raises(ValueError):
            blockfmt.encode_offset_bytes(np.array([0]), np.array([1]), np.array([32]))


class TestPayloadSizes:
    def test_zero_block_costs_nothing(self):
        # Paper Section V-C: one byte total for a zero block (the offset byte).
        sizes = blockfmt.payload_sizes(
            np.array([0]), np.array([0]), np.array([0]), block=32
        )
        assert sizes[0] == 0

    def test_plain_formula(self):
        # L=32, fl=4 -> 4 sign bytes + 16 plane bytes.
        sizes = blockfmt.payload_sizes(np.array([0]), np.array([0]), np.array([4]), 32)
        assert sizes[0] == 4 + 16

    def test_paper_running_example(self):
        # Fig. 5: block size 8, plain fl=4 -> 5 payload bytes.
        sizes = blockfmt.payload_sizes(np.array([0]), np.array([0]), np.array([4]), 8)
        assert sizes[0] == 5

    def test_paper_outlier_example(self):
        # Fig. 7: block size 8, outlier in 1 byte, fl_rest=1 -> 3 bytes total
        # (1 sign byte + 1 outlier byte + 1 plane byte).
        sizes = blockfmt.payload_sizes(np.array([1]), np.array([1]), np.array([1]), 8)
        assert sizes[0] == 3

    def test_outlier_zero_fl_keeps_signs_and_outlier(self):
        sizes = blockfmt.payload_sizes(np.array([1]), np.array([2]), np.array([0]), 32)
        assert sizes[0] == 4 + 2


class TestOutlierByteCount:
    def test_boundaries(self):
        mags = np.array([0, 1, 0xFF, 0x100, 0xFFFF, 0x10000, 0xFFFFFF, 0x1000000, 2**31 - 1])
        expected = np.array([1, 1, 1, 2, 2, 3, 3, 4, 4])
        assert np.array_equal(blockfmt.outlier_byte_count(mags), expected)
