"""Degenerate-shape and limit-value tests for the FLE/bitpack layer.

These inputs live at the boundaries the vectorized implementations are
easiest to get wrong: empty group dimensions (``reshape(-1)`` cannot be
inferred on size-0 arrays — a real bug this file pinned down), magnitudes
at the 31-bit cap where one more bit would overflow the sign+31-bit budget
of a quantization code, every block preferring outlier mode at once, and
field lengths that leave a single element in the trailing block.
"""

import numpy as np
import pytest

from repro.core import bitpack, blockfmt, fle
from repro.core.compressor import compress, decompress
from repro.core.errors import QuantizationOverflowError
from tests.helpers import assert_error_bounded, seeded_rng


class TestZeroLength:
    """Empty group dimension: zero blocks in, zero bytes out, no crash."""

    def test_pack_bits_empty_group(self):
        assert bitpack.pack_bits(np.zeros((0, 32), np.uint8)).shape == (0, 4)
        assert bitpack.unpack_bits(np.zeros((0, 4), np.uint8), 32).shape == (0, 32)

    def test_pack_signs_empty_group(self):
        signs = bitpack.pack_signs(np.zeros((0, 32), np.int64))
        assert signs.shape == (0, 4)
        assert bitpack.unpack_signs(signs, 32).shape == (0, 32)

    def test_pack_planes_empty_group(self):
        assert bitpack.pack_planes(np.zeros((0, 32), np.int64), 5).shape == (0, 20)
        out = bitpack.unpack_planes(np.zeros((0, 20), np.uint8), 5, 32)
        assert out.shape == (0, 32) and out.dtype == np.int64

    @pytest.mark.parametrize("use_outlier", [False, True])
    def test_encode_zero_blocks(self, use_outlier):
        d = np.zeros((0, 32), dtype=np.int64)
        offsets, payload = fle.encode_blocks(d, use_outlier)
        assert offsets.size == 0 and payload.size == 0
        assert fle.decode_blocks(offsets, payload, 32).shape == (0, 32)
        assert fle.block_payload_sizes(offsets, 32).size == 0


class TestAllOutlierBlocks:
    """Every block selecting outlier mode simultaneously (no plain group)."""

    def test_round_trip_and_mode(self):
        d = np.zeros((6, 8), dtype=np.int64)
        d[:, 0] = 4000  # large first element, tiny rest: outlier clearly wins
        d[:, 1] = 1
        offsets, payload = fle.encode_blocks(d, True)
        mode, _, _ = blockfmt.decode_offset_bytes(offsets)
        assert np.all(mode == blockfmt.MODE_OUTLIER)
        assert np.array_equal(fle.decode_blocks(offsets, payload, 8), d)

    def test_mixed_outlier_widths_all_outlier(self):
        # distinct outlier byte counts per block exercise every (fl, onb) group
        d = np.zeros((4, 16), dtype=np.int64)
        d[:, 0] = [200, 70_000, 20_000_000, 2**31 - 1]
        d[:, 1] = 1
        offsets, payload = fle.encode_blocks(d, True)
        mode, onb, _ = blockfmt.decode_offset_bytes(offsets)
        assert np.all(mode == blockfmt.MODE_OUTLIER)
        assert sorted(onb.tolist()) == [1, 3, 4, 4]
        assert np.array_equal(fle.decode_blocks(offsets, payload, 16), d)


class TestMaxBitWidth:
    """Magnitudes at the 2**31 - 1 cap: fl = 31 planes + sign = 32 bits."""

    def test_fl31_round_trip_plain(self):
        d = np.full((2, 8), 2**31 - 1, dtype=np.int64)
        d[1] *= -1
        offsets, payload = fle.encode_blocks(d, False)
        _, _, flv = blockfmt.decode_offset_bytes(offsets)
        assert flv.tolist() == [31, 31]
        # 1 sign byte + 31 plane bytes per 8-element block: full 32 bits/value
        assert payload.size == 2 * 32
        assert np.array_equal(fle.decode_blocks(offsets, payload, 8), d)

    def test_fl31_round_trip_outlier(self):
        d = np.zeros((1, 8), dtype=np.int64)
        d[0, 0] = -(2**31 - 1)  # max-width outlier, zero residual planes
        offsets, payload = fle.encode_blocks(d, True)
        mode, onb, flv = blockfmt.decode_offset_bytes(offsets)
        assert mode[0] == blockfmt.MODE_OUTLIER and onb[0] == 4 and flv[0] == 0
        assert np.array_equal(fle.decode_blocks(offsets, payload, 8), d)

    def test_planes_saturated_values(self):
        mag = np.full((3, 8), 2**31 - 1, dtype=np.int64)
        payload = bitpack.pack_planes(mag, 31)
        assert np.all(payload == 0xFF)
        assert np.array_equal(bitpack.unpack_planes(payload, 31, 8), mag)

    @pytest.mark.parametrize("use_outlier", [False, True])
    def test_one_past_cap_raises(self, use_outlier):
        d = np.zeros((1, 8), dtype=np.int64)
        d[0, 3] = 2**31
        with pytest.raises(QuantizationOverflowError):
            fle.encode_blocks(d, use_outlier)

    def test_cap_with_outlier_also_at_cap(self):
        d = np.full((1, 8), 2**31 - 1, dtype=np.int64)
        assert np.array_equal(
            fle.decode_blocks(*fle.encode_blocks(d, True), 8), d
        )


class TestSingleElementTrailingBlocks:
    """Codec-level: field lengths leaving exactly one element in the last
    block (n % block == 1), including the degenerate one-element field."""

    @pytest.mark.parametrize("n", [1, 9, 33, 257])
    def test_round_trip_n_mod_block_is_one(self, n):
        x = np.cumsum(seeded_rng("trailing", n).normal(size=n)).astype(np.float32)
        stream = compress(x, rel=1e-3, block=8)
        recon = decompress(stream)
        assert recon.shape == x.shape and recon.dtype == x.dtype
        eb = 1e-3 * (float(x.max() - x.min()) if n > 1 else abs(float(x[0])) or 1.0)
        assert_error_bounded(x, recon, eb)

    def test_trailing_element_is_only_nonzero(self):
        # all padding plus one live value in the final partial block
        x = np.zeros(65, dtype=np.float32)
        x[-1] = 3.25
        recon = decompress(compress(x, abs=1e-4, block=32))
        assert_error_bounded(x, recon, 1e-4)
        assert np.all(np.abs(recon[:-1]) <= 1e-4 + 1e-7)

    def test_single_element_outlier_mode(self):
        x = np.array([123.456], dtype=np.float32)
        recon = decompress(compress(x, rel=1e-3, mode="outlier", block=8))
        assert recon.shape == (1,)
