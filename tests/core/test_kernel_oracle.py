"""Bit-for-bit oracle for the vectorized bit-plane kernels.

The payload-assembly hot path was rewritten from multiply-and-sum loops to
``np.packbits``/``np.unpackbits`` and an 8x8 bit-matrix transpose.  The
rewrite must be invisible in the stream: these tests pin the new kernels
against the original reference implementation (embedded verbatim below),
over handcrafted extremes and over every fuzz generator family.
"""

import numpy as np
import pytest

from repro.core import bitpack, compress, decompress, predictor
from repro.core.backends import available_backends, registered_backends
from repro.core.errors import QuantizationOverflowError
from repro.core.quantize import quantize
from repro.qa.generators import FAMILIES, draw_case

# ---------------------------------------------------------------------------
# Reference: the pre-rewrite kernels (multiply-and-sum / shift-and-mask),
# kept here as the ground truth the optimized kernels must reproduce.
# ---------------------------------------------------------------------------

_BIT_WEIGHTS = (np.uint8(1) << np.arange(8, dtype=np.uint8)).astype(np.uint8)


def _ref_pack_bits(bits):
    b = bits.reshape(bits.shape[:-1] + (bits.shape[-1] // 8, 8)).astype(np.uint8)
    return (b * _BIT_WEIGHTS).sum(axis=-1, dtype=np.uint16).astype(np.uint8)


def _ref_unpack_bits(packed, nbits):
    bits = (packed[..., :, None] >> np.arange(8, dtype=np.uint8)) & np.uint8(1)
    return bits.reshape(packed.shape[:-1] + (packed.shape[-1] * 8,))[..., :nbits]


def _ref_pack_planes(mag, fl):
    g, length = mag.shape
    if fl == 0:
        return np.empty((g, 0), dtype=np.uint8)
    planes = np.arange(fl, dtype=np.uint64)
    bits = (mag.astype(np.uint64)[:, None, :] >> planes[None, :, None]) & np.uint64(1)
    return _ref_pack_bits(bits.astype(np.uint8)).reshape(g, fl * length // 8)


def _ref_unpack_planes(payload, fl, length):
    g = payload.shape[0]
    if fl == 0:
        return np.zeros((g, length), dtype=np.int64)
    bits = _ref_unpack_bits(payload.reshape(g, fl, length // 8), length)
    weights = np.int64(1) << np.arange(fl, dtype=np.int64)
    return np.tensordot(bits.astype(np.int64), weights, axes=([1], [0]))


def _mag_blocks(data, eb_abs, block):
    """Magnitude blocks exactly as the encoder sees them."""
    q = quantize(data.reshape(-1), eb_abs, int32_terms=2)
    return np.abs(predictor.diff_1d(predictor.blockize_1d(q, block)))


# ---------------------------------------------------------------------------
# Handcrafted extremes
# ---------------------------------------------------------------------------


class TestPackBitsOracle:
    @pytest.mark.parametrize("shape", [(1, 8), (3, 64), (7, 8, 32), (5, 0)])
    def test_matches_reference(self, shape):
        rng = np.random.default_rng(42)
        bits = rng.integers(0, 2, size=shape).astype(np.uint8)
        np.testing.assert_array_equal(bitpack.pack_bits(bits), _ref_pack_bits(bits))

    @pytest.mark.parametrize("nbits", [8, 24, 64, 256])
    def test_unpack_matches_reference(self, nbits):
        rng = np.random.default_rng(43)
        packed = rng.integers(0, 256, size=(9, nbits // 8)).astype(np.uint8)
        np.testing.assert_array_equal(
            bitpack.unpack_bits(packed, nbits), _ref_unpack_bits(packed, nbits)
        )

    def test_bool_input_matches_uint8(self):
        rng = np.random.default_rng(44)
        bits = rng.integers(0, 2, size=(6, 128)).astype(np.uint8)
        np.testing.assert_array_equal(
            bitpack.pack_bits(bits.view(np.bool_)), _ref_pack_bits(bits)
        )


class TestPackPlanesOracle:
    @pytest.mark.parametrize("fl", list(range(32)))
    def test_random_magnitudes_every_fl(self, fl):
        rng = np.random.default_rng(fl)
        mag = rng.integers(0, 1 << fl, size=(11, 64)).astype(np.int64) if fl else np.zeros((11, 64), np.int64)
        payload = bitpack.pack_planes(mag, fl)
        np.testing.assert_array_equal(payload, _ref_pack_planes(mag, fl))
        np.testing.assert_array_equal(
            bitpack.unpack_planes(payload, fl, 64), _ref_unpack_planes(payload, fl, 64)
        )

    def test_fl31_cap(self):
        # magnitudes at the signed-int32 cap exercise the top plane
        mag = np.full((4, 32), (1 << 31) - 1, dtype=np.int64)
        mag[1] = 0
        mag[2, ::2] = 1 << 30
        payload = bitpack.pack_planes(mag, 31)
        np.testing.assert_array_equal(payload, _ref_pack_planes(mag, 31))
        np.testing.assert_array_equal(bitpack.unpack_planes(payload, 31, 32), mag)

    def test_zero_blocks_empty_payload(self):
        mag = np.zeros((5, 64), dtype=np.int64)
        assert bitpack.pack_planes(mag, 0).shape == (5, 0)
        np.testing.assert_array_equal(
            bitpack.unpack_planes(np.empty((5, 0), np.uint8), 0, 64),
            np.zeros((5, 64), np.int64),
        )

    def test_int32_input_and_output_dtypes(self):
        rng = np.random.default_rng(7)
        mag64 = rng.integers(0, 1 << 20, size=(13, 64)).astype(np.int64)
        mag32 = mag64.astype(np.int32)
        payload = bitpack.pack_planes(mag64, 20)
        np.testing.assert_array_equal(bitpack.pack_planes(mag32, 20), payload)
        ref = _ref_unpack_planes(payload, 20, 64)
        for dtype in (np.int32, np.int64):
            got = bitpack.unpack_planes(payload, 20, 64, dtype)
            assert got.dtype == dtype
            np.testing.assert_array_equal(got, ref.astype(dtype))

    def test_apply_signs_matches_where(self):
        rng = np.random.default_rng(8)
        mag = rng.integers(0, 1 << 10, size=(9, 64)).astype(np.int64)
        negative = rng.integers(0, 2, size=(9, 64)).astype(bool)
        expected = np.where(negative, -mag, mag)
        np.testing.assert_array_equal(bitpack.apply_signs(mag.copy(), negative), expected)


# ---------------------------------------------------------------------------
# Property sweep: every fuzz generator family through the real pipeline
# ---------------------------------------------------------------------------


class TestGeneratorFamilyOracle:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_planes_bit_identical_across_family(self, family):
        cases = 0
        attempted = 0
        for index in range(12):
            case = draw_case(seed=0, index=index, family=family)
            if case.expect_error is not None:
                continue
            attempted += 1
            block = case.params["block"]
            try:
                mag = _mag_blocks(
                    case.data.astype(np.float64, copy=False), case.resolved_eb(), block
                )
            except QuantizationOverflowError:
                continue
            if int(mag.max(initial=0)) > (1 << 31) - 1:
                continue  # would overflow the stream format; encoder rejects it
            fls = bitpack.bit_length(mag.max(axis=1))
            for f in np.unique(fls):
                f = int(f)
                group = mag[fls == f]
                payload = bitpack.pack_planes(group, f)
                np.testing.assert_array_equal(payload, _ref_pack_planes(group, f))
                np.testing.assert_array_equal(
                    bitpack.unpack_planes(payload, f, block),
                    _ref_unpack_planes(payload, f, block),
                )
                cases += 1
        if attempted == 0:
            pytest.skip(f"family {family} only draws expected-error cases")
        assert cases > 0, f"family {family} produced no comparable groups"

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_sign_packing_bit_identical_across_family(self, family):
        for index in range(6):
            case = draw_case(seed=1, index=index, family=family)
            if case.expect_error is not None:
                continue
            block = case.params["block"]
            try:
                q = quantize(
                    case.data.astype(np.float64, copy=False).reshape(-1),
                    case.resolved_eb(),
                    int32_terms=2,
                )
            except QuantizationOverflowError:
                continue
            deltas = predictor.diff_1d(predictor.blockize_1d(q, block))
            signs = bitpack.pack_signs(deltas)
            np.testing.assert_array_equal(
                signs, _ref_pack_bits((deltas < 0).astype(np.uint8))
            )
            np.testing.assert_array_equal(
                bitpack.unpack_signs(signs, block), deltas < 0
            )


# ---------------------------------------------------------------------------
# Kernel backends: every registered backend must be stream-invisible
# ---------------------------------------------------------------------------


def _backend_or_skip(name: str) -> str:
    """Skip (with the reason on the report) when the backend's runtime is
    missing on this host -- ``numba`` on a CPU-only CI image."""
    if name not in available_backends():
        pytest.skip(f"kernel backend {name!r} unavailable: numba is not installed")
    return name


def _assert_stream_identical(data, name, **kwargs):
    ref = compress(data, kernel_backend="numpy", **kwargs)
    got = compress(data, kernel_backend=name, **kwargs)
    assert got.tobytes() == ref.tobytes(), (
        f"backend {name!r} stream differs from numpy "
        f"(sizes {got.size} vs {ref.size})"
    )
    assert (
        decompress(ref, kernel_backend=name).tobytes()
        == decompress(ref, kernel_backend="numpy").tobytes()
    ), f"backend {name!r} decode differs from numpy"
    return ref


@pytest.mark.parametrize("backend", registered_backends())
class TestBackendStreamOracle:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_generator_families_bit_identical(self, backend, family):
        _backend_or_skip(backend)
        checked = 0
        for index in range(4):
            case = draw_case(seed=3, index=index, family=family)
            if case.expect_error is not None or case.params["predictor_ndim"] != 1:
                continue
            # bound the pure-Python fused kernels' cost; block and group
            # structure repeats well before this
            data = case.data.reshape(-1)[:4096]
            _assert_stream_identical(data, backend, **case.codec_kwargs)
            checked += 1
        if checked == 0:
            pytest.skip(f"family {family} draws no applicable 1-D cases")

    @pytest.mark.parametrize("fl", list(range(32)))
    def test_every_bit_plane_count(self, backend, fl):
        _backend_or_skip(backend)
        # quant values alternate 0 and (2**fl - 1): every block's deltas
        # have bit length exactly fl, and nothing overflows
        m = (1 << fl) - 1
        q = np.tile([0, m], 40).astype(np.float64)
        data = 2.0 * q  # abs bound 1.0 quantizes x -> round(x / 2)
        for mode in ("plain", "outlier"):
            _assert_stream_identical(data, backend, abs=1.0, mode=mode)

    def test_denormals(self, backend):
        _backend_or_skip(backend)
        for dtype in (np.float32, np.float64):
            tiny = float(np.finfo(dtype).tiny)
            rng = np.random.default_rng(9)
            data = (rng.normal(size=640) * tiny).astype(dtype)
            data[::7] = np.array(tiny, dtype=dtype) / 4  # true denormals
            _assert_stream_identical(data, backend, abs=tiny / 16)
            _assert_stream_identical(data, backend, rel=1e-3)

    @pytest.mark.parametrize("n", [1, 2, 31, 32, 33, 63, 65, 257])
    def test_trailing_partial_blocks(self, backend, n):
        _backend_or_skip(backend)
        rng = np.random.default_rng(n)
        data = np.cumsum(rng.normal(size=n)).astype(np.float32)
        for mode in ("plain", "outlier"):
            _assert_stream_identical(data, backend, rel=1e-3, mode=mode, block=32)

    def test_chunked_encode_and_decode(self, backend):
        _backend_or_skip(backend)
        rng = np.random.default_rng(11)
        data = np.cumsum(rng.normal(size=2_000)).astype(np.float32)
        from repro.core import CuSZp2, ErrorBound

        ref = compress(data, rel=1e-3, kernel_backend="numpy")
        for chunk_blocks in (1, 3, 64):
            got = CuSZp2(
                ErrorBound.relative(1e-3),
                chunk_blocks=chunk_blocks,
                kernel_backend=backend,
            ).compress(data)
            assert got.tobytes() == ref.tobytes()
            assert (
                decompress(ref, kernel_backend=backend, chunk_blocks=chunk_blocks)
                .tobytes()
                == decompress(ref, kernel_backend="numpy").tobytes()
            )
