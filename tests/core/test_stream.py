"""Unit tests for stream framing (header + offsets + payload)."""

import numpy as np
import pytest

from repro.core import stream
from repro.core.errors import StreamFormatError


def make_header(**kw):
    defaults = dict(
        mode=1,
        dtype=np.dtype(np.float32),
        predictor_ndim=1,
        block=32,
        nelems=1000,
        eb_abs=0.125,
        dims=(1000,),
    )
    defaults.update(kw)
    return stream.StreamHeader(**defaults)


class TestHeader:
    def test_pack_size(self):
        assert len(make_header().pack()) == stream.HEADER_SIZE

    def test_round_trip(self):
        h = make_header(
            mode=0, dtype=np.dtype(np.float64), block=64, nelems=12345, eb_abs=1e-3,
            dims=(12345,),
        )
        buf = np.frombuffer(h.pack(), dtype=np.uint8)
        h2 = stream.StreamHeader.unpack(buf)
        assert h2.mode == 0
        assert h2.dtype == np.float64
        assert h2.block == 64
        assert h2.nelems == 12345
        assert h2.eb_abs == 1e-3
        assert h2.dims == (12345,)

    def test_dims_round_trip_3d(self):
        h = make_header(predictor_ndim=3, block=64, nelems=6, dims=(1, 2, 3))
        h2 = stream.StreamHeader.unpack(np.frombuffer(h.pack(), dtype=np.uint8))
        assert h2.dims == (1, 2, 3)

    def test_nblocks_1d(self):
        assert make_header(nelems=100, block=32).nblocks == 4
        assert make_header(nelems=96, block=32).nblocks == 3

    def test_nblocks_3d_counts_padded_tiles(self):
        h = make_header(predictor_ndim=3, block=64, nelems=9 * 9 * 9, dims=(9, 9, 9))
        assert h.nblocks == 3 * 3 * 3  # each 9-axis pads to 12 = 3 tiles of 4

    def test_bad_magic(self):
        buf = np.frombuffer(make_header().pack(), dtype=np.uint8).copy()
        buf[0] = ord("X")
        with pytest.raises(StreamFormatError):
            stream.StreamHeader.unpack(buf)

    def test_too_short(self):
        with pytest.raises(StreamFormatError):
            stream.StreamHeader.unpack(np.zeros(10, dtype=np.uint8))

    @pytest.mark.parametrize(
        "byte_idx,value",
        [
            (4, 99),   # version
            (5, 7),    # mode
            (6, 9),    # dtype code
            (7, 5),    # predictor ndim
        ],
    )
    def test_corrupt_fields_rejected(self, byte_idx, value):
        buf = np.frombuffer(make_header().pack(), dtype=np.uint8).copy()
        buf[byte_idx] = value
        with pytest.raises(StreamFormatError):
            stream.StreamHeader.unpack(buf)


class TestAssembleSplit:
    def test_round_trip(self):
        h = make_header(nelems=64, block=32, dims=(64,))
        offsets = np.array([3, 0], dtype=np.uint8)
        payload = np.arange(16, dtype=np.uint8)
        buf = stream.assemble(h, offsets, payload)
        h2, off2, pay2 = stream.split(buf)
        assert h2.nelems == 64
        assert np.array_equal(off2, offsets)
        assert np.array_equal(pay2, payload)

    def test_split_accepts_bytes(self):
        h = make_header(nelems=32, block=32, dims=(32,))
        buf = stream.assemble(h, np.zeros(1, np.uint8), np.zeros(0, np.uint8))
        h2, _, _ = stream.split(buf.tobytes())
        assert h2.nelems == 32

    def test_truncated_offsets_detected(self):
        h = make_header(nelems=32 * 100, block=32, dims=(3200,))
        buf = stream.assemble(h, np.zeros(100, np.uint8), np.zeros(0, np.uint8))
        with pytest.raises(StreamFormatError):
            stream.split(buf[: stream.HEADER_SIZE + 50])

    def test_wrong_dtype_rejected(self):
        with pytest.raises(StreamFormatError):
            stream.split(np.zeros(100, dtype=np.float32))
