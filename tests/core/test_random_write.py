"""Unit tests for random-access *write* (Section VI-B)."""

import numpy as np
import pytest

from repro import RandomAccessor, compress, decompress
from repro.core.errors import RandomAccessError


@pytest.fixture
def setup(rng):
    data = np.cumsum(rng.normal(size=5_000)).astype(np.float32)
    buf = compress(data, rel=1e-3, mode="outlier")
    return data, buf, RandomAccessor(buf)


class TestRewriteBlock:
    def test_target_block_updated(self, setup, rng):
        data, buf, ra = setup
        new_vals = rng.normal(size=32).astype(np.float32) * 0.1
        new_buf = ra.rewrite_block(10, new_vals)
        recon = decompress(new_buf)
        eb = ra.header.eb_abs
        assert np.abs(recon[320:352] - new_vals).max() <= eb * (1 + 1e-6)

    def test_other_blocks_untouched(self, setup, rng):
        data, buf, ra = setup
        before = decompress(buf)
        new_buf = ra.rewrite_block(10, rng.normal(size=32).astype(np.float32))
        after = decompress(new_buf)
        assert np.array_equal(after[:320], before[:320])
        assert np.array_equal(after[352:], before[352:])

    def test_stream_stays_valid_for_random_access(self, setup, rng):
        data, buf, ra = setup
        ra2 = ra.updated(5, rng.normal(size=32).astype(np.float32))
        assert ra2.nblocks == ra.nblocks
        # every block decodes without error
        ra2.decode_blocks(np.arange(ra2.nblocks))

    def test_identity_rewrite_is_byte_stable(self, setup):
        data, buf, ra = setup
        # Writing back a block's own reconstruction reproduces its encoding
        # exactly (values already on the quantization lattice).
        block = ra.decode_block(7)
        new_buf = ra.rewrite_block(7, block)
        assert np.array_equal(new_buf, np.asarray(buf))

    def test_partial_final_block(self, rng):
        data = rng.normal(size=100).astype(np.float32)  # final block holds 4
        buf = compress(data, rel=1e-2, mode="outlier")
        ra = RandomAccessor(buf)
        new_vals = np.array([1.0, 2.0, -1.0, 0.5], dtype=np.float32)
        recon = decompress(ra.rewrite_block(3, new_vals))
        assert recon.shape == (100,)
        assert np.abs(recon[96:] - new_vals).max() <= ra.header.eb_abs * (1 + 1e-6)

    def test_growing_and_shrinking_payloads(self, setup, rng):
        data, buf, ra = setup
        # A rough block (needs more bits) and a zero block (needs none).
        grown = ra.rewrite_block(3, (rng.normal(size=32) * 50).astype(np.float32))
        shrunk = ra.rewrite_block(3, np.zeros(32, dtype=np.float32))
        assert grown.size > np.asarray(buf).size - 64  # sanity
        assert shrunk.size < grown.size
        # Both decode fine end to end.
        decompress(grown)
        r = decompress(shrunk)
        assert np.all(r[96:128] == 0)

    def test_wrong_length_rejected(self, setup):
        _, _, ra = setup
        with pytest.raises(RandomAccessError):
            ra.rewrite_block(0, np.zeros(31, dtype=np.float32))

    def test_out_of_range_rejected(self, setup):
        _, _, ra = setup
        with pytest.raises(RandomAccessError):
            ra.rewrite_block(ra.nblocks, np.zeros(32, dtype=np.float32))

    def test_mode_preserved(self, setup, rng):
        _, buf, ra = setup
        new_buf = ra.rewrite_block(0, rng.normal(size=32).astype(np.float32))
        from repro.core import stream as stream_mod

        header, _, _ = stream_mod.split(new_buf)
        assert header.mode == 1  # still outlier mode

    def test_f64_stream(self, rng):
        data = np.cumsum(rng.normal(size=1_000))
        buf = compress(data, rel=1e-3, mode="plain")
        ra = RandomAccessor(buf)
        recon = decompress(ra.rewrite_block(2, np.ones(32)))
        assert recon.dtype == np.float64
        assert np.abs(recon[64:96] - 1.0).max() <= ra.header.eb_abs * (1 + 1e-6)
