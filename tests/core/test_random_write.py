"""Unit tests for random-access *write* (Section VI-B)."""

import numpy as np
import pytest

from repro import RandomAccessor, compress, decompress
from repro.core.errors import RandomAccessError


@pytest.fixture
def setup(rng):
    data = np.cumsum(rng.normal(size=5_000)).astype(np.float32)
    buf = compress(data, rel=1e-3, mode="outlier")
    return data, buf, RandomAccessor(buf)


class TestRewriteBlock:
    def test_target_block_updated(self, setup, rng):
        data, buf, ra = setup
        new_vals = rng.normal(size=32).astype(np.float32) * 0.1
        new_buf = ra.rewrite_block(10, new_vals)
        recon = decompress(new_buf)
        eb = ra.header.eb_abs
        assert np.abs(recon[320:352] - new_vals).max() <= eb * (1 + 1e-6)

    def test_other_blocks_untouched(self, setup, rng):
        data, buf, ra = setup
        before = decompress(buf)
        new_buf = ra.rewrite_block(10, rng.normal(size=32).astype(np.float32))
        after = decompress(new_buf)
        assert np.array_equal(after[:320], before[:320])
        assert np.array_equal(after[352:], before[352:])

    def test_stream_stays_valid_for_random_access(self, setup, rng):
        data, buf, ra = setup
        ra2 = ra.updated(5, rng.normal(size=32).astype(np.float32))
        assert ra2.nblocks == ra.nblocks
        # every block decodes without error
        ra2.decode_blocks(np.arange(ra2.nblocks))

    def test_identity_rewrite_is_byte_stable(self, setup):
        data, buf, ra = setup
        # Writing back a block's own reconstruction reproduces its encoding
        # exactly (values already on the quantization lattice).
        block = ra.decode_block(7)
        new_buf = ra.rewrite_block(7, block)
        assert np.array_equal(new_buf, np.asarray(buf))

    def test_partial_final_block(self, rng):
        data = rng.normal(size=100).astype(np.float32)  # final block holds 4
        buf = compress(data, rel=1e-2, mode="outlier")
        ra = RandomAccessor(buf)
        new_vals = np.array([1.0, 2.0, -1.0, 0.5], dtype=np.float32)
        recon = decompress(ra.rewrite_block(3, new_vals))
        assert recon.shape == (100,)
        assert np.abs(recon[96:] - new_vals).max() <= ra.header.eb_abs * (1 + 1e-6)

    def test_growing_and_shrinking_payloads(self, setup, rng):
        data, buf, ra = setup
        # A rough block (needs more bits) and a zero block (needs none).
        grown = ra.rewrite_block(3, (rng.normal(size=32) * 50).astype(np.float32))
        shrunk = ra.rewrite_block(3, np.zeros(32, dtype=np.float32))
        assert grown.size > np.asarray(buf).size - 64  # sanity
        assert shrunk.size < grown.size
        # Both decode fine end to end.
        decompress(grown)
        r = decompress(shrunk)
        assert np.all(r[96:128] == 0)

    def test_wrong_length_rejected(self, setup):
        _, _, ra = setup
        with pytest.raises(RandomAccessError):
            ra.rewrite_block(0, np.zeros(31, dtype=np.float32))

    def test_out_of_range_rejected(self, setup):
        _, _, ra = setup
        with pytest.raises(RandomAccessError):
            ra.rewrite_block(ra.nblocks, np.zeros(32, dtype=np.float32))

    def test_mode_preserved(self, setup, rng):
        _, buf, ra = setup
        new_buf = ra.rewrite_block(0, rng.normal(size=32).astype(np.float32))
        from repro.core import stream as stream_mod

        header, _, _ = stream_mod.split(new_buf)
        assert header.mode == 1  # still outlier mode

    def test_f64_stream(self, rng):
        data = np.cumsum(rng.normal(size=1_000))
        buf = compress(data, rel=1e-3, mode="plain")
        ra = RandomAccessor(buf)
        recon = decompress(ra.rewrite_block(2, np.ones(32)))
        assert recon.dtype == np.float64
        assert np.abs(recon[64:96] - 1.0).max() <= ra.header.eb_abs * (1 + 1e-6)


class TestRewritePartialTrailingAndNdim:
    """The trailing-block padding and the orig-ndim header tag both ride
    through a rewrite: the resealed stream must verify clean and decode
    bit-identically to a *fresh compress* of the mutated field."""

    def _assert_rewrite_equals_fresh(self, data, block_idx, new_vals, rel=1e-3):
        from repro.core.integrity import verify

        buf = compress(data, rel=rel, mode="outlier")
        ra = RandomAccessor(buf)
        eb = ra.header.eb_abs
        new_buf = ra.rewrite_block(block_idx, new_vals)
        report = verify(new_buf)
        assert report.ok, report.summary()
        # mutate the field the same way and compress from scratch under
        # the same absolute bound the stream stored
        L = ra.header.block
        mutated = data.reshape(-1).copy()
        mutated[block_idx * L : block_idx * L + new_vals.size] = new_vals
        fresh = compress(mutated.reshape(data.shape), abs=eb, mode="outlier")
        got = decompress(new_buf)
        want = decompress(fresh)
        assert got.shape == data.shape
        assert got.tobytes() == want.tobytes()

    def test_trailing_partial_block(self, rng):
        data = np.cumsum(rng.normal(size=32 * 31 + 17)).astype(np.float32)
        ra = RandomAccessor(compress(data, rel=1e-3, mode="outlier"))
        last = ra.nblocks - 1
        new_vals = rng.normal(size=17).astype(np.float32)
        self._assert_rewrite_equals_fresh(data, last, new_vals)

    def test_trailing_block_of_one_element(self, rng):
        data = np.cumsum(rng.normal(size=32 * 4 + 1)).astype(np.float32)
        new_vals = np.array([3.75], dtype=np.float32)
        self._assert_rewrite_equals_fresh(data, 4, new_vals)

    def test_2d_stream_keeps_shape_tag(self, rng):
        data = np.cumsum(rng.normal(size=(40, 50)), axis=1).astype(np.float32)
        new_vals = rng.normal(size=32).astype(np.float32)
        self._assert_rewrite_equals_fresh(data, 3, new_vals)
        # explicit: the decoded shape survives reseal
        ra = RandomAccessor(compress(data, rel=1e-3))
        assert decompress(ra.rewrite_block(3, new_vals)).shape == (40, 50)

    def test_3d_stream_keeps_shape_tag(self, rng):
        data = np.cumsum(rng.normal(size=(7, 11, 13)), axis=0).astype(np.float32)
        # 7*11*13 = 1001 -> trailing block holds 9 elements
        ra = RandomAccessor(compress(data, rel=1e-3))
        last = ra.nblocks - 1
        new_vals = rng.normal(size=1001 - 32 * last).astype(np.float32)
        self._assert_rewrite_equals_fresh(data, last, new_vals)
        assert decompress(ra.rewrite_block(last, new_vals)).shape == (7, 11, 13)


class TestRewriteBlocksBatched:
    def test_batched_equals_sequential(self, setup, rng):
        data, buf, ra = setup
        idxs = [0, 7, 42, ra.nblocks - 1]
        vals = []
        for i in idxs:
            n = min(32, data.size - i * 32)
            vals.append(rng.normal(size=n).astype(np.float32))
        batched = ra.rewrite_blocks(idxs, vals)
        seq = np.asarray(buf)
        for i, v in zip(idxs, vals):
            seq = RandomAccessor(seq).rewrite_block(i, v)
        assert batched.tobytes() == seq.tobytes()

    def test_order_of_indices_is_irrelevant(self, setup, rng):
        data, buf, ra = setup
        vals = {i: rng.normal(size=32).astype(np.float32) for i in (3, 50, 12)}
        a = ra.rewrite_blocks([3, 12, 50], [vals[3], vals[12], vals[50]])
        b = ra.rewrite_blocks([50, 3, 12], [vals[50], vals[3], vals[12]])
        assert a.tobytes() == b.tobytes()

    def test_empty_rewrite_returns_equal_copy(self, setup):
        data, buf, ra = setup
        out = ra.rewrite_blocks([], [])
        assert out.tobytes() == np.asarray(buf).tobytes()
        assert out is not buf  # a copy, not the accessor's own buffer

    def test_duplicate_indices_rejected(self, setup, rng):
        data, buf, ra = setup
        v = rng.normal(size=32).astype(np.float32)
        with pytest.raises(RandomAccessError, match="duplicate"):
            ra.rewrite_blocks([4, 4], [v, v])

    def test_mismatched_lengths_rejected(self, setup, rng):
        data, buf, ra = setup
        with pytest.raises(RandomAccessError, match="indices but"):
            ra.rewrite_blocks([1, 2], [rng.normal(size=32).astype(np.float32)])

    def test_wrong_shape_rejected(self, setup, rng):
        data, buf, ra = setup
        with pytest.raises(RandomAccessError, match="elements"):
            ra.rewrite_blocks([1], [rng.normal(size=31).astype(np.float32)])

    def test_identity_batched_rewrite_is_byte_stable(self, setup):
        data, buf, ra = setup
        idxs = [2, 9, 77]
        blocks = [ra.decode_block(i) for i in idxs]
        assert ra.rewrite_blocks(idxs, blocks).tobytes() == np.asarray(buf).tobytes()

    def test_batched_decodes_to_mutated_field(self, setup, rng):
        data, buf, ra = setup
        idxs = [1, 30]
        vals = [rng.normal(size=32).astype(np.float32) for _ in idxs]
        recon = decompress(ra.rewrite_blocks(idxs, vals))
        eb = ra.header.eb_abs
        for i, v in zip(idxs, vals):
            assert np.abs(recon[i * 32 : (i + 1) * 32] - v).max() <= eb * (1 + 1e-6)
