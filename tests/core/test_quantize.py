"""Unit tests for the lossy conversion stage (the only lossy step)."""

import numpy as np

from tests.helpers import seeded_rng
import pytest

from repro.core.errors import ErrorBoundError, InvalidInputError, QuantizationOverflowError
from repro.core.quantize import (
    MAX_QUANT_MAGNITUDE,
    ErrorBound,
    dequantize,
    max_quantized_error,
    quantize,
    validate_input,
)


class TestErrorBound:
    def test_absolute_resolves_to_itself(self):
        eb = ErrorBound.absolute(0.25)
        assert eb.resolve(np.array([0.0, 100.0])) == 0.25

    def test_relative_scales_by_value_range(self):
        data = np.array([-2.0, 8.0])  # range 10
        assert ErrorBound.relative(1e-3).resolve(data) == pytest.approx(1e-2)

    def test_relative_on_constant_data_falls_back_to_magnitude(self):
        data = np.full(10, 7.0)
        assert ErrorBound.relative(1e-2).resolve(data) == pytest.approx(7e-2)

    def test_relative_on_constant_zero_data_uses_unit_scale(self):
        data = np.zeros(10)
        assert ErrorBound.relative(1e-2).resolve(data) == pytest.approx(1e-2)

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_rejects_nonpositive_or_nonfinite(self, bad):
        with pytest.raises(ErrorBoundError):
            ErrorBound.relative(bad).resolve(np.array([0.0, 1.0]))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ErrorBoundError):
            ErrorBound("weird", 0.1).resolve(np.array([0.0, 1.0]))


class TestValidateInput:
    def test_accepts_f32_and_f64(self):
        for dt in (np.float32, np.float64):
            out = validate_input(np.ones(4, dtype=dt))
            assert out.dtype == dt and out.ndim == 1

    def test_flattens_multidimensional(self):
        out = validate_input(np.ones((2, 3, 4), dtype=np.float32))
        assert out.shape == (24,)

    def test_rejects_non_array(self):
        with pytest.raises(InvalidInputError):
            validate_input([1.0, 2.0])

    def test_rejects_integer_dtype(self):
        with pytest.raises(InvalidInputError):
            validate_input(np.arange(10))

    def test_rejects_empty(self):
        with pytest.raises(InvalidInputError):
            validate_input(np.empty(0, dtype=np.float32))

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_rejects_nonfinite(self, bad):
        data = np.ones(10, dtype=np.float64)
        data[3] = bad
        with pytest.raises(InvalidInputError):
            validate_input(data)


class TestQuantize:
    def test_paper_running_example(self):
        # Fig. 5: eb = 0.1, 1.12 -> 6, reconstructed 6 * 0.2 = 1.2.
        q = quantize(np.array([1.12]), 0.1)
        assert q[0] == 6
        recon = dequantize(q, 0.1, np.dtype(np.float64))
        assert recon[0] == pytest.approx(1.2)
        assert abs(recon[0] - 1.12) < 0.1

    def test_round_trip_respects_bound(self):
        rng = seeded_rng(1)
        data = rng.uniform(-100, 100, size=10_000)
        eb = 0.05
        recon = dequantize(quantize(data, eb), eb, np.dtype(np.float64))
        assert max_quantized_error(data, recon) <= eb

    def test_negative_values_round_symmetrically_within_bound(self):
        data = np.array([-1.12, -0.31, 0.31, 1.12])
        eb = 0.1
        recon = dequantize(quantize(data, eb), eb, np.dtype(np.float64))
        assert np.all(np.abs(recon - data) <= eb)

    def test_zero_maps_to_zero(self):
        assert quantize(np.array([0.0]), 1e-5)[0] == 0

    def test_overflow_raises(self):
        with pytest.raises(QuantizationOverflowError):
            quantize(np.array([1e30]), 1e-9)

    def test_magnitude_just_inside_limit_ok(self):
        eb = 0.5  # step 1.0: quant equals round(value)
        val = float(MAX_QUANT_MAGNITUDE) - 1.0
        q = quantize(np.array([val]), eb)
        assert q[0] == MAX_QUANT_MAGNITUDE - 1

    def test_bad_eb_raises(self):
        with pytest.raises(ErrorBoundError):
            quantize(np.zeros(3), 0.0)

    def test_f32_input_quantizes_in_double(self):
        data = np.array([1.12], dtype=np.float32)
        assert quantize(data, 0.1)[0] == 6

    def test_dequantize_preserves_requested_dtype(self):
        q = np.array([1, 2, 3], dtype=np.int64)
        assert dequantize(q, 0.1, np.dtype(np.float32)).dtype == np.float32
        assert dequantize(q, 0.1, np.dtype(np.float64)).dtype == np.float64
