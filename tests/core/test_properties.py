"""Property-based tests (hypothesis) on codec invariants.

These encode the guarantees the paper relies on:

* the reconstruction error never exceeds the bound (the compressor's
  contract),
* compression is lossless downstream of quantization (exact round trip of
  quantization integers),
* Outlier mode never produces a larger stream than Plain mode,
* random access agrees with full decompression everywhere.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro import RandomAccessor, compress, decompress
from repro.core import fle, predictor
from repro.core.errors import QuantizationOverflowError

finite_f32 = hnp.arrays(
    dtype=np.float32,
    shape=st.integers(1, 400),
    elements=st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False, width=32
    ),
)

delta_blocks = hnp.arrays(
    dtype=np.int64,
    shape=st.tuples(st.integers(1, 20), st.just(32)),
    elements=st.integers(-(2**31) + 1, 2**31 - 1),
)


@st.composite
def data_and_bound(draw):
    data = draw(finite_f32)
    rel = draw(st.sampled_from([1e-1, 1e-2, 1e-3, 1e-4]))
    return data, rel


@given(data_and_bound())
@settings(max_examples=150, deadline=None)
def test_error_bound_always_respected(case):
    data, rel = case
    try:
        buf = compress(data, rel=rel)
    except QuantizationOverflowError:
        # Legal outcome for extreme range/eb combinations; never corrupt output.
        return
    recon = decompress(buf)
    rng = float(data.max() - data.min())
    eb = rel * rng if rng else rel * max(abs(float(data.max())), 1.0)
    # the native-dtype cast of the reconstruction can add up to half a
    # float32 ULP on top of the bound (the same slack the qa roundtrip
    # oracle grants): near a lattice midpoint the error is ~eb already,
    # and at large magnitudes half an ULP dwarfs a 1e-6 relative margin
    slack = np.spacing(np.abs(recon)).astype(np.float64) / 2
    err = np.abs(recon.astype(np.float64) - data.astype(np.float64))
    assert np.all(err <= eb * (1 + 1e-6) + slack)


@given(data_and_bound(), st.sampled_from(["plain", "outlier"]))
@settings(max_examples=100, deadline=None)
def test_decompress_is_exact_inverse_of_lossy_step(case, mode):
    data, rel = case
    try:
        buf = compress(data, rel=rel, mode=mode)
    except QuantizationOverflowError:
        return
    # Re-compressing the reconstruction must reproduce it exactly: the
    # reconstruction is already on the quantization lattice.
    recon = decompress(buf)
    buf2 = compress(recon, abs=_stored_eb(buf), mode=mode)
    recon2 = decompress(buf2)
    assert np.array_equal(recon, recon2)


def _stored_eb(buf):
    from repro.core import stream

    return stream.split(buf)[0].eb_abs


@given(delta_blocks, st.booleans())
@settings(max_examples=150, deadline=None)
def test_fle_round_trip_arbitrary_deltas(dblocks, use_outlier):
    offsets, payload = fle.encode_blocks(dblocks, use_outlier)
    assert np.array_equal(fle.decode_blocks(offsets, payload, 32), dblocks)


@given(delta_blocks)
@settings(max_examples=100, deadline=None)
def test_outlier_stream_never_larger(dblocks):
    _, pay_p = fle.encode_blocks(dblocks, False)
    _, pay_o = fle.encode_blocks(dblocks, True)
    assert pay_o.size <= pay_p.size


@given(
    hnp.arrays(
        dtype=np.int64,
        shape=st.integers(1, 300),
        elements=st.integers(-(2**24), 2**24),
    ),
    st.sampled_from([8, 32, 64]),
)
@settings(max_examples=100, deadline=None)
def test_predictor_round_trip(q, block):
    blocks = predictor.blockize_1d(q, block)
    back = predictor.undiff_1d(predictor.diff_1d(blocks)).reshape(-1)[: q.size]
    assert np.array_equal(back, q)


@given(data_and_bound(), st.data())
@settings(max_examples=60, deadline=None)
def test_random_access_agrees_with_full_decode(case, data_strategy):
    data, rel = case
    try:
        buf = compress(data, rel=rel, mode="outlier")
    except QuantizationOverflowError:
        return
    full = decompress(buf)
    ra = RandomAccessor(buf)
    lo = data_strategy.draw(st.integers(0, data.size - 1))
    hi = data_strategy.draw(st.integers(lo, data.size))
    assert np.array_equal(ra.decode_range(lo, hi), full[lo:hi])


@given(finite_f32)
@settings(max_examples=60, deadline=None)
def test_idempotent_on_lattice_data(data):
    # Once data sits on the quantization lattice, compression is lossless.
    try:
        recon = decompress(compress(data, rel=1e-2))
        buf = compress(recon, abs=_stored_eb(compress(data, rel=1e-2)))
    except QuantizationOverflowError:
        return
    assert np.array_equal(decompress(buf), recon)


@st.composite
def small_volume(draw):
    d0 = draw(st.integers(2, 10))
    d1 = draw(st.integers(2, 10))
    d2 = draw(st.integers(2, 12))
    data = draw(
        hnp.arrays(
            dtype=np.float32,
            shape=(d0, d1, d2),
            elements=st.floats(
                min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False, width=32
            ),
        )
    )
    return data


@given(small_volume(), st.sampled_from([2, 3]))
@settings(max_examples=60, deadline=None)
def test_multidim_predictor_error_bound(volume, ndim):
    arr = volume if ndim == 3 else volume.reshape(volume.shape[0] * volume.shape[1], -1)
    try:
        buf = compress(arr, rel=1e-2, mode="outlier", predictor_ndim=ndim, block=64)
    except QuantizationOverflowError:
        return
    recon = decompress(buf)
    assert recon.shape == arr.shape
    rng = float(arr.max() - arr.min())
    eb = 1e-2 * (rng if rng else max(abs(float(arr.max())), 1.0))
    slack = 0.5 * float(np.spacing(np.abs(recon).max())) if recon.size else 0.0
    err = np.abs(recon.astype(np.float64) - arr.astype(np.float64)).max()
    assert err <= eb * (1 + 1e-9) + slack


@given(small_volume())
@settings(max_examples=40, deadline=None)
def test_predictors_agree_within_two_bounds(volume):
    # Different predictors quantize the same lattice, so reconstructions
    # can differ by at most 2eb pointwise.
    try:
        r1 = decompress(compress(volume, rel=1e-2, mode="plain")).reshape(volume.shape)
        r3 = decompress(compress(volume, rel=1e-2, mode="plain", predictor_ndim=3, block=64))
    except QuantizationOverflowError:
        return
    rng = float(volume.max() - volume.min())
    eb = 1e-2 * (rng if rng else max(abs(float(volume.max())), 1.0))
    slack = float(np.spacing(max(np.abs(r1).max(), np.abs(r3).max(), 1e-30)))
    assert np.abs(r1.astype(np.float64) - r3.astype(np.float64)).max() <= 2 * eb * (1 + 1e-9) + 2 * slack
