"""Unit tests for Plain- and Outlier fixed-length encoding + selection."""

import numpy as np

from tests.helpers import seeded_rng
import pytest

from repro.core import blockfmt, fle
from repro.core.errors import QuantizationOverflowError, StreamFormatError


def roundtrip(dblocks, use_outlier):
    offsets, payload = fle.encode_blocks(dblocks, use_outlier)
    return fle.decode_blocks(offsets, payload, dblocks.shape[1])


class TestPlainFLE:
    def test_round_trip_random(self):
        rng = seeded_rng(0)
        d = rng.integers(-(2**20), 2**20, size=(100, 32)).astype(np.int64)
        assert np.array_equal(roundtrip(d, False), d)

    def test_zero_block_emits_no_payload(self):
        d = np.zeros((3, 32), dtype=np.int64)
        offsets, payload = fle.encode_blocks(d, False)
        assert payload.size == 0
        assert np.all(offsets == 0)
        assert np.array_equal(fle.decode_blocks(offsets, payload, 32), d)

    def test_paper_fig5_size(self):
        # Running example: 8-element block, deltas fit 4 bits -> 5 payload bytes.
        d = np.array([[6, 1, -2, 3, 8, -8, 1, 0]], dtype=np.int64)
        offsets, payload = fle.encode_blocks(d, False)
        _, _, flv = blockfmt.decode_offset_bytes(offsets)
        assert flv[0] == 4
        assert payload.size == 5

    def test_mixed_fl_blocks(self):
        d = np.zeros((4, 8), dtype=np.int64)
        d[1] = [1, 0, 1, 0, 0, 0, 0, 0]        # fl 1
        d[2] = [100, -5, 0, 0, 0, 0, 0, 0]     # fl 7
        d[3] = [2**30, 0, 0, 0, 0, 0, 0, 0]    # fl 31
        assert np.array_equal(roundtrip(d, False), d)

    def test_never_selects_outlier_mode(self):
        rng = seeded_rng(1)
        d = rng.integers(-5, 5, size=(50, 32)).astype(np.int64)
        d[:, 0] = 10_000  # outlier would clearly win
        offsets, _ = fle.encode_blocks(d, False)
        mode, _, _ = blockfmt.decode_offset_bytes(offsets)
        assert np.all(mode == 0)


class TestOutlierFLE:
    def test_round_trip_random(self):
        rng = seeded_rng(2)
        d = rng.integers(-(2**20), 2**20, size=(100, 32)).astype(np.int64)
        d[::3, 0] = rng.integers(2**25, 2**30, size=d[::3, 0].shape)
        assert np.array_equal(roundtrip(d, True), d)

    def test_paper_fig7_example(self):
        # deltas with outlier 8 and rest in {-1,0,1}: Outlier-FLE -> 3 bytes,
        # Plain-FLE -> 5 bytes (block of 8).
        d = np.array([[8, 1, -1, 0, 1, -1, 0, 1]], dtype=np.int64)
        off_o, pay_o = fle.encode_blocks(d, True)
        off_p, pay_p = fle.encode_blocks(d, False)
        assert pay_o.size == 3
        assert pay_p.size == 5
        mode, onb, flv = blockfmt.decode_offset_bytes(off_o)
        assert mode[0] == 1 and onb[0] == 1 and flv[0] == 1
        assert np.array_equal(fle.decode_blocks(off_o, pay_o, 8), d)

    def test_negative_outlier_round_trip(self):
        d = np.array([[-300, 1, 0, -1, 0, 0, 1, 0]], dtype=np.int64)
        assert np.array_equal(roundtrip(d, True), d)

    @pytest.mark.parametrize("outlier", [1, 0xFF, 0x100, 0xFFFF, 0x10000, 0xFFFFFF, 0x1000000, 2**31 - 1])
    def test_all_outlier_widths(self, outlier):
        d = np.zeros((1, 32), dtype=np.int64)
        d[0, 0] = outlier
        d[0, 1] = 1
        assert np.array_equal(roundtrip(d, True), d)

    def test_selection_never_loses_to_plain(self):
        rng = seeded_rng(3)
        for _ in range(20):
            d = rng.integers(-(2**12), 2**12, size=(64, 32)).astype(np.int64)
            _, pay_o = fle.encode_blocks(d, True)
            _, pay_p = fle.encode_blocks(d, False)
            assert pay_o.size <= pay_p.size

    def test_plain_chosen_when_no_outlier_benefit(self):
        # Uniformly large magnitudes: extracting the first element buys nothing.
        rng = seeded_rng(4)
        d = rng.integers(2**20, 2**21, size=(10, 32)).astype(np.int64)
        offsets, _ = fle.encode_blocks(d, True)
        mode, _, _ = blockfmt.decode_offset_bytes(offsets)
        assert np.all(mode == 0)

    def test_smooth_block_selects_outlier(self):
        d = np.zeros((1, 32), dtype=np.int64)
        d[0, 0] = 5000
        d[0, 1:] = np.tile([1, -1], 16)[:31]
        offsets, _ = fle.encode_blocks(d, True)
        mode, _, _ = blockfmt.decode_offset_bytes(offsets)
        assert mode[0] == 1

    def test_zero_block_still_free_in_outlier_mode(self):
        d = np.zeros((5, 32), dtype=np.int64)
        offsets, payload = fle.encode_blocks(d, True)
        assert payload.size == 0
        mode, _, _ = blockfmt.decode_offset_bytes(offsets)
        assert np.all(mode == 0)


class TestGuards:
    def test_delta_overflow_raises(self):
        d = np.zeros((1, 32), dtype=np.int64)
        d[0, 5] = 2**31
        with pytest.raises(QuantizationOverflowError):
            fle.encode_blocks(d, False)

    def test_truncated_payload_detected(self):
        d = np.ones((4, 32), dtype=np.int64) * 7
        offsets, payload = fle.encode_blocks(d, False)
        with pytest.raises(StreamFormatError):
            fle.decode_blocks(offsets, payload[:-3], 32)

    def test_inconsistent_sizes_detected(self):
        d = np.ones((4, 32), dtype=np.int64)
        offsets, payload = fle.encode_blocks(d, False)
        offsets = offsets.copy()
        offsets[0] = 31  # claims much larger block
        with pytest.raises(StreamFormatError):
            fle.decode_blocks(offsets, payload, 32)

    def test_payload_sizes_match_encoded_stream(self):
        rng = seeded_rng(5)
        d = rng.integers(-100, 100, size=(30, 32)).astype(np.int64)
        offsets, payload = fle.encode_blocks(d, True)
        assert int(fle.block_payload_sizes(offsets, 32).sum()) == payload.size
