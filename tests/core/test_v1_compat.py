"""Backward compatibility: version-1 streams must keep decoding forever.

``tests/data/golden_v1*.csz2`` were produced by the pre-checksum codec
(format v1) and committed as byte fixtures; the expected reconstructions
sit next to them.  Every future revision of the decoder must reproduce
those bytes bit-for-bit -- archived compressed science data does not get
re-compressed when the software updates.
"""

from pathlib import Path

import numpy as np

from repro import decompress
from repro.core import RandomAccessor, verify_stream
from repro.core import stream as stream_mod

DATA = Path(__file__).resolve().parent.parent / "data"


def load(name):
    return np.fromfile(DATA / name, dtype=np.uint8)


class TestGolden1D:
    def test_version_byte(self):
        buf = load("golden_v1.csz2")
        assert buf[4] == 1
        assert stream_mod.StreamHeader.unpack(buf).version == 1

    def test_decodes_bit_identically(self):
        buf = load("golden_v1.csz2")
        expected = np.fromfile(DATA / "golden_v1_expected.f32", dtype=np.float32)
        out = decompress(buf)
        assert out.dtype == np.float32
        assert np.array_equal(out, expected)

    def test_split_sees_no_integrity_section(self):
        buf = load("golden_v1.csz2")
        header, section, offsets, payload = stream_mod.split_ex(buf)
        assert section is None
        assert 52 + offsets.size + payload.size == buf.size

    def test_verify_reports_uncheckable_not_corrupt(self):
        report = verify_stream(load("golden_v1.csz2"))
        assert report.ok
        assert not report.has_checksums

    def test_random_access_still_works(self):
        buf = load("golden_v1.csz2")
        expected = np.fromfile(DATA / "golden_v1_expected.f32", dtype=np.float32)
        ra = RandomAccessor(buf)
        assert np.array_equal(ra.decode_block(0), expected[:32])

    def test_cli_reports_version(self, tmp_path, capsys):
        from repro.cli import main

        src = tmp_path / "g.csz2"
        load("golden_v1.csz2").tofile(src)
        assert main(["decompress", str(src), "-o", str(tmp_path / "g.f32")]) == 0
        out = capsys.readouterr().out
        assert "stream format v1" in out


class TestGolden2D:
    def test_decodes_bit_identically(self):
        buf = load("golden_v1_2d.csz2")
        expected = np.fromfile(DATA / "golden_v1_2d_expected.f32", dtype=np.float32)
        out = decompress(buf)
        assert out.shape == (32, 32)
        assert np.array_equal(out.reshape(-1), expected)


class TestRoundTripAcrossVersions:
    def test_v1_reassembled_from_v2_decodes_identically(self, smooth_f32):
        from repro import compress

        v2 = compress(smooth_f32, rel=1e-3, mode="outlier")
        header, section, offsets, payload = stream_mod.split_ex(v2)
        v1_header = stream_mod.StreamHeader(
            mode=header.mode, dtype=header.dtype, predictor_ndim=header.predictor_ndim,
            block=header.block, nelems=header.nelems, eb_abs=header.eb_abs,
            dims=header.dims, version=stream_mod.V1,
        )
        v1 = stream_mod.assemble(v1_header, offsets, payload)
        assert np.array_equal(decompress(v1), decompress(v2))
