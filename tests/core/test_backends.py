"""The kernel-backend registry and its resolution/fallback rules.

The registry is a throughput knob, never a format knob: every backend must
emit byte-identical CSZ2 streams (pinned here and in
``test_kernel_oracle.py``), and a backend whose runtime is missing must
degrade to the NumPy reference with a warning rather than fail.
"""

import warnings

import numpy as np
import pytest

from repro.core import (
    CompressorConfig,
    CuSZp2,
    InvalidInputError,
    available_backends,
    compress,
    decompress,
    registered_backends,
    resolve_backend,
    validate_chunk_blocks,
)
from repro.core import backends as B
from repro.core import kernels_fused
from repro.core.quantize import ErrorBound


@pytest.fixture
def field(rng):
    return np.cumsum(rng.normal(size=5_000)).astype(np.float32)


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = registered_backends()
        assert {"numpy", "numba", "fused-python"} <= set(names)
        assert names == sorted(names)

    def test_reference_backends_always_available(self):
        avail = available_backends()
        assert "numpy" in avail
        assert "fused-python" in avail
        assert set(avail) <= set(registered_backends())

    def test_resolve_returns_cached_instance(self):
        a = resolve_backend("numpy")
        b = resolve_backend("numpy")
        assert a is b
        assert isinstance(a, B.NumpyBackend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(InvalidInputError, match="unknown kernel backend"):
            resolve_backend("cuda")
        with pytest.raises(InvalidInputError, match="registered backends: auto"):
            B.validate_backend_name("cuda")

    def test_register_requires_name(self):
        class Anonymous(B.KernelBackend):
            pass

        with pytest.raises(InvalidInputError, match="must define a name"):
            B.register_backend(Anonymous)

    def test_custom_backend_registers_and_resolves(self):
        class Custom(B.NumpyBackend):
            name = "test-custom"

        B.register_backend(Custom)
        try:
            assert "test-custom" in registered_backends()
            assert isinstance(resolve_backend("test-custom"), Custom)
        finally:
            B._REGISTRY.pop("test-custom", None)
            B._instances.pop("test-custom", None)


class TestResolution:
    def test_auto_defaults_to_numpy(self, monkeypatch):
        monkeypatch.delenv(B.ENV_VAR, raising=False)
        assert resolve_backend("auto").name == "numpy"
        assert resolve_backend(None).name == "numpy"

    def test_auto_honors_environment_variable(self, monkeypatch):
        monkeypatch.setenv(B.ENV_VAR, "fused-python")
        assert resolve_backend("auto").name == "fused-python"
        monkeypatch.setenv(B.ENV_VAR, "  ")  # blank -> default
        assert resolve_backend("auto").name == "numpy"

    def test_unavailable_backend_warns_and_falls_back(self):
        class Absent(B.NumpyBackend):
            name = "test-absent"
            available = False

        B.register_backend(Absent)
        try:
            with pytest.warns(RuntimeWarning, match="not available on this host"):
                got = resolve_backend("test-absent")
            assert got.name == "numpy"
        finally:
            B._REGISTRY.pop("test-absent", None)
            B._instances.pop("test-absent", None)

    def test_numba_resolution_matches_availability(self):
        if kernels_fused.NUMBA_AVAILABLE:
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert resolve_backend("numba").name == "numba"
        else:
            with pytest.warns(RuntimeWarning, match="falling back to 'numpy'"):
                assert resolve_backend("numba").name == "numpy"

    def test_import_fallback_uses_identity_njit(self):
        # On hosts without numba the jitted names must be the plain-Python
        # kernel bodies themselves (the identity-decorator fallback path).
        if kernels_fused.NUMBA_AVAILABLE:
            pytest.skip("numba installed: jitted kernels are dispatchers")
        assert kernels_fused.encode_pass1 is kernels_fused.encode_pass1_python
        assert kernels_fused.encode_pass2 is kernels_fused.encode_pass2_python
        assert kernels_fused.decode_chunk is kernels_fused.decode_chunk_python
        assert kernels_fused.njit(parallel=True)(abs) is abs


class TestConfigPlumbing:
    def test_config_validates_backend_name(self):
        with pytest.raises(InvalidInputError, match="unknown kernel backend"):
            CompressorConfig(kernel_backend="nope")
        assert CompressorConfig().kernel_backend == "auto"
        assert CompressorConfig(kernel_backend="fused-python").kernel_backend == "fused-python"

    def test_instance_backend_produces_identical_stream(self, field):
        ref = CuSZp2(ErrorBound.relative(1e-3)).compress(field)
        alt = CuSZp2(
            ErrorBound.relative(1e-3), kernel_backend="fused-python"
        ).compress(field)
        assert alt.tobytes() == ref.tobytes()

    def test_functional_kwargs_roundtrip(self, field):
        ref = compress(field, rel=1e-3)
        alt = compress(field, rel=1e-3, kernel_backend="fused-python")
        assert alt.tobytes() == ref.tobytes()
        assert (
            decompress(alt, kernel_backend="fused-python").tobytes()
            == decompress(ref).tobytes()
        )

    def test_env_var_reaches_compress(self, field, monkeypatch):
        ref = compress(field, rel=1e-3)
        monkeypatch.setenv(B.ENV_VAR, "fused-python")
        assert compress(field, rel=1e-3).tobytes() == ref.tobytes()

    def test_instance_backend_reaches_decompress(self, field, monkeypatch):
        codec = CuSZp2(ErrorBound.relative(1e-3), kernel_backend="fused-python")
        buf = codec.compress(field)
        seen = {}
        import repro.core.compressor as compressor_mod

        orig = compressor_mod.decompress

        def spy(stream, **kwargs):
            seen.update(kwargs)
            return orig(stream, **kwargs)

        monkeypatch.setattr(compressor_mod, "decompress", spy)
        codec.decompress(buf)
        assert seen["kernel_backend"] == "fused-python"


class TestChunkBlocksValidator:
    def test_accepts_positive_integers(self):
        assert validate_chunk_blocks(1) == 1
        assert validate_chunk_blocks(np.int64(17)) == 17
        assert isinstance(validate_chunk_blocks(np.int64(17)), int)

    @pytest.mark.parametrize("bad", [0, -1, -100, True, False, 1.5, "8", None])
    def test_rejects_nonpositive_and_nonintegral(self, bad):
        with pytest.raises(
            InvalidInputError, match="chunk_blocks must be a positive integer"
        ):
            validate_chunk_blocks(bad)

    @pytest.mark.parametrize("bad", [0, -3, 2.5])
    def test_config_and_decompress_agree(self, bad, field):
        # both entry points route through the one validator: same type,
        # same message
        with pytest.raises(
            InvalidInputError, match="chunk_blocks must be a positive integer"
        ):
            CompressorConfig(chunk_blocks=bad)
        buf = compress(field, rel=1e-3)
        with pytest.raises(
            InvalidInputError, match="chunk_blocks must be a positive integer"
        ):
            decompress(buf, chunk_blocks=bad)


class TestErrorParity:
    """Typed errors (and their messages) are backend-independent."""

    @pytest.mark.parametrize("name", ["numpy", "fused-python"])
    def test_quantization_overflow_message(self, name):
        data = np.array([0.0, 6e9, 0.0, 1.0] * 64, dtype=np.float64)
        with pytest.raises(Exception) as one:
            compress(data, abs=1.0, kernel_backend="numpy")
        with pytest.raises(Exception) as two:
            compress(data, abs=1.0, kernel_backend=name)
        assert type(two.value) is type(one.value)
        assert str(two.value) == str(one.value)

    @pytest.mark.parametrize("name", ["numpy", "fused-python"])
    def test_delta_overflow_message(self, name):
        # quant values alternate +-1.2e9 (in range), so consecutive deltas
        # are +-2.4e9: representable quants, unrepresentable deltas
        data = np.tile([2.4e9, -2.4e9], 256).astype(np.float64)
        with pytest.raises(Exception) as one:
            compress(data, abs=1.0, kernel_backend="numpy")
        with pytest.raises(Exception) as two:
            compress(data, abs=1.0, kernel_backend=name)
        assert type(two.value) is type(one.value)
        assert str(two.value) == str(one.value)

    def test_truncated_stream_message(self, field):
        buf = compress(field, rel=1e-3, kernel_backend="numpy")
        truncated = buf[:-40].copy()
        msgs = {}
        for name in ("numpy", "fused-python"):
            with pytest.raises(Exception) as exc:
                decompress(truncated, kernel_backend=name)
            msgs[name] = (type(exc.value).__name__, str(exc.value))
        assert msgs["numpy"] == msgs["fused-python"]
