"""Unit tests for the stream verification API."""

import numpy as np
import pytest

from repro import compress
from repro.core.verify import verify


@pytest.fixture
def case(rng):
    data = np.cumsum(rng.normal(size=10_000)).astype(np.float32)
    return data, compress(data, rel=1e-3, mode="outlier")


class TestVerify:
    def test_valid_stream_passes(self, case):
        data, buf = case
        report = verify(data, buf)
        assert report.passed
        assert report.max_error <= report.eb_abs * (1 + 1e-6)
        assert report.compression_ratio > 1
        assert report.nelems == data.size
        assert "Pass error check!" in str(report)

    def test_mismatched_original_fails(self, case, rng):
        data, buf = case
        other = data + 10 * report_eb(buf)
        report = verify(other.astype(np.float32), buf)
        assert not report.passed
        assert "FAILED" in str(report)

    def test_wrong_size_rejected(self, case):
        data, buf = case
        with pytest.raises(ValueError):
            verify(data[:-1], buf)

    def test_accepts_bytes(self, case):
        data, buf = case
        assert verify(data, buf.tobytes()).passed

    def test_psnr_finite_and_high(self, case):
        data, buf = case
        report = verify(data, buf)
        assert 40 < report.psnr_db < 200


def report_eb(buf):
    from repro.core import stream as stream_mod

    return stream_mod.split(np.asarray(buf))[0].eb_abs
