"""Executable version of docs/FORMAT.md's worked examples.

Every byte value claimed in the format document is asserted here, so the
documentation cannot drift from the implementation.
"""

import numpy as np

from repro import compress
from repro.core import fle, stream
from repro.core.blockfmt import decode_offset_bytes
from repro.core.quantize import quantize


class TestFig5WorkedExample:
    DATA = np.array([1.12, 0.21, -0.34, 0.23, 1.83, 0.22, 0.42, 0.51])

    def quantize_and_diff(self):
        q = quantize(self.DATA, 0.1)
        deltas = np.diff(q, prepend=np.int64(0))
        return q, deltas

    def test_quantization(self):
        q, _ = self.quantize_and_diff()
        assert q.tolist() == [6, 1, -2, 1, 9, 1, 2, 3]

    def test_deltas(self):
        _, d = self.quantize_and_diff()
        assert d.tolist() == [6, -5, -3, 3, 8, -8, 1, 1]

    def test_encoded_bytes(self):
        _, d = self.quantize_and_diff()
        offsets, payload = fle.encode_blocks(d.reshape(1, 8), use_outlier=False)
        assert offsets[0] == 0x04  # mode 0, fl 4
        assert payload.size == 5  # "5 bytes in this block"
        assert payload[0] == 0b00100110  # signs at positions 1, 2, 5
        assert payload[1] == 0b11001110  # plane 0 of [6,5,3,3,8,8,1,1]
        assert payload[2] == 0b00001101  # plane 1
        assert payload[3] == 0b00000011  # plane 2
        assert payload[4] == 0b00110000  # plane 3


class TestFig7WorkedExample:
    DELTAS = np.array([[8, 1, -1, 0, 1, -1, 0, 1]], dtype=np.int64)

    def test_plain_costs_five_bytes(self):
        _, payload = fle.encode_blocks(self.DELTAS, use_outlier=False)
        assert payload.size == 5  # ratio 32/5 = 6.4

    def test_outlier_costs_three_bytes(self):
        offsets, payload = fle.encode_blocks(self.DELTAS, use_outlier=True)
        assert payload.size == 3  # ratio 32/3 = 10.7
        assert offsets[0] == 0b10000001  # mode 1, outlier size 00, fl 1
        mode, onb, fl = decode_offset_bytes(offsets)
        assert (mode[0], onb[0], fl[0]) == (1, 1, 1)

    def test_payload_layout(self):
        _, payload = fle.encode_blocks(self.DELTAS, use_outlier=True)
        assert payload[0] == 0b00100100  # signs: negatives at 2 and 5
        assert payload[1] == 8  # outlier magnitude byte
        assert payload[2] == 0b10110110  # fl=1 plane of [0,1,1,0,1,1,0,1]


class TestContainerLayout:
    def test_header_field_offsets(self, rng):
        data = rng.normal(size=100).astype(np.float32)
        buf = compress(data, rel=1e-3, mode="outlier")
        assert bytes(buf[0:4]) == b"CSZ2"
        assert buf[4] == 2  # version (2 = checksummed container)
        assert buf[5] == 1  # mode outlier
        assert buf[6] == 0  # float32
        assert buf[7] == 1  # 1-D predictor
        assert int.from_bytes(bytes(buf[8:10]), "little") == 32  # block L
        assert int.from_bytes(bytes(buf[10:12]), "little") == 1  # orig ndim
        assert int.from_bytes(bytes(buf[12:20]), "little") == 100  # N
        eb = np.frombuffer(bytes(buf[20:28]), dtype="<f8")[0]
        assert eb > 0
        assert int.from_bytes(bytes(buf[28:36]), "little") == 100  # d0
        assert stream.HEADER_SIZE == 52

    def test_integrity_section_layout(self, rng):
        import zlib

        data = rng.normal(size=100).astype(np.float32)
        buf = compress(data, rel=1e-3)
        # fixed part: u32 header CRC, u16 group size, u16 reserved, u32 ngroups
        assert int.from_bytes(bytes(buf[52:56]), "little") == zlib.crc32(bytes(buf[:52]))
        assert int.from_bytes(bytes(buf[56:58]), "little") == stream.DEFAULT_GROUP_BLOCKS
        assert int.from_bytes(bytes(buf[60:64]), "little") == 1  # 4 blocks -> 1 group
        # one 12-byte group record (u32 crc, u64 payload len) + trailing u32 TOC CRC
        assert stream.integrity_section_size(1) == 12 + 12 + 4

    def test_offset_section_location(self, rng):
        data = rng.normal(size=100).astype(np.float32)
        buf = compress(data, rel=1e-3)
        header, offsets, payload = stream.split(buf)
        nblocks = -(-100 // 32)
        assert offsets.size == nblocks
        start = 52 + stream.integrity_section_size(1)
        assert np.array_equal(offsets, buf[start : start + nblocks])
